// Shared scaffolding for the experiment benches (E1-E6).
//
// Each bench binary reproduces one of the paper's reported results
// (DESIGN.md, experiment index) by running HijackExperiment over a
// synthetic Internet across several seeds and printing a paper-style
// table. Flags (all optional): --trials=N --seed=S --ases=N.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "artemis/experiment.hpp"
#include "topology/generator.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace artemis::bench {

struct BenchArgs {
  int trials = 12;
  std::uint64_t seed = 1;
  // ~1600 ASes by default: deep enough that propagation matches the
  // paper's timescales (see EXPERIMENTS.md calibration notes).
  int tier1 = 10;
  int tier2 = 140;
  int stubs = 1450;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      const auto eat = [&](std::string_view flag) -> std::optional<std::uint64_t> {
        if (!starts_with(arg, flag)) return std::nullopt;
        return parse_u64(arg.substr(flag.size()));
      };
      if (const auto v = eat("--trials=")) args.trials = static_cast<int>(*v);
      if (const auto v = eat("--seed=")) args.seed = *v;
      if (const auto v = eat("--ases=")) {
        args.stubs = static_cast<int>(*v * 3 / 4);
        args.tier2 = static_cast<int>(*v / 5);
      }
    }
    return args;
  }
};

/// One generated Internet plus the victim/attacker pair used by a trial.
struct Scenario {
  topo::AsGraph graph;
  core::ExperimentParams params;
  sim::NetworkParams net_params;
  Rng rng;

  Scenario(const BenchArgs& args, std::uint64_t trial)
      : rng(args.seed * 1000003 + trial) {
    topo::GeneratorParams topo_params;
    topo_params.tier1_count = args.tier1;
    topo_params.tier2_count = args.tier2;
    topo_params.stub_count = args.stubs;
    auto topo_rng = rng.fork("topology");
    graph = topo::generate_topology(topo_params, topo_rng);

    // Victim and attacker: random distinct stubs ("different PEERING
    // sites"), re-drawn per trial.
    const auto stubs = graph.ases_in_tier(topo::Tier::kStub);
    auto pick_rng = rng.fork("actors");
    const auto victim_idx = pick_rng.uniform_u64(stubs.size());
    auto attacker_idx = pick_rng.uniform_u64(stubs.size() - 1);
    if (attacker_idx >= victim_idx) ++attacker_idx;
    params.victim = stubs[victim_idx];
    params.attacker = stubs[attacker_idx];
    params.victim_prefix = net::Prefix::must_parse("10.0.0.0/23");
  }

  core::ExperimentResult run() {
    core::HijackExperiment experiment(graph, net_params, params, rng.fork("experiment"));
    return experiment.run();
  }
};

inline void print_header(const char* id, const char* title, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

inline std::string fmt_seconds(double s) {
  return SimDuration::seconds(s).to_string();
}

}  // namespace artemis::bench

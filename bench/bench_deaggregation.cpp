// E6 — De-aggregation effectiveness vs victim prefix length (paper §2:
// "Prefix de-aggregation is effective for hijacks of IP address prefixes
// larger than /24, but it might not work for /24 prefixes, as BGP
// advertisements of prefixes smaller than /24 are filtered by some
// ISPs").
//
// Runs the exact-origin hijack experiment with victim prefixes /16../24
// and reports whether de-aggregation was possible and what share of the
// vantage points recovered.
#include "bench_common.hpp"

using namespace artemis;
using namespace artemis::bench;

int main(int argc, char** argv) {
  auto args = BenchArgs::parse(argc, argv);
  args.trials = std::max(4, args.trials / 2);
  print_header("E6", "mitigation by prefix de-aggregation vs victim prefix length",
               "works for prefixes shorter than /24; fails for /24 (the /25 halves "
               "are filtered Internet-wide)");

  TextTable table({"victim prefix", "deagg possible", "announced", "recovered mean",
                   "fully mitigated", "total mean"});
  for (const int length : {16, 20, 22, 23, 24}) {
    Summary recovered;
    Summary total;
    int fully = 0;
    int trials = 0;
    bool deagg = false;
    std::string announced;
    for (int trial = 0; trial < args.trials; ++trial) {
      Scenario scenario(args, static_cast<std::uint64_t>(trial));
      scenario.params.victim_prefix =
          net::Prefix(net::IpAddress::v4(0x0A000000), length);
      scenario.params.horizon = SimDuration::minutes(20);
      const auto result = scenario.run();
      ++trials;
      deagg = result.deaggregation_possible;
      if (trial == 0) {
        std::vector<std::string> names;
        for (const auto& p : result.mitigation_announcements) {
          names.push_back(p.to_string());
        }
        announced = join(names, " ");
      }
      if (!result.timeline.empty()) {
        recovered.add(result.timeline.back().truth_fraction * 100.0);
      }
      if (result.truth_converged_at) {
        ++fully;
        total.add(result.total_duration()->as_seconds());
      }
    }
    table.add_row({"/" + std::to_string(length), deagg ? "yes" : "NO", announced,
                   TextTable::num(recovered.mean(), 0) + "%",
                   std::to_string(fully) + "/" + std::to_string(trials),
                   total.empty() ? "-" : fmt_seconds(total.mean())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: /16../23 victims fully recover in minutes via their two "
              "more-specific halves; the /24 victim stays partially hijacked — the "
              "paper's de-aggregation caveat.\n\n");

  // Extension ablation: mitigation outsourcing rescues the /24 victim by
  // recruiting well-connected helper organizations to co-announce (MOAS)
  // and tunnel traffic back (DESIGN.md, "outsourcing").
  std::printf("--- extension: outsourced mitigation for the /24 victim ---\n");
  TextTable outsource_table({"helpers", "recovered mean", "recovered min",
                             "fully mitigated"});
  for (const int helpers : {0, 1, 3, 5}) {
    Summary recovered;
    int fully = 0;
    int trials = 0;
    for (int trial = 0; trial < args.trials; ++trial) {
      Scenario scenario(args, static_cast<std::uint64_t>(trial));
      scenario.params.victim_prefix = net::Prefix(net::IpAddress::v4(0x0A000000), 24);
      scenario.params.horizon = SimDuration::minutes(20);
      scenario.params.helper_count = helpers;
      const auto result = scenario.run();
      ++trials;
      if (!result.timeline.empty()) {
        recovered.add(result.timeline.back().truth_fraction * 100.0);
      }
      if (result.truth_converged_at) ++fully;
    }
    outsource_table.add_row({std::to_string(helpers),
                             TextTable::num(recovered.mean(), 0) + "%",
                             TextTable::num(recovered.min(), 0) + "%",
                             std::to_string(fully) + "/" + std::to_string(trials)});
  }
  std::printf("%s\n", outsource_table.to_string().c_str());
  std::printf("shape check: recovery climbs with helper count — outsourcing recovers "
              "what de-aggregation cannot.\n");
  return 0;
}

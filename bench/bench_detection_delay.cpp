// E1 — Detection delay per monitoring source and combined (paper §3:
// "ARTEMIS needs (on average) 45secs to detect the hijacking", detection
// delay = min over sources; §2: "the delay of the detection phase is the
// min of the delays of these sources").
#include <map>

#include "bench_common.hpp"

using namespace artemis;
using namespace artemis::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("E1", "detection delay per source (hijack -> first matching observation)",
               "~45 s average detection; combined = min over sources; all < 1 min-ish");

  std::map<std::string, Summary> per_source;
  Summary combined;
  int detected = 0;
  for (int trial = 0; trial < args.trials; ++trial) {
    Scenario scenario(args, static_cast<std::uint64_t>(trial));
    const auto result = scenario.run();
    if (!result.detected_at) continue;
    ++detected;
    combined.add(result.detection_delay()->as_seconds());
    for (const auto& [source, when] : result.detection_by_source) {
      per_source[source].add((when - result.hijack_at).as_seconds());
    }
  }

  std::printf("trials: %d, hijacks detected: %d\n\n", args.trials, detected);
  TextTable table({"source", "n", "mean", "median", "p90", "min", "max"});
  auto add_row = [&table](const std::string& name, const Summary& s) {
    table.add_row({name, std::to_string(s.count()), fmt_seconds(s.mean()),
                   fmt_seconds(s.median()), fmt_seconds(s.percentile(90)),
                   fmt_seconds(s.min()), fmt_seconds(s.max())});
  };
  for (const auto& [source, summary] : per_source) add_row(source, summary);
  add_row("COMBINED (min)", combined);
  std::printf("%s\n", table.to_string().c_str());

  std::printf("shape check: combined mean %.1fs (paper ~45 s); combined <= every "
              "individual source by construction\n",
              combined.mean());
  return 0;
}

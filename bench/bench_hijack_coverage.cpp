// E4 — Coverage of real-world hijack durations (paper §1: ">20% of
// hijacks last < 10 mins" per Argus/IMC'12; §3: ARTEMIS's ~6 min cycle
// "is smaller than the duration of > 80% of the hijacking cases", while
// legacy pipelines miss every short-lived event).
//
// Draws hijack durations from the Argus-calibrated log-normal model and
// reports, per pipeline, the fraction of hijacks still active when the
// pipeline completes mitigation (= the events the pipeline can actually
// defend against), using the end-to-end times measured in E3's setup.
#include "baseline/hijack_duration.hpp"
#include "bench_common.hpp"

using namespace artemis;
using namespace artemis::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("E4", "fraction of hijack events each pipeline mitigates in time",
               ">20% of hijacks < 10 min; ARTEMIS (~6 min) beats >80% of durations; "
               "~80 min manual reaction beats far fewer");

  const baseline::HijackDurationModel model;
  std::printf("duration model checkpoints (log-normal, Argus-calibrated):\n");
  TextTable cdf_table({"duration", "CDF = P(hijack shorter)"});
  for (const double minutes : {1.0, 6.0, 10.0, 35.0, 80.0, 240.0, 1440.0}) {
    cdf_table.add_row({SimDuration::minutes(minutes).to_string(),
                       TextTable::num(model.cdf(SimDuration::minutes(minutes)), 3)});
  }
  std::printf("%s\n", cdf_table.to_string().c_str());

  // Measure ARTEMIS end-to-end times across trials; legacy reaction times
  // use the paper's motivating numbers (data lag + human loop).
  Summary artemis_total;
  for (int trial = 0; trial < args.trials; ++trial) {
    Scenario scenario(args, static_cast<std::uint64_t>(trial));
    const auto result = scenario.run();
    if (result.total_duration()) artemis_total.add(result.total_duration()->as_seconds());
  }

  struct Pipeline {
    std::string name;
    double total_seconds;
  };
  std::vector<Pipeline> pipelines{
      {"artemis (measured mean)", artemis_total.mean()},
      {"artemis (measured p90)", artemis_total.percentile(90)},
      {"manual reaction ~80 min (YouTube)", 80.0 * 60.0},
      {"batch-15m + human loop (~60 min)", 60.0 * 60.0},
      {"rib-2h + human loop (~3 h)", 180.0 * 60.0},
  };

  // Analytic coverage (exact CDF) and Monte-Carlo cross-check.
  Rng rng(args.seed);
  const int samples = 200000;
  TextTable table({"pipeline", "reaction time", "covered (analytic)",
                   "covered (sampled)"});
  for (const auto& pipeline : pipelines) {
    const auto reaction = SimDuration::seconds(pipeline.total_seconds);
    const double analytic = 1.0 - model.cdf(reaction);
    int covered = 0;
    auto mc_rng = rng.fork(pipeline.name);
    for (int i = 0; i < samples; ++i) {
      if (model.sample(mc_rng) > reaction) ++covered;
    }
    table.add_row({pipeline.name, reaction.to_string(),
                   TextTable::num(analytic * 100.0, 1) + "%",
                   TextTable::num(100.0 * covered / samples, 1) + "%"});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("CDF curve (25 points, for plotting the paper-style figure):\n");
  for (int i = 1; i <= 25; ++i) {
    const double q = static_cast<double>(i) / 26.0;
    std::printf("  %5.1f%% of hijacks last <= %s\n", q * 100.0,
                model.quantile(q).to_string().c_str());
  }
  std::printf("\nshape check: ARTEMIS covers ~80%% of hijack durations; the ~80 min "
              "manual loop covers roughly a third; slower pipelines even less.\n");
  return 0;
}

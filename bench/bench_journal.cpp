// Journal throughput benchmarks (ROADMAP "Observation journal").
//
// Tracked trajectory points (bench/record_bench.sh merges these into
// BENCH_<n>.json alongside bench_micro and bench_pipeline):
//   * BM_JournalCodecEncode   — varint/delta encode into a warm buffer,
//                               no I/O: the codec's ceiling.
//   * BM_JournalCodecDecode   — mirror decode from memory.
//   * BM_JournalAppend        — the real writer tap: encode + buffered
//                               write(2) + segment rotation. Acceptance
//                               bar: ≥ 10M obs/s.
//   * BM_JournalReplay/<N>    — JournalReader -> ReplayFeed -> hub ->
//                               N-shard inline detection: the restarted-
//                               monitor path. Acceptance bar: within 2×
//                               of the PR-2 hub->detection batch path
//                               (BM_BatchPath in bench_pipeline).
//   * BM_JournalIndexedQuery  — prefix+time predicate over a ~29-segment
//                               journal, footers pruning the scan; its
//                               BM_JournalQueryFullScan twin runs the
//                               same query with indexing off (the gap is
//                               the index's whole value proposition).
#include <benchmark/benchmark.h>

#include <filesystem>
#include <vector>

#include "artemis/detection.hpp"
#include "feeds/monitor_hub.hpp"
#include "journal/codec.hpp"
#include "journal/reader.hpp"
#include "journal/replay.hpp"
#include "journal/writer.hpp"
#include "pipeline/sharded_detector.hpp"
#include "util/rng.hpp"

using namespace artemis;

namespace {

namespace fs = std::filesystem;

core::Config make_config() {
  core::Config config;
  core::OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  return config;
}

net::Prefix random_prefix(Rng& rng) {
  return net::Prefix(net::IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64())),
                     static_cast<int>(rng.uniform_int(8, 24)));
}

/// Same shape as bench_pipeline's workload: 64k observations in bursts
/// of 8, three sources, 1 in 16 bursts hijack-relevant.
const std::vector<feeds::Observation>& workload() {
  static const std::vector<feeds::Observation> stream = [] {
    Rng rng(6);
    std::vector<feeds::Observation> out;
    constexpr int kBursts = 8192;
    constexpr int kBurstLen = 8;
    out.reserve(kBursts * kBurstLen);
    for (int g = 0; g < kBursts; ++g) {
      feeds::Observation obs;
      obs.type = feeds::ObservationType::kAnnouncement;
      obs.source = (g % 3 == 0) ? "ris-live" : (g % 3 == 1) ? "bgpmon" : "periscope";
      obs.vantage = 9;
      obs.prefix = (g % 16 == 0) ? net::Prefix::must_parse("10.0.0.0/23")
                                 : random_prefix(rng);
      obs.attrs.as_path = bgp::AsPath({9, 3356, (g % 16 == 0) ? 666u : 65001u});
      obs.event_time = SimTime::at_seconds(g);
      obs.delivered_at = SimTime::at_seconds(g + 5);
      for (int i = 0; i < kBurstLen; ++i) out.push_back(obs);
    }
    return out;
  }();
  return stream;
}

std::string bench_dir(const char* tag) {
  const auto dir = fs::temp_directory_path() / (std::string("artemis_bench_journal_") + tag);
  fs::remove_all(dir);
  return dir.string();
}

/// A journal of the full workload, recorded once and shared by the
/// read-side benches.
const std::string& recorded_workload_dir() {
  static const std::string dir = [] {
    std::string d = bench_dir("recorded");
    journal::JournalWriter writer(d);
    const auto& stream = workload();
    constexpr std::size_t kChunk = 1024;
    for (std::size_t i = 0; i < stream.size(); i += kChunk) {
      writer.append_batch({stream.data() + i, std::min(kChunk, stream.size() - i)});
    }
    writer.close();
    return d;
  }();
  return dir;
}

void BM_JournalCodecEncode(benchmark::State& state) {
  const auto& stream = workload();
  journal::RecordEncoder encoder;
  std::vector<std::uint8_t> out;
  constexpr std::size_t kChunk = 1024;  // divides the workload evenly
  std::size_t i = 0;
  std::int64_t encoded_bytes = 0;
  for (auto _ : state) {
    out.clear();  // capacity retained: steady state allocates nothing
    for (std::size_t k = 0; k < kChunk; ++k) encoder.encode(stream[i + k], out);
    benchmark::DoNotOptimize(out.data());
    encoded_bytes += static_cast<std::int64_t>(out.size());
    i += kChunk;
    if (i >= stream.size()) {
      i = 0;
      encoder.reset();
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kChunk));
  state.SetBytesProcessed(encoded_bytes);
}
BENCHMARK(BM_JournalCodecEncode);

void BM_JournalCodecDecode(benchmark::State& state) {
  // Encode one 1024-record chunk, then decode it over and over.
  const auto& stream = workload();
  journal::RecordEncoder encoder;
  std::vector<std::uint8_t> wire;
  constexpr std::size_t kChunk = 1024;
  for (std::size_t k = 0; k < kChunk; ++k) encoder.encode(stream[k], wire);

  journal::RecordDecoder decoder;
  feeds::Observation obs;
  for (auto _ : state) {
    decoder.reset();
    const std::uint8_t* cursor = wire.data();
    const std::uint8_t* const end = wire.data() + wire.size();
    while (cursor != end) {
      std::uint64_t length = 0;
      journal::get_varint(cursor, end, length);
      decoder.decode(cursor, static_cast<std::size_t>(length), obs);
      cursor += length + 4;
    }
    benchmark::DoNotOptimize(obs);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kChunk));
}
BENCHMARK(BM_JournalCodecDecode);

void BM_JournalAppend(benchmark::State& state) {
  const auto& stream = workload();
  const std::string dir = bench_dir("append");
  journal::JournalWriter writer(dir);
  constexpr std::size_t kChunk = 1024;
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t n = std::min(kChunk, stream.size() - i);
    writer.append_batch({stream.data() + i, n});
    i += n;
    if (i >= stream.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kChunk));
  state.counters["bytes_per_obs"] = benchmark::Counter(
      static_cast<double>(writer.bytes_written()) /
          static_cast<double>(writer.records_written()),
      benchmark::Counter::kAvgThreads);
  writer.close();
  fs::remove_all(dir);
}
BENCHMARK(BM_JournalAppend);

/// A multi-segment recording of the workload (64 KiB segments, ~29 of
/// them) for the query benches — with or without index footers.
const std::string& segmented_workload_dir(bool indexed) {
  static std::string dirs[2];
  std::string& dir = dirs[indexed ? 1 : 0];
  if (dir.empty()) {
    dir = bench_dir(indexed ? "segmented_indexed" : "segmented_noindex");
    journal::JournalWriterOptions options;
    options.segment_bytes = 64u << 10;
    options.index_segments = indexed;
    journal::JournalWriter writer(dir, options);
    const auto& stream = workload();
    constexpr std::size_t kChunk = 1024;
    for (std::size_t i = 0; i < stream.size(); i += kChunk) {
      writer.append_batch({stream.data() + i, std::min(kChunk, stream.size() - i)});
    }
    writer.close();
  }
  return dir;
}

void run_query_bench(benchmark::State& state, bool indexed) {
  // The forensics shape: owned prefix inside a narrow time window at the
  // journal's tail. With footers the reader opens only the overlapping
  // segment(s); without them every segment is decoded.
  const std::string& dir = segmented_workload_dir(indexed);
  journal::QueryFilter filter;
  filter.prefix = net::Prefix::must_parse("10.0.0.0/23");
  filter.min_event_us = SimTime::at_seconds(8000).as_micros();
  filter.max_event_us = SimTime::at_seconds(8191).as_micros();
  std::uint64_t matched = 0;
  std::uint64_t scanned = 0;
  std::uint64_t skipped = 0;
  for (auto _ : state) {
    journal::JournalReader reader(dir);
    reader.set_filter(filter);
    pipeline::ObservationBatch batch;
    matched = 0;
    while (reader.read_batch(batch, 1024) > 0) matched += batch.size();
    benchmark::DoNotOptimize(matched);
    scanned = reader.segments_scanned();
    skipped = reader.segments_skipped();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(matched));
  state.counters["matches"] = benchmark::Counter(static_cast<double>(matched),
                                                 benchmark::Counter::kAvgThreads);
  state.counters["segments_scanned"] = benchmark::Counter(
      static_cast<double>(scanned), benchmark::Counter::kAvgThreads);
  state.counters["segments_skipped"] = benchmark::Counter(
      static_cast<double>(skipped), benchmark::Counter::kAvgThreads);
}

void BM_JournalIndexedQuery(benchmark::State& state) {
  run_query_bench(state, /*indexed=*/true);
}
BENCHMARK(BM_JournalIndexedQuery);

void BM_JournalQueryFullScan(benchmark::State& state) {
  run_query_bench(state, /*indexed=*/false);
}
BENCHMARK(BM_JournalQueryFullScan);

void BM_JournalReadDecode(benchmark::State& state) {
  // Reader + decode alone (null sink): isolates the read side of replay
  // from the pipeline it feeds.
  const std::string& dir = recorded_workload_dir();
  for (auto _ : state) {
    journal::JournalReader reader(dir);
    journal::ReplayFeed feed(reader);
    feed.replay_all([](std::span<const feeds::Observation> batch) {
      benchmark::DoNotOptimize(batch.data());
    });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(workload().size()));
}
BENCHMARK(BM_JournalReadDecode);

void BM_JournalReplay(benchmark::State& state) {
  // One iteration = replay the whole recorded 64k-observation journal
  // from disk (page cache warm) into N inline detection shards — the
  // crash-recovery / state-rebuild path. The detector persists across
  // iterations, so this measures the steady state, like
  // BM_DetectionBatch.
  const core::Config config = make_config();
  pipeline::ShardedDetectorOptions options;
  options.shards = static_cast<std::size_t>(state.range(0));
  pipeline::ShardedDetector detector(config, options);
  const std::string& dir = recorded_workload_dir();
  for (auto _ : state) {
    journal::JournalReader reader(dir);
    journal::ReplayFeed feed(reader);
    feed.replay_all([&detector](std::span<const feeds::Observation> batch) {
      detector.submit_batch(batch);
    });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(workload().size()));
}
BENCHMARK(BM_JournalReplay)->Arg(1)->Arg(4);

void BM_JournalReplayHub(benchmark::State& state) {
  // Same replay, but through the hub (per-source accounting included):
  // the full restarted-app wiring replay_scenario_journal uses.
  const core::Config config = make_config();
  pipeline::ShardedDetectorOptions options;
  options.shards = static_cast<std::size_t>(state.range(0));
  pipeline::ShardedDetector detector(config, options);
  feeds::MonitorHub hub;
  detector.attach(hub);
  const std::string& dir = recorded_workload_dir();
  for (auto _ : state) {
    journal::JournalReader reader(dir);
    journal::ReplayFeed feed(reader);
    feed.replay_all(hub);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(workload().size()));
}
BENCHMARK(BM_JournalReplayHub)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();

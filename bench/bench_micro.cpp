// E7 — Systems microbenchmarks (google-benchmark): throughput of the
// detection hot path and its substrates. Not a paper table; establishes
// that the detection service sustains far more than a full Internet feed
// (~10^2-10^3 updates/s at the collectors ARTEMIS subscribes to).
#include <benchmark/benchmark.h>

#include "artemis/detection.hpp"
#include "bgp/rib.hpp"
#include "json/json.hpp"
#include "mrt/mrt.hpp"
#include "mrt/stream_reader.hpp"
#include "netbase/prefix_trie.hpp"
#include "util/rng.hpp"

using namespace artemis;

namespace {

net::Prefix random_prefix(Rng& rng, int min_len = 8, int max_len = 24) {
  return net::Prefix(net::IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64())),
                     static_cast<int>(rng.uniform_int(min_len, max_len)));
}

/// Global-unicast v6 addresses with the real table's shape: a handful of
/// dense RIR blocks up top, well-spread allocation bits below, /32-/48
/// prefix lengths (where actual announcements cluster).
net::IpAddress random_v6_address(Rng& rng) {
  static constexpr std::uint64_t kRirBlocks[] = {0x2001, 0x2400, 0x2600, 0x2620,
                                                 0x2800, 0x2a00, 0x2c00, 0x2a10};
  const std::uint64_t block = kRirBlocks[rng.next_u64() & 7];
  const std::uint64_t hi = (block << 48) | (rng.next_u64() & 0xFFFFFFFFFFFFull);
  return net::IpAddress::from_words(net::IpFamily::kIpv6, hi, rng.next_u64());
}

net::Prefix random_v6_prefix(Rng& rng) {
  return net::Prefix(random_v6_address(rng), static_cast<int>(rng.uniform_int(32, 48)));
}

void BM_PrefixParse(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::string> texts;
  for (int i = 0; i < 1024; ++i) texts.push_back(random_prefix(rng).to_string());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Prefix::parse(texts[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefixParse);

void BM_TrieInsert(benchmark::State& state) {
  Rng rng(2);
  std::vector<net::Prefix> prefixes;
  for (int i = 0; i < 1 << 16; ++i) prefixes.push_back(random_prefix(rng));
  std::size_t i = 0;
  net::PrefixTrie<int> trie;
  for (auto _ : state) {
    trie.insert(prefixes[i++ & 0xFFFF], 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieInsert);

void BM_TrieLpmLookup(benchmark::State& state) {
  Rng rng(3);
  net::PrefixTrie<int> trie;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    trie.insert(random_prefix(rng), static_cast<int>(i));
  }
  std::vector<net::IpAddress> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(net::IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64())));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(probes[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLpmLookup)->Arg(1000)->Arg(100000)->Arg(900000);

/// v6 LPM with the stride cascade (the default). Tracked alongside the
/// v4 trajectory; the PathOnly variant below is the pre-cascade baseline
/// the cascade must beat at >= 100k routes (ISSUE 5 acceptance).
void trie_lpm_lookup_v6(benchmark::State& state, bool stride_tables) {
  Rng rng(11);
  net::PrefixTrie<int> trie;
  trie.set_stride_tables_enabled(stride_tables);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    trie.insert(random_v6_prefix(rng), static_cast<int>(i));
  }
  std::vector<net::IpAddress> probes;
  for (int i = 0; i < 1024; ++i) probes.push_back(random_v6_address(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(probes[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TrieLpmLookupV6(benchmark::State& state) {
  trie_lpm_lookup_v6(state, /*stride_tables=*/true);
}
BENCHMARK(BM_TrieLpmLookupV6)->Arg(1000)->Arg(100000)->Arg(900000);

void BM_TrieLpmLookupV6PathOnly(benchmark::State& state) {
  trie_lpm_lookup_v6(state, /*stride_tables=*/false);
}
BENCHMARK(BM_TrieLpmLookupV6PathOnly)->Arg(1000)->Arg(100000)->Arg(900000);

/// visit_covered ("every announced more-specific of this owned block")
/// over a v6 table — the sub-prefix hijack sweep detection runs per owned
/// prefix, and the subtree-walk shape is nothing like single-probe LPM:
/// it descends to the covering node then enumerates a whole subtree.
/// Probes are /32s from the same RIR blocks the table draws from, so
/// subtree sizes range from empty to hundreds of entries.
void BM_TrieVisitCoveredV6(benchmark::State& state) {
  Rng rng(13);
  net::PrefixTrie<int> trie;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    trie.insert(random_v6_prefix(rng), static_cast<int>(i));
  }
  std::vector<net::Prefix> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(net::Prefix(random_v6_address(rng), 32));
  }
  std::size_t i = 0;
  std::uint64_t visited = 0;
  for (auto _ : state) {
    trie.visit_covered(probes[i++ & 1023],
                       [&](const net::Prefix&, const int&) { ++visited; });
  }
  benchmark::DoNotOptimize(visited);
  state.SetItemsProcessed(state.iterations());
  state.counters["visited_per_call"] =
      benchmark::Counter(static_cast<double>(visited) /
                         static_cast<double>(state.iterations()));
}
BENCHMARK(BM_TrieVisitCoveredV6)->Arg(1000)->Arg(100000)->Arg(900000);

bgp::UpdateMessage sample_update(Rng& rng) {
  bgp::UpdateMessage u;
  u.sender = 64500;
  u.attrs.as_path = bgp::AsPath({64500, 3356, 1299, 65001});
  u.announced = {random_prefix(rng), random_prefix(rng)};
  u.withdrawn = {random_prefix(rng)};
  return u;
}

void BM_MrtEncodeUpdate(benchmark::State& state) {
  Rng rng(4);
  mrt::UpdateRecord rec;
  rec.peer_asn = 64500;
  rec.update = sample_update(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mrt::encode_update_record(rec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MrtEncodeUpdate);

void BM_MrtDecodeElems(benchmark::State& state) {
  Rng rng(5);
  mrt::ByteWriter stream;
  const int records = 256;
  for (int i = 0; i < records; ++i) {
    mrt::UpdateRecord rec;
    rec.peer_asn = 64500;
    rec.update = sample_update(rng);
    stream.bytes(mrt::encode_update_record(rec));
  }
  std::size_t elems = 0;
  for (auto _ : state) {
    elems = mrt::read_elems(stream.data()).size();
    benchmark::DoNotOptimize(elems);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(elems));
}
BENCHMARK(BM_MrtDecodeElems);

void BM_DetectionProcess(benchmark::State& state) {
  // Worst-case-ish mix: 1 in 16 observations overlaps the owned prefix.
  core::Config config;
  core::OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  core::DetectionService detector(config);

  Rng rng(6);
  std::vector<feeds::Observation> observations;
  for (int i = 0; i < 4096; ++i) {
    feeds::Observation obs;
    obs.type = feeds::ObservationType::kAnnouncement;
    obs.source = "bench";
    obs.vantage = 9;
    obs.prefix = (i % 16 == 0) ? net::Prefix::must_parse("10.0.0.0/23")
                               : random_prefix(rng);
    obs.attrs.as_path = bgp::AsPath({9, 3356, 65001});
    observations.push_back(std::move(obs));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    detector.process(observations[i++ & 4095]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectionProcess);

/// A full-internet-scale multi-tenant config: `prefixes` owned prefixes
/// spread round-robin across `tenants` tenants (tenants=1 uses the v1
/// implicit-default-tenant path, the single-operator baseline).
core::Config ownership_config(std::size_t prefixes, std::size_t tenants) {
  Rng rng(11);
  core::Config config;
  std::vector<core::TenantId> ids;
  if (tenants > 1) {
    for (std::size_t t = 0; t < tenants; ++t) {
      ids.push_back(config.add_tenant("as" + std::to_string(64496 + t)));
    }
  }
  for (std::size_t i = 0; i < prefixes; ++i) {
    core::OwnedPrefix owned;
    owned.prefix = random_prefix(rng);
    owned.legitimate_origins.insert(
        static_cast<bgp::Asn>(64496 + (i % std::max<std::size_t>(tenants, 1))));
    if (tenants > 1) {
      config.add_owned(ids[i % tenants], std::move(owned));
    } else {
      config.add_owned(std::move(owned));
    }
  }
  return config;
}

void BM_OwnershipColdLoad(benchmark::State& state) {
  // BENCH_5 (ROADMAP): time-to-first-alert after loading a
  // full-internet-scale config — build the immutable OwnershipTable
  // snapshot from `prefixes` owned prefixes across `tenants` tenants,
  // stand detection up on it, and classify a known hijack. The config
  // object itself is built outside the loop: the measured cold path is
  // snapshot construction + first classification, which is what a
  // process restart or an incremental reload pays.
  const auto prefixes = static_cast<std::size_t>(state.range(0));
  const auto tenants = static_cast<std::size_t>(state.range(1));
  core::Config config = ownership_config(prefixes, tenants);
  core::OwnedPrefix victim;
  victim.prefix = net::Prefix::must_parse("10.99.0.0/23");
  victim.legitimate_origins.insert(65001);
  config.add_owned(std::move(victim));
  feeds::Observation hijack;
  hijack.type = feeds::ObservationType::kAnnouncement;
  hijack.source = "bench";
  hijack.vantage = 9;
  hijack.prefix = net::Prefix::must_parse("10.99.0.0/23");
  hijack.attrs.as_path = bgp::AsPath({9, 3356, 666});
  for (auto _ : state) {
    core::DetectionService detector(config.build_table());
    detector.process(hijack);
    if (detector.alerts().empty()) state.SkipWithError("no first alert");
    benchmark::DoNotOptimize(detector.alerts().size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(prefixes));
}
// The acceptance-floor point (>=1M prefixes, >=1k tenants) plus a
// smaller point for trend reading.
BENCHMARK(BM_OwnershipColdLoad)
    ->Args({100000, 1000})
    ->Args({1 << 20, 1000})
    ->ArgNames({"prefixes", "tenants"})
    ->Unit(benchmark::kMillisecond);

void BM_OwnershipLookup(benchmark::State& state) {
  // The steady-state half of the acceptance bar: a multi-tenant match
  // must stay within 2x of the single-tenant Config::match cost at equal
  // prefix counts (tenants=1 IS that baseline — same table type, v1
  // construction path). Miss-heavy mix like BM_TrieLpmLookup.
  const auto prefixes = static_cast<std::size_t>(state.range(0));
  const auto tenants = static_cast<std::size_t>(state.range(1));
  const auto table = ownership_config(prefixes, tenants).build_table();
  Rng rng(12);
  std::vector<net::Prefix> queries;
  for (int i = 0; i < 4096; ++i) queries.push_back(random_prefix(rng, 16, 28));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->match(queries[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OwnershipLookup)
    ->Args({900000, 1})
    ->Args({900000, 1000})
    ->ArgNames({"prefixes", "tenants"});

void BM_JsonParseConfig(benchmark::State& state) {
  const std::string text = R"({
    "prefixes": [
      {"prefix": "10.0.0.0/23", "origins": [65001], "neighbors": [174, 3356]},
      {"prefix": "192.0.2.0/24", "origins": [65001, 65002]}
    ],
    "mitigation": {"deaggregation_floor": 24, "reannounce_exact": true}
  })";
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Config::from_json_text(text));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JsonParseConfig);

void BM_BetterRoute(benchmark::State& state) {
  bgp::Route a;
  a.prefix = net::Prefix::must_parse("10.0.0.0/23");
  a.attrs.as_path = bgp::AsPath({1, 2, 3});
  a.attrs.local_pref = 200;
  bgp::Route b = a;
  b.attrs.as_path = bgp::AsPath({4, 5, 6, 7});
  b.learned_from = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::better_route(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BetterRoute);

}  // namespace

BENCHMARK_MAIN();

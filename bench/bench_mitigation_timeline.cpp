// E2 — The full detection/mitigation timeline and the demo's
// fraction-of-vantage-points series (paper §3: detect ~45 s, announce
// de-aggregated /24s ~15 s later, mitigation completed within ~5 min,
// ~6 min end to end; §4: visualization of vantage points flipping to the
// illegitimate origin and back). Includes the MRAI ablation called out in
// DESIGN.md (pacing off -> convergence collapses to seconds).
#include "bench_common.hpp"

using namespace artemis;
using namespace artemis::bench;

namespace {

void run_set(const BenchArgs& args, SimDuration mrai, bool print_series) {
  Summary detect;
  Summary announce;
  Summary converge;
  Summary total;
  std::vector<core::TimelineSample> series;
  SimTime series_hijack_at;

  for (int trial = 0; trial < args.trials; ++trial) {
    Scenario scenario(args, static_cast<std::uint64_t>(trial));
    scenario.net_params.mrai = mrai;
    const auto result = scenario.run();
    if (!result.detected_at || !result.truth_converged_at) continue;
    detect.add(result.detection_delay()->as_seconds());
    announce.add(result.mitigation_start_delay()->as_seconds());
    converge.add(result.mitigation_duration()->as_seconds());
    total.add(result.total_duration()->as_seconds());
    if (trial == 0) {
      series = result.timeline;
      series_hijack_at = result.hijack_at;
    }
  }

  TextTable table({"phase", "mean", "median", "p90", "max"});
  auto add_row = [&table](const char* name, const Summary& s) {
    table.add_row({name, fmt_seconds(s.mean()), fmt_seconds(s.median()),
                   fmt_seconds(s.percentile(90)), fmt_seconds(s.max())});
  };
  add_row("hijack -> detected", detect);
  add_row("detected -> /24s announced", announce);
  add_row("announced -> all vantages recovered", converge);
  add_row("TOTAL hijack -> fully mitigated", total);
  std::printf("MRAI = %s (%zu converged trials)\n%s\n", mrai.to_string().c_str(),
              total.count(), table.to_string().c_str());

  if (print_series && !series.empty()) {
    std::printf("timeline series (trial 0), the demo's visualization (§4):\n");
    std::printf("  t-rel    truth-legit  feed-legit\n");
    SimTime last_printed = SimTime::zero();
    for (const auto& sample : series) {
      // Print every ~10 s of simulated time to keep the series readable.
      if (sample.when - last_printed < SimDuration::seconds(10) &&
          sample.when != series.front().when) {
        continue;
      }
      last_printed = sample.when;
      std::printf("  %7s     %3.0f%%        %3.0f%%\n",
                  (sample.when - series_hijack_at).to_string().c_str(),
                  sample.truth_fraction * 100.0, sample.feed_fraction * 100.0);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  print_header("E2", "three-phase experiment timeline + vantage-point series",
               "detect ~45 s; +~15 s controller; complete <= ~5 min; total ~6 min");
  run_set(args, SimDuration::seconds(30), /*print_series=*/true);
  std::printf("--- ablation: advertisement pacing (MRAI) disabled ---\n");
  run_set(args, SimDuration::zero(), /*print_series=*/false);
  std::printf("shape check: with pacing, re-convergence takes minutes; without, "
              "seconds — pacing is what makes mitigation minutes-scale.\n");
  return 0;
}

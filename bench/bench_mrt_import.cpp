// MRT archive import throughput (ROADMAP "mrt -> journal import").
//
// Tracked trajectory points (bench/record_bench.sh merges these into
// BENCH_<n>.json alongside bench_micro, bench_pipeline, bench_journal):
//   * BM_MrtConvertUpdates  — streaming decode of a BGP4MP update window
//                             into recycled Observation batches (null
//                             sink): the converter's ceiling. bytes/s is
//                             MRT input consumed.
//   * BM_MrtConvertRib      — same for a TABLE_DUMP_V2 RIB snapshot
//                             (per-entry attribute decode dominates).
//   * BM_MrtImportToJournal — the full mrt2journal hot path: decode ->
//                             ObservationBatch -> JournalWriter append
//                             (encode + buffered write(2)). The
//                             bytes_per_obs counter tracks journal
//                             density.
//   * BM_MrtLegacyElemAdapter — the BatchFeed-shaped baseline: ElemReader
//                             elems materialized per record and adapted
//                             per observation (allocates); the margin
//                             over this is the tentpole's win.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "journal/writer.hpp"
#include "mrt/observation_convert.hpp"
#include "mrt/stream_reader.hpp"
#include "util/rng.hpp"

using namespace artemis;

namespace {

namespace fs = std::filesystem;

/// The shape real update archives have: four collector peers, one
/// attribute set per record shared by 1-4 announced NLRI (BGP packs a
/// burst of same-path prefixes into one UPDATE), 1 in 16 records
/// touching the hijacked prefix, occasional withdrawals.
const std::vector<std::uint8_t>& updates_window() {
  static const std::vector<std::uint8_t> window = [] {
    Rng rng(7);
    std::vector<std::uint8_t> out;
    constexpr int kRecords = 8192;
    const bgp::Asn peers[4] = {9, 8, 7, 6};
    for (int g = 0; g < kRecords; ++g) {
      mrt::UpdateRecord rec;
      rec.peer_asn = peers[g % 4];
      rec.peer_ip = net::IpAddress::v4(0x0A000000 | rec.peer_asn);
      rec.timestamp = SimTime::at_seconds(g / 8);
      rec.update.sender = rec.peer_asn;
      const auto nlri = rng.uniform_int(1, 4);
      for (std::int64_t n = 0; n < nlri; ++n) {
        const auto addr = static_cast<std::uint32_t>(rng.next_u64());
        rec.update.announced.push_back(
            (g % 16 == 0 && n == 0)
                ? net::Prefix::must_parse("10.0.0.0/23")
                : net::Prefix(net::IpAddress::v4(addr),
                              static_cast<int>(rng.uniform_int(8, 24))));
      }
      rec.update.attrs.as_path =
          bgp::AsPath({rec.peer_asn, 3356, (g % 16 == 0) ? 666u : 65001u});
      if (g % 32 == 0) {
        rec.update.withdrawn.push_back(net::Prefix::must_parse("203.0.113.0/24"));
      }
      const auto bytes = mrt::encode_update_record(rec);
      out.insert(out.end(), bytes.begin(), bytes.end());
    }
    return out;
  }();
  return window;
}

/// A RIB snapshot in the real collector shape: one record per prefix
/// carrying one entry per peer (2048 prefixes x 4 peers = 8192 entries).
const std::vector<std::uint8_t>& rib_window() {
  static const std::vector<std::uint8_t> window = [] {
    Rng rng(8);
    std::vector<mrt::RibEntryRecord> entries;
    const bgp::Asn peers[4] = {9, 8, 7, 6};
    for (int i = 0; i < 2048; ++i) {
      const net::Prefix prefix(
          net::IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64())),
          static_cast<int>(rng.uniform_int(8, 24)));
      for (const auto peer : peers) {
        mrt::RibEntryRecord entry;
        entry.peer_asn = peer;
        entry.timestamp = SimTime::at_seconds(7200);
        entry.route.prefix = prefix;
        entry.route.attrs.as_path = bgp::AsPath({peer, 3356, 65001});
        entries.push_back(std::move(entry));
      }
    }
    return mrt::encode_table_dump(entries, SimTime::at_seconds(7200));
  }();
  return window;
}

/// A realistic dual-stack update window: v6 NLRI in MP_REACH/MP_UNREACH
/// attributes (the only way v6 appears in BGP4MP update archives), 32-byte
/// next hops on half the records, 1-4 NLRI per record, occasional
/// MP_UNREACH withdrawals, 1 in 16 records touching the hijacked v6 /32.
const std::vector<std::uint8_t>& mp_updates_window() {
  static const std::vector<std::uint8_t> window = [] {
    Rng rng(9);
    std::vector<std::uint8_t> out;
    constexpr int kRecords = 8192;
    const bgp::Asn peers[4] = {9, 8, 7, 6};
    for (int g = 0; g < kRecords; ++g) {
      mrt::UpdateRecord rec;
      rec.peer_asn = peers[g % 4];
      rec.peer_ip = net::IpAddress::v4(0x0A000000 | rec.peer_asn);
      rec.timestamp = SimTime::at_seconds(g / 8);
      rec.update.sender = rec.peer_asn;
      const auto nlri = rng.uniform_int(1, 4);
      for (std::int64_t n = 0; n < nlri; ++n) {
        if (g % 16 == 0 && n == 0) {
          rec.update.announced.push_back(net::Prefix::must_parse("2001:db8::/32"));
          continue;
        }
        const std::uint64_t hi = (0x2600ull << 48) | (rng.next_u64() & 0xFFFFFFFFFFFFull);
        rec.update.announced.push_back(
            net::Prefix(net::IpAddress::from_words(net::IpFamily::kIpv6, hi,
                                                   rng.next_u64()),
                        static_cast<int>(rng.uniform_int(32, 48))));
      }
      rec.update.attrs.as_path =
          bgp::AsPath({rec.peer_asn, 3356, (g % 16 == 0) ? 667u : 65001u});
      if (g % 32 == 0) {
        rec.update.withdrawn.push_back(net::Prefix::must_parse("2001:db8:dead::/48"));
      }
      mrt::UpdateEncodeOptions options;
      options.mp_next_hop_len = (g % 2 == 0) ? 16 : 32;
      const auto bytes = mrt::encode_update_record(rec, options);
      out.insert(out.end(), bytes.begin(), bytes.end());
    }
    return out;
  }();
  return window;
}

std::uint64_t count_observations(const std::vector<std::uint8_t>& window) {
  mrt::ObservationConverter converter;
  const auto stats = converter.convert_file(
      window, [](std::span<const feeds::Observation>) {});
  return stats.observations;
}

void convert_window_bench(benchmark::State& state,
                          const std::vector<std::uint8_t>& window) {
  const std::uint64_t obs_per_pass = count_observations(window);
  mrt::ObservationConverter converter;
  for (auto _ : state) {
    const auto stats = converter.convert_file(
        window, [](std::span<const feeds::Observation> batch) {
          benchmark::DoNotOptimize(batch.data());
        });
    benchmark::DoNotOptimize(stats.records);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(obs_per_pass));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(window.size()));
}

void BM_MrtConvertUpdates(benchmark::State& state) {
  convert_window_bench(state, updates_window());
}
BENCHMARK(BM_MrtConvertUpdates);

void BM_MrtConvertRib(benchmark::State& state) {
  convert_window_bench(state, rib_window());
}
BENCHMARK(BM_MrtConvertRib);

/// The dual-stack decode path: MP_REACH/MP_UNREACH attribute parsing
/// into recycled batch slots. Gated in CI alongside the v4 decode benches.
void BM_MrtDecodeMpReach(benchmark::State& state) {
  convert_window_bench(state, mp_updates_window());
}
BENCHMARK(BM_MrtDecodeMpReach);

void BM_MrtImportToJournal(benchmark::State& state) {
  const auto& window = updates_window();
  const std::uint64_t obs_per_pass = count_observations(window);
  const auto dir =
      (fs::temp_directory_path() / "artemis_bench_mrt_import").string();
  fs::remove_all(dir);
  {
    journal::JournalWriter writer(dir);
    mrt::ObservationConverter converter;
    const feeds::ObservationBatchHandler sink = writer.tap();
    for (auto _ : state) {
      const auto stats = converter.convert_file(window, sink);
      benchmark::DoNotOptimize(stats.records);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(obs_per_pass));
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(window.size()));
    state.counters["bytes_per_obs"] = benchmark::Counter(
        static_cast<double>(writer.bytes_written()) /
            static_cast<double>(writer.records_written()),
        benchmark::Counter::kAvgThreads);
    writer.close();
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_MrtImportToJournal);

void BM_MrtLegacyElemAdapter(benchmark::State& state) {
  // What BatchFeed::deliver_file does today: materialize every elem,
  // build a fresh observation vector per window.
  const auto& window = updates_window();
  const std::uint64_t obs_per_pass = count_observations(window);
  for (auto _ : state) {
    const auto elems = mrt::read_elems(window);
    std::vector<feeds::Observation> batch;
    batch.reserve(elems.size());
    for (const auto& elem : elems) {
      feeds::Observation& obs = batch.emplace_back();
      switch (elem.type) {
        case mrt::ElemType::kAnnounce:
          obs.type = feeds::ObservationType::kAnnouncement;
          break;
        case mrt::ElemType::kWithdraw:
          obs.type = feeds::ObservationType::kWithdrawal;
          break;
        case mrt::ElemType::kRibEntry:
          obs.type = feeds::ObservationType::kRouteState;
          break;
      }
      obs.source = "batch-updates";
      obs.vantage = elem.peer_asn;
      obs.prefix = elem.prefix;
      obs.attrs = elem.attrs;
      obs.event_time = elem.timestamp;
      obs.delivered_at = elem.timestamp;
    }
    benchmark::DoNotOptimize(batch.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(obs_per_pass));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(window.size()));
}
BENCHMARK(BM_MrtLegacyElemAdapter);

}  // namespace

BENCHMARK_MAIN();

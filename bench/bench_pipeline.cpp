// Pipeline throughput benchmarks (ROADMAP "Pipeline architecture").
//
// Measures the three tiers of the observation path on one realistic
// workload (bursty merged-feed stream, 1-in-16 groups hijack-relevant):
//   * BM_CallbackPath        — per-observation publish through the hub's
//                              per-observation shim into process(): the
//                              pre-batching architecture, kept as the
//                              comparison baseline.
//   * BM_BatchPath/<B>       — hub.publish_batch spans of B into
//                              process_batch: the batch-first path. The
//                              acceptance bar is ≥ 2x BM_CallbackPath
//                              items/s at B ≥ 256.
//   * BM_DetectionBatch/<B>  — process_batch alone (no hub), isolating
//                              the detection-side amortization.
//   * BM_ShardedInline/<N>   — inline hash dispatch across N shards.
//   * BM_ShardedThreaded/<N> — SPSC rings + N workers; submit+flush per
//                              iteration. Multi-shard scaling.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "artemis/detection.hpp"
#include "feeds/monitor_hub.hpp"
#include "pipeline/batch_ring.hpp"
#include "pipeline/sharded_detector.hpp"
#include "rpki/roa.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"

using namespace artemis;

namespace {

core::Config make_config() {
  core::Config config;
  core::OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  return config;
}

net::Prefix random_prefix(Rng& rng) {
  return net::Prefix(net::IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64())),
                     static_cast<int>(rng.uniform_int(8, 24)));
}

/// The shared workload: 64k observations in bursts of 8 (a collector
/// message / archive window repeats the same route), 1 in 16 bursts
/// touching the owned prefix — the mix a deployed ARTEMIS sees.
const std::vector<feeds::Observation>& workload() {
  static const std::vector<feeds::Observation> stream = [] {
    Rng rng(6);
    std::vector<feeds::Observation> out;
    constexpr int kBursts = 8192;
    constexpr int kBurstLen = 8;
    out.reserve(kBursts * kBurstLen);
    for (int g = 0; g < kBursts; ++g) {
      feeds::Observation obs;
      obs.type = feeds::ObservationType::kAnnouncement;
      obs.source = (g % 3 == 0) ? "ris-live" : (g % 3 == 1) ? "bgpmon" : "periscope";
      obs.vantage = 9;
      obs.prefix = (g % 16 == 0) ? net::Prefix::must_parse("10.0.0.0/23")
                                 : random_prefix(rng);
      obs.attrs.as_path = bgp::AsPath({9, 3356, (g % 16 == 0) ? 666u : 65001u});
      obs.event_time = SimTime::at_seconds(g);
      obs.delivered_at = SimTime::at_seconds(g + 5);
      for (int i = 0; i < kBurstLen; ++i) out.push_back(obs);
    }
    return out;
  }();
  return stream;
}

void BM_CallbackPath(benchmark::State& state) {
  const core::Config config = make_config();
  core::DetectionService detector(config);
  feeds::MonitorHub hub;
  // The pre-pipeline wiring: a per-observation handler chain.
  hub.subscribe([&detector](const feeds::Observation& obs) { detector.process(obs); });
  const auto& stream = workload();
  std::size_t i = 0;
  for (auto _ : state) {
    hub.publish(stream[i]);
    i = (i + 1) & (stream.size() - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CallbackPath);

void BM_BatchPath(benchmark::State& state) {
  const core::Config config = make_config();
  core::DetectionService detector(config);
  feeds::MonitorHub hub;
  detector.attach(hub);  // batch subscription
  const auto& stream = workload();
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t n = std::min(batch_size, stream.size() - i);
    hub.publish_batch({stream.data() + i, n});
    i += n;
    if (i >= stream.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_BatchPath)->Arg(64)->Arg(256)->Arg(1024);

void BM_DetectionBatch(benchmark::State& state) {
  const core::Config config = make_config();
  core::DetectionService detector(config);
  const auto& stream = workload();
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t n = std::min(batch_size, stream.size() - i);
    detector.process_batch({stream.data() + i, n});
    i += n;
    if (i >= stream.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_DetectionBatch)->Arg(64)->Arg(256)->Arg(1024);

/// The telemetry cost gate (ISSUE 8): BM_BatchPath's exact hub->detection
/// workload at B=1024, with metrics:0 = bare and metrics:1 = a registry
/// wired into the detection service (counters + the detection-delay
/// histogram fed from batch-local tallies). The acceptance bar: the
/// metrics:1 leg stays within 5% of metrics:0 items/s — roughly one
/// relaxed store per counter per batch, nothing per observation.
void BM_MetricsOverhead(benchmark::State& state) {
  const core::Config config = make_config();
  core::DetectionService detector(config);
  telemetry::MetricsRegistry registry;
  if (state.range(0) != 0) {
    detector.set_metrics(telemetry::register_detection(registry));
  }
  feeds::MonitorHub hub;
  if (state.range(0) != 0) hub.set_metrics(&registry);
  detector.attach(hub);
  const auto& stream = workload();
  constexpr std::size_t kBatch = 1024;
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t n = std::min(kBatch, stream.size() - i);
    hub.publish_batch({stream.data() + i, n});
    i += n;
    if (i >= stream.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_MetricsOverhead)->ArgNames({"metrics"})->Arg(0)->Arg(1);

void BM_ShardedInline(benchmark::State& state) {
  const core::Config config = make_config();
  pipeline::ShardedDetectorOptions options;
  options.shards = static_cast<std::size_t>(state.range(0));
  pipeline::ShardedDetector detector(config, options);
  const auto& stream = workload();
  constexpr std::size_t kBatch = 1024;
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t n = std::min(kBatch, stream.size() - i);
    detector.submit_batch({stream.data() + i, n});
    i += n;
    if (i >= stream.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_ShardedInline)->Arg(1)->Arg(2)->Arg(4);

void BM_ShardedThreaded(benchmark::State& state) {
  const core::Config config = make_config();
  pipeline::ShardedDetectorOptions options;
  options.shards = static_cast<std::size_t>(state.range(0));
  options.threaded = true;
  options.queue_capacity = 1024;
  options.drain_batch = 128;
  pipeline::ShardedDetector detector(config, options);
  const auto& stream = workload();
  constexpr std::size_t kChunk = 1024;
  for (auto _ : state) {
    // One iteration = the full 64k-observation workload, fanned out and
    // fully drained (flush is the barrier the wall clock must include).
    for (std::size_t i = 0; i < stream.size(); i += kChunk) {
      detector.submit_batch({stream.data() + i, std::min(kChunk, stream.size() - i)});
    }
    detector.flush();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ShardedThreaded)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// The acceptance bench for the batch-granular handoff: N shard workers
/// draining BatchRings, full workload fan-out + flush per iteration, under
/// both wait policies (futex:0 = busy_poll, futex:1 = std::atomic::wait).
/// The scaling bar — threads:4 >= 2x threads:1 items/s — holds on a
/// >= 4-core runner; a 1-CPU container serializes the workers and this
/// bench then measures handoff overhead instead of scaling.
void BM_ShardedThroughput(benchmark::State& state) {
  const core::Config config = make_config();
  pipeline::ShardedDetectorOptions options;
  options.shards = static_cast<std::size_t>(state.range(0));
  options.threaded = true;
  options.queue_capacity = 1024;
  options.drain_batch = 128;
  options.wait_policy = state.range(1) != 0 ? pipeline::WaitPolicy::kFutex
                                            : pipeline::WaitPolicy::kBusyPoll;
  pipeline::ShardedDetector detector(config, options);
  const auto& stream = workload();
  constexpr std::size_t kChunk = 1024;
  for (auto _ : state) {
    for (std::size_t i = 0; i < stream.size(); i += kChunk) {
      detector.submit_batch({stream.data() + i, std::min(kChunk, stream.size() - i)});
    }
    detector.flush();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ShardedThroughput)
    ->ArgNames({"threads", "futex"})
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})
    ->UseRealTime();

// ---- handoff micro-benches -------------------------------------------------
//
// Pure cross-thread transfer cost, no detection work: the per-observation
// SpscRing handoff (one release store + one copy per observation, the
// pre-BatchRing design) against the batch-granular BatchRing (one release
// store per ~128 observations, observations copy-assigned into recycled
// slots). The acceptance bar: BM_HandoffBatchRing >= 5x BM_HandoffPerObsRing
// items/s. Consumer-side waits yield so the pair stays meaningful on a
// single-CPU runner.

void BM_HandoffPerObsRing(benchmark::State& state) {
  pipeline::SpscRing<feeds::Observation> ring(1024);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> drained{0};
  std::thread consumer([&] {
    feeds::Observation slot;  // recycled out-buffer, as the real worker has
    for (;;) {
      if (ring.try_pop(slot)) {
        drained.fetch_add(1, std::memory_order_release);
      } else if (stop.load(std::memory_order_acquire)) {
        if (!ring.try_pop(slot)) return;
        drained.fetch_add(1, std::memory_order_release);
      } else {
        std::this_thread::yield();
      }
    }
  });
  const auto& stream = workload();
  std::uint64_t pushed = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    while (!ring.try_push(stream[i])) std::this_thread::yield();
    ++pushed;
    i = (i + 1) & (stream.size() - 1);
  }
  while (drained.load(std::memory_order_acquire) < pushed) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  consumer.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HandoffPerObsRing)->UseRealTime();

void BM_HandoffBatchRing(benchmark::State& state) {
  pipeline::BatchRing ring(8, 128);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> drained{0};
  std::thread consumer([&] {
    for (;;) {
      pipeline::ObservationBatch* batch = ring.take(stop);
      if (batch == nullptr) return;
      drained.fetch_add(batch->size(), std::memory_order_release);
      ring.release(batch);
    }
  });
  const auto& stream = workload();
  pipeline::ObservationBatch* staging = nullptr;
  std::uint64_t pushed = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    if (staging == nullptr) staging = ring.acquire();
    staging->emplace_back() = stream[i];
    ++pushed;
    if (staging->size() == ring.batch_capacity()) {
      ring.publish(staging);
      staging = nullptr;
    }
    i = (i + 1) & (stream.size() - 1);
  }
  if (staging != nullptr && !staging->empty()) {
    ring.publish(staging);
    staging = nullptr;
  }
  while (drained.load(std::memory_order_acquire) < pushed) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  ring.wake_consumer();
  consumer.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HandoffBatchRing)->UseRealTime();

/// A dense ROA table so every out-of-owned-space announcement pays an
/// RPKI origin validation (the realistic "heavy" per-observation cost —
/// this is where sharding starts to pay: the handoff copy is fixed, the
/// per-observation work now dwarfs it and parallelizes).
const rpki::RoaTable& dense_roa_table() {
  static const rpki::RoaTable table = [] {
    Rng rng(7);
    rpki::RoaTable t;
    for (int i = 0; i < 100000; ++i) {
      rpki::Roa roa;
      roa.prefix = net::Prefix(
          net::IpAddress::v4(static_cast<std::uint32_t>(rng.next_u64())),
          static_cast<int>(rng.uniform_int(8, 20)));
      roa.asn = 65001;  // authorizes the workload's legitimate origin
      roa.max_length = 24;
      t.add(roa);
    }
    return t;
  }();
  return table;
}

void BM_ShardedThreadedRpki(benchmark::State& state) {
  const core::Config config = make_config();
  pipeline::ShardedDetectorOptions options;
  options.shards = static_cast<std::size_t>(state.range(0));
  options.threaded = true;
  options.queue_capacity = 1024;
  options.drain_batch = 128;
  options.detection.roa_table = &dense_roa_table();
  pipeline::ShardedDetector detector(config, options);
  const auto& stream = workload();
  constexpr std::size_t kChunk = 1024;
  for (auto _ : state) {
    for (std::size_t i = 0; i < stream.size(); i += kChunk) {
      detector.submit_batch({stream.data() + i, std::min(kChunk, stream.size() - i)});
    }
    detector.flush();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ShardedThreadedRpki)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_InlineRpki(benchmark::State& state) {
  // Single-thread reference for BM_ShardedThreadedRpki's scaling.
  const core::Config config = make_config();
  pipeline::ShardedDetectorOptions options;
  options.detection.roa_table = &dense_roa_table();
  pipeline::ShardedDetector detector(config, options);
  const auto& stream = workload();
  constexpr std::size_t kBatch = 1024;
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t n = std::min(kBatch, stream.size() - i);
    detector.submit_batch({stream.data() + i, n});
    i += n;
    if (i >= stream.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_InlineRpki);

}  // namespace

BENCHMARK_MAIN();

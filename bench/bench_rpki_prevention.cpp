// E8 (extension) — Prevention vs detection (paper §1: "since its
// prevention is not always possible, mechanisms for its detection and
// mitigation are needed").
//
// The prevention mechanism is RPKI route-origin validation. This bench
// quantifies the paper's premise: with *partial* ROV deployment the
// hijack still captures a sizeable share of the Internet — ARTEMIS is
// needed regardless — and even full ROV does nothing against a /24
// sub-prefix... actually against forged-origin (Type-1) announcements.
// Sweep: fraction of ASes enforcing ROV, with a ROA covering the victim
// prefix. Reports the hijack's peak capture and ARTEMIS detection delay.
#include "bench_common.hpp"
#include "rpki/roa.hpp"

using namespace artemis;
using namespace artemis::bench;

int main(int argc, char** argv) {
  auto args = BenchArgs::parse(argc, argv);
  args.trials = std::max(4, args.trials / 2);
  print_header("E8", "RPKI route-origin validation (prevention) vs ARTEMIS (detection)",
               "prevention is not always possible (§1): partial ROV leaves capture; "
               "Type-1 forged origins evade ROV entirely");

  TextTable table({"ROV deployment", "attack", "peak capture mean", "peak impact mean",
                   "rov drops", "artemis detected"});
  for (const double rov : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    for (const bool forged_origin : {false, true}) {
      Summary capture;
      Summary impact;
      double drops = 0.0;
      int detected = 0;
      int trials = 0;
      for (int trial = 0; trial < args.trials; ++trial) {
        Scenario scenario(args, static_cast<std::uint64_t>(trial));
        rpki::RoaTable roas;
        rpki::Roa roa;
        roa.prefix = scenario.params.victim_prefix;
        roa.asn = scenario.params.victim;
        roa.max_length = 24;  // authorize the mitigation /24s too
        roas.add(roa);
        scenario.net_params.roa_table = &roas;
        scenario.net_params.rov_fraction = rov;
        if (forged_origin) {
          // Type-1: the attacker forges the victim as origin; ROV sees a
          // VALID origin and waves it through.
          scenario.params.forged_path =
              bgp::AsPath({scenario.params.attacker, scenario.params.victim});
          scenario.params.app.detection.detect_fake_first_hop = true;
        }
        scenario.params.horizon = SimDuration::minutes(15);

        core::HijackExperiment experiment(scenario.graph, scenario.net_params,
                                          scenario.params,
                                          scenario.rng.fork("experiment"));
        const auto result = experiment.run();
        ++trials;
        capture.add(result.max_hijacked_fraction * 100.0);
        impact.add(result.max_hijacked_impact * 100.0);
        drops += static_cast<double>(experiment.network().total_stats().rov_dropped);
        if (result.detected_at) ++detected;
      }
      table.add_row({TextTable::num(rov * 100.0, 0) + "%",
                     forged_origin ? "forged-origin (Type-1)" : "origin hijack",
                     TextTable::num(capture.mean(), 1) + "%",
                     TextTable::num(impact.mean(), 1) + "%",
                     TextTable::num(drops / trials, 0),
                     std::to_string(detected) + "/" + std::to_string(trials)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: origin-hijack capture shrinks as ROV deployment grows but "
              "stays nonzero until (nearly) full deployment; the forged-origin attack "
              "is untouched by ROV at every deployment level — detection (ARTEMIS) "
              "remains necessary.\n");
  return 0;
}

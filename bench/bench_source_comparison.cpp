// E3 — ARTEMIS vs legacy pipelines (paper §1: aggregated BGP data is
// published every ~2 h (full RIBs) or ~15 min (update archives); alerts
// from third-party services need manual verification and manual
// mitigation; YouTube's 2008 reaction took ~80 min. ARTEMIS closes the
// whole cycle in ~6 min).
//
// Four pipelines over the same hijack scenarios:
//   artemis            streaming + LG feeds, automatic mitigation
//   stream+manual      PHAS/BGPmon-style alert service: fast data, human loop
//   batch-15m+manual   RIS update archives (15 min files) + human loop
//   rib-2h+manual      RouteViews RIB dumps (2 h) + human loop
#include "baseline/legacy_pipeline.hpp"
#include "bench_common.hpp"
#include "feeds/batch_feed.hpp"
#include "feeds/stream_feed.hpp"

using namespace artemis;
using namespace artemis::bench;

namespace {

struct LegacyOutcome {
  std::optional<SimDuration> detect;
  std::optional<SimDuration> total;
};

/// Runs the hijack scenario with the three legacy pipelines attached.
std::map<std::string, LegacyOutcome> run_legacy(const BenchArgs& args,
                                                std::uint64_t trial) {
  Scenario scenario(args, trial);
  Rng rng = scenario.rng.fork("legacy");
  sim::Network network(scenario.graph, scenario.net_params, rng.fork("network"));

  // Same vantage style as the ARTEMIS run: a spread of ASes.
  std::vector<bgp::Asn> pool = scenario.graph.all_ases();
  std::erase(pool, scenario.params.victim);
  std::erase(pool, scenario.params.attacker);
  auto selection = rng.fork("vantages");
  selection.shuffle(pool.data(), pool.size());
  const std::vector<bgp::Asn> vantages(pool.begin(),
                                       pool.begin() + std::min<std::size_t>(16, pool.size()));

  core::Config config;
  core::OwnedPrefix owned;
  owned.prefix = scenario.params.victim_prefix;
  owned.legitimate_origins.insert(scenario.params.victim);
  config.add_owned(std::move(owned));

  feeds::StreamFeedParams stream_params;
  stream_params.name = "stream";
  stream_params.vantages = vantages;
  feeds::StreamFeed stream(network, stream_params, rng.fork("stream"));

  feeds::BatchFeedParams batch_params;
  batch_params.name = "batch-15m";
  batch_params.vantages = vantages;
  batch_params.mode = feeds::BatchMode::kUpdates;
  batch_params.interval = SimDuration::minutes(15);
  batch_params.publish_delay = SimDuration::seconds(120);
  feeds::BatchFeed batch(network, batch_params, rng.fork("batch"));

  feeds::BatchFeedParams rib_params;
  rib_params.name = "rib-2h";
  rib_params.vantages = vantages;
  rib_params.mode = feeds::BatchMode::kRibDump;
  rib_params.interval = SimDuration::hours(2);
  rib_params.publish_delay = SimDuration::minutes(5);
  feeds::BatchFeed rib(network, rib_params, rng.fork("rib"));

  baseline::OperatorModel operator_model;  // verify 10-40 min, act 15-60 min
  auto& sim = network.simulator();
  baseline::LegacyPipeline stream_pipe(config, sim, operator_model,
                                       rng.fork("op-stream"), "stream+manual");
  baseline::LegacyPipeline batch_pipe(config, sim, operator_model,
                                      rng.fork("op-batch"), "batch-15m+manual");
  baseline::LegacyPipeline rib_pipe(config, sim, operator_model, rng.fork("op-rib"),
                                    "rib-2h+manual");
  stream.subscribe(stream_pipe.inlet());
  batch.subscribe(batch_pipe.inlet());
  rib.subscribe(rib_pipe.inlet());

  const auto prefix = scenario.params.victim_prefix;
  auto& victim = network.speaker(scenario.params.victim);
  auto& attacker = network.speaker(scenario.params.attacker);
  sim.at(SimTime::zero(), [&victim, prefix] { victim.originate(prefix); });
  const SimTime hijack_at = SimTime::at_seconds(3600);
  sim.at(hijack_at, [&attacker, prefix] { attacker.originate(prefix); });
  // Horizon: past the next 2 h RIB dump plus the slowest operator loop.
  sim.run_until(hijack_at + SimDuration::hours(4));

  std::map<std::string, LegacyOutcome> out;
  for (const auto* pipe : {&stream_pipe, &batch_pipe, &rib_pipe}) {
    LegacyOutcome outcome;
    if (const auto t = pipe->first_hijack()) {
      outcome.detect = t->data_available_at - hijack_at;
      outcome.total = t->mitigation_done_at - hijack_at;
    }
    out.emplace(pipe->name(), outcome);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = BenchArgs::parse(argc, argv);
  print_header("E3", "end-to-end hijack handling: ARTEMIS vs legacy pipelines",
               "legacy data lags 15 min - 2 h + ~25-100 min human loop (YouTube "
               "~80 min); ARTEMIS ~6 min total");

  Summary artemis_detect;
  Summary artemis_total;
  std::map<std::string, std::pair<Summary, Summary>> legacy;  // detect, total
  for (int trial = 0; trial < args.trials; ++trial) {
    Scenario scenario(args, static_cast<std::uint64_t>(trial));
    const auto result = scenario.run();
    if (result.detected_at && result.truth_converged_at) {
      artemis_detect.add(result.detection_delay()->as_seconds());
      artemis_total.add(result.total_duration()->as_seconds());
    }
    for (const auto& [name, outcome] : run_legacy(args, static_cast<std::uint64_t>(trial))) {
      if (outcome.detect) {
        legacy[name].first.add(outcome.detect->as_seconds());
        legacy[name].second.add(outcome.total->as_seconds());
      }
    }
  }

  TextTable table({"pipeline", "n", "detect mean", "detect p90", "total mean",
                   "total p90", "vs artemis"});
  auto add_row = [&table, &artemis_total](const std::string& name, const Summary& detect,
                                          const Summary& total) {
    const double speedup = total.mean() / artemis_total.mean();
    table.add_row({name, std::to_string(total.count()), fmt_seconds(detect.mean()),
                   fmt_seconds(detect.percentile(90)), fmt_seconds(total.mean()),
                   fmt_seconds(total.percentile(90)),
                   name == "artemis" ? "1x" : TextTable::num(speedup, 1) + "x slower"});
  };
  add_row("artemis", artemis_detect, artemis_total);
  for (const auto& [name, summaries] : legacy) {
    add_row(name, summaries.first, summaries.second);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: artemis total minutes-scale; every legacy pipeline tens of "
              "minutes to hours, dominated by data lag + the human loop.\n");
  return 0;
}

// E5 — Monitoring overhead vs detection speed (paper §2: "The system can
// be parametrized (e.g., selecting LGs based on location or connectivity)
// to achieve trade-offs between monitoring overhead and detection
// efficiency/speed").
//
// Sweeps the monitor budget: number of streaming vantages and looking
// glasses (plus the Periscope polling interval), and reports mean/p90
// detection delay against the observation/query load ARTEMIS must ingest.
#include "bench_common.hpp"

using namespace artemis;
using namespace artemis::bench;

namespace {

struct SweepPoint {
  int stream_vantages;  // split across RIS and BGPmon
  int looking_glasses;
  double poll_seconds;
};

}  // namespace

int main(int argc, char** argv) {
  auto args = BenchArgs::parse(argc, argv);
  args.trials = std::max(6, args.trials / 2);  // sweep is 6x the work
  print_header("E5", "monitor selection: detection speed vs monitoring overhead",
               "more/better-placed monitors detect faster at higher overhead, "
               "with diminishing returns");

  const std::vector<SweepPoint> sweep{
      {2, 1, 120.0}, {4, 2, 120.0}, {8, 4, 60.0},
      {16, 8, 60.0}, {32, 12, 30.0}, {48, 16, 30.0},
  };

  TextTable table({"streams", "LGs", "poll", "detect mean", "detect p90",
                   "obs/hour", "lg-queries/hour", "detected"});
  double previous_mean = 0.0;
  for (const auto& point : sweep) {
    Summary detect;
    double obs_per_hour = 0.0;
    double queries_per_hour = 0.0;
    int detected = 0;
    int trials = 0;
    for (int trial = 0; trial < args.trials; ++trial) {
      Scenario scenario(args, static_cast<std::uint64_t>(trial));
      // Explicit vantage budget: split streams across the two services.
      std::vector<bgp::Asn> pool = scenario.graph.all_ases();
      std::erase(pool, scenario.params.victim);
      std::erase(pool, scenario.params.attacker);
      auto selection = scenario.rng.fork("sweep-vantages");
      selection.shuffle(pool.data(), pool.size());
      std::size_t cursor = 0;
      auto take = [&pool, &cursor](int n) {
        std::vector<bgp::Asn> out;
        for (int i = 0; i < n && cursor < pool.size(); ++i) out.push_back(pool[cursor++]);
        return out;
      };
      scenario.params.ris.vantages = take(point.stream_vantages / 2);
      scenario.params.bgpmon.vantages =
          take(point.stream_vantages - point.stream_vantages / 2);
      scenario.params.looking_glasses.clear();
      for (const auto asn : take(point.looking_glasses)) {
        feeds::LookingGlassParams lg;
        lg.asn = asn;
        scenario.params.looking_glasses.push_back(lg);
      }
      scenario.params.periscope.poll_interval = SimDuration::seconds(point.poll_seconds);

      core::HijackExperiment experiment(scenario.graph, scenario.net_params,
                                        scenario.params,
                                        scenario.rng.fork("experiment"));
      const auto result = experiment.run();
      ++trials;
      const double sim_hours =
          experiment.network().simulator().now().as_seconds() / 3600.0;
      obs_per_hour += experiment.app().hub().total_observations() / sim_hours;
      if (const auto* periscope = experiment.periscope_client()) {
        queries_per_hour += static_cast<double>(periscope->queries_issued()) / sim_hours;
      }
      if (result.detected_at) {
        ++detected;
        detect.add(result.detection_delay()->as_seconds());
      }
    }
    table.add_row({std::to_string(point.stream_vantages),
                   std::to_string(point.looking_glasses),
                   SimDuration::seconds(point.poll_seconds).to_string(),
                   fmt_seconds(detect.mean()), fmt_seconds(detect.percentile(90)),
                   TextTable::num(obs_per_hour / trials, 0),
                   TextTable::num(queries_per_hour / trials, 0),
                   std::to_string(detected) + "/" + std::to_string(trials)});
    previous_mean = detect.mean();
  }
  (void)previous_mean;
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: delay falls as the budget grows (diminishing returns); "
              "overhead grows roughly linearly with monitors.\n");
  return 0;
}

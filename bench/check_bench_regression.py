#!/usr/bin/env python3
"""Gate on benchmark regressions between two google-benchmark JSON reports.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json \
        [--benchmark BM_TrieLpmLookup] [--benchmark BM_BatchPath ...] \
        [--threshold 0.25]

Compares cpu_time of every benchmark entry in CURRENT whose name starts
with any --benchmark prefix (repeatable; default BM_TrieLpmLookup)
against the same-named entry in BASELINE (produced by record_bench.sh on
comparable hardware). Exits non-zero when any entry regressed by more
than --threshold (fraction, default 0.25 = 25%). Entries present on only
one side are reported but do not fail the gate (benchmarks come and go
across PRs).
"""
import argparse
import json
import sys


def load_times(path: str, prefixes: list[str]) -> dict[str, float]:
    with open(path) as f:
        report = json.load(f)
    times = {}
    for entry in report.get("benchmarks", []):
        name = entry.get("name", "")
        if not any(name.startswith(prefix) for prefix in prefixes):
            continue
        if entry.get("run_type") == "aggregate":
            continue
        times[name] = float(entry["cpu_time"])
    return times


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--benchmark", action="append", default=None,
                        help="benchmark name prefix to gate on (repeatable)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed slowdown as a fraction")
    args = parser.parse_args()
    prefixes = args.benchmark if args.benchmark else ["BM_TrieLpmLookup"]
    label = ", ".join(f"{p}*" for p in prefixes)

    base = load_times(args.baseline, prefixes)
    curr = load_times(args.current, prefixes)
    if not base:
        print(f"baseline has no '{label}' entries; nothing to gate")
        return 0
    if not curr:
        print(f"error: current report has no '{label}' entries",
              file=sys.stderr)
        return 1

    failed = False
    for name in sorted(curr):
        if name not in base:
            print(f"  NEW      {name}: {curr[name]:.1f} ns (no baseline)")
            continue
        ratio = curr[name] / base[name]
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSED"
            failed = True
        print(f"  {verdict:9s}{name}: {base[name]:.1f} -> {curr[name]:.1f} ns "
              f"({(ratio - 1.0) * 100.0:+.1f}%)")
    for name in sorted(set(base) - set(curr)):
        print(f"  GONE     {name} (was {base[name]:.1f} ns)")

    if failed:
        print(f"FAIL: regression beyond {args.threshold * 100.0:.0f}% "
              f"on '{label}'", file=sys.stderr)
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

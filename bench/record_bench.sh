#!/usr/bin/env bash
# Records one point of the tracked bench trajectory (ROADMAP): runs
# bench_micro and bench_pipeline with --benchmark_format=json and merges
# both reports into BENCH_<n>.json, where <n> auto-increments per output
# directory. CI runs this and gates on bench/check_bench_regression.py.
#
# Usage: bench/record_bench.sh [build_dir] [out_dir]
#   BENCH_MIN_TIME  google-benchmark --benchmark_min_time value
#                   (default 0.05; CI wants fast smoke runs)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench/results}"
MIN_TIME="${BENCH_MIN_TIME:-0.05}"

for bin in bench_micro bench_pipeline; do
  if [ ! -x "$BUILD_DIR/$bin" ]; then
    echo "error: $BUILD_DIR/$bin not built (need google-benchmark)" >&2
    exit 1
  fi
done

mkdir -p "$OUT_DIR"
n=0
while [ -e "$OUT_DIR/BENCH_${n}.json" ]; do n=$((n + 1)); done
out="$OUT_DIR/BENCH_${n}.json"

tmp_micro="$(mktemp)"
tmp_pipeline="$(mktemp)"
trap 'rm -f "$tmp_micro" "$tmp_pipeline"' EXIT

"$BUILD_DIR/bench_micro" --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json > "$tmp_micro"
"$BUILD_DIR/bench_pipeline" --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json > "$tmp_pipeline"

python3 - "$tmp_micro" "$tmp_pipeline" "$out" <<'EOF'
import json, sys
micro_path, pipeline_path, out_path = sys.argv[1:4]
with open(micro_path) as f:
    merged = json.load(f)
with open(pipeline_path) as f:
    pipeline = json.load(f)
merged["benchmarks"].extend(pipeline["benchmarks"])
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
EOF

echo "$out"

#!/usr/bin/env bash
# Records one point of the tracked bench trajectory (ROADMAP): runs
# bench_micro, bench_pipeline, bench_journal and bench_mrt_import with
# --benchmark_format=json and merges the reports into BENCH_<n>.json,
# where <n> auto-increments per output directory. CI runs this and gates
# on bench/check_bench_regression.py. Every bench in those binaries is
# recorded automatically — the PR-5 additions (BM_TrieLpmLookupV6*,
# BM_MrtDecodeMpReach) ride along with no changes here; the GATED subset
# lives in .github/workflows/ci.yml (--benchmark flags).
#
# Usage: bench/record_bench.sh [build_dir] [out_dir]
#   BENCH_MIN_TIME  google-benchmark --benchmark_min_time value
#                   (default 0.05; CI wants fast smoke runs)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench/results}"
MIN_TIME="${BENCH_MIN_TIME:-0.05}"

BINS=(bench_micro bench_pipeline bench_journal bench_mrt_import)
for bin in "${BINS[@]}"; do
  if [ ! -x "$BUILD_DIR/$bin" ]; then
    echo "error: $BUILD_DIR/$bin not built (need google-benchmark)" >&2
    exit 1
  fi
done

mkdir -p "$OUT_DIR"
n=0
while [ -e "$OUT_DIR/BENCH_${n}.json" ]; do n=$((n + 1)); done
out="$OUT_DIR/BENCH_${n}.json"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

reports=()
for bin in "${BINS[@]}"; do
  "$BUILD_DIR/$bin" --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=json > "$tmpdir/$bin.json"
  reports+=("$tmpdir/$bin.json")
done

python3 - "$out" "${reports[@]}" <<'EOF'
import json, sys
out_path, first, *rest = sys.argv[1:]
with open(first) as f:
    merged = json.load(f)
for path in rest:
    with open(path) as f:
        merged["benchmarks"].extend(json.load(f)["benchmarks"])
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
EOF

echo "$out"

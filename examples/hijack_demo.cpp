// The SIGCOMM'16 demo (§4), terminal edition.
//
// Runs a live hijack experiment and renders, in (simulated) real time,
// what the paper's demo showed on a world map: each vantage point turning
// red as it falls to the illegitimate origin, then green again as the
// de-aggregated announcements reclaim it — alongside the ARTEMIS event
// log (alert, controller commands, convergence).
//
// Usage: hijack_demo [seed]
#include <cstdio>
#include <cstdlib>

#include "artemis/experiment.hpp"
#include "util/strings.hpp"
#include "topology/generator.hpp"

using namespace artemis;

namespace {

void print_event(SimTime when, SimTime hijack_at, const char* tag, const std::string& what) {
  const SimDuration rel = when - hijack_at;
  std::printf("  [%8s] %-10s %s\n", rel.to_string().c_str(), tag, what.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  Rng rng(seed);

  topo::GeneratorParams topo_params;
  topo_params.tier2_count = 80;
  topo_params.stub_count = 500;
  auto topo_rng = rng.fork("topology");
  const auto graph = topo::generate_topology(topo_params, topo_rng);
  const auto stubs = graph.ases_in_tier(topo::Tier::kStub);

  core::ExperimentParams params;
  params.victim = stubs[3];
  params.attacker = stubs[stubs.size() - 4];
  params.victim_prefix = net::Prefix::must_parse("10.0.0.0/23");

  std::printf("ARTEMIS live demo — hijack of %s (victim AS%u, attacker AS%u)\n\n",
              params.victim_prefix.to_string().c_str(), params.victim, params.attacker);

  core::HijackExperiment experiment(graph, sim::NetworkParams{}, params, rng.fork("exp"));
  const SimTime hijack_at = params.hijack_at;

  // Event log: alerts, mitigation, per-vantage flips.
  auto& app = experiment.app();
  app.sharded_detection().on_alert([hijack_at](const core::HijackAlert& alert) {
    print_event(alert.detected_at, hijack_at, "DETECT", alert.to_string());
  });
  app.mitigation().on_mitigation([&](const core::MitigationRecord& record) {
    std::vector<std::string> names;
    for (const auto& p : record.plan.announcements) names.push_back(p.to_string());
    print_event(record.triggered_at, hijack_at, "MITIGATE",
                "de-aggregating -> announcing " + join(names, ", "));
  });
  app.monitoring().on_change([hijack_at](const core::VantageChange& change) {
    // Phase-1 convergence (every vantage learning the victim's route for
    // the first time) is silent; the show starts at the hijack.
    if (change.when < hijack_at) return;
    print_event(change.when, hijack_at, change.legitimate ? "RECOVERED" : "CAPTURED",
                "vantage AS" + std::to_string(change.vantage) + " now routes to AS" +
                    std::to_string(change.current_origin));
  });

  std::printf("event log (times relative to hijack launch):\n");
  const auto result = experiment.run();

  // The "world map": one cell per vantage, final state per timeline phase.
  std::printf("\nvantage-point map over time (each cell one vantage; #=legitimate, "
              "x=hijacked):\n");
  const auto& vantages = experiment.vantage_union();
  SimTime last = SimTime::zero();
  for (const auto& sample : result.timeline) {
    if (sample.when - last < SimDuration::seconds(20) &&
        sample.when != result.timeline.front().when) {
      continue;
    }
    last = sample.when;
    std::string row;
    const auto legit_cells =
        static_cast<std::size_t>(sample.truth_fraction * static_cast<double>(vantages.size()) + 0.5);
    row.append(legit_cells, '#');
    row.append(vantages.size() - legit_cells, 'x');
    std::printf("  %8s  %s  (%2.0f%% legitimate)\n",
                (sample.when - result.hijack_at).to_string().c_str(), row.c_str(),
                sample.truth_fraction * 100.0);
  }

  std::printf("\nsummary: %s\n", result.summary().c_str());
  return 0;
}

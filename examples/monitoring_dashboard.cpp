// Detect-only deployment driven by an operator JSON config.
//
// Shows the alert-service mode of ARTEMIS (auto_mitigate=false): the
// operator declares owned prefixes in a config file; the tool watches the
// feeds, prints every alert with full context plus per-source feed
// statistics — but leaves mitigation to the operator. Demonstrates the
// config-file surface of the library.
//
// Usage: monitoring_dashboard [config.json]
//   Without an argument, a sample config is written next to the binary
//   and used, so the example is runnable out of the box.
#include <cstdio>
#include <fstream>

#include "artemis/experiment.hpp"
#include "json/json.hpp"
#include "topology/generator.hpp"

using namespace artemis;

namespace {

constexpr std::string_view kSampleConfig = R"({
  "prefixes": [
    {
      "prefix": "10.0.0.0/23",
      "origins": [65001],
      "neighbors": []
    }
  ],
  "mitigation": {
    "deaggregation_floor": 24,
    "reannounce_exact": true,
    "auto_mitigate": false
  }
})";

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  if (argc > 1) {
    config_path = argv[1];
  } else {
    config_path = "artemis_sample_config.json";
    std::ofstream out(config_path);
    out << kSampleConfig;
    std::printf("no config given; wrote sample to %s\n\n", config_path.c_str());
  }

  core::Config config = core::Config::from_json(json::parse_file(config_path));
  std::printf("loaded config: %zu owned prefix(es), auto_mitigate=%s\n",
              config.owned().size(),
              config.mitigation().auto_mitigate ? "true" : "false");
  for (const auto& owned : config.owned()) {
    std::string origins;
    for (const auto asn : owned.legitimate_origins) {
      origins += (origins.empty() ? "" : ",") + std::to_string(asn);
    }
    std::printf("  %s owned by AS{%s}\n", owned.prefix.to_string().c_str(),
                origins.c_str());
  }

  // Simulated Internet around the config: the first legitimate origin is
  // the victim AS; a random stub plays the attacker.
  Rng rng(11);
  topo::GeneratorParams topo_params;
  topo_params.first_asn = 60000;
  topo_params.tier2_count = 60;
  topo_params.stub_count = 400;
  auto topo_rng = rng.fork("topology");
  auto graph = topo::generate_topology(topo_params, topo_rng);
  // Attach the configured origin AS as a stub customer of two transits.
  const bgp::Asn victim = *config.owned().front().legitimate_origins.begin();
  graph.add_as(victim, topo::Tier::kStub);
  const auto tier2s = graph.ases_in_tier(topo::Tier::kTier2);
  graph.add_customer_link(tier2s[0], victim);
  graph.add_customer_link(tier2s[1], victim);

  core::ExperimentParams params;
  params.victim = victim;
  params.attacker = graph.ases_in_tier(topo::Tier::kStub)[5];
  params.victim_prefix = config.owned().front().prefix;
  // Alert-only: the app mitigation honours the config's auto_mitigate.
  params.horizon = SimDuration::minutes(15);

  core::HijackExperiment experiment(graph, sim::NetworkParams{}, params, rng.fork("exp"));
  // The experiment builds its own config internally; re-register a
  // detect-only policy by disabling mitigation on the app's config copy
  // is not exposed — instead we subscribe to alerts and show them, which
  // is the dashboard's job either way.
  auto& app = experiment.app();
  app.sharded_detection().on_alert([](const core::HijackAlert& alert) {
    std::printf("\n*** ALERT ***\n  %s\n", alert.to_string().c_str());
    std::printf("  action: verify and mitigate (auto_mitigate=false in config)\n");
  });

  std::printf("\nwatching feeds (simulated)...\n");
  const auto result = experiment.run();

  std::printf("\nfeed statistics:\n");
  for (const auto& [source, count] : app.hub().per_source_counts()) {
    std::printf("  %-12s %6llu observations\n", source.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("detection service: %llu observations processed, %llu matched owned space\n",
              static_cast<unsigned long long>(app.sharded_detection().observations_processed()),
              static_cast<unsigned long long>(app.sharded_detection().observations_matched()));
  if (result.detected_at) {
    std::printf("\nfirst alert %s after the hijack (source: %s)\n",
                result.detection_delay()->to_string().c_str(),
                result.detection_source.c_str());
  }
  return 0;
}

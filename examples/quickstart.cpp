// Quickstart: one full ARTEMIS hijack experiment, end to end.
//
// Builds a synthetic Internet, picks a victim and an attacker stub AS,
// runs the paper's three phases (announce/converge, hijack/detect,
// de-aggregate/re-converge) and prints the measured timeline — the same
// numbers §3 of the paper reports for the PEERING deployment.
//
// Usage: quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "artemis/experiment.hpp"
#include "topology/generator.hpp"

using namespace artemis;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  Rng rng(seed);

  // A modest Internet: 8 tier-1s, 60 transit networks, 300 stubs.
  topo::GeneratorParams topo_params;
  topo_params.tier2_count = 60;
  topo_params.stub_count = 300;
  auto topo_rng = rng.fork("topology");
  const topo::AsGraph graph = topo::generate_topology(topo_params, topo_rng);

  // Victim and attacker: two stub ASes at different "sites", like the two
  // PEERING virtual ASes in the paper.
  const auto stubs = graph.ases_in_tier(topo::Tier::kStub);
  core::ExperimentParams params;
  params.victim = stubs.front();
  params.attacker = stubs.back();
  params.victim_prefix = net::Prefix::must_parse("10.0.0.0/23");

  sim::NetworkParams net_params;  // defaults: 30 s MRAI, /24 filtering

  std::printf("ARTEMIS quickstart (seed %llu)\n", static_cast<unsigned long long>(seed));
  std::printf("  topology: %zu ASes, %zu links\n", graph.as_count(), graph.link_count());
  std::printf("  victim AS%u announces %s; attacker AS%u hijacks it at t+1h\n\n",
              params.victim, params.victim_prefix.to_string().c_str(), params.attacker);

  core::HijackExperiment experiment(graph, net_params, params, rng.fork("exp"));
  const core::ExperimentResult result = experiment.run();

  std::printf("result: %s\n\n", result.summary().c_str());
  if (result.detected_at) {
    std::printf("  detection delay:        %s (first source: %s)\n",
                result.detection_delay()->to_string().c_str(),
                result.detection_source.c_str());
    for (const auto& [source, when] : result.detection_by_source) {
      std::printf("    %-12s first matching observation after %s\n", source.c_str(),
                  (when - result.hijack_at).to_string().c_str());
    }
  }
  if (result.mitigation_start_delay()) {
    std::printf("  detection -> announcements applied: %s\n",
                result.mitigation_start_delay()->to_string().c_str());
    std::printf("  announcements:");
    for (const auto& p : result.mitigation_announcements) {
      std::printf(" %s", p.to_string().c_str());
    }
    std::printf("\n");
  }
  if (result.mitigation_duration()) {
    std::printf("  announcement -> all vantage points recovered: %s\n",
                result.mitigation_duration()->to_string().c_str());
  }
  if (result.total_duration()) {
    std::printf("  TOTAL hijack -> fully mitigated: %s\n",
                result.total_duration()->to_string().c_str());
  }
  std::printf("  peak vantage share captured by hijacker: %.0f%%\n",
              result.max_hijacked_fraction * 100.0);
  return 0;
}

// Scenario runner: execute a JSON-described hijack experiment and emit a
// machine-readable JSON result (sweep driver material — point it at a
// directory of scenario files from a shell loop).
//
// Usage: scenario_runner [scenario.json]
//   Without an argument a built-in demonstration scenario runs: a /24
//   victim defended by three outsourced helpers under a Type-1 attack
//   with the first-hop check enabled — the full extension surface in one
//   file.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "artemis/scenario.hpp"

using namespace artemis;

namespace {

constexpr std::string_view kDefaultScenario = R"({
  "seed": 2016,
  "topology": {"tier1": 8, "tier2": 80, "stubs": 600},
  "network": {"mrai_s": 30, "max_prefix_len": 24},
  "experiment": {
    "victim_prefix": "10.0.0.0/24",
    "victim": "stub:2",
    "attacker": "stub:-3",
    "forged_first_hop": true,
    "detect_fake_first_hop": true,
    "helper_count": 3,
    "horizon_min": 20
  }
})";

}  // namespace

int main(int argc, char** argv) {
  std::string text(kDefaultScenario);
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::fprintf(stderr, "(no scenario given; running the built-in demo scenario)\n");
  }

  try {
    const core::Scenario scenario = core::load_scenario_text(text);
    std::fprintf(stderr, "topology: %zu ASes; victim AS%u, attacker AS%u\n",
                 scenario.graph.as_count(), scenario.experiment.victim,
                 scenario.experiment.attacker);
    const auto result = scenario.run();
    std::fprintf(stderr, "%s\n", result.summary().c_str());
    // Results to stdout as JSON; progress/diagnostics went to stderr.
    std::printf("%s\n", core::result_to_json(result).dump(2).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

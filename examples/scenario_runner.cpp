// Scenario runner: execute a JSON-described hijack experiment and emit a
// machine-readable JSON result (sweep driver material — point it at a
// directory of scenario files from a shell loop).
//
// Usage: scenario_runner [scenario.json] [options]
//   --journal DIR   record every hub-delivered observation to a journal
//                   in DIR (same as "journal_dir" in the scenario JSON)
//   --replay DIR    do not run the live simulation; replay the journal
//                   in DIR through a fresh app built from the scenario's
//                   config and print the replayed detection view
//   --warp N        with --replay: time-warped pacing at N× recorded
//                   speed through the simulator clock (default: as fast
//                   as possible, no pacing)
//   --shards N      with --replay: override detection_shards — replayed
//                   output is bit-identical for any N
//   --threaded      with --replay (full speed only): one worker thread
//                   per shard behind the batch-granular ring handoff —
//                   output is still bit-identical to inline
//   --wait-policy P with --replay --threaded: busy_poll (default) or
//                   futex — what idle workers / a backpressured producer
//                   do while waiting
//   --pin           with --replay --threaded: pin shard workers to
//                   consecutive CPUs (best effort)
//   --import-mrt    import mode: the positional arguments are MRT files
//                   (not a scenario); convert them into the journal named
//                   by --journal DIR, then exit. Pair with a later
//                   --replay run to push an archived window through
//                   detection. (tools/mrt2journal exposes more knobs.)
//   --metrics-port N
//                   serve Prometheus /metrics and /healthz on
//                   127.0.0.1:N for the duration of the run (0 picks an
//                   ephemeral port, announced on stderr)
//
//   Live and replay runs both print detection-delay percentiles
//   (p50/p95/p99/max over observation timestamp -> alert emission, on
//   the sim clock) to stderr, and replay results carry them in the JSON.
//
//   Without a scenario argument a built-in demonstration scenario runs:
//   a /24 victim defended by three outsourced helpers under a Type-1
//   attack with the first-hop check enabled — the full extension surface
//   in one file.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "artemis/scenario.hpp"
#include "mrt/observation_convert.hpp"
#include "telemetry/http_server.hpp"
#include "telemetry/metrics.hpp"

using namespace artemis;

namespace {

constexpr std::string_view kDefaultScenario = R"({
  "seed": 2016,
  "topology": {"tier1": 8, "tier2": 80, "stubs": 600},
  "network": {"mrai_s": 30, "max_prefix_len": 24},
  "experiment": {
    "victim_prefix": "10.0.0.0/24",
    "victim": "stub:2",
    "attacker": "stub:-3",
    "forged_first_hop": true,
    "detect_fake_first_hop": true,
    "helper_count": 3,
    "horizon_min": 20
  }
})";

[[noreturn]] void usage_error(const char* what) {
  std::fprintf(stderr, "error: %s\n", what);
  std::fprintf(stderr,
               "usage: scenario_runner [scenario.json] [--journal DIR] "
               "[--metrics-port N] "
               "[--replay DIR [--warp N] [--shards N] [--threaded "
               "[--wait-policy busy_poll|futex] [--pin]]] | "
               "--import-mrt <file.mrt...> --journal DIR\n");
  std::exit(2);
}

/// The paper's headline numbers, from the merged detection-delay
/// histogram (empty when no alert fired).
void print_detection_delay(const telemetry::MetricsRegistry& registry) {
  const auto delay =
      registry.histogram_snapshot("artemis_detection_delay_seconds");
  if (delay.total == 0) return;
  std::fprintf(stderr,
               "detection delay: p50 %.3fs p95 %.3fs p99 %.3fs max %.3fs "
               "(%llu alerts)\n",
               delay.quantile(0.50) * 1e-6, delay.quantile(0.95) * 1e-6,
               delay.quantile(0.99) * 1e-6,
               static_cast<double>(delay.max) * 1e-6,
               static_cast<unsigned long long>(delay.total));
}

}  // namespace

int main(int argc, char** argv) {
  std::string text(kDefaultScenario);
  std::string journal_dir;
  std::string replay_dir;
  core::ReplayRunOptions replay_options;
  bool scenario_given = false;
  bool import_mrt = false;
  std::vector<std::string> mrt_files;
  long metrics_port = -1;  // -1 = no HTTP server

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto flag_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) usage_error((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (arg == "--journal") {
      journal_dir = flag_value("--journal");
    } else if (arg == "--import-mrt") {
      import_mrt = true;
    } else if (arg == "--replay") {
      replay_dir = flag_value("--replay");
    } else if (arg == "--warp") {
      const char* text = flag_value("--warp");
      char* rest = nullptr;
      replay_options.speedup = std::strtod(text, &rest);
      if (rest == text || *rest != '\0' || !(replay_options.speedup > 0.0)) {
        usage_error("--warp must be a number > 0");
      }
    } else if (arg == "--shards") {
      // strtol (not strtoul): "-1" must be rejected, not wrapped huge.
      const char* text = flag_value("--shards");
      char* rest = nullptr;
      const long shards = std::strtol(text, &rest, 10);
      if (rest == text || *rest != '\0' || shards < 1 || shards > 1024) {
        usage_error("--shards must be an integer in [1, 1024]");
      }
      replay_options.detection_shards = static_cast<std::size_t>(shards);
    } else if (arg == "--threaded") {
      replay_options.threaded = true;
    } else if (arg == "--wait-policy") {
      const char* text = flag_value("--wait-policy");
      pipeline::WaitPolicy policy;
      if (!pipeline::parse_wait_policy(text, policy)) {
        usage_error("--wait-policy must be busy_poll or futex");
      }
      replay_options.wait_policy = policy;
    } else if (arg == "--pin") {
      replay_options.pin = true;
    } else if (arg == "--metrics-port") {
      const char* text = flag_value("--metrics-port");
      char* rest = nullptr;
      metrics_port = std::strtol(text, &rest, 10);
      if (rest == text || *rest != '\0' || metrics_port < 0 ||
          metrics_port > 65535) {
        usage_error("--metrics-port must be an integer in [0, 65535]");
      }
    } else if (!arg.empty() && arg.front() == '-') {
      usage_error(("unknown option " + std::string(arg)).c_str());
    } else if (import_mrt) {
      mrt_files.emplace_back(arg);
    } else if (scenario_given) {
      usage_error("more than one scenario file given");
    } else {
      std::ifstream in(argv[i]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
      scenario_given = true;
    }
  }
  // Reject silently-ignored combinations: pacing/sharding flags only
  // affect replay, and recording is meaningless while replaying.
  if (replay_dir.empty() &&
      (replay_options.speedup > 0.0 || replay_options.detection_shards > 0 ||
       replay_options.threaded || replay_options.wait_policy ||
       replay_options.pin)) {
    usage_error("--warp/--shards/--threaded/--wait-policy/--pin require --replay");
  }
  if ((replay_options.wait_policy || replay_options.pin) &&
      !replay_options.threaded) {
    usage_error("--wait-policy/--pin require --threaded");
  }
  if (replay_options.threaded && replay_options.speedup > 0.0) {
    usage_error("--threaded requires full-speed replay (drop --warp)");
  }
  if (!replay_dir.empty() && !journal_dir.empty()) {
    usage_error("--journal cannot be combined with --replay");
  }
  if (import_mrt) {
    // Import mode: MRT files -> journal, no simulation. Flags that only
    // make sense for a live or replayed run are rejected, not ignored.
    if (scenario_given) usage_error("--import-mrt must precede the MRT file list");
    if (!replay_dir.empty()) usage_error("--import-mrt cannot be combined with --replay");
    if (journal_dir.empty()) usage_error("--import-mrt requires --journal DIR");
    if (mrt_files.empty()) usage_error("--import-mrt needs at least one MRT file");
    try {
      const auto imported = mrt::import_mrt_files(mrt_files, journal_dir);
      for (const auto& err : imported.file_errors) {
        std::fprintf(stderr, "warning: %s\n", err.c_str());
      }
      std::fprintf(stderr, "imported %llu records (%llu observations) into %s\n",
                   static_cast<unsigned long long>(imported.records),
                   static_cast<unsigned long long>(imported.observations),
                   journal_dir.c_str());
      std::printf("%s\n",
                  mrt::import_result_to_json(journal_dir, imported).dump(2).c_str());
      return (imported.truncated_files > 0 || imported.failed_files > 0) ? 3 : 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (!scenario_given) {
    std::fprintf(stderr, "(no scenario given; running the built-in demo scenario)\n");
  }

  try {
    core::Scenario scenario = core::load_scenario_text(text);
    std::fprintf(stderr, "topology: %zu ASes; victim AS%u, attacker AS%u\n",
                 scenario.graph.as_count(), scenario.experiment.victim,
                 scenario.experiment.attacker);

    // Telemetry is always on here (the registry is cheap and the delay
    // percentiles ride on it); the HTTP server only with --metrics-port.
    telemetry::MetricsRegistry registry;
    std::unique_ptr<telemetry::MetricsServer> metrics_server;
    if (metrics_port >= 0) {
      telemetry::MetricsServerOptions server_options;
      server_options.port = static_cast<int>(metrics_port);
      metrics_server =
          std::make_unique<telemetry::MetricsServer>(registry, server_options);
      std::fprintf(stderr, "metrics: listening on http://127.0.0.1:%d/metrics\n",
                   metrics_server->port());
    }

    if (!replay_dir.empty()) {
      // Replay mode: the recorded stream, not the simulator, drives the
      // fresh app. Output must match the recording run for any shard
      // count or warp factor.
      replay_options.metrics = &registry;
      const auto replayed =
          core::replay_scenario_journal(scenario, replay_dir, replay_options);
      print_detection_delay(registry);
      std::printf("%s\n", replayed.dump(2).c_str());
      return 0;
    }

    if (!journal_dir.empty()) scenario.experiment.app.journal_dir = journal_dir;
    scenario.experiment.app.metrics = &registry;
    const auto result = scenario.run();
    std::fprintf(stderr, "%s\n", result.summary().c_str());
    print_detection_delay(registry);
    if (!scenario.experiment.app.journal_dir.empty()) {
      std::fprintf(stderr, "journal recorded to %s\n",
                   scenario.experiment.app.journal_dir.c_str());
    }
    // Results to stdout as JSON; progress/diagnostics went to stderr.
    std::printf("%s\n", core::result_to_json(result).dump(2).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

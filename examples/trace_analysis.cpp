// Offline trace analysis: the libBGPStream-style workflow.
//
// 1. Runs a hijack scenario and records everything the vantage points saw
//    into a real MRT file (BGP4MP_ET records, byte-compatible subset of
//    RFC 6396).
// 2. Re-opens the file cold — exactly what an analyst with an archived
//    RouteViews/RIS file would do — iterates its elems, and runs the
//    ARTEMIS detection service over the replay to find the hijack and
//    measure how long it was visible.
//
// Usage: trace_analysis [trace.mrt]
#include <cstdio>
#include <fstream>

#include "artemis/detection.hpp"
#include "mrt/mrt.hpp"
#include "mrt/stream_reader.hpp"
#include "sim/network.hpp"
#include "topology/generator.hpp"

using namespace artemis;

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "hijack_trace.mrt";
  Rng rng(23);

  // ---- Phase 1: record a trace ------------------------------------------
  topo::GeneratorParams topo_params;
  topo_params.tier2_count = 50;
  topo_params.stub_count = 250;
  auto topo_rng = rng.fork("topology");
  const auto graph = topo::generate_topology(topo_params, topo_rng);
  const auto stubs = graph.ases_in_tier(topo::Tier::kStub);
  const bgp::Asn victim = stubs[0];
  const bgp::Asn attacker = stubs[stubs.size() - 1];
  const auto prefix = net::Prefix::must_parse("10.0.0.0/23");

  sim::Network network(graph, sim::NetworkParams{}, rng.fork("network"));

  // Tap a handful of vantage ASes and append their updates to the trace,
  // MRT-encoded, as a route collector would.
  mrt::ByteWriter trace;
  std::size_t records = 0;
  const auto tier2s = graph.ases_in_tier(topo::Tier::kTier2);
  for (std::size_t i = 0; i < 8 && i < tier2s.size(); ++i) {
    const bgp::Asn vantage = tier2s[i * tier2s.size() / 8];
    network.speaker(vantage).add_change_tap(
        [&trace, &records, &network, vantage](const bgp::UpdateMessage& update) {
          mrt::UpdateRecord record;
          record.peer_asn = vantage;
          record.local_asn = 0;
          record.peer_ip = net::IpAddress::v4(0xC0000200 | static_cast<uint32_t>(records));
          record.timestamp = network.simulator().now();
          record.update = update;
          const auto bytes = mrt::encode_update_record(record);
          trace.bytes(bytes);
          ++records;
        });
  }

  auto& sim = network.simulator();
  sim.at(SimTime::zero(), [&] { network.speaker(victim).originate(prefix); });
  sim.at(SimTime::at_seconds(3600), [&] { network.speaker(attacker).originate(prefix); });
  // The hijack ends after 8 minutes (the attacker is caught or gives up).
  sim.at(SimTime::at_seconds(3600 + 480),
         [&] { network.speaker(attacker).withdraw_origin(prefix); });
  sim.run_all();

  {
    std::ofstream out(trace_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(trace.data().data()),
              static_cast<std::streamsize>(trace.data().size()));
  }
  std::printf("recorded %zu MRT records (%zu bytes) to %s\n", records,
              trace.data().size(), trace_path.c_str());

  // ---- Phase 2: offline analysis ----------------------------------------
  std::printf("\nreplaying the file through the detection service...\n");
  core::Config config;
  core::OwnedPrefix owned;
  owned.prefix = prefix;
  owned.legitimate_origins.insert(victim);
  config.add_owned(std::move(owned));
  core::DetectionService detector(config);

  SimTime first_bogus = SimTime::never();
  SimTime last_bogus = SimTime::zero();
  std::size_t elems = 0;
  for (const auto& elem : mrt::read_elems_from_file(trace_path)) {
    ++elems;
    feeds::Observation obs;
    obs.type = elem.type == mrt::ElemType::kWithdraw
                   ? feeds::ObservationType::kWithdrawal
                   : feeds::ObservationType::kAnnouncement;
    obs.source = "mrt-replay";
    obs.vantage = elem.peer_asn;
    obs.prefix = elem.prefix;
    obs.attrs = elem.attrs;
    obs.event_time = elem.timestamp;
    obs.delivered_at = elem.timestamp;  // offline: no feed lag
    detector.process(obs);
    if (obs.type == feeds::ObservationType::kAnnouncement &&
        elem.attrs.as_path.origin_as() == attacker) {
      first_bogus = std::min(first_bogus, elem.timestamp);
      last_bogus = std::max(last_bogus, elem.timestamp);
    }
  }
  std::printf("replayed %zu elems, %llu matched owned space\n", elems,
              static_cast<unsigned long long>(detector.observations_matched()));

  for (const auto& alert : detector.alerts()) {
    std::printf("\nfound in trace: %s\n", alert.to_string().c_str());
  }
  if (!first_bogus.is_never()) {
    std::printf("\nbogus origin AS%u visible from %s to %s (%s at the vantages)\n",
                attacker, first_bogus.to_string().c_str(), last_bogus.to_string().c_str(),
                (last_bogus - first_bogus).to_string().c_str());
  }
  std::printf("\n(the trace file %s is a valid MRT subset — 'records' above are "
              "BGP4MP_ET/MESSAGE_AS4)\n",
              trace_path.c_str());
  return 0;
}

#include "artemis/alert.hpp"

namespace artemis::core {

std::string_view to_string(HijackType t) {
  switch (t) {
    case HijackType::kExactOrigin: return "exact-origin";
    case HijackType::kSubPrefix: return "sub-prefix";
    case HijackType::kSuperPrefix: return "super-prefix";
    case HijackType::kFakeFirstHop: return "fake-first-hop";
    case HijackType::kRpkiInvalid: return "rpki-invalid";
  }
  return "?";
}

std::string HijackAlert::dedup_key() const {
  std::string key(core::to_string(type));
  key += "|" + observed_prefix.to_string();
  key += "|" + std::to_string(offender);
  // Single-operator keys stay byte-identical to pre-multi-tenant builds;
  // named tenants scope theirs (same partitioning as AlertKey::tenant).
  if (tenant != kDefaultTenantId) key += "|t" + std::to_string(tenant);
  return key;
}

AlertKey HijackAlert::key() const {
  return AlertKey{type, observed_prefix, offender, tenant};
}

std::string HijackAlert::to_string() const {
  std::string out = "ALERT[";
  out += core::to_string(type);
  out += "] ";
  out += observed_prefix.to_string();
  out += " (owned ";
  out += owned_prefix.to_string();
  out += ") offender AS";
  out += std::to_string(offender);
  out += " path [" + observed_path.to_string() + "]";
  out += " via AS" + std::to_string(vantage);
  out += "/" + source;
  out += " at " + detected_at.to_string();
  // The default tenant prints nothing extra, keeping single-operator
  // output (and the golden alert fixtures) byte-identical.
  if (tenant != kDefaultTenantId) {
    out += " tenant=";
    out += tenant_name.empty() ? std::to_string(tenant) : tenant_name;
  }
  return out;
}

}  // namespace artemis::core

// Hijack alerts: the detection service's output.
#pragma once

#include <string>

#include "bgp/types.hpp"
#include "feeds/observation.hpp"
#include "netbase/prefix.hpp"
#include "util/time.hpp"

namespace artemis::core {

/// Classification of the violation (the demo paper detects origin-AS
/// violations; the -0/-1 taxonomy follows the authors' later work and is
/// implemented as an extension — see DESIGN.md "Detection beyond the
/// demo").
enum class HijackType : std::uint8_t {
  kExactOrigin,  ///< our exact prefix announced with a wrong origin AS
  kSubPrefix,    ///< a more-specific of our prefix announced by anyone
  kSuperPrefix,  ///< a covering prefix announced with a wrong origin
  kFakeFirstHop, ///< correct origin but an illegitimate adjacent AS (Type-1)
  kRpkiInvalid,  ///< announcement is RPKI-invalid against the loaded ROAs
};

std::string_view to_string(HijackType t);

struct HijackAlert {
  HijackType type = HijackType::kExactOrigin;
  /// The owned prefix that matched.
  net::Prefix owned_prefix;
  /// The prefix actually observed (differs for sub/super-prefix hijacks).
  net::Prefix observed_prefix;
  /// The offending origin AS (for kFakeFirstHop: the fake neighbor).
  bgp::Asn offender = bgp::kNoAsn;
  bgp::AsPath observed_path;
  /// Vantage point and feed that produced the first matching observation.
  bgp::Asn vantage = bgp::kNoAsn;
  std::string source;
  /// When the vantage saw the offending route.
  SimTime event_time;
  /// When ARTEMIS raised the alert (= delivery time of the observation).
  SimTime detected_at;

  /// Key identifying "the same hijack" across repeated observations.
  std::string dedup_key() const;
  std::string to_string() const;
};

}  // namespace artemis::core

// Hijack alerts: the detection service's output.
#pragma once

#include <string>

#include "artemis/ownership.hpp"
#include "bgp/types.hpp"
#include "feeds/observation.hpp"
#include "netbase/prefix.hpp"
#include "util/time.hpp"

namespace artemis::core {

/// Classification of the violation (the demo paper detects origin-AS
/// violations; the -0/-1 taxonomy follows the authors' later work and is
/// implemented as an extension — see DESIGN.md "Detection beyond the
/// demo").
enum class HijackType : std::uint8_t {
  kExactOrigin,  ///< our exact prefix announced with a wrong origin AS
  kSubPrefix,    ///< a more-specific of our prefix announced by anyone
  kSuperPrefix,  ///< a covering prefix announced with a wrong origin
  kFakeFirstHop, ///< correct origin but an illegitimate adjacent AS (Type-1)
  kRpkiInvalid,  ///< announcement is RPKI-invalid against the loaded ROAs
};

std::string_view to_string(HijackType t);

struct HijackAlert {
  HijackType type = HijackType::kExactOrigin;
  /// The owned prefix that matched.
  net::Prefix owned_prefix;
  /// Whose prefix it is: the owning tenant of the matched entry (the
  /// implicit default tenant for single-operator configs) and its
  /// display name, the alert-routing key of a shared deployment.
  TenantId tenant = kDefaultTenantId;
  std::string tenant_name;
  /// The prefix actually observed (differs for sub/super-prefix hijacks).
  net::Prefix observed_prefix;
  /// The offending origin AS (for kFakeFirstHop: the fake neighbor).
  bgp::Asn offender = bgp::kNoAsn;
  bgp::AsPath observed_path;
  /// Vantage point and feed that produced the first matching observation.
  bgp::Asn vantage = bgp::kNoAsn;
  std::string source;
  /// When the vantage saw the offending route.
  SimTime event_time;
  /// When ARTEMIS raised the alert (= delivery time of the observation).
  SimTime detected_at;

  /// Key identifying "the same hijack" across repeated observations
  /// (display/JSON form; the detection hot path uses key()).
  std::string dedup_key() const;
  /// The allocation-free POD form of dedup_key().
  struct AlertKey key() const;
  std::string to_string() const;
};

/// POD identity of "the same hijack": what dedup_key() encodes, without
/// materializing a string. Hashable, so the detection service can look up
/// an already-seen observation with zero heap allocations. Tenant-scoped:
/// after a reload moves a prefix between tenants, the new owner's first
/// alert is a fresh alert, not a dedup hit on the old owner's record.
struct AlertKey {
  HijackType type = HijackType::kExactOrigin;
  net::Prefix observed_prefix;
  bgp::Asn offender = bgp::kNoAsn;
  TenantId tenant = kDefaultTenantId;

  bool operator==(const AlertKey&) const = default;
};

struct AlertKeyHash {
  std::size_t operator()(const AlertKey& k) const noexcept {
    std::size_t h = std::hash<net::Prefix>{}(k.observed_prefix);
    h ^= static_cast<std::size_t>(k.offender) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    h ^= static_cast<std::size_t>(k.type) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= static_cast<std::size_t>(k.tenant) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return h;
  }
};

}  // namespace artemis::core

#include "artemis/app.hpp"

#include <memory>
#include <mutex>

namespace artemis::core {

ArtemisApp::ArtemisApp(Config config, sim::Network& network, bgp::Asn router_asn,
                       AppOptions options)
    : config_(std::move(config)) {
  controller_ =
      std::make_unique<SimController>(network, router_asn, options.controller_latency);
  pipeline::ShardedDetectorOptions detector_options;
  detector_options.shards = options.detection_shards;
  // Live-sim drivers (HijackExperiment) always pass detection_threaded =
  // false — sim-time causality needs inline dispatch. Replay drivers may
  // thread: the journal stream is the only input and the sim only runs
  // after a flush().
  detector_options.threaded = options.detection_threaded;
  detector_options.wait_policy = options.detection_wait_policy;
  detector_options.pin_workers = options.detection_pin;
  detector_options.detection = options.detection;
  detector_options.metrics = options.metrics;
  detector_ = std::make_unique<pipeline::ShardedDetector>(config_, detector_options);
  hub_.set_metrics(options.metrics);
  mitigation_ =
      std::make_unique<MitigationService>(config_, *controller_, network.simulator());
  monitoring_ = std::make_unique<MonitoringService>(config_);

  if (!options.journal_dir.empty()) {
    // The tap subscribes before the detector so the recorded stream is
    // complete even if a downstream alert handler throws mid-batch.
    journal_ =
        std::make_unique<journal::JournalWriter>(options.journal_dir, options.journal);
    if (options.metrics != nullptr) {
      journal_->set_metrics(telemetry::register_journal(*options.metrics));
    }
    journal_->attach(hub_);
  }
  detector_->attach(hub_);
  monitoring_->attach(hub_);
  if (config_.mitigation().auto_mitigate) {
    // Alerts from every shard feed the one mitigation service (its own
    // dedup keeps a single plan per hijack). Threaded mode: handlers fire
    // concurrently on worker threads, and MitigationService (and the sim
    // event queue it schedules into) is single-threaded — serialize.
    if (options.detection_threaded) {
      detector_->on_alert([m = mitigation_.get(),
                           lock = std::make_shared<std::mutex>()](
                              const HijackAlert& alert) {
        const std::scoped_lock guard(*lock);
        m->handle_alert(alert);
      });
    } else {
      detector_->on_alert([m = mitigation_.get()](const HijackAlert& alert) {
        m->handle_alert(alert);
      });
    }
  }
}

}  // namespace artemis::core

#include "artemis/app.hpp"

namespace artemis::core {

ArtemisApp::ArtemisApp(Config config, sim::Network& network, bgp::Asn router_asn,
                       AppOptions options)
    : config_(std::move(config)) {
  controller_ =
      std::make_unique<SimController>(network, router_asn, options.controller_latency);
  detection_ = std::make_unique<DetectionService>(config_, options.detection);
  mitigation_ =
      std::make_unique<MitigationService>(config_, *controller_, network.simulator());
  monitoring_ = std::make_unique<MonitoringService>(config_);

  detection_->attach(hub_);
  monitoring_->attach(hub_);
  if (config_.mitigation().auto_mitigate) {
    mitigation_->attach(*detection_);
  }
}

}  // namespace artemis::core

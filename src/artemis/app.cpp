#include "artemis/app.hpp"

#include <memory>
#include <mutex>

namespace artemis::core {

ArtemisApp::ArtemisApp(Config config, sim::Network& network, bgp::Asn router_asn,
                       AppOptions options)
    : config_(std::move(config)) {
  controller_ =
      std::make_unique<SimController>(network, router_asn, options.controller_latency);
  pipeline::ShardedDetectorOptions detector_options;
  detector_options.shards = options.detection_shards;
  // Live-sim drivers (HijackExperiment) always pass detection_threaded =
  // false — sim-time causality needs inline dispatch. Replay drivers may
  // thread: the journal stream is the only input and the sim only runs
  // after a flush().
  detector_options.threaded = options.detection_threaded;
  detector_options.wait_policy = options.detection_wait_policy;
  detector_options.pin_workers = options.detection_pin;
  detector_options.detection = options.detection;
  detector_options.metrics = options.metrics;
  // One frozen snapshot feeds all three services — the config trie is
  // built once, not once per service (or per shard).
  auto table = config_.build_table();
  detector_ = std::make_unique<pipeline::ShardedDetector>(table, detector_options);
  hub_.set_metrics(options.metrics);
  mitigation_ =
      std::make_unique<MitigationService>(table, *controller_, network.simulator());
  monitoring_ = std::make_unique<MonitoringService>(std::move(table));

  if (!options.journal_dir.empty()) {
    // The tap subscribes before the detector so the recorded stream is
    // complete even if a downstream alert handler throws mid-batch.
    journal_ =
        std::make_unique<journal::JournalWriter>(options.journal_dir, options.journal);
    if (options.metrics != nullptr) {
      journal_->set_metrics(telemetry::register_journal(*options.metrics));
    }
    journal_->attach(hub_);
  }
  detector_->attach(hub_);
  monitoring_->attach(hub_);
  // Alerts from every shard feed the one mitigation service (its own
  // dedup keeps a single plan per hijack, and it checks the owning
  // tenant's auto_mitigate per alert). Registered unconditionally — not
  // gated on any_auto_mitigate() — because a reload() can switch a
  // tenant's policy on later, and threaded-mode handlers cannot be added
  // after the first submit. Threaded mode: handlers fire concurrently on
  // worker threads, and MitigationService (and the sim event queue it
  // schedules into) is single-threaded — serialize.
  if (options.detection_threaded) {
    detector_->on_alert([m = mitigation_.get(),
                         lock = std::make_shared<std::mutex>()](
                            const HijackAlert& alert) {
      const std::scoped_lock guard(*lock);
      m->handle_alert(alert);
    });
  } else {
    detector_->on_alert([m = mitigation_.get()](const HijackAlert& alert) {
      m->handle_alert(alert);
    });
  }
}

void ArtemisApp::reload(Config config) {
  config_ = std::move(config);
  auto table = config_.build_table();
  // Order matters only for the detector: its reload() drains in-flight
  // batches, so the swap lands between batches in every shard. Alert
  // handlers (mitigation) run inside process_batch — by the time
  // detector_->reload returns, no handler is mid-flight, and the two
  // set_ownership calls below are plain writes from this thread.
  detector_->reload(table);
  mitigation_->set_ownership(table);
  monitoring_->set_ownership(std::move(table));
}

}  // namespace artemis::core

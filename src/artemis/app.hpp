// ArtemisApp: the assembled tool (Fig. 1 of the paper).
//
// Bundles the three services — detection, mitigation, monitoring — around
// one MonitorHub and one Controller, wired exactly as the paper's
// architecture diagram: feeds flow into the hub; detection consumes the
// hub and triggers mitigation; monitoring consumes the same hub to track
// the mitigation's effect.
//
// Detection runs behind the sharded pipeline (src/pipeline/): the hub's
// batch stream is hash-partitioned across `detection_shards` detection
// shards. Inside the simulator the pipeline always dispatches inline
// (single-threaded, deterministic, preserves sim-time causality for the
// mitigation trigger); detection_shards == 1 — the default — is
// behaviorally identical to the pre-pipeline wiring.
#pragma once

#include <memory>

#include "artemis/config.hpp"
#include "artemis/controller.hpp"
#include "artemis/detection.hpp"
#include "artemis/mitigation.hpp"
#include "artemis/monitoring.hpp"
#include "feeds/monitor_hub.hpp"
#include "journal/writer.hpp"
#include "pipeline/sharded_detector.hpp"
#include "sim/network.hpp"
#include "telemetry/metrics.hpp"

namespace artemis::core {

struct AppOptions {
  DetectionOptions detection;
  /// Detection shards in the observation pipeline (>1 exercises the
  /// partitioned dedup maps deterministically).
  std::size_t detection_shards = 1;
  /// One worker thread per detection shard (batch-granular ring handoff).
  /// Only meaningful for replay-style drivers: the live simulator forces
  /// inline dispatch regardless (sim-time causality — alert handlers
  /// schedule sim events and must run on the sim thread). merged_alerts()
  /// is bit-identical either way; callers must flush() before reading.
  bool detection_threaded = false;
  /// Worker/producer wait behavior when threaded (busy_poll or futex).
  pipeline::WaitPolicy detection_wait_policy = pipeline::WaitPolicy::kBusyPoll;
  /// Pin shard workers to consecutive CPUs (best effort).
  bool detection_pin = false;
  /// Controller command latency (paper: ~15 s to announce through ONOS).
  SimDuration controller_latency = SimDuration::seconds(15);
  /// When non-empty, every observation the hub delivers is also recorded
  /// to an on-disk journal in this directory (src/journal/); replaying it
  /// into a fresh app reproduces the detection state bit-identically.
  std::string journal_dir;
  journal::JournalWriterOptions journal;
  /// When set, the app wires telemetry through every stage it owns: the
  /// hub (per-source counters), the journal tap, and the sharded
  /// detector (per-shard cells, detection-delay histogram). Observation-
  /// only — alerts are bit-identical with or without it. Must outlive
  /// the app.
  telemetry::MetricsRegistry* metrics = nullptr;
};

class ArtemisApp {
 public:
  /// `router_asn` is the operator's AS whose routers the controller
  /// commands (the paper's ASN-1).
  ArtemisApp(Config config, sim::Network& network, bgp::Asn router_asn,
             AppOptions options = {});

  ArtemisApp(const ArtemisApp&) = delete;
  ArtemisApp& operator=(const ArtemisApp&) = delete;

  const Config& config() const { return config_; }

  /// Incremental reload: freezes `config` into a new ownership snapshot
  /// and swaps every service onto it — detector shards at a drained batch
  /// boundary (ShardedDetector::reload), mitigation and monitoring
  /// immediately after. No restart, no re-replay: alert, dedup and
  /// mitigation state survive; observations delivered after reload() are
  /// classified and policied under the new config. Call from the
  /// submission (producer) thread.
  void reload(Config config);

  /// The ownership snapshot all services currently share.
  const OwnershipTable& ownership() const { return detector_->ownership(); }

  feeds::MonitorHub& hub() { return hub_; }
  /// The first detection shard — the whole service when detection_shards
  /// is 1 (the default). With more shards this view is PARTIAL: register
  /// handlers and read alerts/stats via sharded_detection() instead (the
  /// examples do), or they silently miss hijacks owned by other shards.
  DetectionService& detection() { return detector_->shard(0); }
  pipeline::ShardedDetector& sharded_detection() { return *detector_; }
  const pipeline::ShardedDetector& sharded_detection() const { return *detector_; }
  MitigationService& mitigation() { return *mitigation_; }
  MonitoringService& monitoring() { return *monitoring_; }
  SimController& controller() { return *controller_; }
  /// The observation journal recorder; nullptr unless
  /// AppOptions::journal_dir was set.
  journal::JournalWriter* journal_writer() { return journal_.get(); }

 private:
  Config config_;
  feeds::MonitorHub hub_;
  std::unique_ptr<SimController> controller_;
  std::unique_ptr<journal::JournalWriter> journal_;
  std::unique_ptr<pipeline::ShardedDetector> detector_;
  std::unique_ptr<MitigationService> mitigation_;
  std::unique_ptr<MonitoringService> monitoring_;
};

}  // namespace artemis::core

// ArtemisApp: the assembled tool (Fig. 1 of the paper).
//
// Bundles the three services — detection, mitigation, monitoring — around
// one MonitorHub and one Controller, wired exactly as the paper's
// architecture diagram: feeds flow into the hub; detection consumes the
// hub and triggers mitigation; monitoring consumes the same hub to track
// the mitigation's effect.
#pragma once

#include <memory>

#include "artemis/config.hpp"
#include "artemis/controller.hpp"
#include "artemis/detection.hpp"
#include "artemis/mitigation.hpp"
#include "artemis/monitoring.hpp"
#include "feeds/monitor_hub.hpp"
#include "sim/network.hpp"

namespace artemis::core {

struct AppOptions {
  DetectionOptions detection;
  /// Controller command latency (paper: ~15 s to announce through ONOS).
  SimDuration controller_latency = SimDuration::seconds(15);
};

class ArtemisApp {
 public:
  /// `router_asn` is the operator's AS whose routers the controller
  /// commands (the paper's ASN-1).
  ArtemisApp(Config config, sim::Network& network, bgp::Asn router_asn,
             AppOptions options = {});

  ArtemisApp(const ArtemisApp&) = delete;
  ArtemisApp& operator=(const ArtemisApp&) = delete;

  const Config& config() const { return config_; }
  feeds::MonitorHub& hub() { return hub_; }
  DetectionService& detection() { return *detection_; }
  MitigationService& mitigation() { return *mitigation_; }
  MonitoringService& monitoring() { return *monitoring_; }
  SimController& controller() { return *controller_; }

 private:
  Config config_;
  feeds::MonitorHub hub_;
  std::unique_ptr<SimController> controller_;
  std::unique_ptr<DetectionService> detection_;
  std::unique_ptr<MitigationService> mitigation_;
  std::unique_ptr<MonitoringService> monitoring_;
};

}  // namespace artemis::core

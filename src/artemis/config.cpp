#include "artemis/config.hpp"

#include <stdexcept>

namespace artemis::core {

void Config::add_owned(OwnedPrefix owned) {
  if (owned.legitimate_origins.empty()) {
    throw std::invalid_argument("owned prefix needs at least one legitimate origin");
  }
  index_.insert(owned.prefix, owned_.size());
  owned_.push_back(std::move(owned));
}

const OwnedPrefix* Config::match(const net::Prefix& p) const {
  // Most-specific owned prefix covering p...
  if (const auto hit = index_.lookup_covering(p)) return &owned_[*hit->second];
  // ...otherwise any owned prefix covered by p (super-prefix hijack).
  const OwnedPrefix* found = nullptr;
  index_.visit_covered(p, [&](const net::Prefix&, const std::size_t& idx) {
    if (found == nullptr) found = &owned_[idx];
  });
  return found;
}

Config Config::from_json(const json::Value& doc) {
  Config config;
  for (const auto& entry : doc.at("prefixes").as_array()) {
    OwnedPrefix owned;
    const auto prefix_text = entry.at("prefix").as_string();
    const auto prefix = net::Prefix::parse(prefix_text);
    if (!prefix) throw std::invalid_argument("bad prefix: " + prefix_text);
    owned.prefix = *prefix;
    for (const auto& origin : entry.at("origins").as_array()) {
      const auto asn = origin.as_int();
      if (asn <= 0 || asn > 0xFFFFFFFFLL) throw std::invalid_argument("bad origin ASN");
      owned.legitimate_origins.insert(static_cast<bgp::Asn>(asn));
    }
    if (const auto* neighbors = entry.find("neighbors")) {
      for (const auto& neighbor : neighbors->as_array()) {
        const auto asn = neighbor.as_int();
        if (asn <= 0 || asn > 0xFFFFFFFFLL) {
          throw std::invalid_argument("bad neighbor ASN");
        }
        owned.legitimate_neighbors.insert(static_cast<bgp::Asn>(asn));
      }
    }
    config.add_owned(std::move(owned));
  }
  if (const auto* mitigation = doc.find("mitigation")) {
    auto& policy = config.mitigation();
    policy.deaggregation_floor =
        static_cast<int>(mitigation->get_int("deaggregation_floor", 24));
    if (policy.deaggregation_floor < 1 || policy.deaggregation_floor > 32) {
      throw std::invalid_argument("deaggregation_floor out of range");
    }
    policy.reannounce_exact = mitigation->get_bool("reannounce_exact", true);
    policy.auto_mitigate = mitigation->get_bool("auto_mitigate", true);
  }
  return config;
}

Config Config::from_json_text(std::string_view text) {
  return from_json(json::parse(text));
}

json::Value Config::to_json() const {
  json::Array prefixes;
  for (const auto& owned : owned_) {
    json::Object entry;
    entry["prefix"] = json::Value(owned.prefix.to_string());
    json::Array origins;
    for (const auto asn : owned.legitimate_origins) {
      origins.emplace_back(static_cast<std::int64_t>(asn));
    }
    entry["origins"] = json::Value(std::move(origins));
    if (!owned.legitimate_neighbors.empty()) {
      json::Array neighbors;
      for (const auto asn : owned.legitimate_neighbors) {
        neighbors.emplace_back(static_cast<std::int64_t>(asn));
      }
      entry["neighbors"] = json::Value(std::move(neighbors));
    }
    prefixes.emplace_back(std::move(entry));
  }
  json::Object mitigation;
  mitigation["deaggregation_floor"] =
      json::Value(static_cast<std::int64_t>(mitigation_.deaggregation_floor));
  mitigation["reannounce_exact"] = json::Value(mitigation_.reannounce_exact);
  mitigation["auto_mitigate"] = json::Value(mitigation_.auto_mitigate);
  json::Object doc;
  doc["prefixes"] = json::Value(std::move(prefixes));
  doc["mitigation"] = json::Value(std::move(mitigation));
  return json::Value(std::move(doc));
}

}  // namespace artemis::core

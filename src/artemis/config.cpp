#include "artemis/config.hpp"

#include <stdexcept>

namespace artemis::core {

namespace {

bgp::Asn parse_asn(const json::Value& value, const char* what) {
  const auto asn = value.as_int();
  if (asn <= 0 || asn > 0xFFFFFFFFLL) {
    throw std::invalid_argument(std::string("bad ") + what + " ASN");
  }
  return static_cast<bgp::Asn>(asn);
}

/// One {"prefix","origins","neighbors"} entry — shared by both schemas.
OwnedPrefix parse_owned_entry(const json::Value& entry) {
  OwnedPrefix owned;
  const auto prefix_text = entry.at("prefix").as_string();
  const auto prefix = net::Prefix::parse(prefix_text);
  if (!prefix) throw std::invalid_argument("bad prefix: " + prefix_text);
  owned.prefix = *prefix;
  for (const auto& origin : entry.at("origins").as_array()) {
    owned.legitimate_origins.insert(parse_asn(origin, "origin"));
  }
  if (const auto* neighbors = entry.find("neighbors")) {
    for (const auto& neighbor : neighbors->as_array()) {
      owned.legitimate_neighbors.insert(parse_asn(neighbor, "neighbor"));
    }
  }
  return owned;
}

MitigationPolicy parse_mitigation(const json::Value& mitigation) {
  MitigationPolicy policy;
  policy.deaggregation_floor =
      static_cast<int>(mitigation.get_int("deaggregation_floor", 24));
  if (policy.deaggregation_floor < 1 || policy.deaggregation_floor > 32) {
    throw std::invalid_argument("deaggregation_floor out of range");
  }
  policy.reannounce_exact = mitigation.get_bool("reannounce_exact", true);
  policy.auto_mitigate = mitigation.get_bool("auto_mitigate", true);
  return policy;
}

json::Value mitigation_to_json(const MitigationPolicy& policy) {
  json::Object mitigation;
  mitigation["deaggregation_floor"] =
      json::Value(static_cast<std::int64_t>(policy.deaggregation_floor));
  mitigation["reannounce_exact"] = json::Value(policy.reannounce_exact);
  mitigation["auto_mitigate"] = json::Value(policy.auto_mitigate);
  return json::Value(std::move(mitigation));
}

json::Value owned_entry_to_json(const OwnedPrefix& owned) {
  json::Object entry;
  entry["prefix"] = json::Value(owned.prefix.to_string());
  json::Array origins;
  for (const auto asn : owned.legitimate_origins) {
    origins.emplace_back(static_cast<std::int64_t>(asn));
  }
  entry["origins"] = json::Value(std::move(origins));
  if (!owned.legitimate_neighbors.empty()) {
    json::Array neighbors;
    for (const auto asn : owned.legitimate_neighbors) {
      neighbors.emplace_back(static_cast<std::int64_t>(asn));
    }
    entry["neighbors"] = json::Value(std::move(neighbors));
  }
  return json::Value(std::move(entry));
}

}  // namespace

TenantId Config::add_tenant(std::string name, MitigationPolicy mitigation) {
  if (name.empty()) throw std::invalid_argument("tenant name must not be empty");
  for (const auto& tenant : tenants_) {
    if (tenant.name == name) {
      throw std::invalid_argument("duplicate tenant name: " + name);
    }
  }
  const auto id = static_cast<TenantId>(tenants_.size());
  tenants_.push_back(TenantInfo{id, std::move(name), mitigation});
  return id;
}

TenantId Config::ensure_default_tenant() {
  if (tenants_.empty()) return add_tenant("default");
  return kDefaultTenantId;
}

void Config::add_owned(TenantId tenant, OwnedPrefix owned) {
  if (tenant >= tenants_.size()) {
    throw std::invalid_argument("unknown tenant id");
  }
  if (owned.legitimate_origins.empty()) {
    throw std::invalid_argument("owned prefix needs at least one legitimate origin");
  }
  owned.tenant = tenant;
  owned_.push_back(std::move(owned));
}

void Config::add_owned(OwnedPrefix owned) {
  add_owned(ensure_default_tenant(), std::move(owned));
}

MitigationPolicy& Config::mitigation() {
  return tenants_[ensure_default_tenant()].mitigation;
}

const MitigationPolicy& Config::mitigation() const {
  static const MitigationPolicy kDefault{};
  return tenants_.empty() ? kDefault : tenants_.front().mitigation;
}

std::shared_ptr<const OwnershipTable> Config::build_table() const {
  std::vector<TenantInfo> tenants = tenants_;
  if (tenants.empty()) {
    // Even an empty config snapshots with the default tenant, so tenant
    // id 0 always resolves to a policy.
    tenants.push_back(TenantInfo{kDefaultTenantId, "default", MitigationPolicy{}});
  }
  return std::make_shared<const OwnershipTable>(owned_, std::move(tenants));
}

Config Config::from_json(const json::Value& doc) {
  Config config;
  const auto* tenants = doc.find("tenants");
  const std::int64_t version = doc.get_int("schema_version", tenants ? 2 : 1);
  if (tenants == nullptr) {
    // v1: single-operator shape, implicit default tenant.
    if (version != 1) {
      throw std::invalid_argument("schema_version " + std::to_string(version) +
                                  " requires a \"tenants\" array");
    }
    if (const auto* mitigation = doc.find("mitigation")) {
      config.mitigation() = parse_mitigation(*mitigation);
    }
    for (const auto& entry : doc.at("prefixes").as_array()) {
      config.add_owned(parse_owned_entry(entry));
    }
    return config;
  }
  if (version != 2) {
    throw std::invalid_argument("\"tenants\" requires schema_version 2");
  }
  for (const auto& tenant_doc : tenants->as_array()) {
    MitigationPolicy policy;
    if (const auto* mitigation = tenant_doc.find("mitigation")) {
      policy = parse_mitigation(*mitigation);
    }
    const TenantId id = config.add_tenant(tenant_doc.at("name").as_string(), policy);
    for (const auto& entry : tenant_doc.at("prefixes").as_array()) {
      config.add_owned(id, parse_owned_entry(entry));
    }
  }
  return config;
}

Config Config::from_json_text(std::string_view text) {
  return from_json(json::parse(text));
}

json::Value Config::to_json() const {
  const bool v1 = tenants_.size() <= 1 &&
                  (tenants_.empty() || tenants_.front().name == "default");
  if (v1) {
    json::Array prefixes;
    for (const auto& owned : owned_) prefixes.push_back(owned_entry_to_json(owned));
    json::Object doc;
    doc["prefixes"] = json::Value(std::move(prefixes));
    doc["mitigation"] = mitigation_to_json(mitigation());
    return json::Value(std::move(doc));
  }
  json::Array tenants;
  for (const auto& tenant : tenants_) {
    json::Object tenant_doc;
    tenant_doc["name"] = json::Value(tenant.name);
    json::Array prefixes;
    for (const auto& owned : owned_) {
      if (owned.tenant == tenant.id) prefixes.push_back(owned_entry_to_json(owned));
    }
    tenant_doc["prefixes"] = json::Value(std::move(prefixes));
    tenant_doc["mitigation"] = mitigation_to_json(tenant.mitigation);
    tenants.emplace_back(std::move(tenant_doc));
  }
  json::Object doc;
  doc["schema_version"] = json::Value(static_cast<std::int64_t>(2));
  doc["tenants"] = json::Value(std::move(tenants));
  return json::Value(std::move(doc));
}

}  // namespace artemis::core

// ARTEMIS ownership configuration: the mutable builder/parser side.
//
// Operators (tenants) declare what they own: prefixes, the origin ASNs
// entitled to announce them, and (optionally) the legitimate upstream
// neighbors. Config accumulates those declarations and parses/serializes
// the JSON deployment artifact; the detection path never reads a Config
// directly — it reads the immutable OwnershipTable snapshot that
// build_table() freezes out of one (see ownership.hpp for the
// publication story).
//
// Two JSON schemas load interchangeably (README "Configuration"):
//   * v1 (single operator): top-level {"prefixes":[...],"mitigation":{}}
//     — loads as the implicit default tenant (id 0, name "default"),
//     byte-compatible round trip through to_json().
//   * v2 (multi-tenant):   {"schema_version":2,"tenants":[{"name":...,
//     "prefixes":[...],"mitigation":{...}},...]}
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "artemis/ownership.hpp"
#include "bgp/types.hpp"
#include "json/json.hpp"
#include "netbase/prefix.hpp"
#include "util/time.hpp"

namespace artemis::core {

class Config {
 public:
  Config() = default;

  /// Registers a tenant and returns its id (dense, in registration
  /// order). Throws std::invalid_argument on an empty or duplicate name.
  TenantId add_tenant(std::string name, MitigationPolicy mitigation = {});

  /// Adds an owned prefix under `tenant` (which must exist). Throws when
  /// the entry lists no legitimate origins.
  void add_owned(TenantId tenant, OwnedPrefix owned);

  /// v1-compat form: adds under the implicit default tenant (id 0,
  /// created on first use). `owned.tenant` is overwritten.
  void add_owned(OwnedPrefix owned);

  /// Every owned prefix across every tenant, flat, in insertion order,
  /// tenant-tagged (OwnedPrefix::tenant).
  const std::vector<OwnedPrefix>& owned() const { return owned_; }
  bool owns_nothing() const { return owned_.empty(); }

  /// Registered tenants, index == id. Empty until the first add_tenant /
  /// add_owned / mitigation() call.
  const std::vector<TenantInfo>& tenants() const { return tenants_; }

  /// v1-compat accessors: the default (first) tenant's mitigation
  /// policy, creating the default tenant when none exists yet.
  MitigationPolicy& mitigation();
  const MitigationPolicy& mitigation() const;

  /// Freezes the current state into an immutable snapshot (the trie is
  /// built here). Cold path: reload cost, not per-batch cost.
  std::shared_ptr<const OwnershipTable> build_table() const;

  /// Loads either schema (v2 when a "tenants" array is present, v1
  /// otherwise). Throws json::JsonError / std::invalid_argument on
  /// malformed input.
  static Config from_json(const json::Value& doc);
  static Config from_json_text(std::string_view text);

  /// Serializes: the v1 shape when the config holds only the implicit
  /// default tenant (byte-compatible with pre-multi-tenant builds, the
  /// golden-fixture guarantee), the v2 "tenants" shape otherwise.
  json::Value to_json() const;

 private:
  /// Ensures tenant 0 exists for the v1-compat entry points.
  TenantId ensure_default_tenant();

  std::vector<OwnedPrefix> owned_;   ///< flat, tenant-tagged
  std::vector<TenantInfo> tenants_;  ///< index == id
};

}  // namespace artemis::core

// ARTEMIS operator configuration.
//
// The operator declares what they own: prefixes, the origin ASNs entitled
// to announce them, and (optionally) the legitimate upstream neighbors —
// the ground truth the detection service checks observations against.
// Loadable from JSON (the deployment artifact an operator would edit).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "bgp/types.hpp"
#include "json/json.hpp"
#include "netbase/prefix.hpp"
#include "netbase/prefix_trie.hpp"
#include "util/time.hpp"

namespace artemis::core {

/// One owned prefix and its legitimacy ground truth.
struct OwnedPrefix {
  net::Prefix prefix;
  /// ASNs allowed to originate this prefix (usually one; anycast/multi-
  /// origin setups list several).
  std::set<bgp::Asn> legitimate_origins;
  /// Direct upstream/peer ASNs expected adjacent to the origin in paths.
  /// Empty disables the Type-1 (fake first-hop) check for this prefix.
  std::set<bgp::Asn> legitimate_neighbors;
};

/// Mitigation policy knobs (paper §2: de-aggregation with the /24 caveat).
struct MitigationPolicy {
  /// Announce sub-prefixes no longer than this (the Internet's filtering
  /// boundary). A hijacked prefix is split into its two halves as long as
  /// they are <= this length.
  int deaggregation_floor = 24;
  /// Also re-announce the exact hijacked prefix (helps when the hijack is
  /// losing the tie-break anyway; harmless otherwise).
  bool reannounce_exact = true;
  /// Automatic mitigation on alert; false = detect-only (alert mode).
  bool auto_mitigate = true;
  /// Outsourcing (extension, following the authors' later work): when
  /// helper controllers are registered with the MitigationService, have
  /// the helper organizations announce the mitigation prefixes too (MOAS)
  /// and tunnel the traffic back. kWhenInfeasible only activates helpers
  /// for victims de-aggregation cannot defend (/24s).
  enum class Outsource : std::uint8_t { kNever, kWhenInfeasible, kAlways };
  Outsource outsource = Outsource::kWhenInfeasible;
};

class Config {
 public:
  Config() = default;

  void add_owned(OwnedPrefix owned);

  const std::vector<OwnedPrefix>& owned() const { return owned_; }
  bool owns_nothing() const { return owned_.empty(); }

  MitigationPolicy& mitigation() { return mitigation_; }
  const MitigationPolicy& mitigation() const { return mitigation_; }

  /// The most specific owned prefix overlapping `p`, or nullptr. Covers
  /// both directions: `p` inside an owned prefix (classic / sub-prefix
  /// hijack) and `p` strictly covering an owned prefix (super-prefix
  /// announcement that still captures our traffic at some VPs).
  const OwnedPrefix* match(const net::Prefix& p) const;

  /// Loads from the JSON schema documented in README.md:
  /// {"prefixes":[{"prefix":"10.0.0.0/23","origins":[65001],
  ///               "neighbors":[174,3356]}],
  ///  "mitigation":{"deaggregation_floor":24,"reannounce_exact":true,
  ///                "auto_mitigate":true}}
  /// Throws json::JsonError / std::invalid_argument on malformed input.
  static Config from_json(const json::Value& doc);
  static Config from_json_text(std::string_view text);

  json::Value to_json() const;

 private:
  std::vector<OwnedPrefix> owned_;
  net::PrefixTrie<std::size_t> index_;  ///< prefix -> index into owned_
  MitigationPolicy mitigation_;
};

}  // namespace artemis::core

#include "artemis/controller.hpp"

namespace artemis::core {

SimController::SimController(sim::Network& network, bgp::Asn router_asn,
                             SimDuration command_latency)
    : network_(network), router_asn_(router_asn), command_latency_(command_latency) {}

void SimController::announce(const net::Prefix& prefix) {
  auto& sim = network_.simulator();
  ControllerCommand cmd;
  cmd.kind = ControllerCommand::Kind::kAnnounce;
  cmd.prefix = prefix;
  cmd.issued_at = sim.now();
  cmd.applied_at = sim.now() + command_latency_;
  log_.push_back(cmd);
  auto& speaker = network_.speaker(router_asn_);
  sim.after(command_latency_, [&speaker, prefix] { speaker.originate(prefix); });
}

void SimController::withdraw(const net::Prefix& prefix) {
  auto& sim = network_.simulator();
  ControllerCommand cmd;
  cmd.kind = ControllerCommand::Kind::kWithdraw;
  cmd.prefix = prefix;
  cmd.issued_at = sim.now();
  cmd.applied_at = sim.now() + command_latency_;
  log_.push_back(cmd);
  auto& speaker = network_.speaker(router_asn_);
  sim.after(command_latency_, [&speaker, prefix] { speaker.withdraw_origin(prefix); });
}

}  // namespace artemis::core

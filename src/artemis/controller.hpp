// The BGP controller abstraction (paper §2).
//
// ARTEMIS assumes permission to send BGP advertisements from the
// network's routers, obtained by running as an application module over an
// SDN controller that speaks BGP (ONOS / OpenDayLight). Controller is
// that interface; SimController implements it against the simulated
// network with a configurable command latency — the ~15 s the paper
// measures between detection and the de-aggregated announcements leaving
// the routers.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/prefix.hpp"
#include "sim/network.hpp"
#include "util/time.hpp"

namespace artemis::core {

class Controller {
 public:
  virtual ~Controller() = default;

  /// Announce `prefix` from the operator's border routers.
  virtual void announce(const net::Prefix& prefix) = 0;

  /// Withdraw a previously announced prefix.
  virtual void withdraw(const net::Prefix& prefix) = 0;
};

/// A command as logged by SimController (for tests and reports).
struct ControllerCommand {
  enum class Kind : std::uint8_t { kAnnounce, kWithdraw } kind = Kind::kAnnounce;
  net::Prefix prefix;
  SimTime issued_at;   ///< when ARTEMIS issued the command
  SimTime applied_at;  ///< when the router emitted the announcement
};

class SimController final : public Controller {
 public:
  /// Commands are applied at the speaker of `router_asn` after
  /// `command_latency` (controller RPC + router config push + session
  /// processing).
  SimController(sim::Network& network, bgp::Asn router_asn,
                SimDuration command_latency = SimDuration::seconds(15));

  void announce(const net::Prefix& prefix) override;
  void withdraw(const net::Prefix& prefix) override;

  bgp::Asn router_asn() const { return router_asn_; }
  const std::vector<ControllerCommand>& log() const { return log_; }

 private:
  sim::Network& network_;
  bgp::Asn router_asn_;
  SimDuration command_latency_;
  std::vector<ControllerCommand> log_;
};

}  // namespace artemis::core

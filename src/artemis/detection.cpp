#include "artemis/detection.hpp"

namespace artemis::core {

DetectionService::DetectionService(const Config& config, DetectionOptions options)
    : config_(config), options_(options) {}

void DetectionService::attach(feeds::MonitorHub& hub) {
  hub.subscribe([this](const feeds::Observation& obs) { process(obs); });
}

void DetectionService::on_alert(AlertHandler handler) {
  handlers_.push_back(std::move(handler));
}

std::optional<HijackAlert> DetectionService::classify(
    const feeds::Observation& obs) const {
  if (obs.type == feeds::ObservationType::kWithdrawal) return std::nullopt;
  const OwnedPrefix* owned = config_.match(obs.prefix);
  if (owned == nullptr) {
    // Outside owned space: only the (optional) RPKI signal applies.
    if (options_.roa_table != nullptr &&
        options_.roa_table->validate(obs.prefix, obs.origin_as()) ==
            rpki::Validity::kInvalid) {
      HijackAlert alert;
      alert.type = HijackType::kRpkiInvalid;
      alert.owned_prefix = obs.prefix;  // best effort: no owned match
      alert.observed_prefix = obs.prefix;
      alert.offender = obs.origin_as();
      alert.observed_path = obs.attrs.as_path;
      alert.vantage = obs.vantage;
      alert.source = obs.source;
      alert.event_time = obs.event_time;
      alert.detected_at = obs.delivered_at;
      return alert;
    }
    return std::nullopt;
  }

  const bgp::Asn origin = obs.origin_as();
  const bool origin_ok = owned->legitimate_origins.contains(origin);

  HijackAlert alert;
  alert.owned_prefix = owned->prefix;
  alert.observed_prefix = obs.prefix;
  alert.observed_path = obs.attrs.as_path;
  alert.vantage = obs.vantage;
  alert.source = obs.source;
  alert.event_time = obs.event_time;
  alert.detected_at = obs.delivered_at;

  if (obs.prefix == owned->prefix) {
    if (!origin_ok) {
      alert.type = HijackType::kExactOrigin;
      alert.offender = origin;
      return alert;
    }
  } else if (owned->prefix.covers(obs.prefix)) {
    // A more-specific announcement inside our space. Even with our origin
    // it is suspicious (an attacker can forge the origin), but routes we
    // announced ourselves (mitigation sub-prefixes!) must not self-alert:
    // those carry a legitimate origin.
    if (options_.detect_subprefix && !origin_ok) {
      alert.type = HijackType::kSubPrefix;
      alert.offender = origin;
      return alert;
    }
  } else if (obs.prefix.covers(owned->prefix)) {
    if (options_.detect_superprefix && !origin_ok) {
      alert.type = HijackType::kSuperPrefix;
      alert.offender = origin;
      return alert;
    }
  }

  // Origin is fine (or checks disabled); optionally vet the first hop.
  if (options_.detect_fake_first_hop && origin_ok &&
      !owned->legitimate_neighbors.empty()) {
    const bgp::Asn adjacent = obs.attrs.as_path.origin_neighbor();
    if (adjacent != bgp::kNoAsn && !owned->legitimate_neighbors.contains(adjacent) &&
        !owned->legitimate_origins.contains(adjacent)) {
      alert.type = HijackType::kFakeFirstHop;
      alert.offender = adjacent;
      return alert;
    }
  }
  return std::nullopt;
}

void DetectionService::process(const feeds::Observation& obs) {
  ++processed_;
  auto alert = classify(obs);
  if (!alert) return;
  ++matched_;

  const std::string key = alert->dedup_key();
  auto& record = records_[key];
  ++record.observations;
  record.first_seen_by_source.try_emplace(obs.source, obs.delivered_at);

  if (record.observations == 1) {
    alerts_.push_back(*alert);
    for (const auto& handler : handlers_) handler(*alert);
  }
}

const std::map<std::string, SimTime>* DetectionService::first_seen_by_source(
    const std::string& dedup_key) const {
  const auto it = records_.find(dedup_key);
  return it == records_.end() ? nullptr : &it->second.first_seen_by_source;
}

std::uint64_t DetectionService::observation_count(const std::string& dedup_key) const {
  const auto it = records_.find(dedup_key);
  return it == records_.end() ? 0 : it->second.observations;
}

}  // namespace artemis::core

#include "artemis/detection.hpp"

namespace artemis::core {

DetectionService::DetectionService(std::shared_ptr<const OwnershipTable> table,
                                   DetectionOptions options)
    : table_(std::move(table)), options_(options) {}

DetectionService::DetectionService(const Config& config, DetectionOptions options)
    : DetectionService(config.build_table(), options) {}

void DetectionService::set_ownership(std::shared_ptr<const OwnershipTable> table) {
  table_ = std::move(table);
  // The prescreen SoA cache self-invalidates (it keys on the table
  // version); the per-tenant cells need explicit re-registration for
  // tenants the new snapshot introduced.
  if (tenant_registry_ != nullptr) set_tenant_metrics(tenant_registry_);
}

void DetectionService::set_tenant_metrics(telemetry::MetricsRegistry* registry) {
  tenant_registry_ = registry;
  tenant_alert_cells_.clear();
  if (registry == nullptr) return;
  for (const auto& tenant : table_->tenants()) {
    std::string labels = "tenant=\"";
    for (const char c : tenant.name) {
      if (c == '"' || c == '\\') labels += '\\';
      labels += c;
    }
    labels += '"';
    tenant_alert_cells_.push_back(
        registry->counter("artemis_tenant_alerts_total",
                          "Fresh hijack alerts emitted, per tenant", labels));
  }
}

void DetectionService::attach(feeds::MonitorHub& hub) {
  hub.subscribe_batch(
      [this](std::span<const feeds::Observation> batch) { process_batch(batch); });
}

void DetectionService::on_alert(AlertHandler handler) {
  handlers_.push_back(std::move(handler));
}

std::optional<DetectionService::Classification> DetectionService::classify(
    const feeds::Observation& obs) const {
  if (obs.type == feeds::ObservationType::kWithdrawal) return std::nullopt;
  const OwnershipRef ref = table_->match(obs.prefix);
  if (!ref) {
    // Outside owned space: only the (optional) RPKI signal applies.
    if (options_.roa_table != nullptr &&
        options_.roa_table->validate(obs.prefix, obs.origin_as()) ==
            rpki::Validity::kInvalid) {
      // Best effort: no owned match, report the observed prefix as owned
      // under the default tenant (origin validation is a shared signal).
      return Classification{HijackType::kRpkiInvalid, obs.prefix, obs.origin_as(),
                            kDefaultTenantId};
    }
    return std::nullopt;
  }
  const OwnedPrefix& owned = table_->entry(ref);

  const bgp::Asn origin = obs.origin_as();
  const bool origin_ok = owned.legitimate_origins.contains(origin);

  if (obs.prefix == owned.prefix) {
    if (!origin_ok) {
      return Classification{HijackType::kExactOrigin, owned.prefix, origin,
                            ref.tenant};
    }
  } else if (owned.prefix.covers(obs.prefix)) {
    // A more-specific announcement inside our space. Even with our origin
    // it is suspicious (an attacker can forge the origin), but routes we
    // announced ourselves (mitigation sub-prefixes!) must not self-alert:
    // those carry a legitimate origin.
    if (options_.detect_subprefix && !origin_ok) {
      return Classification{HijackType::kSubPrefix, owned.prefix, origin,
                            ref.tenant};
    }
  } else if (obs.prefix.covers(owned.prefix)) {
    if (options_.detect_superprefix && !origin_ok) {
      return Classification{HijackType::kSuperPrefix, owned.prefix, origin,
                            ref.tenant};
    }
  }

  // Origin is fine (or checks disabled); optionally vet the first hop.
  if (options_.detect_fake_first_hop && origin_ok &&
      !owned.legitimate_neighbors.empty()) {
    const bgp::Asn adjacent = obs.attrs.as_path.origin_neighbor();
    if (adjacent != bgp::kNoAsn && !owned.legitimate_neighbors.contains(adjacent) &&
        !owned.legitimate_origins.contains(adjacent)) {
      return Classification{HijackType::kFakeFirstHop, owned.prefix, adjacent,
                            ref.tenant};
    }
  }
  return std::nullopt;
}

namespace {
// Prescreen applicability bounds. Below kMinBatch the SoA extraction pass
// costs more than the trie lookups it saves; above kMaxOwned the
// O(owned × batch) linear sweep loses to the O(log) trie. Both limits are
// heuristics tuned on bench_pipeline, not correctness lines — the scalar
// path handles everything.
constexpr std::size_t kPrescreenMinBatch = 16;
constexpr std::size_t kPrescreenMaxOwned = 16;
// Family byte that matches nothing (families are 4 or 6): marks
// withdrawals, which classify() drops unconditionally.
constexpr std::uint8_t kFamNever = 0xFF;
}  // namespace

bool DetectionService::prescreen(std::span<const feeds::Observation> batch) {
  if (batch.size() < kPrescreenMinBatch) return false;
  if (options_.roa_table != nullptr) return false;  // non-owned is classifiable
  if (table_->owned().size() > kPrescreenMaxOwned) return false;

  // Snapshot the owned set in SoA word form (rebuilt only when the
  // ownership snapshot itself changed — tables are immutable, so the
  // version compare is exact, including reloads that keep the count).
  if (table_->version() != owned_snapshot_version_) {
    owned_snapshot_version_ = table_->version();
    owned_hi_.clear();
    owned_lo_.clear();
    owned_len_.clear();
    owned_fam_.clear();
    for (const OwnedPrefix& owned : table_->owned()) {
      const auto [hi, lo] = owned.prefix.address().words();
      owned_hi_.push_back(hi);
      owned_lo_.push_back(lo);
      owned_len_.push_back(static_cast<std::uint64_t>(owned.prefix.length()));
      owned_fam_.push_back(static_cast<std::uint8_t>(owned.prefix.family()));
    }
  }

  // Extraction pass: pull each observation's prefix into parallel word
  // arrays so the compare loop below streams plain uint64 lanes instead
  // of chasing Observation objects.
  const std::size_t n = batch.size();
  scr_hi_.resize(n);
  scr_lo_.resize(n);
  scr_len_.resize(n);
  scr_fam_.resize(n);
  scr_rel_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const feeds::Observation& obs = batch[i];
    const auto [hi, lo] = obs.prefix.address().words();
    scr_hi_[i] = hi;
    scr_lo_[i] = lo;
    scr_len_[i] = static_cast<std::uint64_t>(obs.prefix.length());
    scr_fam_[i] = obs.type == feeds::ObservationType::kWithdrawal
                      ? kFamNever
                      : static_cast<std::uint8_t>(obs.prefix.family());
  }

  // Compare pass: observation i overlaps owned prefix o iff their
  // addresses agree on the first min(len_i, len_o) bits (both stored
  // canonically, so a masked XOR decides it) and the families match.
  // Branchless mask selects + per-lane variable shifts — the loop body
  // auto-vectorizes over the batch (vpsllvq/vpcmpeqq on AVX2).
  for (std::size_t k = 0; k < owned_hi_.size(); ++k) {
    const std::uint64_t ohi = owned_hi_[k];
    const std::uint64_t olo = owned_lo_[k];
    const std::uint64_t olen = owned_len_[k];
    const std::uint8_t ofam = owned_fam_[k];
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t m = scr_len_[i] < olen ? scr_len_[i] : olen;
      // Top-m-bits masks for the two address words. The double shift
      // keeps m == 0 defined (yields 0); the clamps keep the shift
      // counts in range for m in [64, 128].
      const std::uint64_t mask_hi =
          m >= 64 ? ~0ULL : (~0ULL << 1) << (63 - m);
      const std::uint64_t mc = m < 64 ? 64 : m;
      const std::uint64_t mask_lo =
          mc >= 128 ? ~0ULL : (~0ULL << 1) << (127 - mc);
      const std::uint64_t diff = ((scr_hi_[i] ^ ohi) & mask_hi) |
                                 ((scr_lo_[i] ^ olo) & mask_lo);
      scr_rel_[i] |=
          static_cast<std::uint8_t>(diff == 0 && scr_fam_[i] == ofam);
    }
  }
  return true;
}

void DetectionService::process_batch(std::span<const feeds::Observation> batch) {
  // Classification is a pure function of (type, prefix, origin, first-hop
  // neighbor) — everything else in the observation only matters once an
  // alert is materialized. Real batches (an MRT window, a stream message
  // burst) cluster repeats of the same route, so memoizing the previous
  // classification skips the config-trie walk, and memoizing the previous
  // dedup record skips the hash probe. Both caches are POD and live on
  // the stack: the zero-allocation steady state of process() carries over
  // verbatim (enforced by tests/detection_alloc_test.cpp).
  struct {
    bool valid = false;
    feeds::ObservationType type = feeds::ObservationType::kAnnouncement;
    net::Prefix prefix;
    bgp::Asn origin = bgp::kNoAsn;
    bgp::Asn neighbor = bgp::kNoAsn;
    std::optional<Classification> result;
  } memo;
  AlertKey last_key{};
  HijackRecord* last_record = nullptr;  // stable: unordered_map never moves values

  // When the prescreen ran, scr_rel_[i] == 0 proves classify() would
  // return nullopt (no owned overlap, no RPKI table, or a withdrawal) —
  // those observations skip classification entirely and never touch the
  // memo, so the memo only ever caches keys that went through classify().
  const bool prescreened = prescreen(batch);

  // Telemetry tallies stay batch-local; the shared cells absorb one
  // relaxed add each at the end. The delay histogram is the exception
  // (fresh alerts are rare), recorded inline per alert.
  std::uint64_t tally_skipped = 0;
  std::uint64_t tally_memo_hits = 0;
  std::uint64_t tally_dedup_hits = 0;
  std::uint64_t tally_alerts = 0;

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const feeds::Observation& obs = batch[i];
    ++processed_;
    if (prescreened && scr_rel_[i] == 0) {
      ++tally_skipped;
      continue;
    }
    const bgp::Asn origin = obs.origin_as();
    const bgp::Asn neighbor = obs.attrs.as_path.origin_neighbor();
    if (!memo.valid || memo.type != obs.type || memo.prefix != obs.prefix ||
        memo.origin != origin || memo.neighbor != neighbor) {
      memo.result = classify(obs);
      memo.valid = true;
      memo.type = obs.type;
      memo.prefix = obs.prefix;
      memo.origin = origin;
      memo.neighbor = neighbor;
    } else {
      ++tally_memo_hits;
    }
    if (!memo.result) continue;
    const Classification& classified = *memo.result;
    ++matched_;

    // Steady state (already-seen observation): at most one hash find, one
    // string hash for the source's first-seen slot — no heap allocations.
    const AlertKey key{classified.type, obs.prefix, classified.offender,
                       classified.tenant};
    HijackRecord* record = nullptr;
    bool fresh = false;
    if (last_record != nullptr && key == last_key) {
      record = last_record;
    } else {
      const auto [it, inserted] = records_.try_emplace(key);
      record = &it->second;
      fresh = inserted;
      last_key = key;
      last_record = record;
    }
    ++record->observations;
    record->first_seen_by_source.try_emplace(obs.source, obs.delivered_at);
    if (!fresh) {
      ++tally_dedup_hits;
      continue;
    }
    ++tally_alerts;
    if (metrics_.detection_delay != nullptr) {
      // Observation event time -> alert emission. delivered_at carries
      // the sim clock in simulation and the wall clock live, so the
      // histogram follows the mode for free.
      const std::int64_t delay_us =
          (obs.delivered_at - obs.event_time).as_micros();
      metrics_.detection_delay->record(
          delay_us > 0 ? static_cast<std::uint64_t>(delay_us) : 0u);
    }

    if (classified.tenant < tenant_alert_cells_.size()) {
      tenant_alert_cells_[classified.tenant]->add();
    }

    // First observation of this hijack: materialize the full alert.
    HijackAlert alert;
    alert.type = classified.type;
    alert.owned_prefix = classified.owned_prefix;
    alert.tenant = classified.tenant;
    if (const TenantInfo* info = table_->tenant(classified.tenant)) {
      alert.tenant_name = info->name;
    }
    alert.observed_prefix = obs.prefix;
    alert.offender = classified.offender;
    alert.observed_path = obs.attrs.as_path;
    alert.vantage = obs.vantage;
    alert.source = obs.source;
    alert.event_time = obs.event_time;
    alert.detected_at = obs.delivered_at;
    record->dedup = alert.dedup_key();
    alerts_.push_back(alert);
    for (const auto& handler : handlers_) handler(alert);
  }

  if (metrics_.enabled()) {
    metrics_.observations->add(batch.size());
    if (tally_skipped != 0) metrics_.prescreen_skipped->add(tally_skipped);
    if (tally_memo_hits != 0) metrics_.memo_hits->add(tally_memo_hits);
    if (tally_dedup_hits != 0) metrics_.dedup_hits->add(tally_dedup_hits);
    if (tally_alerts != 0) metrics_.alerts->add(tally_alerts);
  }
}

const std::unordered_map<std::string, SimTime>* DetectionService::first_seen_by_source(
    const AlertKey& key) const {
  const auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second.first_seen_by_source;
}

const std::unordered_map<std::string, SimTime>* DetectionService::first_seen_by_source(
    const std::string& dedup_key) const {
  for (const auto& [key, record] : records_) {
    if (record.dedup == dedup_key) return &record.first_seen_by_source;
  }
  return nullptr;
}

std::uint64_t DetectionService::observation_count(const AlertKey& key) const {
  const auto it = records_.find(key);
  return it == records_.end() ? 0 : it->second.observations;
}

std::uint64_t DetectionService::observation_count(const std::string& dedup_key) const {
  for (const auto& [key, record] : records_) {
    if (record.dedup == dedup_key) return record.observations;
  }
  return 0;
}

}  // namespace artemis::core

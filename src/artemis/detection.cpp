#include "artemis/detection.hpp"

namespace artemis::core {

DetectionService::DetectionService(const Config& config, DetectionOptions options)
    : config_(config), options_(options) {}

void DetectionService::attach(feeds::MonitorHub& hub) {
  hub.subscribe([this](const feeds::Observation& obs) { process(obs); });
}

void DetectionService::on_alert(AlertHandler handler) {
  handlers_.push_back(std::move(handler));
}

std::optional<DetectionService::Classification> DetectionService::classify(
    const feeds::Observation& obs) const {
  if (obs.type == feeds::ObservationType::kWithdrawal) return std::nullopt;
  const OwnedPrefix* owned = config_.match(obs.prefix);
  if (owned == nullptr) {
    // Outside owned space: only the (optional) RPKI signal applies.
    if (options_.roa_table != nullptr &&
        options_.roa_table->validate(obs.prefix, obs.origin_as()) ==
            rpki::Validity::kInvalid) {
      // Best effort: no owned match, report the observed prefix as owned.
      return Classification{HijackType::kRpkiInvalid, obs.prefix, obs.origin_as()};
    }
    return std::nullopt;
  }

  const bgp::Asn origin = obs.origin_as();
  const bool origin_ok = owned->legitimate_origins.contains(origin);

  if (obs.prefix == owned->prefix) {
    if (!origin_ok) {
      return Classification{HijackType::kExactOrigin, owned->prefix, origin};
    }
  } else if (owned->prefix.covers(obs.prefix)) {
    // A more-specific announcement inside our space. Even with our origin
    // it is suspicious (an attacker can forge the origin), but routes we
    // announced ourselves (mitigation sub-prefixes!) must not self-alert:
    // those carry a legitimate origin.
    if (options_.detect_subprefix && !origin_ok) {
      return Classification{HijackType::kSubPrefix, owned->prefix, origin};
    }
  } else if (obs.prefix.covers(owned->prefix)) {
    if (options_.detect_superprefix && !origin_ok) {
      return Classification{HijackType::kSuperPrefix, owned->prefix, origin};
    }
  }

  // Origin is fine (or checks disabled); optionally vet the first hop.
  if (options_.detect_fake_first_hop && origin_ok &&
      !owned->legitimate_neighbors.empty()) {
    const bgp::Asn adjacent = obs.attrs.as_path.origin_neighbor();
    if (adjacent != bgp::kNoAsn && !owned->legitimate_neighbors.contains(adjacent) &&
        !owned->legitimate_origins.contains(adjacent)) {
      return Classification{HijackType::kFakeFirstHop, owned->prefix, adjacent};
    }
  }
  return std::nullopt;
}

void DetectionService::process(const feeds::Observation& obs) {
  ++processed_;
  const auto classified = classify(obs);
  if (!classified) return;
  ++matched_;

  // Steady state (already-seen observation): one hash find, one string
  // hash for the source's first-seen slot — no heap allocations.
  const AlertKey key{classified->type, obs.prefix, classified->offender};
  const auto [it, fresh] = records_.try_emplace(key);
  HijackRecord& record = it->second;
  ++record.observations;
  record.first_seen_by_source.try_emplace(obs.source, obs.delivered_at);
  if (!fresh) return;

  // First observation of this hijack: materialize the full alert.
  HijackAlert alert;
  alert.type = classified->type;
  alert.owned_prefix = classified->owned_prefix;
  alert.observed_prefix = obs.prefix;
  alert.offender = classified->offender;
  alert.observed_path = obs.attrs.as_path;
  alert.vantage = obs.vantage;
  alert.source = obs.source;
  alert.event_time = obs.event_time;
  alert.detected_at = obs.delivered_at;
  record.dedup = alert.dedup_key();
  alerts_.push_back(alert);
  for (const auto& handler : handlers_) handler(alert);
}

const std::unordered_map<std::string, SimTime>* DetectionService::first_seen_by_source(
    const AlertKey& key) const {
  const auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second.first_seen_by_source;
}

const std::unordered_map<std::string, SimTime>* DetectionService::first_seen_by_source(
    const std::string& dedup_key) const {
  for (const auto& [key, record] : records_) {
    if (record.dedup == dedup_key) return &record.first_seen_by_source;
  }
  return nullptr;
}

std::uint64_t DetectionService::observation_count(const AlertKey& key) const {
  const auto it = records_.find(key);
  return it == records_.end() ? 0 : it->second.observations;
}

std::uint64_t DetectionService::observation_count(const std::string& dedup_key) const {
  for (const auto& [key, record] : records_) {
    if (record.dedup == dedup_key) return record.observations;
  }
  return 0;
}

}  // namespace artemis::core

// The detection service (paper §2, "runs continuously").
//
// Consumes the merged observation stream and checks every observation
// that overlaps an owned prefix against the configured ground truth:
//   * exact-prefix origin violation  (the demo's check)
//   * sub-prefix announcement        (extension, on by default: any
//                                     more-specific inside owned space is
//                                     illegitimate unless whitelisted)
//   * super-prefix origin violation  (extension)
//   * fake first-hop / Type-1        (extension, needs neighbor config)
// Alerts are deduplicated: the first observation of a given (type,
// prefix, offender) raises the alert; later ones only bump counters —
// but per-source first-seen times are always recorded, which is how
// bench_detection_delay reports per-source detection latency (E1).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "artemis/alert.hpp"
#include "artemis/config.hpp"
#include "feeds/monitor_hub.hpp"
#include "rpki/roa.hpp"
#include "feeds/observation.hpp"
#include "telemetry/metrics.hpp"

namespace artemis::core {

using AlertHandler = std::function<void(const HijackAlert&)>;

struct DetectionOptions {
  /// Extensions beyond the demo's origin check (DESIGN.md). Benches that
  /// reproduce the paper leave sub/super on (they never fire in the
  /// exact-origin experiments) and first-hop off.
  bool detect_subprefix = true;
  bool detect_superprefix = true;
  bool detect_fake_first_hop = false;
  /// When set, every announcement is additionally validated against the
  /// ROA table; RPKI-invalid announcements raise kRpkiInvalid alerts even
  /// for prefixes outside the owned space (origin-validation-as-a-signal,
  /// the prevention mechanism the paper's introduction contrasts with).
  const rpki::RoaTable* roa_table = nullptr;
};

class DetectionService {
 public:
  /// Snapshot-sharing form: shards of one deployment pass the SAME
  /// immutable table, so a million-prefix config is frozen once, not
  /// once per shard.
  explicit DetectionService(std::shared_ptr<const OwnershipTable> table,
                            DetectionOptions options = {});
  /// Convenience: freezes `config` privately (tests, single services).
  explicit DetectionService(const Config& config, DetectionOptions options = {});

  /// Swaps the ownership snapshot — the incremental-reload seam. Must be
  /// called between process_batch calls (a batch boundary): the caller
  /// is the single submission thread, or a barrier like
  /// ShardedDetector::reload that proves no batch is in flight. Alert
  /// and dedup state survive the swap (a reload is not a restart);
  /// classification of every later observation uses the new table.
  void set_ownership(std::shared_ptr<const OwnershipTable> table);

  /// The snapshot currently classifying observations.
  const OwnershipTable& ownership() const { return *table_; }

  /// Wires the service into a hub (subscribes to its batch stream; every
  /// observation from every source flows through process_batch).
  void attach(feeds::MonitorHub& hub);

  /// Feeds one observation (alternative to attach() for tests/replay).
  /// Span-of-one shim over process_batch — identical semantics.
  void process(const feeds::Observation& obs) { process_batch({&obs, 1}); }

  /// Feeds a whole batch. Equivalent to calling process() on each element
  /// in order (the batch-vs-loop oracle test enforces this), but amortizes
  /// the work: consecutive observations with the same (type, prefix,
  /// origin, first-hop) reuse the previous classification — skipping the
  /// config-trie lookup — and consecutive observations of the same hijack
  /// reuse the previous dedup-record probe. Steady state (already-seen
  /// observations) performs zero heap allocations, same as process().
  void process_batch(std::span<const feeds::Observation> batch);

  /// Registers an alert consumer (the mitigation service, a logger, ...).
  void on_alert(AlertHandler handler);

  /// All alerts raised so far (deduplicated).
  const std::vector<HijackAlert>& alerts() const { return alerts_; }

  /// First time each source delivered an observation matching `key`.
  /// Used for per-source delay reporting. The AlertKey overload is a hash
  /// lookup; the string overload (a HijackAlert::dedup_key()) scans and
  /// is for display/tooling call sites only.
  const std::unordered_map<std::string, SimTime>* first_seen_by_source(
      const AlertKey& key) const;
  const std::unordered_map<std::string, SimTime>* first_seen_by_source(
      const std::string& dedup_key) const;

  /// Number of matching observations per deduplicated alert.
  std::uint64_t observation_count(const AlertKey& key) const;
  std::uint64_t observation_count(const std::string& dedup_key) const;

  std::uint64_t observations_processed() const { return processed_; }
  std::uint64_t observations_matched() const { return matched_; }

  /// Attaches telemetry cells (one bundle per service — sharded callers
  /// register one per shard so cells never contend). Observation-only:
  /// counters and the detection-delay histogram are fed from batch-local
  /// tallies after the processing loop, so enabling telemetry cannot
  /// perturb alert content or ordering, and the hot path stays
  /// allocation-free (cells are pre-registered plain atomics).
  void set_metrics(const telemetry::DetectionCounters& metrics) {
    metrics_ = metrics;
  }

  /// Per-tenant alert cells: registers one counter per tenant of the
  /// current table, labeled with the tenant name, and re-registers on
  /// every set_ownership so reloaded-in tenants get cells too.
  /// Registration allocates (registry mutex) — it runs at attach/swap
  /// time and on the fresh-alert path, never in the steady state. The
  /// registry must outlive the service.
  void set_tenant_metrics(telemetry::MetricsRegistry* registry);

 private:
  /// A classified violation, POD so the steady-state path never builds a
  /// full HijackAlert (whose path/source members heap-allocate).
  struct Classification {
    HijackType type = HijackType::kExactOrigin;
    net::Prefix owned_prefix;
    bgp::Asn offender = bgp::kNoAsn;
    TenantId tenant = kDefaultTenantId;
  };

  /// Classifies an observation against config; nullopt if legitimate or
  /// unrelated to owned space.
  std::optional<Classification> classify(const feeds::Observation& obs) const;

  /// SIMD-friendly batch prescreen: fills scr_rel_[i] with "observation i
  /// overlaps some owned prefix" for the whole batch in one vectorizable
  /// pass (SoA prefix words, branchless masked-XOR compares against each
  /// owned prefix). Returns false — leaving the batch to the scalar path
  /// — when it cannot be both correct and profitable: an RPKI table makes
  /// non-overlapping observations classifiable, a large owned set makes
  /// the O(owned × batch) sweep lose to the trie, and a tiny batch
  /// cannot amortize the extraction pass.
  bool prescreen(std::span<const feeds::Observation> batch);

  /// The immutable ownership snapshot (shared across shards). Swapped
  /// only at batch boundaries via set_ownership; within one batch every
  /// classification reads one consistent table.
  std::shared_ptr<const OwnershipTable> table_;
  DetectionOptions options_;
  std::vector<AlertHandler> handlers_;
  std::vector<HijackAlert> alerts_;
  struct HijackRecord {
    std::unordered_map<std::string, SimTime> first_seen_by_source;
    std::uint64_t observations = 0;
    std::string dedup;  ///< display key, materialized once per unique alert
  };
  std::unordered_map<AlertKey, HijackRecord, AlertKeyHash> records_;
  std::uint64_t processed_ = 0;
  std::uint64_t matched_ = 0;
  telemetry::DetectionCounters metrics_;  ///< null cells = disabled
  /// Per-tenant alert cells, index == tenant id; rebuilt on snapshot
  /// swap. Null registry = disabled.
  telemetry::MetricsRegistry* tenant_registry_ = nullptr;
  std::vector<telemetry::Counter*> tenant_alert_cells_;

  // Prescreen scratch (SoA over the current batch) and the owned-prefix
  // snapshot it compares against. Members, not locals: their capacity
  // survives across batches, so the steady state stays allocation-free.
  std::vector<std::uint64_t> scr_hi_, scr_lo_, scr_len_;
  std::vector<std::uint8_t> scr_fam_;
  std::vector<std::uint8_t> scr_rel_;  ///< 1 = may overlap owned space
  std::vector<std::uint64_t> owned_hi_, owned_lo_, owned_len_;
  std::vector<std::uint8_t> owned_fam_;
  /// OwnershipTable::version() the SoA snapshot was built from (0 =
  /// never built) — one integer compare detects a reload.
  std::uint64_t owned_snapshot_version_ = 0;
};

}  // namespace artemis::core

#include "artemis/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "topology/cone.hpp"

namespace artemis::core {
namespace {

std::vector<net::IpAddress> truth_sample_points(const net::Prefix& owned) {
  if (owned.length() >= owned.max_length()) return {owned.address()};
  const auto [low, high] = owned.split();
  return {low.address(), high.address()};
}

}  // namespace

std::vector<bgp::Asn> recruit_helpers(const topo::AsGraph& graph,
                                      const ExperimentParams& params) {
  if (!params.helpers.empty() || params.helper_count <= 0) return params.helpers;
  const auto cone_sizes = topo::customer_cone_sizes(graph);
  std::vector<bgp::Asn> candidates;
  for (const auto asn : graph.all_ases()) {
    if (asn == params.victim || asn == params.attacker) continue;
    candidates.push_back(asn);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&cone_sizes](bgp::Asn a, bgp::Asn b) {
              const auto sa = cone_sizes.at(a);
              const auto sb = cone_sizes.at(b);
              return sa != sb ? sa > sb : a < b;
            });
  candidates.resize(std::min<std::size_t>(
      candidates.size(), static_cast<std::size_t>(params.helper_count)));
  return candidates;
}

Config build_experiment_config(const topo::AsGraph& graph,
                               const ExperimentParams& params,
                               const std::vector<bgp::Asn>& helpers) {
  // The victim owns the prefix; its direct neighbors are the legitimate
  // upstreams (for the Type-1 extension). Helper ASes are legitimate
  // origins too: traffic they attract is tunneled back.
  Config config;
  OwnedPrefix owned;
  owned.prefix = params.victim_prefix;
  owned.legitimate_origins.insert(params.victim);
  for (const auto helper : helpers) owned.legitimate_origins.insert(helper);
  for (const auto& neighbor : graph.neighbors(params.victim)) {
    owned.legitimate_neighbors.insert(neighbor.asn);
  }
  // Helpers originate during outsourced mitigation; their neighbors must
  // be acceptable first hops or the Type-1 check would self-alert on the
  // mitigation announcements.
  for (const auto helper : helpers) {
    for (const auto& neighbor : graph.neighbors(helper)) {
      owned.legitimate_neighbors.insert(neighbor.asn);
    }
  }
  config.add_owned(std::move(owned));
  return config;
}

std::vector<std::unique_ptr<SimController>> wire_helpers(
    ArtemisApp& app, sim::Network& network, const std::vector<bgp::Asn>& helpers,
    SimDuration controller_latency) {
  std::vector<std::unique_ptr<SimController>> controllers;
  for (const auto helper : helpers) {
    controllers.push_back(
        std::make_unique<SimController>(network, helper, controller_latency));
    app.mitigation().add_helper(*controllers.back());
  }
  return controllers;
}

std::optional<SimDuration> ExperimentResult::detection_delay() const {
  if (!detected_at) return std::nullopt;
  return *detected_at - hijack_at;
}

std::optional<SimDuration> ExperimentResult::mitigation_start_delay() const {
  if (!detected_at || !announcements_applied_at) return std::nullopt;
  return *announcements_applied_at - *detected_at;
}

std::optional<SimDuration> ExperimentResult::mitigation_duration() const {
  if (!announcements_applied_at || !truth_converged_at) return std::nullopt;
  return *truth_converged_at - *announcements_applied_at;
}

std::optional<SimDuration> ExperimentResult::total_duration() const {
  if (!truth_converged_at) return std::nullopt;
  return *truth_converged_at - hijack_at;
}

std::string ExperimentResult::summary() const {
  std::string out = "hijack at " + hijack_at.to_string();
  if (const auto d = detection_delay()) {
    out += "; detected after " + d->to_string() + " (" + detection_source + ")";
  } else {
    out += "; NOT detected";
  }
  if (const auto d = mitigation_start_delay()) {
    out += "; announcements out after " + d->to_string();
  }
  if (const auto d = mitigation_duration()) {
    out += "; converged " + d->to_string() + " later";
  }
  if (const auto d = total_duration()) {
    out += "; total " + d->to_string();
  } else if (detected_at) {
    out += "; mitigation did not complete";
  }
  return out;
}

HijackExperiment::HijackExperiment(const topo::AsGraph& graph,
                                   const sim::NetworkParams& net_params,
                                   ExperimentParams params, Rng rng)
    : params_(std::move(params)) {
  if (params_.victim == bgp::kNoAsn || params_.attacker == bgp::kNoAsn) {
    throw std::invalid_argument("experiment needs victim and attacker ASNs");
  }
  network_ = std::make_unique<sim::Network>(graph, net_params, rng.fork("network"));

  // Default vantage selection: real RIS/BGPmon peers and public looking
  // glasses span the whole hierarchy — a few tier-1s, many regional
  // transits, and plenty of edge networks. Sample uniformly from all ASes
  // so detection sees a close vantage quickly while full re-convergence
  // must reach deep stubs (the paper's minutes-long tail).
  if ((params_.enable_ris && params_.ris.vantages.empty()) ||
      (params_.enable_bgpmon && params_.bgpmon.vantages.empty()) ||
      (params_.enable_periscope && params_.looking_glasses.empty())) {
    std::vector<bgp::Asn> pool = graph.all_ases();
    // The victim/attacker should not host monitors.
    std::erase(pool, params_.victim);
    std::erase(pool, params_.attacker);
    auto selection_rng = rng.fork("vantage-selection");
    selection_rng.shuffle(pool.data(), pool.size());
    std::size_t cursor = 0;
    auto take = [&pool, &cursor](std::size_t n) {
      std::vector<bgp::Asn> out;
      while (out.size() < n && cursor < pool.size()) out.push_back(pool[cursor++]);
      return out;
    };
    if (params_.enable_ris && params_.ris.vantages.empty()) {
      params_.ris.vantages = take(8);
    }
    if (params_.enable_bgpmon && params_.bgpmon.vantages.empty()) {
      params_.bgpmon.vantages = take(8);
    }
    if (params_.enable_periscope && params_.looking_glasses.empty()) {
      for (const auto asn : take(6)) {
        feeds::LookingGlassParams lg;
        lg.asn = asn;
        params_.looking_glasses.push_back(lg);
      }
    }
  }
  params_.ris.name = params_.ris.name.empty() ? "ris-live" : params_.ris.name;
  if (params_.bgpmon.name == "ris-live") params_.bgpmon.name = "bgpmon";

  // Mitigation outsourcing (extension): recruit helper organizations and
  // derive the operator config they participate in. Both steps are
  // shared with journal replay (replay_scenario_journal), which must
  // reconstruct the recording run's exact ground truth.
  helpers_ = recruit_helpers(graph, params_);
  Config config = build_experiment_config(graph, params_, helpers_);
  legit_origins_ = config.owned().front().legitimate_origins;
  // The live simulation always dispatches detection inline: alert
  // handlers schedule sim events mid-delivery, which only preserves
  // sim-time causality on the sim thread. Threaded detection is a
  // replay/ingest feature (replay_scenario_journal honors it).
  AppOptions app_options = params_.app;
  app_options.detection_threaded = false;
  app_ = std::make_unique<ArtemisApp>(std::move(config), *network_, params_.victim,
                                      app_options);
  helper_controllers_ =
      wire_helpers(*app_, *network_, helpers_, params_.app.controller_latency);

  std::unordered_set<bgp::Asn> seen;
  auto add_vantages = [this, &seen](const std::vector<bgp::Asn>& vantages) {
    for (const auto asn : vantages) {
      if (seen.insert(asn).second) vantage_union_.push_back(asn);
    }
  };
  if (params_.enable_ris) {
    ris_ = std::make_unique<feeds::StreamFeed>(*network_, params_.ris, rng.fork("ris"));
    ris_->subscribe_batch(app_->hub().batch_inlet());
    add_vantages(params_.ris.vantages);
  }
  if (params_.enable_bgpmon) {
    if (params_.bgpmon.name == "ris-live") params_.bgpmon.name = "bgpmon";
    bgpmon_ = std::make_unique<feeds::StreamFeed>(*network_, params_.bgpmon,
                                                  rng.fork("bgpmon"));
    bgpmon_->subscribe_batch(app_->hub().batch_inlet());
    add_vantages(params_.bgpmon.vantages);
  }
  if (params_.enable_periscope) {
    periscope_ = std::make_unique<feeds::PeriscopeClient>(
        *network_, params_.looking_glasses, params_.periscope, rng.fork("periscope"));
    periscope_->monitor_prefix(params_.victim_prefix);
    periscope_->subscribe_batch(app_->hub().batch_inlet());
    std::vector<bgp::Asn> lg_ases;
    for (const auto& lg : params_.looking_glasses) lg_ases.push_back(lg.asn);
    add_vantages(lg_ases);
  }
  if (vantage_union_.empty()) {
    throw std::invalid_argument("experiment needs at least one monitoring source");
  }
  vantage_weights_ = topo::cone_weights(graph, vantage_union_);
}

bool HijackExperiment::truth_vantage_legitimate(bgp::Asn vantage) const {
  // Legitimate = every sample resolves to a legitimate origin AND none of
  // the traffic flows through the attacker (the latter matters for
  // forged-origin attacks, where the origin *looks* right).
  for (const auto& addr : truth_sample_points(params_.victim_prefix)) {
    if (!legit_origins_.contains(network_->resolve_origin(vantage, addr))) return false;
  }
  return !truth_vantage_hijacked(vantage);
}

double HijackExperiment::truth_fraction() const {
  std::size_t legit = 0;
  for (const auto vantage : vantage_union_) {
    if (truth_vantage_legitimate(vantage)) ++legit;
  }
  return static_cast<double>(legit) / static_cast<double>(vantage_union_.size());
}

bool HijackExperiment::truth_vantage_hijacked(bgp::Asn vantage) const {
  // A vantage is captured when its traffic for any sample address flows
  // through the attacker. Checking the AS path (not just the origin)
  // covers forged-origin (Type-1) attacks, where the route *claims* to
  // end at the victim while actually terminating at the attacker.
  const auto& speaker = network_->speaker(vantage);
  for (const auto& addr : truth_sample_points(params_.victim_prefix)) {
    const auto route = speaker.forwarding_route(addr);
    if (route && route->attrs.as_path.contains(params_.attacker)) return true;
  }
  return false;
}

double HijackExperiment::truth_hijacked_fraction() const {
  std::size_t hijacked = 0;
  for (const auto vantage : vantage_union_) {
    if (truth_vantage_hijacked(vantage)) ++hijacked;
  }
  return static_cast<double>(hijacked) / static_cast<double>(vantage_union_.size());
}

double HijackExperiment::truth_hijacked_impact() const {
  double impact = 0.0;
  for (const auto vantage : vantage_union_) {
    if (truth_vantage_hijacked(vantage)) impact += vantage_weights_.at(vantage);
  }
  return impact;
}

ExperimentResult HijackExperiment::run() {
  ExperimentResult result;
  result.hijack_at = params_.hijack_at;

  auto& sim = network_->simulator();
  auto& victim_speaker = network_->speaker(params_.victim);
  auto& attacker_speaker = network_->speaker(params_.attacker);

  // Phase 1: victim announces at t=0.
  const net::Prefix victim_prefix = params_.victim_prefix;
  sim.at(SimTime::zero(), [&victim_speaker, victim_prefix] {
    victim_speaker.originate(victim_prefix);
  });

  // Phase 2: the hijack.
  const net::Prefix hijack_prefix = params_.hijack_prefix.value_or(victim_prefix);
  const auto forged = params_.forged_path;
  const bgp::Asn attacker = params_.attacker;
  sim.at(params_.hijack_at, [&attacker_speaker, hijack_prefix, forged, attacker] {
    if (forged) {
      attacker_speaker.originate_with_path(hijack_prefix, *forged);
    } else {
      attacker_speaker.originate(hijack_prefix);
    }
  });

  // Timeline probes: ground truth + feed view, every probe_interval, from
  // shortly before the hijack to the horizon (stopping early once both
  // views have re-converged).
  const SimTime probe_start = params_.hijack_at - params_.probe_interval * 10.0;
  const SimTime end_time = params_.hijack_at + params_.horizon;
  struct ProbeState {
    bool done = false;
  };
  auto probe_state = std::make_shared<ProbeState>();
  std::function<void()> probe = [this, &result, probe_state, end_time, &sim, &probe]() {
    if (probe_state->done) return;
    TimelineSample sample;
    sample.when = sim.now();
    const double feed = app_->monitoring().fraction_legitimate(params_.victim_prefix);
    sample.feed_fraction = std::isnan(feed) ? 0.0 : feed;
    sample.truth_fraction = truth_fraction();
    result.timeline.push_back(sample);
    result.max_hijacked_fraction =
        std::max(result.max_hijacked_fraction, truth_hijacked_fraction());
    result.max_hijacked_impact =
        std::max(result.max_hijacked_impact, truth_hijacked_impact());

    const bool mitigated = !app_->mitigation().records().empty();
    if (mitigated && !result.feed_converged_at &&
        app_->monitoring().all_legitimate(params_.victim_prefix)) {
      result.feed_converged_at = sim.now();
    }
    if (mitigated && !result.truth_converged_at && sample.truth_fraction >= 1.0) {
      result.truth_converged_at = sim.now();
    }
    // Keep probing a little past convergence to show the plateau.
    if (result.feed_converged_at && result.truth_converged_at &&
        sim.now() > *result.feed_converged_at + SimDuration::seconds(30) &&
        sim.now() > *result.truth_converged_at + SimDuration::seconds(30)) {
      probe_state->done = true;
      return;
    }
    if (sim.now() + params_.probe_interval <= end_time) {
      sim.after(params_.probe_interval, probe);
    }
  };
  sim.at(probe_start, probe);

  sim.run_until(end_time);

  // Harvest measurements. The merged view works for any shard count (and
  // is the plain alert list when detection runs unsharded).
  const auto alerts = app_->sharded_detection().merged_alerts();
  if (!alerts.empty()) {
    const auto& first = alerts.front();
    result.detected_at = first.detected_at;
    result.detection_source = first.source;
    if (const auto* by_source =
            app_->sharded_detection().first_seen_by_source(first.key())) {
      // The result keeps a std::map so reports and JSON iterate sorted.
      result.detection_by_source.insert(by_source->begin(), by_source->end());
    }
  }
  const auto& mitigations = app_->mitigation().records();
  if (!mitigations.empty()) {
    const auto& record = mitigations.front();
    result.mitigation_triggered_at = record.triggered_at;
    result.mitigation_announcements = record.plan.announcements;
    result.deaggregation_possible = record.plan.deaggregation_possible;
    result.helpers_used = record.helpers_used;
  }
  SimTime last_applied = SimTime::zero();
  for (const auto& cmd : app_->controller().log()) {
    if (cmd.kind == ControllerCommand::Kind::kAnnounce) {
      last_applied = std::max(last_applied, cmd.applied_at);
    }
  }
  if (last_applied > SimTime::zero()) result.announcements_applied_at = last_applied;

  return result;
}

}  // namespace artemis::core

// The paper's three-phase hijack experiment (§3), as a reusable harness.
//
// Phase 1 (Setup): the victim AS announces a prefix; BGP converges.
// Phase 2 (Hijack & Detection): the attacker AS announces the same (or a
//   more-specific / forged-path) prefix; ARTEMIS watches its feeds.
// Phase 3 (Mitigation): on the first alert, ARTEMIS de-aggregates through
//   the controller; the experiment measures when every vantage point has
//   switched back to the legitimate origin.
//
// The victim/attacker pair substitutes for the PEERING testbed's two
// virtual ASes at different sites (DESIGN.md substitution table).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "artemis/app.hpp"
#include "feeds/batch_feed.hpp"
#include "feeds/looking_glass.hpp"
#include "feeds/stream_feed.hpp"
#include "sim/network.hpp"
#include "topology/as_graph.hpp"
#include "util/rng.hpp"

namespace artemis::core {

struct ExperimentParams {
  net::Prefix victim_prefix = net::Prefix::must_parse("10.0.0.0/23");
  bgp::Asn victim = bgp::kNoAsn;
  bgp::Asn attacker = bgp::kNoAsn;

  /// What the attacker announces; defaults to victim_prefix (exact-origin
  /// hijack). Set to a more-specific for sub-prefix experiments.
  std::optional<net::Prefix> hijack_prefix;
  /// Forged path for Type-1 experiments (e.g. [attacker, victim]);
  /// nullopt = plain origin hijack with path [attacker].
  std::optional<bgp::AsPath> forged_path;

  /// When the hijack launches. Must leave room for Phase-1 convergence.
  SimTime hijack_at = SimTime::at_seconds(3600);
  /// How long past the hijack to keep simulating.
  SimDuration horizon = SimDuration::minutes(30);

  /// Monitoring sources (paper: RIPE RIS streaming + BGPmon + Periscope).
  bool enable_ris = true;
  bool enable_bgpmon = true;
  bool enable_periscope = true;
  feeds::StreamFeedParams ris;
  feeds::StreamFeedParams bgpmon;
  std::vector<feeds::LookingGlassParams> looking_glasses;
  feeds::PeriscopeParams periscope;

  AppOptions app;
  /// Ground-truth sampling cadence for the timeline series (E2).
  SimDuration probe_interval = SimDuration::seconds(1);

  /// Mitigation outsourcing (extension): explicit helper ASes, or —
  /// when empty and helper_count > 0 — the helper_count best-connected
  /// transit ASes (largest customer cones) are recruited automatically.
  std::vector<bgp::Asn> helpers;
  int helper_count = 0;
};

/// One point of the mitigation-visualization series (§4 demo).
struct TimelineSample {
  SimTime when;
  /// Fraction of feed vantages on the legitimate origin (monitoring view).
  double feed_fraction = 0.0;
  /// Fraction of the same vantage ASes on the legitimate origin, read
  /// directly from the simulated network (no feed lag).
  double truth_fraction = 0.0;
};

struct ExperimentResult {
  SimTime hijack_at;
  std::optional<SimTime> detected_at;
  std::string detection_source;          ///< feed that won the race
  std::map<std::string, SimTime> detection_by_source;
  std::optional<SimTime> mitigation_triggered_at;
  std::optional<SimTime> announcements_applied_at;  ///< last controller apply
  std::optional<SimTime> feed_converged_at;   ///< monitoring: all vantages legit
  std::optional<SimTime> truth_converged_at;  ///< ground truth across vantages
  std::vector<net::Prefix> mitigation_announcements;
  bool deaggregation_possible = false;
  std::size_t helpers_used = 0;
  std::vector<TimelineSample> timeline;
  /// Peak share of vantage ASes captured by the hijacker (ground truth).
  double max_hijacked_fraction = 0.0;
  /// Same peak, but weighting each vantage by its customer cone size —
  /// the impact-estimation view (a fallen tier-1 outweighs a stub).
  double max_hijacked_impact = 0.0;

  std::optional<SimDuration> detection_delay() const;
  std::optional<SimDuration> mitigation_start_delay() const;   ///< detect -> applied
  std::optional<SimDuration> mitigation_duration() const;      ///< applied -> truth conv.
  std::optional<SimDuration> total_duration() const;           ///< hijack -> truth conv.

  std::string summary() const;
};

/// Helper-organization recruitment: the explicit list when given,
/// otherwise the `helper_count` best-connected transit ASes (largest
/// customer cones) — the organizations a real victim would contract.
/// Shared by the live experiment and journal replay.
std::vector<bgp::Asn> recruit_helpers(const topo::AsGraph& graph,
                                      const ExperimentParams& params);

/// The ARTEMIS operator config for an experiment: the victim owns the
/// prefix, helpers are legitimate co-origins, direct neighbors of both
/// are legitimate first hops. A replayed journal must be checked against
/// this exact ground truth to reproduce the recording run's alerts.
Config build_experiment_config(const topo::AsGraph& graph,
                               const ExperimentParams& params,
                               const std::vector<bgp::Asn>& helpers);

/// Creates one SimController per helper AS and registers it with the
/// app's mitigation service (the outsourcing wiring). Returns the
/// controllers; the caller must keep them alive as long as the app can
/// mitigate. Shared by the live experiment and journal replay so the
/// replayed mitigation behavior matches the recording run's exactly.
std::vector<std::unique_ptr<SimController>> wire_helpers(
    ArtemisApp& app, sim::Network& network, const std::vector<bgp::Asn>& helpers,
    SimDuration controller_latency);

class HijackExperiment {
 public:
  /// Builds the network, feeds and app. `graph` must outlive the
  /// experiment.
  HijackExperiment(const topo::AsGraph& graph, const sim::NetworkParams& net_params,
                   ExperimentParams params, Rng rng);

  /// Runs all three phases and returns the measurements.
  ExperimentResult run();

  sim::Network& network() { return *network_; }
  ArtemisApp& app() { return *app_; }

  /// All vantage ASes across enabled sources (deduplicated).
  const std::vector<bgp::Asn>& vantage_union() const { return vantage_union_; }

  /// Feed accessors for overhead accounting (nullptr when disabled).
  const feeds::StreamFeed* ris_feed() const { return ris_.get(); }
  const feeds::StreamFeed* bgpmon_feed() const { return bgpmon_.get(); }
  const feeds::PeriscopeClient* periscope_client() const { return periscope_.get(); }

  /// Helper ASes recruited for outsourced mitigation (empty when off).
  const std::vector<bgp::Asn>& helpers() const { return helpers_; }

 private:
  bool truth_vantage_legitimate(bgp::Asn vantage) const;
  bool truth_vantage_hijacked(bgp::Asn vantage) const;
  double truth_fraction() const;
  double truth_hijacked_fraction() const;
  double truth_hijacked_impact() const;

  ExperimentParams params_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<feeds::StreamFeed> ris_;
  std::unique_ptr<feeds::StreamFeed> bgpmon_;
  std::unique_ptr<feeds::PeriscopeClient> periscope_;
  std::unique_ptr<ArtemisApp> app_;
  std::vector<bgp::Asn> vantage_union_;
  std::vector<bgp::Asn> helpers_;
  std::vector<std::unique_ptr<SimController>> helper_controllers_;
  std::set<bgp::Asn> legit_origins_;
  std::unordered_map<bgp::Asn, double> vantage_weights_;
};

}  // namespace artemis::core

#include "artemis/mitigation.hpp"

namespace artemis::core {

MitigationPlan plan_mitigation(const net::Prefix& owned, const net::Prefix& observed,
                               const MitigationPolicy& policy) {
  MitigationPlan plan;
  // The contested scope is the overlap of what we own and what was
  // announced: equal to the more specific of the two (they overlap by
  // construction of the alert). Announcements more specific than the
  // scope win longest-prefix match everywhere inside it.
  const net::Prefix scope = owned.covers(observed) ? observed : owned;
  const int target_len = scope.length() + 1;

  if (scope.length() < scope.max_length() && target_len <= policy.deaggregation_floor) {
    plan.deaggregation_possible = true;
    for (const auto& half : scope.deaggregate(target_len)) {
      plan.announcements.push_back(half);
    }
  }
  if (policy.reannounce_exact) {
    // Re-announcing the owned prefix restores competition on the exact
    // route even when de-aggregation is filtered.
    plan.announcements.push_back(owned);
  }
  return plan;
}

MitigationService::MitigationService(std::shared_ptr<const OwnershipTable> table,
                                     Controller& controller, sim::Simulator& sim)
    : table_(std::move(table)), controller_(controller), sim_(sim) {}

MitigationService::MitigationService(const Config& config, Controller& controller,
                                     sim::Simulator& sim)
    : MitigationService(config.build_table(), controller, sim) {}

void MitigationService::set_ownership(std::shared_ptr<const OwnershipTable> table) {
  table_ = std::move(table);
}

void MitigationService::add_helper(Controller& controller) {
  helpers_controllers_.push_back(&controller);
}

void MitigationService::attach(DetectionService& detection) {
  detection.on_alert([this](const HijackAlert& alert) { handle_alert(alert); });
}

void MitigationService::on_mitigation(MitigationHandler handler) {
  handlers_.push_back(std::move(handler));
}

void MitigationService::handle_alert(const HijackAlert& alert) {
  // The policy of the tenant whose prefix was hijacked, not a global one:
  // tenants of a shared deployment opt in to auto-mitigation separately.
  const MitigationPolicy& policy = table_->policy(alert.tenant);
  if (!policy.auto_mitigate) return;
  const AlertKey key = alert.key();
  if (by_key_.contains(key)) return;  // already being mitigated

  MitigationRecord record;
  record.alert = alert;
  record.plan = plan_mitigation(alert.owned_prefix, alert.observed_prefix, policy);
  record.triggered_at = sim_.now();
  for (const auto& prefix : record.plan.announcements) {
    controller_.announce(prefix);
  }

  // Mitigation outsourcing: helper organizations co-announce (MOAS) when
  // the policy calls for it. For infeasible plans with no announcements,
  // helpers announce the owned prefix itself — competing head-on with the
  // hijacker from (presumably) better-connected positions.
  const auto outsource_mode = policy.outsource;
  const bool activate =
      !helpers_controllers_.empty() &&
      (outsource_mode == MitigationPolicy::Outsource::kAlways ||
       (outsource_mode == MitigationPolicy::Outsource::kWhenInfeasible &&
        !record.plan.deaggregation_possible));
  if (activate) {
    std::vector<net::Prefix> helper_prefixes = record.plan.announcements;
    if (helper_prefixes.empty()) helper_prefixes.push_back(alert.owned_prefix);
    for (auto* helper : helpers_controllers_) {
      for (const auto& prefix : helper_prefixes) helper->announce(prefix);
    }
    record.helpers_used = helpers_controllers_.size();
  }
  by_key_.emplace(key, records_.size());
  records_.push_back(record);
  for (const auto& handler : handlers_) handler(record);
}

}  // namespace artemis::core

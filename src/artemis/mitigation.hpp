// The mitigation service (paper §2): automatic prefix de-aggregation.
//
// On a hijack alert, the service computes the most-specific announcements
// that reclaim the hijacked address space — splitting the affected scope
// into its two halves, as long as those stay within the de-aggregation
// floor (/24; longer prefixes are filtered by the Internet, the paper's
// central caveat) — and pushes them through the Controller without any
// manual step. The elapsed time from alert to controller commands is the
// paper's "~0 s decision + ~15 s controller" segment.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "artemis/alert.hpp"
#include "artemis/config.hpp"
#include "artemis/controller.hpp"
#include "artemis/detection.hpp"

namespace artemis::core {

/// What the service decided to do about one hijack.
struct MitigationPlan {
  /// Sub-prefixes to announce (empty when de-aggregation is infeasible
  /// and reannounce_exact is off).
  std::vector<net::Prefix> announcements;
  /// True when de-aggregation could produce prefixes more specific than
  /// the hijacked scope within the floor. False for /24 victims.
  bool deaggregation_possible = false;
};

/// Computes the plan for a hijack of `observed` overlapping `owned`.
/// Exposed as a free function for unit/property testing.
MitigationPlan plan_mitigation(const net::Prefix& owned, const net::Prefix& observed,
                               const MitigationPolicy& policy);

struct MitigationRecord {
  HijackAlert alert;
  MitigationPlan plan;
  SimTime triggered_at;
  /// Number of helper organizations that also announced the plan (0 when
  /// outsourcing did not activate).
  std::size_t helpers_used = 0;
};

using MitigationHandler = std::function<void(const MitigationRecord&)>;

class MitigationService {
 public:
  /// Snapshot-sharing form: policies are read per-alert from the tenant
  /// that owns the hijacked prefix (alert.tenant), so a shared deployment
  /// can auto-mitigate one tenant and alert-only another.
  MitigationService(std::shared_ptr<const OwnershipTable> table,
                    Controller& controller, sim::Simulator& sim);
  /// Convenience: freezes `config` privately.
  MitigationService(const Config& config, Controller& controller, sim::Simulator& sim);

  /// Swaps the ownership snapshot (incremental reload). Mitigation
  /// records and dedup state survive; alerts raised after the swap use
  /// the new snapshot's per-tenant policies.
  void set_ownership(std::shared_ptr<const OwnershipTable> table);

  /// Wires the service to a detection service's alerts.
  void attach(DetectionService& detection);

  /// Handles one alert directly (tests / manual operation).
  void handle_alert(const HijackAlert& alert);

  /// Registers a helper organization's controller (mitigation
  /// outsourcing). The helper must be able to originate the victim's
  /// prefixes (MOAS) and tunnel traffic back; whether helpers activate is
  /// governed by MitigationPolicy::outsource.
  void add_helper(Controller& controller);

  std::size_t helper_count() const { return helpers_controllers_.size(); }

  void on_mitigation(MitigationHandler handler);

  const std::vector<MitigationRecord>& records() const { return records_; }

 private:
  std::shared_ptr<const OwnershipTable> table_;
  Controller& controller_;
  sim::Simulator& sim_;
  std::vector<Controller*> helpers_controllers_;
  std::vector<MitigationHandler> handlers_;
  std::vector<MitigationRecord> records_;
  /// Dedup: one mitigation per hijack. Keyed by the same POD AlertKey the
  /// detection service dedups on, so the two services agree on what "the
  /// same hijack" means and a repeat alert costs one hash probe, not a
  /// dedup_key() string materialization.
  std::unordered_map<AlertKey, std::size_t, AlertKeyHash> by_key_;
};

}  // namespace artemis::core

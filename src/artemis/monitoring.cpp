#include "artemis/monitoring.hpp"

#include <cmath>

namespace artemis::core {

MonitoringService::MonitoringService(std::shared_ptr<const OwnershipTable> table)
    : table_(std::move(table)) {}

MonitoringService::MonitoringService(const Config& config)
    : MonitoringService(config.build_table()) {}

void MonitoringService::set_ownership(std::shared_ptr<const OwnershipTable> table) {
  table_ = std::move(table);
  state_.clear();
}

void MonitoringService::attach(feeds::MonitorHub& hub) {
  // Batch-native subscription: one handler call AND one memoized lookup
  // context per delivered batch (see process_batch).
  hub.subscribe_batch([this](std::span<const feeds::Observation> batch) {
    process_batch(batch);
  });
}

std::vector<net::IpAddress> MonitoringService::sample_points(
    const net::Prefix& owned) const {
  if (owned.length() >= owned.max_length()) return {owned.address()};
  const auto [low, high] = owned.split();
  return {low.address(), high.address()};
}

bool MonitoringService::compute_legitimate(const VantageView& view,
                                           const OwnedPrefix& owned) const {
  const auto samples = sample_points(owned.prefix);
  for (const auto& addr : samples) {
    const auto hit = view.routes.lookup(addr);
    if (!hit) return false;  // no route: traffic is blackholed, not ours
    if (!owned.legitimate_origins.contains(*hit->second)) return false;
  }
  return true;
}

void MonitoringService::process(const feeds::Observation& obs) {
  BatchCursor cursor;
  process_one(obs, cursor);
}

void MonitoringService::process_batch(std::span<const feeds::Observation> batch) {
  BatchCursor cursor;
  for (const auto& obs : batch) process_one(obs, cursor);
}

void MonitoringService::process_one(const feeds::Observation& obs,
                                    BatchCursor& cursor) {
  // Owned-prefix match memo: archive windows repeat prefixes in bursts,
  // and for the (typical) non-owned majority the memo also short-circuits
  // the scan.
  if (!cursor.prefix_valid || cursor.prefix != obs.prefix) {
    const OwnershipRef ref = table_->match(obs.prefix);
    cursor.owned = ref ? &table_->entry(ref) : nullptr;
    cursor.prefix = obs.prefix;
    cursor.prefix_valid = true;
  }
  const OwnedPrefix* owned = cursor.owned;
  if (owned == nullptr) return;

  // Per-vantage view memo: one map walk per run of equal vantages.
  if (cursor.view == nullptr || cursor.vantage != obs.vantage) {
    cursor.view = &vantages_[obs.vantage];
    cursor.vantage = obs.vantage;
  }
  auto& view = *cursor.view;
  if (obs.type == feeds::ObservationType::kWithdrawal) {
    view.routes.erase(obs.prefix);
  } else {
    view.routes.insert(obs.prefix, obs.origin_as());
  }

  // Recompute legitimacy for every owned prefix this observation touches
  // (a super-prefix can affect several).
  for (std::size_t i = 0; i < table_->owned().size(); ++i) {
    const auto& candidate = table_->owned()[i];
    if (!candidate.prefix.overlaps(obs.prefix)) continue;
    const bool legit = compute_legitimate(view, candidate);
    const auto key = std::make_pair(obs.vantage, i);
    const auto it = state_.find(key);
    if (it != state_.end() && it->second == legit) continue;
    state_[key] = legit;
    VantageChange change;
    change.when = obs.delivered_at;
    change.vantage = obs.vantage;
    change.owned = candidate.prefix;
    change.legitimate = legit;
    if (const auto hit = view.routes.lookup(candidate.prefix.address())) {
      change.current_origin = *hit->second;
    }
    changes_.push_back(change);
    for (const auto& handler : handlers_) handler(change);
  }
}

std::optional<bool> MonitoringService::vantage_legitimate(
    bgp::Asn vantage, const net::Prefix& owned) const {
  for (std::size_t i = 0; i < table_->owned().size(); ++i) {
    if (table_->owned()[i].prefix != owned) continue;
    const auto it = state_.find(std::make_pair(vantage, i));
    if (it == state_.end()) return std::nullopt;
    return it->second;
  }
  return std::nullopt;
}

double MonitoringService::fraction_legitimate(const net::Prefix& owned) const {
  std::size_t with_data = 0;
  std::size_t legit = 0;
  for (std::size_t i = 0; i < table_->owned().size(); ++i) {
    if (table_->owned()[i].prefix != owned) continue;
    for (const auto& [key, value] : state_) {
      if (key.second != i) continue;
      ++with_data;
      if (value) ++legit;
    }
  }
  if (with_data == 0) return std::nan("");
  return static_cast<double>(legit) / static_cast<double>(with_data);
}

bool MonitoringService::all_legitimate(const net::Prefix& owned) const {
  const double fraction = fraction_legitimate(owned);
  return !std::isnan(fraction) && fraction >= 1.0;
}

std::size_t MonitoringService::vantages_with_data(const net::Prefix& owned) const {
  std::size_t with_data = 0;
  for (std::size_t i = 0; i < table_->owned().size(); ++i) {
    if (table_->owned()[i].prefix != owned) continue;
    for (const auto& [key, value] : state_) {
      if (key.second == i) ++with_data;
    }
  }
  return with_data;
}

void MonitoringService::on_change(std::function<void(const VantageChange&)> handler) {
  handlers_.push_back(std::move(handler));
}

}  // namespace artemis::core

// The monitoring service (paper §2, §4).
//
// Runs alongside mitigation and answers, in real time, "which vantage
// points currently route our prefixes to the legitimate origin?" — the
// data behind the demo's world-map visualization and behind the paper's
// mitigation-completion measurement ("until all the vantage points in our
// data have switched to the legitimate ASN", §3).
//
// State is reconstructed purely from feed observations (announce /
// withdraw / route-state), exactly as the deployed tool would: per
// vantage, a miniature RIB over the owned address space; a vantage is
// "legitimate" when every sample address of the owned prefix resolves,
// via longest-prefix match, to a configured legitimate origin.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "artemis/config.hpp"
#include "feeds/monitor_hub.hpp"
#include "feeds/observation.hpp"
#include "netbase/prefix_trie.hpp"

namespace artemis::core {

/// A legitimacy flip at one vantage for one owned prefix.
struct VantageChange {
  SimTime when;
  bgp::Asn vantage = bgp::kNoAsn;
  net::Prefix owned;
  bool legitimate = false;
  bgp::Asn current_origin = bgp::kNoAsn;  ///< origin at the first sample point
};

class MonitoringService {
 public:
  /// Snapshot-sharing form: monitors against the same immutable table the
  /// detector classifies with.
  explicit MonitoringService(std::shared_ptr<const OwnershipTable> table);
  /// Convenience: freezes `config` privately.
  explicit MonitoringService(const Config& config);

  /// Swaps the ownership snapshot (incremental reload; batch-boundary
  /// only, same contract as DetectionService::set_ownership). The cached
  /// legitimacy matrix is keyed by owned-entry index, which a reload can
  /// renumber — it is dropped, so the first post-reload observation
  /// touching an owned prefix re-emits that vantage's current legitimacy
  /// as a change event. Vantage RIBs (rebuilt from the feed, not the
  /// config) survive.
  void set_ownership(std::shared_ptr<const OwnershipTable> table);

  void attach(feeds::MonitorHub& hub);
  void process(const feeds::Observation& obs);

  /// Batch-aware processing: semantics identical to calling process()
  /// per observation (every intermediate legitimacy flip is still
  /// recorded), but the owned-prefix match and the per-vantage view
  /// lookup are memoized across the batch — archive windows arrive as
  /// long runs of one vantage and bursts of one prefix, so the steady
  /// state does one map walk per run instead of one per observation.
  void process_batch(std::span<const feeds::Observation> batch);

  /// Current legitimacy of one vantage for one owned prefix; nullopt if
  /// the vantage has no data covering it yet.
  std::optional<bool> vantage_legitimate(bgp::Asn vantage,
                                         const net::Prefix& owned) const;

  /// Fraction of data-bearing vantages that are legitimate for `owned`.
  /// NaN if no vantage has data.
  double fraction_legitimate(const net::Prefix& owned) const;

  /// True if at least one vantage has data and all of them are legitimate.
  bool all_legitimate(const net::Prefix& owned) const;

  /// Number of vantages with any data for `owned`.
  std::size_t vantages_with_data(const net::Prefix& owned) const;

  /// Every legitimacy flip observed, in delivery order — the timeline the
  /// demo visualizes (E2's per-second series derives from this).
  const std::vector<VantageChange>& changes() const { return changes_; }

  void on_change(std::function<void(const VantageChange&)> handler);

 private:
  struct VantageView {
    /// Observed routes overlapping owned space: prefix -> origin AS.
    net::PrefixTrie<bgp::Asn> routes;
  };

  /// Lookups memoized across one batch (map node pointers are stable
  /// under unrelated insertions, so caching them across observations is
  /// safe; a fresh cursor per call keeps process() behavior unchanged).
  struct BatchCursor {
    bgp::Asn vantage = bgp::kNoAsn;
    VantageView* view = nullptr;
    bool prefix_valid = false;
    net::Prefix prefix;
    const OwnedPrefix* owned = nullptr;
  };

  void process_one(const feeds::Observation& obs, BatchCursor& cursor);

  /// Sample addresses whose LPM decides legitimacy for `owned` (the two
  /// half-prefix bases, so post-mitigation /24s are judged correctly).
  std::vector<net::IpAddress> sample_points(const net::Prefix& owned) const;
  bool compute_legitimate(const VantageView& view, const OwnedPrefix& owned) const;

  std::shared_ptr<const OwnershipTable> table_;
  std::map<bgp::Asn, VantageView> vantages_;
  /// Cached legitimacy per (vantage, owned prefix index).
  std::map<std::pair<bgp::Asn, std::size_t>, bool> state_;
  std::vector<VantageChange> changes_;
  std::vector<std::function<void(const VantageChange&)>> handlers_;
};

}  // namespace artemis::core

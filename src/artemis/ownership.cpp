#include "artemis/ownership.hpp"

namespace artemis::core {

namespace {
/// Process-wide snapshot version source. Starts at 1 so 0 can mean
/// "no table seen yet" in caches keyed on version().
std::atomic<std::uint64_t> g_next_version{1};
}  // namespace

OwnershipTable::OwnershipTable(std::vector<OwnedPrefix> owned,
                               std::vector<TenantInfo> tenants)
    : owned_(std::move(owned)),
      tenants_(std::move(tenants)),
      version_(g_next_version.fetch_add(1, std::memory_order_relaxed)) {
  for (std::size_t i = 0; i < owned_.size(); ++i) {
    index_.insert(owned_[i].prefix, static_cast<std::uint32_t>(i));
  }
  for (const auto& tenant : tenants_) {
    if (tenant.mitigation.auto_mitigate) any_auto_mitigate_ = true;
  }
}

OwnershipRef OwnershipTable::match(const net::Prefix& p) const {
  // Most-specific owned prefix covering p...
  if (const auto hit = index_.lookup_covering(p)) {
    const std::uint32_t idx = *hit->second;
    return OwnershipRef{idx, owned_[idx].tenant};
  }
  // ...otherwise any owned prefix covered by p (super-prefix hijack);
  // first in insertion order wins, matching the old Config::match.
  OwnershipRef found;
  index_.visit_covered(p, [&](const net::Prefix&, const std::uint32_t& idx) {
    if (!found.valid()) found = OwnershipRef{idx, owned_[idx].tenant};
  });
  return found;
}

OwnershipStore::OwnershipStore(std::shared_ptr<const OwnershipTable> initial)
    : table_(std::move(initial)) {}

std::shared_ptr<const OwnershipTable> OwnershipStore::snapshot() const {
  const std::scoped_lock lock(mutex_);
  return table_;
}

void OwnershipStore::publish(std::shared_ptr<const OwnershipTable> table) {
  {
    const std::scoped_lock lock(mutex_);
    table_ = std::move(table);
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace artemis::core

// Multi-tenant ownership: the shared ground-truth table behind detection.
//
// The paper's system monitors one operator's prefixes; the shared
// pipeline serves many tenants — every AS a potential customer — from
// ONE immutable snapshot:
//
//   * OwnershipTable — a frozen, arena-trie-backed snapshot of every
//     owned prefix across every tenant. Lookups ride the same
//     path-compressed trie the RIBs use (~40 ns at internet scale), so
//     lookup cost is independent of the tenant count. Immutable by
//     construction: build it (from a Config), publish it, never touch
//     it again — any thread may read it without synchronization.
//
//   * OwnershipRef — the POD result of a lookup: (owned-entry index,
//     tenant id) instead of a bare OwnedPrefix*. Refs are only
//     meaningful against the table that produced them; holding a ref
//     across a snapshot swap is a bug the index form makes visible
//     (the pointer form made it a use-after-free).
//
//   * OwnershipStore — epoch/RCU-style publication. reload produces a
//     NEW table and publishes it atomically; readers that captured the
//     old shared_ptr keep a consistent view until their batch boundary,
//     then pick up the new snapshot. Nothing restarts, nothing
//     re-replays, no in-flight batch is perturbed.
//
// Overlapping ownership across tenants resolves to a single winner per
// observation (most-specific covering entry, insertion order breaking
// ties among covered entries) — the same semantics the single-operator
// Config::match had, now tenant-tagged.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "bgp/types.hpp"
#include "netbase/prefix.hpp"
#include "netbase/prefix_trie.hpp"

namespace artemis::core {

/// Dense tenant identifier: index into the table's tenant vector. The
/// implicit single-operator tenant (schema v1 configs, --owned flags) is
/// id 0, named "default".
using TenantId = std::uint32_t;
inline constexpr TenantId kDefaultTenantId = 0;

/// One owned prefix and its legitimacy ground truth.
struct OwnedPrefix {
  net::Prefix prefix;
  /// ASNs allowed to originate this prefix (usually one; anycast/multi-
  /// origin setups list several).
  std::set<bgp::Asn> legitimate_origins;
  /// Direct upstream/peer ASNs expected adjacent to the origin in paths.
  /// Empty disables the Type-1 (fake first-hop) check for this prefix.
  std::set<bgp::Asn> legitimate_neighbors;
  /// Owning tenant (kDefaultTenantId for single-operator configs).
  TenantId tenant = kDefaultTenantId;
};

/// Mitigation policy knobs (paper §2: de-aggregation with the /24
/// caveat). Per-tenant: each tenant of a shared deployment chooses its
/// own floor and auto/alert mode.
struct MitigationPolicy {
  /// Announce sub-prefixes no longer than this (the Internet's filtering
  /// boundary). A hijacked prefix is split into its two halves as long as
  /// they are <= this length.
  int deaggregation_floor = 24;
  /// Also re-announce the exact hijacked prefix (helps when the hijack is
  /// losing the tie-break anyway; harmless otherwise).
  bool reannounce_exact = true;
  /// Automatic mitigation on alert; false = detect-only (alert mode).
  bool auto_mitigate = true;
  /// Outsourcing (extension, following the authors' later work): when
  /// helper controllers are registered with the MitigationService, have
  /// the helper organizations announce the mitigation prefixes too (MOAS)
  /// and tunnel the traffic back. kWhenInfeasible only activates helpers
  /// for victims de-aggregation cannot defend (/24s).
  enum class Outsource : std::uint8_t { kNever, kWhenInfeasible, kAlways };
  Outsource outsource = Outsource::kWhenInfeasible;
};

/// One tenant's identity and policy inside a table.
struct TenantInfo {
  TenantId id = kDefaultTenantId;
  std::string name;
  MitigationPolicy mitigation;
};

/// POD lookup result: which owned entry matched and whose it is. Only
/// meaningful against the OwnershipTable that produced it (entry indexes
/// that table's owned() vector).
struct OwnershipRef {
  static constexpr std::uint32_t kInvalidEntry = 0xFFFFFFFFu;
  std::uint32_t entry = kInvalidEntry;
  TenantId tenant = kDefaultTenantId;

  bool valid() const { return entry != kInvalidEntry; }
  explicit operator bool() const { return valid(); }
  bool operator==(const OwnershipRef&) const = default;
};

/// The immutable multi-tenant snapshot. Construct via Config::build_table
/// (or the constructor, for synthetic benches), then share freely:
/// every member is const after construction, so concurrent readers need
/// no synchronization — publication order is the OwnershipStore's (or
/// the pipeline barrier's) business.
class OwnershipTable {
 public:
  /// Freezes `owned` (each entry's `tenant` field must index `tenants`)
  /// and `tenants` (entry i must carry id i) into a snapshot. The trie
  /// is built here — the one cold allocation-heavy step of a reload.
  OwnershipTable(std::vector<OwnedPrefix> owned, std::vector<TenantInfo> tenants);

  OwnershipTable(const OwnershipTable&) = delete;
  OwnershipTable& operator=(const OwnershipTable&) = delete;

  /// The most specific owned prefix overlapping `p` (either direction:
  /// `p` inside an owned prefix — classic / sub-prefix hijack — or `p`
  /// strictly covering an owned prefix — super-prefix announcement), or
  /// an invalid ref. Same semantics as the single-operator Config::match
  /// this replaces, with the winner's tenant tagged on.
  OwnershipRef match(const net::Prefix& p) const;

  /// The entry a valid ref points at. No bounds check — a ref from a
  /// different table is the caller's bug.
  const OwnedPrefix& entry(const OwnershipRef& ref) const {
    return owned_[ref.entry];
  }

  const std::vector<OwnedPrefix>& owned() const { return owned_; }
  bool empty() const { return owned_.empty(); }

  const std::vector<TenantInfo>& tenants() const { return tenants_; }
  /// nullptr for an id this table does not know.
  const TenantInfo* tenant(TenantId id) const {
    return id < tenants_.size() ? &tenants_[id] : nullptr;
  }
  /// The tenant's policy; a default-constructed policy for unknown ids
  /// (so a stale tenant id after a reload degrades, never crashes).
  const MitigationPolicy& policy(TenantId id) const {
    return id < tenants_.size() ? tenants_[id].mitigation : fallback_policy_;
  }
  /// True when any tenant wants automatic mitigation (the app wires the
  /// mitigation handler iff this holds; per-alert policy still decides).
  bool any_auto_mitigate() const { return any_auto_mitigate_; }

  /// Monotonic snapshot identity (process-wide): every built table gets
  /// a fresh version, so "did the snapshot change?" is one integer
  /// compare — the detection prescreen keys its owned-set cache on this.
  std::uint64_t version() const { return version_; }

 private:
  std::vector<OwnedPrefix> owned_;
  std::vector<TenantInfo> tenants_;
  net::PrefixTrie<std::uint32_t> index_;  ///< prefix -> index into owned_
  MitigationPolicy fallback_policy_;
  bool any_auto_mitigate_ = false;
  std::uint64_t version_ = 0;
};

/// Epoch-published snapshot holder: the reload seam. publish() swaps the
/// current table under a mutex and bumps a relaxed epoch counter;
/// snapshot() hands out the current shared_ptr. Readers poll epoch() —
/// one relaxed load — to learn that a newer snapshot exists, then call
/// snapshot() (mutex, cold) to fetch it at their next batch boundary.
class OwnershipStore {
 public:
  explicit OwnershipStore(std::shared_ptr<const OwnershipTable> initial);

  std::shared_ptr<const OwnershipTable> snapshot() const;
  void publish(std::shared_ptr<const OwnershipTable> table);

  /// Bumped once per publish. Relaxed — pair with snapshot() for the
  /// data; the epoch only says "go look".
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const OwnershipTable> table_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace artemis::core

#include "artemis/scenario.hpp"

#include <stdexcept>

#include "journal/reader.hpp"
#include "journal/replay.hpp"
#include "util/strings.hpp"

namespace artemis::core {
namespace {

/// Resolves "stub:N" / "tier2:N" / "tier1:N" / "<asn>" actor references.
bgp::Asn resolve_actor(const topo::AsGraph& graph, const std::string& ref) {
  const auto fields = split(ref, ':');
  if (fields.size() == 1) {
    const auto asn = parse_u32(fields[0]);
    if (!asn || *asn == 0 || !graph.has_as(*asn)) {
      throw std::invalid_argument("unknown actor ASN: " + ref);
    }
    return *asn;
  }
  if (fields.size() != 2) throw std::invalid_argument("bad actor reference: " + ref);
  topo::Tier tier;
  if (fields[0] == "tier1") {
    tier = topo::Tier::kTier1;
  } else if (fields[0] == "tier2") {
    tier = topo::Tier::kTier2;
  } else if (fields[0] == "stub") {
    tier = topo::Tier::kStub;
  } else {
    throw std::invalid_argument("bad actor tier: " + ref);
  }
  const auto members = graph.ases_in_tier(tier);
  if (members.empty()) throw std::invalid_argument("tier is empty: " + ref);
  std::string_view index_text = fields[1];
  bool from_back = false;
  if (!index_text.empty() && index_text.front() == '-') {
    from_back = true;
    index_text.remove_prefix(1);
  }
  const auto index = parse_u64(index_text);
  if (!index) throw std::invalid_argument("bad actor index: " + ref);
  std::size_t position = 0;
  if (from_back) {
    if (*index == 0 || *index > members.size()) {
      throw std::invalid_argument("actor index out of range: " + ref);
    }
    position = members.size() - *index;
  } else {
    if (*index >= members.size()) {
      throw std::invalid_argument("actor index out of range: " + ref);
    }
    position = *index;
  }
  return members[position];
}

}  // namespace

Scenario load_scenario(const json::Value& doc) {
  Scenario scenario;
  scenario.seed = static_cast<std::uint64_t>(doc.get_int("seed", 42));

  if (const auto* topology = doc.find("topology")) {
    scenario.topology.tier1_count = static_cast<int>(topology->get_int("tier1", 10));
    scenario.topology.tier2_count = static_cast<int>(topology->get_int("tier2", 140));
    scenario.topology.stub_count = static_cast<int>(topology->get_int("stubs", 1450));
    scenario.topology.min_providers =
        static_cast<int>(topology->get_int("min_providers", 1));
    scenario.topology.max_providers =
        static_cast<int>(topology->get_int("max_providers", 3));
    scenario.topology.tier2_peering_prob = topology->get_number("peering_prob", 0.05);
  }

  if (const auto* network = doc.find("network")) {
    scenario.network.mrai = SimDuration::seconds(network->get_number("mrai_s", 30.0));
    scenario.network.max_accepted_prefix_len =
        static_cast<int>(network->get_int("max_prefix_len", 24));
    scenario.network.min_link_delay =
        SimDuration::millis(network->get_int("min_link_delay_ms", 10));
    scenario.network.max_link_delay =
        SimDuration::millis(network->get_int("max_link_delay_ms", 150));
  }

  Rng rng(scenario.seed);
  auto topo_rng = rng.fork("topology");
  scenario.graph = topo::generate_topology(scenario.topology, topo_rng);

  const auto& experiment = doc.at("experiment");
  auto& params = scenario.experiment;
  const auto victim_prefix_text =
      experiment.get_string("victim_prefix", "10.0.0.0/23");
  const auto victim_prefix = net::Prefix::parse(victim_prefix_text);
  if (!victim_prefix) {
    throw std::invalid_argument("bad victim_prefix: " + victim_prefix_text);
  }
  params.victim_prefix = *victim_prefix;
  params.victim =
      resolve_actor(scenario.graph, experiment.get_string("victim", "stub:0"));
  params.attacker =
      resolve_actor(scenario.graph, experiment.get_string("attacker", "stub:-1"));
  if (params.victim == params.attacker) {
    throw std::invalid_argument("victim and attacker must differ");
  }
  if (const auto* hijack_prefix = experiment.find("hijack_prefix")) {
    const auto parsed = net::Prefix::parse(hijack_prefix->as_string());
    if (!parsed) throw std::invalid_argument("bad hijack_prefix");
    params.hijack_prefix = *parsed;
  }
  if (experiment.get_bool("forged_first_hop", false)) {
    params.forged_path = bgp::AsPath({params.attacker, params.victim});
  }
  params.hijack_at = SimTime::at_seconds(experiment.get_number("hijack_at_s", 3600.0));
  params.horizon = SimDuration::minutes(experiment.get_number("horizon_min", 30.0));
  params.helper_count = static_cast<int>(experiment.get_int("helper_count", 0));
  params.app.detection.detect_fake_first_hop =
      experiment.get_bool("detect_fake_first_hop", false);
  params.app.controller_latency =
      SimDuration::seconds(experiment.get_number("controller_latency_s", 15.0));
  const std::int64_t shards = experiment.get_int("detection_shards", 1);
  if (shards < 1 || shards > 1024) {
    throw std::invalid_argument("detection_shards out of range [1, 1024]: " +
                                std::to_string(shards));
  }
  params.app.detection_shards = static_cast<std::size_t>(shards);
  // Threaded detection knobs. Recorded in the scenario so a replay run is
  // reproducible from the artifact alone; the live simulation ignores
  // them (inline dispatch, see experiment.cpp).
  params.app.detection_threaded =
      experiment.get_bool("detection_threaded", false);
  const std::string wait_policy =
      experiment.get_string("detection_wait_policy", "");
  if (!wait_policy.empty() &&
      !pipeline::parse_wait_policy(wait_policy,
                                   params.app.detection_wait_policy)) {
    throw std::invalid_argument(
        "detection_wait_policy must be busy_poll or futex, got \"" +
        wait_policy + "\"");
  }
  params.app.detection_pin = experiment.get_bool("detection_pin", false);
  // Observation flight recorder: record every hub delivery to this
  // directory (replayable with scenario_runner --replay).
  params.app.journal_dir = experiment.get_string("journal_dir", "");
  const std::string fsync = experiment.get_string("journal_fsync", "");
  if (!fsync.empty() &&
      !journal::parse_fsync_policy(fsync, params.app.journal)) {
    throw std::invalid_argument(
        "journal_fsync must be never, on_rotate, or interval:<ms>, got \"" +
        fsync + "\"");
  }
  return scenario;
}

Scenario load_scenario_text(std::string_view text) {
  return load_scenario(json::parse(text));
}

ExperimentResult Scenario::run() const {
  Rng rng(seed);
  HijackExperiment experiment(graph, network, this->experiment, rng.fork("experiment"));
  return experiment.run();
}

json::Value replay_scenario_journal(const Scenario& scenario,
                                    const std::string& journal_dir,
                                    ReplayRunOptions options) {
  // The restarted-monitor configuration: a fresh app with the recording
  // run's exact ground truth (same helper recruitment, same owned-prefix
  // config), no recording tap, no live feeds — the journal is the only
  // observation source, so the simulator drains once replay (and any
  // mitigation it triggers) has run its course.
  ExperimentParams params = scenario.experiment;
  params.app.journal_dir.clear();
  params.app.metrics = options.metrics;
  if (options.detection_shards > 0) {
    params.app.detection_shards = options.detection_shards;
  }
  if (options.threaded) params.app.detection_threaded = *options.threaded;
  if (options.wait_policy) params.app.detection_wait_policy = *options.wait_policy;
  if (options.pin) params.app.detection_pin = *options.pin;
  if (params.app.detection_threaded && options.speedup > 0.0) {
    // Warped replay runs the simulator concurrently with delivery; shard
    // workers would race the sim thread through the mitigation path.
    throw std::invalid_argument(
        "threaded detection requires full-speed replay (no --warp)");
  }
  const auto helpers = recruit_helpers(scenario.graph, params);
  Config config = build_experiment_config(scenario.graph, params, helpers);
  Rng rng(scenario.seed);
  sim::Network network(scenario.graph, scenario.network, rng.fork("network"));
  ArtemisApp app(std::move(config), network, params.victim, params.app);
  const auto helper_controllers =
      wire_helpers(app, network, helpers, params.app.controller_latency);

  journal::JournalReader reader(journal_dir);
  journal::ReplayOptions replay_options;
  replay_options.batch_size = options.batch_size;
  replay_options.speedup = options.speedup > 0.0 ? options.speedup : 1.0;
  journal::ReplayFeed replay(reader, replay_options);
  if (options.speedup > 0.0) {
    auto& sim = network.simulator();
    replay.schedule(sim, app.hub().batch_inlet());
    sim.run_all();
  } else {
    replay.replay_all(app.hub());
    // Threaded detection: barrier before touching the sim or reading
    // state — every alert (and the mitigation events its handler
    // scheduled) must exist before the drain below.
    app.sharded_detection().flush();
    // Replay-triggered mitigation scheduled controller/BGP events on the
    // sim; drain them so both replay modes leave the same network state.
    network.simulator().run_all();
  }

  json::Object out;
  out["replayed"] = json::Value(static_cast<std::int64_t>(replay.replayed()));
  out["segments"] = json::Value(static_cast<std::int64_t>(reader.segment_count()));
  out["truncated_tail"] = json::Value(reader.truncated_tail());
  out["detection_shards"] =
      json::Value(static_cast<std::int64_t>(params.app.detection_shards));

  json::Array alerts;
  for (const auto& alert : app.sharded_detection().merged_alerts()) {
    json::Object entry;
    entry["type"] = json::Value(std::string(to_string(alert.type)));
    entry["owned_prefix"] = json::Value(alert.owned_prefix.to_string());
    entry["observed_prefix"] = json::Value(alert.observed_prefix.to_string());
    entry["offender"] = json::Value(static_cast<std::int64_t>(alert.offender));
    entry["path"] = json::Value(alert.observed_path.to_string());
    entry["vantage"] = json::Value(static_cast<std::int64_t>(alert.vantage));
    entry["source"] = json::Value(alert.source);
    entry["event_time_s"] = json::Value(alert.event_time.as_seconds());
    entry["detected_at_s"] = json::Value(alert.detected_at.as_seconds());
    alerts.emplace_back(std::move(entry));
  }
  out["alerts"] = json::Value(std::move(alerts));

  json::Object per_source;
  for (const auto& [source, count] : app.hub().per_source_counts()) {
    per_source[source] = json::Value(static_cast<std::int64_t>(count));
  }
  out["observations_by_source"] = json::Value(std::move(per_source));
  out["mitigations"] =
      json::Value(static_cast<std::int64_t>(app.mitigation().records().size()));
  if (options.metrics != nullptr) {
    const auto delay =
        options.metrics->histogram_snapshot("artemis_detection_delay_seconds");
    if (delay.total > 0) {
      // Replay clock = recorded sim clock, so these are the paper's
      // detection-delay percentiles for the recorded run.
      json::Object pct;
      pct["count"] = json::Value(static_cast<std::int64_t>(delay.total));
      pct["p50_s"] = json::Value(delay.quantile(0.50) * 1e-6);
      pct["p95_s"] = json::Value(delay.quantile(0.95) * 1e-6);
      pct["p99_s"] = json::Value(delay.quantile(0.99) * 1e-6);
      pct["max_s"] = json::Value(static_cast<double>(delay.max) * 1e-6);
      out["detection_delay_percentiles"] = json::Value(std::move(pct));
    }
  }
  return json::Value(std::move(out));
}

json::Value result_to_json(const ExperimentResult& result) {
  json::Object out;
  out["hijack_at_s"] = json::Value(result.hijack_at.as_seconds());
  if (result.detected_at) {
    out["detected"] = json::Value(true);
    out["detection_delay_s"] = json::Value(result.detection_delay()->as_seconds());
    out["detection_source"] = json::Value(result.detection_source);
    json::Object by_source;
    for (const auto& [source, when] : result.detection_by_source) {
      by_source[source] = json::Value((when - result.hijack_at).as_seconds());
    }
    out["detection_by_source_s"] = json::Value(std::move(by_source));
  } else {
    out["detected"] = json::Value(false);
  }
  if (const auto d = result.mitigation_start_delay()) {
    out["mitigation_start_delay_s"] = json::Value(d->as_seconds());
  }
  if (const auto d = result.mitigation_duration()) {
    out["mitigation_duration_s"] = json::Value(d->as_seconds());
  }
  if (const auto d = result.total_duration()) {
    out["total_duration_s"] = json::Value(d->as_seconds());
  }
  json::Array announcements;
  for (const auto& prefix : result.mitigation_announcements) {
    announcements.emplace_back(prefix.to_string());
  }
  out["mitigation_announcements"] = json::Value(std::move(announcements));
  out["deaggregation_possible"] = json::Value(result.deaggregation_possible);
  out["helpers_used"] = json::Value(static_cast<std::int64_t>(result.helpers_used));
  out["max_hijacked_fraction"] = json::Value(result.max_hijacked_fraction);
  out["max_hijacked_impact"] = json::Value(result.max_hijacked_impact);
  json::Array timeline;
  for (const auto& sample : result.timeline) {
    json::Object point;
    point["t_s"] = json::Value(sample.when.as_seconds());
    point["truth"] = json::Value(sample.truth_fraction);
    point["feed"] = json::Value(sample.feed_fraction);
    timeline.emplace_back(std::move(point));
  }
  out["timeline"] = json::Value(std::move(timeline));
  return json::Value(std::move(out));
}

}  // namespace artemis::core

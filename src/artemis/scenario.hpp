// JSON-driven experiment scenarios.
//
// Everything HijackExperiment needs — topology shape, network timing,
// actors, sources, extensions — expressed as one JSON document, so whole
// experiments are reproducible artifacts (the `scenario_runner` example
// executes them from the command line). Schema:
//
// {
//   "seed": 42,
//   "topology": {"tier1": 10, "tier2": 140, "stubs": 1450,
//                "min_providers": 1, "max_providers": 3,
//                "peering_prob": 0.05},
//   "network":  {"mrai_s": 30, "max_prefix_len": 24,
//                "min_link_delay_ms": 10, "max_link_delay_ms": 150},
//   "experiment": {
//     "victim_prefix": "10.0.0.0/23",
//     "victim": "stub:0", "attacker": "stub:-1",    // or explicit ASNs
//     "hijack_prefix": "10.0.1.0/24",               // optional
//     "forged_first_hop": false,                    // Type-1 attack
//     "hijack_at_s": 3600, "horizon_min": 30,
//     "helper_count": 0,
//     "detect_fake_first_hop": false,
//     "controller_latency_s": 15
//   }
// }
//
// Actor references: "stub:N" / "tier2:N" / "tier1:N" index into the
// generated tiers (negative N counts from the back); a bare number is an
// explicit ASN.
#pragma once

#include <optional>
#include <string>

#include "artemis/experiment.hpp"
#include "json/json.hpp"
#include "pipeline/wait_policy.hpp"
#include "telemetry/metrics.hpp"
#include "topology/generator.hpp"

namespace artemis::core {

struct Scenario {
  std::uint64_t seed = 42;
  topo::GeneratorParams topology;
  sim::NetworkParams network;
  ExperimentParams experiment;
  /// The generated graph (filled by load/build).
  topo::AsGraph graph;

  /// Runs the scenario (builds the experiment and executes all phases).
  ExperimentResult run() const;
};

/// Parses and materializes a scenario: generates the topology and
/// resolves actor references. Throws json::JsonError /
/// std::invalid_argument on malformed documents.
Scenario load_scenario(const json::Value& doc);
Scenario load_scenario_text(std::string_view text);

/// Serializes a result for machine consumption (the CLI's output).
json::Value result_to_json(const ExperimentResult& result);

struct ReplayRunOptions {
  /// 0 = as fast as possible (no simulator pacing); > 0 = time-warped
  /// replay at this multiple of the recorded pacing.
  double speedup = 0.0;
  /// Overrides the scenario's detection_shards when set (> 0) — the
  /// determinism headline: any shard count yields identical output.
  std::size_t detection_shards = 0;
  std::size_t batch_size = 1024;
  /// Threaded detection override (scenario value when nullopt). Only
  /// valid for full-speed replay (speedup == 0): a time-warped replay
  /// interleaves the simulator with delivery, and worker threads would
  /// race the running sim — replay_scenario_journal throws on that
  /// combination. Output stays bit-identical to inline (flushed before
  /// the sim drains and before alerts are read).
  std::optional<bool> threaded;
  std::optional<pipeline::WaitPolicy> wait_policy;
  std::optional<bool> pin;
  /// When set, the replay app registers telemetry in this registry and
  /// the result JSON gains a "detection_delay_percentiles" object (from
  /// the artemis_detection_delay_seconds histogram over the replayed
  /// sim-clock stream). Observation-only; alerts are unchanged.
  telemetry::MetricsRegistry* metrics = nullptr;
};

/// Replays a recorded observation journal through a fresh app built from
/// this scenario's config (same ground truth, detection and mitigation
/// wiring — but no live simulation driving the feeds). Returns the
/// replayed detection/mitigation view as JSON: because detection is
/// deterministic in the delivered stream, this must match the recording
/// run's alerts bit-for-bit, for any shard count or replay speed.
/// Throws journal::JournalError on a damaged journal.
json::Value replay_scenario_journal(const Scenario& scenario,
                                    const std::string& journal_dir,
                                    ReplayRunOptions options = {});

}  // namespace artemis::core

// Empirical hijack-duration model (E4).
//
// The paper's coverage argument rests on measured hijack lifetimes from
// Argus (Shi et al., IMC 2012): "more than 20% of hijacks last < 10 min"
// (§1) and ARTEMIS's ~6 min cycle "is smaller than the duration of > 80%
// of the hijacking cases" (§3). We model durations as log-normal — the
// standard fit for heavy-tailed incident lifetimes — with parameters
// chosen so both quoted quantiles hold:
//   P(duration < 6 min)  ≈ 0.20
//   P(duration < 10 min) in (0.20, 0.35)
#pragma once

#include "util/rng.hpp"
#include "util/time.hpp"

namespace artemis::baseline {

class HijackDurationModel {
 public:
  /// Parameters of the underlying normal in ln(minutes). Defaults are the
  /// calibrated fit described above (median ≈ 35 min, heavy tail).
  explicit HijackDurationModel(double mu = 3.561, double sigma = 2.102);

  SimDuration sample(Rng& rng) const;

  /// P(duration <= d), exact (log-normal CDF).
  double cdf(SimDuration d) const;

  /// Inverse CDF (quantile in minutes), q in (0,1).
  SimDuration quantile(double q) const;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

}  // namespace artemis::baseline

#include "baseline/legacy_pipeline.hpp"

namespace artemis::baseline {

LegacyPipeline::LegacyPipeline(const core::Config& config, sim::Simulator& sim,
                               OperatorModel model, Rng rng, std::string name)
    : detector_(config), sim_(sim), model_(model), rng_(rng), name_(std::move(name)) {
  detector_.on_alert([this](const core::HijackAlert& alert) {
    if (timings_) return;  // model the first incident only
    LegacyTimings timings;
    timings.data_available_at = alert.detected_at;
    const SimDuration verify =
        rng_.uniform_duration(model_.verification_min, model_.verification_max);
    const SimDuration mitigate =
        rng_.uniform_duration(model_.mitigation_min, model_.mitigation_max);
    timings.verified_at = timings.data_available_at + verify;
    timings.mitigation_done_at = timings.verified_at + mitigate;
    timings_ = timings;
  });
}

feeds::ObservationHandler LegacyPipeline::inlet() {
  return [this](const feeds::Observation& obs) { detector_.process(obs); };
}

}  // namespace artemis::baseline

// Legacy detection/mitigation pipelines the paper argues against (§1).
//
// A LegacyPipeline couples a detector fed by some BGP data source with a
// human-operator model:
//   (i)   data availability delay — supplied by the feed (BatchFeed's
//         15-min update archives / 2-h RIBs, or a streaming alert service
//         like PHAS/BGPmon alerts);
//   (ii)  manual verification — the operator must confirm the third-party
//         notification is not a false alarm before acting;
//   (iii) manual mitigation — reconfiguring routers / contacting other
//         ASes to filter (the YouTube incident's ~80 min reaction).
// The pipeline reuses ARTEMIS's DetectionService for the route checks, so
// the comparison isolates exactly the paper's argument: the *pipeline*,
// not the classifier, is what is slow.
#pragma once

#include <optional>
#include <string>

#include "artemis/config.hpp"
#include "artemis/detection.hpp"
#include "feeds/observation.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace artemis::baseline {

struct OperatorModel {
  /// Time for a human to pick up and verify a third-party alert.
  /// Defaults follow the paper's motivating numbers: tens of minutes.
  SimDuration verification_min = SimDuration::minutes(10);
  SimDuration verification_max = SimDuration::minutes(40);
  /// Time to manually effect mitigation (router reconfig, emails to
  /// upstreams). YouTube 2008: ~80 min from hijack to reaction overall.
  SimDuration mitigation_min = SimDuration::minutes(15);
  SimDuration mitigation_max = SimDuration::minutes(60);
};

struct LegacyTimings {
  SimTime data_available_at;      ///< offending route delivered by the feed
  SimTime verified_at;            ///< operator confirmed the hijack
  SimTime mitigation_done_at;     ///< manual mitigation completed
};

/// Consumes observations (attach to any feed), raises a timeline for the
/// first detected hijack.
class LegacyPipeline {
 public:
  LegacyPipeline(const core::Config& config, sim::Simulator& sim, OperatorModel model,
                 Rng rng, std::string name);

  /// Handler to subscribe to a feed.
  feeds::ObservationHandler inlet();

  const std::string& name() const { return name_; }

  /// Timings of the first hijack this pipeline saw; nullopt if none yet.
  std::optional<LegacyTimings> first_hijack() const { return timings_; }

 private:
  core::DetectionService detector_;
  sim::Simulator& sim_;
  OperatorModel model_;
  Rng rng_;
  std::string name_;
  std::optional<LegacyTimings> timings_;
};

}  // namespace artemis::baseline

#include "bgp/rib.hpp"

#include <algorithm>
#include <cassert>

namespace artemis::bgp {

bool better_route(const Route& a, const Route& b) {
  if (a.attrs.local_pref != b.attrs.local_pref) {
    return a.attrs.local_pref > b.attrs.local_pref;
  }
  if (a.path_length() != b.path_length()) return a.path_length() < b.path_length();
  if (a.attrs.origin != b.attrs.origin) return a.attrs.origin < b.attrs.origin;
  if (a.attrs.med != b.attrs.med) return a.attrs.med < b.attrs.med;
  return a.learned_from < b.learned_from;
}

void LocRib::Entry::recompute_best() {
  assert(!candidates.empty());
  std::size_t chosen = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (better_route(candidates[i], candidates[chosen])) chosen = i;
  }
  best_idx = chosen;
}

std::size_t LocRib::Entry::find_candidate(Asn from) const {
  std::size_t i = 0;
  while (i < candidates.size() && candidates[i].learned_from != from) ++i;
  return i;
}

std::optional<BestRouteChange> LocRib::announce(const Route& route) {
  Entry* entry = table_.find(route.prefix);
  if (entry == nullptr) {
    Entry fresh;
    fresh.candidates.push_back(route);
    fresh.best_idx = 0;
    table_.insert(route.prefix, std::move(fresh));
    return BestRouteChange{route.prefix, std::nullopt, route};
  }

  const std::size_t slot = entry->find_candidate(route.learned_from);
  if (slot < entry->candidates.size()) {
    // Attribute-identical refresh can never move best: done, zero copies.
    // (operator== ignores installed_at, which RIB dumps export, so carry
    // the refresh time over like the full overwrite used to.)
    if (entry->candidates[slot] == route) {
      entry->candidates[slot].installed_at = route.installed_at;
      return std::nullopt;
    }
    const std::size_t old_best_idx = entry->best_idx;
    // Overwriting the current best destroys the only copy of the old
    // winner; save it just for the change report in that one case. A
    // non-best slot leaves the old winner intact in place.
    std::optional<Route> displaced;
    if (slot == old_best_idx) displaced = std::move(entry->candidates[slot]);
    entry->candidates[slot] = route;
    entry->recompute_best();
    const Route& old_best = displaced ? *displaced : entry->candidates[old_best_idx];
    if (entry->best() == old_best) return std::nullopt;
    return BestRouteChange{route.prefix, old_best, entry->best()};
  }

  // New neighbor: insert keeping ascending learned-from order, so
  // enumeration matches the previous std::map-backed behavior.
  const auto pos = std::lower_bound(
      entry->candidates.begin(), entry->candidates.end(), route.learned_from,
      [](const Route& r, Asn from) { return r.learned_from < from; });
  const auto inserted = static_cast<std::size_t>(pos - entry->candidates.begin());
  const std::size_t old_best_idx =
      entry->best_idx + (inserted <= entry->best_idx ? 1 : 0);
  entry->candidates.insert(pos, route);
  entry->best_idx = old_best_idx;
  if (!better_route(entry->candidates[inserted], entry->best())) {
    return std::nullopt;
  }
  entry->best_idx = inserted;
  return BestRouteChange{route.prefix, entry->candidates[old_best_idx], entry->best()};
}

std::optional<BestRouteChange> LocRib::withdraw(const net::Prefix& prefix, Asn from) {
  Entry* entry = table_.find(prefix);
  if (entry == nullptr) return std::nullopt;
  const std::size_t slot = entry->find_candidate(from);
  if (slot == entry->candidates.size()) return std::nullopt;

  if (slot != entry->best_idx) {
    // Removing a losing candidate never changes the best route.
    entry->candidates.erase(entry->candidates.begin() +
                            static_cast<std::ptrdiff_t>(slot));
    if (slot < entry->best_idx) --entry->best_idx;
    return std::nullopt;
  }

  Route old_best = std::move(entry->candidates[slot]);
  entry->candidates.erase(entry->candidates.begin() +
                          static_cast<std::ptrdiff_t>(slot));
  if (entry->candidates.empty()) {
    table_.erase(prefix);
    return BestRouteChange{prefix, std::move(old_best), std::nullopt};
  }
  entry->recompute_best();
  // The new winner is learned from a different neighbor, so it always
  // compares unequal to the withdrawn best: report the change.
  return BestRouteChange{prefix, std::move(old_best), entry->best()};
}

const Route* LocRib::best(const net::Prefix& prefix) const {
  const Entry* entry = table_.find(prefix);
  return entry != nullptr ? &entry->best() : nullptr;
}

std::vector<Route> LocRib::candidates(const net::Prefix& prefix) const {
  const Entry* entry = table_.find(prefix);
  return entry != nullptr ? entry->candidates : std::vector<Route>{};
}

std::optional<Route> LocRib::lookup(const net::IpAddress& addr) const {
  const auto hit = table_.lookup(addr);
  if (!hit) return std::nullopt;
  return hit->second->best();
}

void LocRib::visit_best(const std::function<void(const Route&)>& fn) const {
  table_.visit_all([&fn](const net::Prefix&, const Entry& entry) { fn(entry.best()); });
}

void LocRib::visit_covered(const net::Prefix& p,
                           const std::function<void(const Route&)>& fn) const {
  table_.visit_covered(
      p, [&fn](const net::Prefix&, const Entry& entry) { fn(entry.best()); });
}

}  // namespace artemis::bgp

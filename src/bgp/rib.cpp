#include "bgp/rib.hpp"

#include <cassert>

namespace artemis::bgp {

bool better_route(const Route& a, const Route& b) {
  if (a.attrs.local_pref != b.attrs.local_pref) {
    return a.attrs.local_pref > b.attrs.local_pref;
  }
  if (a.path_length() != b.path_length()) return a.path_length() < b.path_length();
  if (a.attrs.origin != b.attrs.origin) return a.attrs.origin < b.attrs.origin;
  if (a.attrs.med != b.attrs.med) return a.attrs.med < b.attrs.med;
  return a.learned_from < b.learned_from;
}

void LocRib::Entry::recompute_best() {
  assert(!candidates.empty());
  const Route* chosen = nullptr;
  for (const auto& [from, route] : candidates) {
    if (chosen == nullptr || better_route(route, *chosen)) chosen = &route;
  }
  best = *chosen;
}

std::optional<BestRouteChange> LocRib::announce(const Route& route) {
  Entry* entry = table_.find(route.prefix);
  if (entry == nullptr) {
    Entry fresh;
    fresh.candidates.emplace(route.learned_from, route);
    fresh.best = route;
    table_.insert(route.prefix, std::move(fresh));
    return BestRouteChange{route.prefix, std::nullopt, route};
  }
  const Route old_best = entry->best;
  entry->candidates[route.learned_from] = route;
  entry->recompute_best();
  if (entry->best == old_best) return std::nullopt;
  return BestRouteChange{route.prefix, old_best, entry->best};
}

std::optional<BestRouteChange> LocRib::withdraw(const net::Prefix& prefix, Asn from) {
  Entry* entry = table_.find(prefix);
  if (entry == nullptr) return std::nullopt;
  const auto it = entry->candidates.find(from);
  if (it == entry->candidates.end()) return std::nullopt;
  const Route old_best = entry->best;
  entry->candidates.erase(it);
  if (entry->candidates.empty()) {
    table_.erase(prefix);
    return BestRouteChange{prefix, old_best, std::nullopt};
  }
  entry->recompute_best();
  if (entry->best == old_best) return std::nullopt;
  return BestRouteChange{prefix, old_best, entry->best};
}

const Route* LocRib::best(const net::Prefix& prefix) const {
  const Entry* entry = table_.find(prefix);
  return entry != nullptr ? &entry->best : nullptr;
}

std::vector<Route> LocRib::candidates(const net::Prefix& prefix) const {
  std::vector<Route> out;
  const Entry* entry = table_.find(prefix);
  if (entry != nullptr) {
    out.reserve(entry->candidates.size());
    for (const auto& [from, route] : entry->candidates) out.push_back(route);
  }
  return out;
}

std::optional<Route> LocRib::lookup(const net::IpAddress& addr) const {
  const auto hit = table_.lookup(addr);
  if (!hit) return std::nullopt;
  return hit->second->best;
}

void LocRib::visit_best(const std::function<void(const Route&)>& fn) const {
  table_.visit_all([&fn](const net::Prefix&, const Entry& entry) { fn(entry.best); });
}

void LocRib::visit_covered(const net::Prefix& p,
                           const std::function<void(const Route&)>& fn) const {
  table_.visit_covered(p, [&fn](const net::Prefix&, const Entry& entry) { fn(entry.best); });
}

}  // namespace artemis::bgp

// Routing Information Bases and the BGP decision process.
//
// LocRib keeps, per prefix, every candidate route (one per neighbor it was
// learned from) and the current best route selected by the standard
// decision process. The simulator gives every AS one LocRib; vantage
// points and collectors reuse the same type.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "bgp/route.hpp"
#include "netbase/prefix_trie.hpp"

namespace artemis::bgp {

/// Full decision-process comparison (RFC 4271 §9.1 subset, deterministic):
/// 1. higher LOCAL_PREF   (set by import policy; encodes Gao–Rexford)
/// 2. shorter AS_PATH
/// 3. lower ORIGIN
/// 4. lower MED
/// 5. lower neighbor ASN  (deterministic tie-break)
/// Returns true if `a` is strictly preferred over `b`.
bool better_route(const Route& a, const Route& b);

/// Outcome of applying an announcement/withdrawal to a LocRib.
struct BestRouteChange {
  net::Prefix prefix;
  std::optional<Route> old_best;  ///< nullopt if the prefix was absent
  std::optional<Route> new_best;  ///< nullopt if the prefix is now gone

  bool is_new_prefix() const { return !old_best.has_value(); }
  bool is_removal() const { return !new_best.has_value(); }
};

/// A Loc-RIB with per-neighbor candidate tracking.
class LocRib {
 public:
  /// Installs/overwrites the candidate from `route.learned_from` and
  /// re-runs best selection. Returns the change iff the best route for the
  /// prefix changed (attribute-identical refreshes return nullopt).
  std::optional<BestRouteChange> announce(const Route& route);

  /// Removes the candidate for `prefix` learned from `from`. Returns the
  /// change iff the best route changed (including removal of the prefix).
  std::optional<BestRouteChange> withdraw(const net::Prefix& prefix, Asn from);

  /// Current best route for an exact prefix, or nullptr.
  const Route* best(const net::Prefix& prefix) const;

  /// All current candidates for an exact prefix (empty if absent).
  std::vector<Route> candidates(const net::Prefix& prefix) const;

  /// Longest-prefix-match forwarding decision for an address.
  std::optional<Route> lookup(const net::IpAddress& addr) const;

  /// Visits the best route of every prefix in the table.
  void visit_best(const std::function<void(const Route&)>& fn) const;

  /// Visits best routes for prefixes covered by `p` (equal/more specific).
  void visit_covered(const net::Prefix& p,
                     const std::function<void(const Route&)>& fn) const;

  /// Number of prefixes with at least one candidate.
  std::size_t prefix_count() const { return table_.size(); }

 private:
  struct Entry {
    /// Candidates in ascending learned-from ASN order (kNoAsn first keys
    /// self-originated routes); a flat vector because real entries hold a
    /// handful of neighbors, so linear probes beat node-based maps and
    /// steady-state announces touch no heap. Invariant: non-empty while
    /// the entry is in the trie.
    std::vector<Route> candidates;
    /// Index of the decision-process winner in `candidates` — kept as an
    /// index so recomputation never copies a Route.
    std::size_t best_idx = 0;

    const Route& best() const { return candidates[best_idx]; }
    /// Scans candidates and updates best_idx (no copies).
    void recompute_best();
    /// Index of the candidate learned from `from`, or candidates.size().
    std::size_t find_candidate(Asn from) const;
  };

  net::PrefixTrie<Entry> table_;
};

}  // namespace artemis::bgp

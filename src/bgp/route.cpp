#include "bgp/route.hpp"

namespace artemis::bgp {

std::string Route::to_string() const {
  std::string out = prefix.to_string();
  out += " path [";
  out += attrs.as_path.to_string();
  out += "]";
  if (learned_from != kNoAsn) {
    out += " from AS";
    out += std::to_string(learned_from);
  }
  return out;
}

}  // namespace artemis::bgp

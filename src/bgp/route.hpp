// A BGP route: one prefix with the path attributes it was announced with.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "bgp/types.hpp"
#include "netbase/prefix.hpp"
#include "util/time.hpp"

namespace artemis::bgp {

/// Path attributes shared by all NLRI of one UPDATE.
struct PathAttributes {
  AsPath as_path;
  Origin origin = Origin::kIgp;
  std::uint32_t local_pref = 100;  ///< significant only inside the receiving AS
  std::uint32_t med = 0;
  std::vector<Community> communities;

  /// Restores the default-constructed values IN PLACE, keeping the
  /// path/community vector capacity — the reset the MRT decoders apply
  /// to recycled scratch/observation slots on the import hot path. Keep
  /// in sync with the member initializers above (it is the only other
  /// place the defaults are spelled).
  void reset() {
    as_path.clear();
    origin = Origin::kIgp;
    local_pref = 100;
    med = 0;
    communities.clear();
  }

  auto operator<=>(const PathAttributes&) const = default;
};

/// One routing-table entry as seen at some AS or vantage point.
struct Route {
  net::Prefix prefix;
  PathAttributes attrs;
  /// The neighbor AS this route was learned from (kNoAsn for self-originated).
  Asn learned_from = kNoAsn;
  /// When the route was installed, simulated time.
  SimTime installed_at;

  Asn origin_as() const { return attrs.as_path.origin_as(); }
  std::size_t path_length() const { return attrs.as_path.length(); }

  bool operator==(const Route& other) const {
    return prefix == other.prefix && attrs == other.attrs &&
           learned_from == other.learned_from;
  }

  std::string to_string() const;
};

}  // namespace artemis::bgp

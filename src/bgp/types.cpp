#include "bgp/types.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/strings.hpp"

namespace artemis::bgp {

std::string_view to_string(Origin o) {
  switch (o) {
    case Origin::kIgp: return "IGP";
    case Origin::kEgp: return "EGP";
    case Origin::kIncomplete: return "INCOMPLETE";
  }
  return "?";
}

std::string Community::to_string() const {
  return std::to_string(asn) + ":" + std::to_string(value);
}

std::optional<Community> Community::parse(std::string_view text) {
  const auto parts = split(text, ':');
  if (parts.size() != 2) return std::nullopt;
  const auto a = parse_u32(parts[0], 0xFFFF);
  const auto v = parse_u32(parts[1], 0xFFFF);
  if (!a || !v) return std::nullopt;
  return Community{static_cast<std::uint16_t>(*a), static_cast<std::uint16_t>(*v)};
}

std::optional<AsPath> AsPath::parse(std::string_view text) {
  std::vector<Asn> hops;
  for (const auto token : split(text, ' ')) {
    if (token.empty()) continue;
    const auto asn = parse_u32(token);
    if (!asn) return std::nullopt;
    hops.push_back(*asn);
  }
  return AsPath(std::move(hops));
}

bool AsPath::contains(Asn asn) const {
  return std::find(hops_.begin(), hops_.end(), asn) != hops_.end();
}

bool AsPath::has_loop() const {
  std::unordered_set<Asn> seen;
  for (const Asn hop : hops_) {
    if (!seen.insert(hop).second) return true;
  }
  return false;
}

AsPath AsPath::prepended(Asn asn) const { return prepended(asn, 1); }

AsPath AsPath::prepended(Asn asn, int count) const {
  std::vector<Asn> hops;
  hops.reserve(hops_.size() + static_cast<std::size_t>(count));
  hops.insert(hops.end(), static_cast<std::size_t>(count), asn);
  hops.insert(hops.end(), hops_.begin(), hops_.end());
  return AsPath(std::move(hops));
}

std::string AsPath::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(hops_[i]);
  }
  return out;
}

}  // namespace artemis::bgp

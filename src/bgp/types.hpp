// Core BGP value types: AS numbers, AS paths, origins, communities.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace artemis::bgp {

/// An Autonomous System number (4-byte per RFC 6793).
using Asn = std::uint32_t;

/// Sentinel "no AS" value (0 is reserved and never a real ASN).
inline constexpr Asn kNoAsn = 0;

/// BGP ORIGIN attribute (RFC 4271 §5.1.1). Lower is preferred.
enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

std::string_view to_string(Origin o);

/// A standard community (RFC 1997), stored as asn:value.
struct Community {
  std::uint16_t asn = 0;
  std::uint16_t value = 0;

  auto operator<=>(const Community&) const = default;
  std::string to_string() const;
  static std::optional<Community> parse(std::string_view text);
};

/// An AS_PATH as a flat AS_SEQUENCE (AS_SETs are not modeled: they are
/// deprecated per RFC 6472 and never produced by the simulator).
///
/// Path order is propagation order: front() is the most recent AS (the
/// neighbor the route was heard from), back() is the origin AS.
class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<Asn> hops) : hops_(std::move(hops)) {}

  /// Builds a single-hop path (origin announcing its own prefix).
  static AsPath origin_only(Asn origin) { return AsPath({origin}); }

  /// Parses "65001 65002 65003" (space separated, front first).
  static std::optional<AsPath> parse(std::string_view text);

  bool empty() const { return hops_.empty(); }
  std::size_t length() const { return hops_.size(); }
  const std::vector<Asn>& hops() const { return hops_; }

  /// Replaces the hops in place, reusing existing capacity. The journal
  /// decoder assigns into recycled observations on the replay hot path,
  /// where constructing a fresh AsPath would allocate per record.
  void assign(const Asn* hops, std::size_t count) {
    if (count == 0) {
      hops_.clear();
      return;
    }
    hops_.assign(hops, hops + count);
  }

  /// Empties the path in place, keeping capacity (recycled observation
  /// slots on the import/replay hot paths).
  void clear() { hops_.clear(); }

  /// The originating AS (rightmost); kNoAsn on an empty path.
  Asn origin_as() const { return hops_.empty() ? kNoAsn : hops_.back(); }

  /// The AS the route was most recently heard from (leftmost).
  Asn first_hop() const { return hops_.empty() ? kNoAsn : hops_.front(); }

  /// The neighbor of the origin — second-to-last hop; kNoAsn if the path
  /// has fewer than two hops. The Type-1 hijack check compares this
  /// against the victim's legitimate neighbor set.
  Asn origin_neighbor() const {
    return hops_.size() < 2 ? kNoAsn : hops_[hops_.size() - 2];
  }

  bool contains(Asn asn) const;

  /// True if any AS appears more than once (BGP loop-prevention trigger).
  bool has_loop() const;

  /// Returns a copy with `asn` prepended (the AS propagating the route).
  AsPath prepended(Asn asn) const;

  /// Returns a copy with `asn` prepended `count` times (path prepending,
  /// the traffic-engineering knob; count >= 1).
  AsPath prepended(Asn asn, int count) const;

  std::string to_string() const;

  auto operator<=>(const AsPath&) const = default;

 private:
  std::vector<Asn> hops_;
};

}  // namespace artemis::bgp

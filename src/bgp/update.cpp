#include "bgp/update.hpp"

namespace artemis::bgp {

std::vector<Route> UpdateMessage::to_routes(SimTime received_at) const {
  std::vector<Route> out;
  out.reserve(announced.size());
  for (const auto& prefix : announced) {
    Route r;
    r.prefix = prefix;
    r.attrs = attrs;
    r.learned_from = sender;
    r.installed_at = received_at;
    out.push_back(std::move(r));
  }
  return out;
}

std::string UpdateMessage::to_string() const {
  std::string out = "UPDATE from AS" + std::to_string(sender);
  if (!announced.empty()) {
    out += " announce {";
    for (std::size_t i = 0; i < announced.size(); ++i) {
      if (i > 0) out += ", ";
      out += announced[i].to_string();
    }
    out += "} path [" + attrs.as_path.to_string() + "]";
  }
  if (!withdrawn.empty()) {
    out += " withdraw {";
    for (std::size_t i = 0; i < withdrawn.size(); ++i) {
      if (i > 0) out += ", ";
      out += withdrawn[i].to_string();
    }
    out += "}";
  }
  return out;
}

}  // namespace artemis::bgp

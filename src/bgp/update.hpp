// BGP UPDATE messages.
//
// One UPDATE carries a single attribute set plus the prefixes announced
// with it, and a set of withdrawn prefixes (RFC 4271 §4.3). The simulator,
// the feeds and the MRT codec all exchange this type.
#pragma once

#include <string>
#include <vector>

#include "bgp/route.hpp"
#include "bgp/types.hpp"
#include "netbase/prefix.hpp"
#include "util/time.hpp"

namespace artemis::bgp {

struct UpdateMessage {
  /// The AS that sent this update over the session (the peer).
  Asn sender = kNoAsn;
  /// Attributes for all announced prefixes (ignored if none announced).
  PathAttributes attrs;
  std::vector<net::Prefix> announced;
  std::vector<net::Prefix> withdrawn;
  /// When the sender emitted it (simulated time).
  SimTime sent_at;

  bool is_announcement() const { return !announced.empty(); }
  bool is_withdrawal() const { return !withdrawn.empty(); }
  bool empty() const { return announced.empty() && withdrawn.empty(); }

  /// Expands the announcement part into per-prefix routes, as the receiver
  /// would install them into its Adj-RIB-In.
  std::vector<Route> to_routes(SimTime received_at) const;

  std::string to_string() const;
};

}  // namespace artemis::bgp

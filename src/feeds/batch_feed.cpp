#include "feeds/batch_feed.hpp"

#include "mrt/stream_reader.hpp"

namespace artemis::feeds {

BatchFeed::BatchFeed(sim::Network& network, BatchFeedParams params, Rng rng)
    : network_(network), params_(std::move(params)), rng_(rng) {
  if (params_.mode == BatchMode::kUpdates) {
    for (const auto vantage : params_.vantages) {
      network_.speaker(vantage).add_change_tap(
          [this, vantage](const bgp::UpdateMessage& update) {
            on_vantage_update(vantage, update);
          });
    }
  }
  schedule_next_window();
}

void BatchFeed::subscribe(ObservationHandler handler) {
  fanout_.add(std::move(handler));
}

void BatchFeed::subscribe_batch(ObservationBatchHandler handler) {
  fanout_.add_batch(std::move(handler));
}

void BatchFeed::on_vantage_update(bgp::Asn vantage, const bgp::UpdateMessage& update) {
  mrt::UpdateRecord record;
  record.peer_asn = vantage;
  record.local_asn = 0;  // the collector
  record.peer_ip = net::IpAddress::v4(0x0A000000 | vantage);
  record.timestamp = network_.simulator().now();
  record.update = update;
  const auto bytes = mrt::encode_update_record(record);
  window_buffer_.insert(window_buffer_.end(), bytes.begin(), bytes.end());
}

void BatchFeed::schedule_next_window() {
  auto& sim = network_.simulator();
  // Windows close on interval boundaries (files are named by wall clock,
  // not by first-packet time — matches the real archives).
  const std::int64_t period = params_.interval.as_micros();
  const std::int64_t now_us = sim.now().as_micros();
  const std::int64_t k = now_us / period + 1;
  const SimTime window_end = SimTime::at_micros(k * period);
  sim.at(window_end, [this, window_end] {
    if (params_.mode == BatchMode::kUpdates) {
      publish_updates_window(window_end);
    } else {
      publish_rib_dump(window_end);
    }
    schedule_next_window();
  });
}

void BatchFeed::publish_updates_window(SimTime window_end) {
  if (window_buffer_.empty()) return;
  deliver_file(std::move(window_buffer_), window_end + params_.publish_delay);
  window_buffer_.clear();
}

void BatchFeed::publish_rib_dump(SimTime snapshot_time) {
  std::vector<mrt::RibEntryRecord> entries;
  for (const auto vantage : params_.vantages) {
    const auto& speaker = network_.speaker(vantage);
    speaker.rib().visit_best([&](const bgp::Route& route) {
      if (!route.prefix.is_v4()) return;  // TABLE_DUMP_V2 writer is v4-only
      mrt::RibEntryRecord entry;
      entry.peer_asn = vantage;
      entry.timestamp = route.installed_at;
      entry.route = route;
      // RIB dumps export the vantage's own view: prepend the vantage ASN
      // as its monitoring session would.
      if (route.learned_from != bgp::kNoAsn) {
        entry.route.attrs.as_path = route.attrs.as_path.prepended(vantage);
      }
      entries.push_back(std::move(entry));
    });
  }
  if (entries.empty()) return;
  deliver_file(mrt::encode_table_dump(entries, snapshot_time),
               snapshot_time + params_.publish_delay);
}

void BatchFeed::deliver_file(std::vector<std::uint8_t> mrt_bytes, SimTime available_at) {
  bytes_published_ += mrt_bytes.size();
  ++files_published_;
  auto& sim = network_.simulator();
  sim.at(available_at, [this, bytes = std::move(mrt_bytes), available_at] {
    // Decode the published file exactly as an archive consumer would, and
    // hand the whole window downstream as one batch — the natural unit of
    // the archive pipeline (and the shape the batch-first detection path
    // amortizes best).
    const auto elems = mrt::read_elems(bytes);
    std::vector<Observation> batch;
    batch.reserve(elems.size());
    for (const auto& elem : elems) {
      Observation& obs = batch.emplace_back();
      switch (elem.type) {
        case mrt::ElemType::kAnnounce: obs.type = ObservationType::kAnnouncement; break;
        case mrt::ElemType::kWithdraw: obs.type = ObservationType::kWithdrawal; break;
        case mrt::ElemType::kRibEntry: obs.type = ObservationType::kRouteState; break;
      }
      obs.source = params_.name;
      obs.vantage = elem.peer_asn;
      obs.prefix = elem.prefix;
      obs.attrs = elem.attrs;
      obs.event_time = elem.timestamp;
      obs.delivered_at = available_at;
    }
    fanout_.emit(batch);
  });
}

}  // namespace artemis::feeds

// Legacy archive feeds: RouteViews / RIPE RIS MRT dumps.
//
// Before streaming services, hijack detectors consumed periodically
// published MRT files: BGP update archives (every 15 minutes for RIS,
// §1 of the paper) and full RIB snapshots (every 2 hours for RouteViews).
// BatchFeed reproduces that pipeline end to end, *including the MRT
// encoding*: updates are buffered into an in-memory MRT file per window
// and the subscriber-visible observations are decoded back from those
// bytes, so the wire format is exercised on the hot path exactly as a
// libBGPStream-based consumer would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "feeds/fanout.hpp"
#include "feeds/observation.hpp"
#include "mrt/mrt.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace artemis::feeds {

enum class BatchMode : std::uint8_t {
  kUpdates,  ///< publish buffered updates every `interval` (RIS: 15 min)
  kRibDump,  ///< publish full RIB snapshots every `interval` (2 h RIBs)
};

struct BatchFeedParams {
  std::string name = "batch-updates";
  std::vector<bgp::Asn> vantages;
  BatchMode mode = BatchMode::kUpdates;
  /// File publication period (15 min for update archives, 2 h for RIBs).
  SimDuration interval = SimDuration::minutes(15);
  /// Extra delay between window close and file availability (collection,
  /// transfer, mirror sync).
  SimDuration publish_delay = SimDuration::seconds(60);
};

class BatchFeed {
 public:
  BatchFeed(sim::Network& network, BatchFeedParams params, Rng rng);

  BatchFeed(const BatchFeed&) = delete;
  BatchFeed& operator=(const BatchFeed&) = delete;

  void subscribe(ObservationHandler handler);

  /// Batch subscribers get one call per published file — the decoded
  /// archive window as a single contiguous batch, in file order.
  void subscribe_batch(ObservationBatchHandler handler);

  const std::string& name() const { return params_.name; }

  /// Bytes of MRT data published so far (overhead accounting).
  std::uint64_t bytes_published() const { return bytes_published_; }
  std::uint64_t files_published() const { return files_published_; }

 private:
  void on_vantage_update(bgp::Asn vantage, const bgp::UpdateMessage& update);
  void schedule_next_window();
  void publish_updates_window(SimTime window_end);
  void publish_rib_dump(SimTime snapshot_time);
  void deliver_file(std::vector<std::uint8_t> mrt_bytes, SimTime available_at);

  sim::Network& network_;
  BatchFeedParams params_;
  Rng rng_;
  ObservationFanout fanout_;
  /// MRT bytes accumulated in the current window (kUpdates mode).
  std::vector<std::uint8_t> window_buffer_;
  std::uint64_t bytes_published_ = 0;
  std::uint64_t files_published_ = 0;
};

}  // namespace artemis::feeds

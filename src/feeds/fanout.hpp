// Shared subscriber registry for the observation pipeline.
//
// Every producer (feeds, MonitorHub) emits whole batches; per-observation
// subscribers are adapted on the fly so legacy call sites keep working
// while batch-aware consumers (DetectionService::process_batch, the
// sharded pipeline) pay one std::function call per batch instead of one
// per observation.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "feeds/observation.hpp"

namespace artemis::feeds {

class ObservationFanout {
 public:
  void add(ObservationHandler handler) { per_obs_.push_back(std::move(handler)); }
  void add_batch(ObservationBatchHandler handler) {
    batch_.push_back(std::move(handler));
  }

  /// Delivers one batch: batch subscribers first (one call each), then the
  /// per-observation subscribers in observation order. The span must stay
  /// valid for the duration of the call only.
  void emit(std::span<const Observation> batch) const {
    if (batch.empty()) return;
    for (const auto& handler : batch_) handler(batch);
    if (per_obs_.empty()) return;
    for (const auto& obs : batch) {
      for (const auto& handler : per_obs_) handler(obs);
    }
  }

  void emit_one(const Observation& obs) const { emit({&obs, 1}); }

  bool empty() const { return per_obs_.empty() && batch_.empty(); }

 private:
  std::vector<ObservationHandler> per_obs_;
  std::vector<ObservationBatchHandler> batch_;
};

}  // namespace artemis::feeds

#include "feeds/looking_glass.hpp"

namespace artemis::feeds {

LookingGlass::LookingGlass(sim::Network& network, LookingGlassParams params, Rng rng)
    : network_(network), params_(params), rng_(rng) {}

void LookingGlass::query(const net::Prefix& prefix, QueryCallback callback) {
  auto& sim = network_.simulator();
  const SimDuration latency =
      rng_.uniform_duration(params_.min_query_latency, params_.max_query_latency);
  const bgp::Asn lg_asn = params_.asn;
  // Capture what the router knows *now*... no: a real LG runs the command
  // when the request arrives. Sample the router state at delivery time by
  // deferring the read into the scheduled event (the latency models both
  // request and response halves; reading midway is indistinguishable at
  // the fidelity the experiments need).
  sim.after(latency, [this, prefix, lg_asn, callback = std::move(callback)] {
    ++queries_served_;
    std::vector<Observation> results;
    const auto& speaker = network_.speaker(lg_asn);
    const SimTime now = network_.simulator().now();

    auto emit = [&](const bgp::Route& route) {
      Observation obs;
      obs.type = ObservationType::kRouteState;
      obs.source = "lg-as" + std::to_string(lg_asn);
      obs.vantage = lg_asn;
      obs.prefix = route.prefix;
      obs.attrs = route.attrs;
      if (route.learned_from != bgp::kNoAsn) {
        obs.attrs.as_path = route.attrs.as_path.prepended(lg_asn);
      }
      obs.event_time = now;
      obs.delivered_at = now;  // PeriscopeClient re-stamps delivery
      results.push_back(std::move(obs));
    };

    // Longest match for the prefix base address...
    if (const auto route = speaker.forwarding_route(prefix.address())) emit(*route);
    // ...plus any more-specifics the router carries (a hijacker's
    // de-facto sub-prefix announcement shows up here).
    speaker.rib().visit_covered(prefix, [&](const bgp::Route& route) { emit(route); });
    // Deduplicate: the LPM hit may also appear in the covered scan.
    std::vector<Observation> unique;
    for (auto& obs : results) {
      bool seen = false;
      for (const auto& u : unique) {
        if (u.prefix == obs.prefix && u.attrs == obs.attrs) {
          seen = true;
          break;
        }
      }
      if (!seen) unique.push_back(std::move(obs));
    }
    callback(std::move(unique));
  });
}

PeriscopeClient::PeriscopeClient(sim::Network& network,
                                 std::vector<LookingGlassParams> glasses,
                                 PeriscopeParams params, Rng rng)
    : network_(network), params_(std::move(params)), rng_(rng) {
  for (const auto& glass_params : glasses) {
    glasses_.push_back(std::make_unique<LookingGlass>(
        network_, glass_params,
        rng_.fork("lg-" + std::to_string(glass_params.asn))));
    // Staggered phases spread API load and — more importantly — make the
    // *earliest* LG answer after an event arrive well before poll_interval
    // on average (the min-of-sources effect, E5).
    poll_phase_.push_back(
        rng_.uniform_duration(SimDuration::zero(), params_.poll_interval));
  }
  for (std::size_t i = 0; i < glasses_.size(); ++i) schedule_poll(i);
}

void PeriscopeClient::monitor_prefix(const net::Prefix& prefix) {
  monitored_.push_back(prefix);
}

void PeriscopeClient::subscribe(ObservationHandler handler) {
  fanout_.add(std::move(handler));
}

void PeriscopeClient::subscribe_batch(ObservationBatchHandler handler) {
  fanout_.add_batch(std::move(handler));
}

bool PeriscopeClient::consume_budget() {
  if (params_.max_queries_per_interval == 0) return true;
  const SimTime now = network_.simulator().now();
  if (now - budget_window_start_ >= params_.poll_interval) {
    budget_window_start_ = now;
    budget_used_ = 0;
  }
  if (budget_used_ >= params_.max_queries_per_interval) {
    ++queries_rate_limited_;
    return false;
  }
  ++budget_used_;
  return true;
}

void PeriscopeClient::schedule_poll(std::size_t glass_index) {
  auto& sim = network_.simulator();
  // Next tick of this LG's polling clock.
  const std::int64_t period = params_.poll_interval.as_micros();
  const std::int64_t phase = poll_phase_[glass_index].as_micros();
  const std::int64_t now_us = sim.now().as_micros();
  std::int64_t next = phase;
  if (now_us >= phase) {
    const std::int64_t k = (now_us - phase) / period + 1;
    next = phase + k * period;
  }
  sim.at(SimTime::at_micros(next), [this, glass_index] {
    poll(glass_index);
    schedule_poll(glass_index);
  });
}

void PeriscopeClient::poll(std::size_t glass_index) {
  for (const auto& prefix : monitored_) {
    if (!consume_budget()) continue;
    ++queries_issued_;
    glasses_[glass_index]->query(prefix, [this](std::vector<Observation> results) {
      // Restamp in place (the answer is owned, not copied) and emit the
      // whole answer as one batch.
      const SimTime now = network_.simulator().now();
      for (auto& obs : results) {
        obs.source = params_.name;
        obs.delivered_at = now;
      }
      fanout_.emit(results);
    });
  }
}

}  // namespace artemis::feeds

// Looking glasses and the Periscope-style unified query client.
//
// A looking glass exposes the *current* best route of an operational
// router, with no collector in between — the lowest-latency view
// available (paper §1). Periscope (Giotsas et al., PAM'16) unifies many
// LGs behind one API; ARTEMIS polls it for its owned prefixes. The
// client models per-query latency, per-LG polling phase, and a global
// query budget (the real API is rate-limited).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "feeds/fanout.hpp"
#include "feeds/observation.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace artemis::feeds {

struct LookingGlassParams {
  bgp::Asn asn = bgp::kNoAsn;  ///< the AS hosting the LG router
  /// Per-query round-trip latency range (HTTP scrape of a router CLI).
  SimDuration min_query_latency = SimDuration::millis(500);
  SimDuration max_query_latency = SimDuration::seconds(5);
};

/// One looking glass server: asynchronous best-route queries against the
/// hosting AS's router state.
class LookingGlass {
 public:
  /// The answer vector is handed over by value (moved, never copied on
  /// the hot handoff) — the callee owns and may restamp it.
  using QueryCallback = std::function<void(std::vector<Observation>)>;

  LookingGlass(sim::Network& network, LookingGlassParams params, Rng rng);

  bgp::Asn asn() const { return params_.asn; }

  /// Asynchronously queries the LG for `prefix` ("show ip bgp <prefix>"):
  /// returns the longest-match route for the prefix base address plus any
  /// more-specific routes present (as a real LG table dump would show).
  /// The callback fires after the sampled query latency.
  void query(const net::Prefix& prefix, QueryCallback callback);

  std::uint64_t queries_served() const { return queries_served_; }

 private:
  sim::Network& network_;
  LookingGlassParams params_;
  Rng rng_;
  std::uint64_t queries_served_ = 0;
};

struct PeriscopeParams {
  std::string name = "periscope";
  /// Polling period per LG for each monitored prefix.
  SimDuration poll_interval = SimDuration::seconds(60);
  /// Maximum queries per poll_interval across all LGs (API rate limit);
  /// 0 means unlimited. Excess queries are skipped, not queued — matching
  /// the real API's behaviour of rejecting over-quota requests.
  std::uint32_t max_queries_per_interval = 0;
};

/// Polls a set of looking glasses for a set of prefixes and emits the
/// answers as Observations.
class PeriscopeClient {
 public:
  PeriscopeClient(sim::Network& network, std::vector<LookingGlassParams> glasses,
                  PeriscopeParams params, Rng rng);

  PeriscopeClient(const PeriscopeClient&) = delete;
  PeriscopeClient& operator=(const PeriscopeClient&) = delete;

  /// Adds a prefix to the polling schedule (typically each owned prefix).
  void monitor_prefix(const net::Prefix& prefix);

  void subscribe(ObservationHandler handler);

  /// Batch subscribers get one call per looking-glass answer (the LPM hit
  /// plus any more-specifics, restamped to the client's source name).
  void subscribe_batch(ObservationBatchHandler handler);

  std::size_t glass_count() const { return glasses_.size(); }
  std::uint64_t queries_issued() const { return queries_issued_; }
  std::uint64_t queries_rate_limited() const { return queries_rate_limited_; }

 private:
  void schedule_poll(std::size_t glass_index);
  void poll(std::size_t glass_index);
  bool consume_budget();

  sim::Network& network_;
  PeriscopeParams params_;
  Rng rng_;
  std::vector<std::unique_ptr<LookingGlass>> glasses_;
  std::vector<SimDuration> poll_phase_;
  std::vector<net::Prefix> monitored_;
  ObservationFanout fanout_;
  std::uint64_t queries_issued_ = 0;
  std::uint64_t queries_rate_limited_ = 0;
  /// Budget window bookkeeping.
  SimTime budget_window_start_;
  std::uint32_t budget_used_ = 0;
};

}  // namespace artemis::feeds

#include "feeds/monitor_hub.hpp"

namespace artemis::feeds {

void MonitorHub::publish(const Observation& obs) {
  ++total_;
  ++per_source_[obs.source];
  for (const auto& handler : subscribers_) handler(obs);
}

void MonitorHub::subscribe(ObservationHandler handler) {
  subscribers_.push_back(std::move(handler));
}

ObservationHandler MonitorHub::inlet() {
  return [this](const Observation& obs) { publish(obs); };
}

}  // namespace artemis::feeds

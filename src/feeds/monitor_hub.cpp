#include "feeds/monitor_hub.hpp"

#include <algorithm>

namespace artemis::feeds {

std::vector<std::uint32_t>::const_iterator MonitorHub::name_lower_bound(
    std::string_view source) const {
  return std::lower_bound(
      by_name_.begin(), by_name_.end(), source,
      [this](std::uint32_t id, std::string_view s) { return sources_[id].name < s; });
}

std::uint32_t MonitorHub::intern(std::string_view source) {
  const auto it = name_lower_bound(source);
  if (it != by_name_.end() && sources_[*it].name == source) return *it;
  const auto id = static_cast<std::uint32_t>(sources_.size());
  sources_.push_back(SourceSlot{std::string(source), 0, nullptr});
  by_name_.insert(it, id);
  register_source_metric(sources_.back());
  return id;
}

void MonitorHub::set_metrics(telemetry::MetricsRegistry* registry) {
  registry_ = registry;
  if (registry_ == nullptr) return;
  observations_metric_ =
      registry_->counter("artemis_hub_observations_total",
                         "Observations published through the monitor hub");
  batches_metric_ = registry_->counter(
      "artemis_hub_batches_total", "Batches published through the monitor hub");
  // Sources interned before the registry arrived get their cells now.
  for (auto& slot : sources_) register_source_metric(slot);
}

void MonitorHub::register_source_metric(SourceSlot& slot) {
  if (registry_ == nullptr || slot.metric != nullptr) return;
  // Label values are monitor names (ris-live, bgpmon, ...); escape the
  // two characters Prometheus label syntax reserves, just in case.
  std::string escaped;
  escaped.reserve(slot.name.size());
  for (const char c : slot.name) {
    if (c == '\\' || c == '"') escaped.push_back('\\');
    escaped.push_back(c);
  }
  slot.metric =
      registry_->counter("artemis_source_observations_total",
                         "Observations published per monitoring source",
                         "source=\"" + escaped + "\"");
}

void MonitorHub::publish_batch(std::span<const Observation> batch) {
  if (batch.empty()) return;
  total_ += batch.size();
  if (observations_metric_ != nullptr) {
    observations_metric_->add(batch.size());
    batches_metric_->add();
  }
  // One interned lookup per run of equal source names. Feed batches are
  // single-source, so this is one lookup per batch, not per observation.
  std::size_t i = 0;
  while (i < batch.size()) {
    std::size_t j = i + 1;
    while (j < batch.size() && batch[j].source == batch[i].source) ++j;
    SourceSlot& slot = sources_[intern(batch[i].source)];
    slot.count += j - i;
    if (slot.metric != nullptr) slot.metric->add(j - i);
    i = j;
  }
  fanout_.emit(batch);
}

void MonitorHub::subscribe_batch(ObservationBatchHandler handler) {
  fanout_.add_batch(std::move(handler));
}

void MonitorHub::subscribe(ObservationHandler handler) {
  fanout_.add(std::move(handler));
}

ObservationBatchHandler MonitorHub::batch_inlet() {
  return [this](std::span<const Observation> batch) { publish_batch(batch); };
}

ObservationHandler MonitorHub::inlet() {
  return [this](const Observation& obs) { publish(obs); };
}

std::map<std::string, std::uint64_t> MonitorHub::per_source_counts() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& slot : sources_) out.emplace(slot.name, slot.count);
  return out;
}

std::uint64_t MonitorHub::source_count(std::string_view source) const {
  const auto it = name_lower_bound(source);
  if (it == by_name_.end() || sources_[*it].name != source) return 0;
  return sources_[*it].count;
}

}  // namespace artemis::feeds

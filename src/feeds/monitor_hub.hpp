// MonitorHub: the multiplexer that fuses all monitoring sources.
//
// The paper's detection delay is "the min of the delays of these sources"
// (§2) because ARTEMIS consumes one merged stream. MonitorHub is that
// merge point: every feed pushes Observations into it; the detection
// service subscribes once. The hub also keeps per-source delivery
// statistics so benches can report per-source vs combined delays (E1).
//
// The hub is batch-native: feeds deliver whole batches (one RIS message,
// one decoded MRT file, one looking-glass answer) via publish_batch();
// publish() is a thin span-of-one shim for per-observation call sites.
// Per-source accounting uses an interned source-id table (sorted flat
// index + flat counter vector), so the steady state does one string
// binary-search per *run of equal sources* — typically once per batch —
// and never touches a red-black tree. Steady-state publish_batch performs
// no heap allocations (a new source name allocates once, on interning).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "feeds/fanout.hpp"
#include "feeds/observation.hpp"
#include "telemetry/metrics.hpp"

namespace artemis::feeds {

class MonitorHub {
 public:
  /// Called by feeds (already in simulated delivery time). The span is
  /// only borrowed for the call.
  void publish_batch(std::span<const Observation> batch);

  /// Per-observation shim over publish_batch for existing call sites.
  void publish(const Observation& obs) { publish_batch({&obs, 1}); }

  /// Batch subscribers see every delivered batch, in delivery order.
  void subscribe_batch(ObservationBatchHandler handler);

  /// Per-observation subscribers see every observation from every source,
  /// in delivery order (adapted over the batch stream).
  void subscribe(ObservationHandler handler);

  /// An ObservationBatchHandler that forwards into this hub — hand it to
  /// any feed's subscribe_batch().
  ObservationBatchHandler batch_inlet();

  /// Per-observation inlet for legacy feeds/tests.
  ObservationHandler inlet();

  std::uint64_t total_observations() const { return total_; }

  /// Map-shaped view for tests, reports and JSON (sorted iteration);
  /// materialized on demand — the hot path only maintains the flat table.
  std::map<std::string, std::uint64_t> per_source_counts() const;

  /// Allocation-free count lookup for one source (0 if never seen).
  std::uint64_t source_count(std::string_view source) const;

  /// Number of distinct sources seen so far.
  std::size_t source_table_size() const { return sources_.size(); }

  /// Attaches a metrics registry: the hub registers one labeled
  /// per-source counter per interned source (on interning, which already
  /// allocates) plus stream totals. The registry must outlive the hub.
  /// Steady-state publish_batch stays allocation-free — counter cells
  /// are plain pre-registered atomics.
  void set_metrics(telemetry::MetricsRegistry* registry);

 private:
  /// Binary search over the sorted id index (string_view compares, no
  /// allocation); shared by intern() and source_count().
  std::vector<std::uint32_t>::const_iterator name_lower_bound(
      std::string_view source) const;

  /// Returns the id for `source`, interning it on first sight; a miss
  /// appends one slot and inserts its index.
  std::uint32_t intern(std::string_view source);

  struct SourceSlot {
    std::string name;
    std::uint64_t count = 0;
    telemetry::Counter* metric = nullptr;  ///< per-source labeled cell
  };

  /// Registers the labeled telemetry cell for one slot (no-op without a
  /// registry).
  void register_source_metric(SourceSlot& slot);
  std::vector<SourceSlot> sources_;    ///< id -> slot, insertion order
  std::vector<std::uint32_t> by_name_; ///< ids sorted by slot name
  ObservationFanout fanout_;
  std::uint64_t total_ = 0;
  telemetry::MetricsRegistry* registry_ = nullptr;
  telemetry::Counter* observations_metric_ = nullptr;
  telemetry::Counter* batches_metric_ = nullptr;
};

}  // namespace artemis::feeds

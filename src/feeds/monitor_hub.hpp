// MonitorHub: the multiplexer that fuses all monitoring sources.
//
// The paper's detection delay is "the min of the delays of these sources"
// (§2) because ARTEMIS consumes one merged stream. MonitorHub is that
// merge point: every feed pushes Observations into it; the detection
// service subscribes once. The hub also keeps per-source delivery
// statistics so benches can report per-source vs combined delays (E1).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "feeds/observation.hpp"

namespace artemis::feeds {

class MonitorHub {
 public:
  /// Called by feeds (already in simulated delivery time).
  void publish(const Observation& obs);

  /// Subscribers see every observation from every source, in delivery
  /// order.
  void subscribe(ObservationHandler handler);

  /// An ObservationHandler that forwards into this hub — hand it to any
  /// feed's subscribe().
  ObservationHandler inlet();

  std::uint64_t total_observations() const { return total_; }
  const std::map<std::string, std::uint64_t>& per_source_counts() const {
    return per_source_;
  }

 private:
  std::vector<ObservationHandler> subscribers_;
  std::map<std::string, std::uint64_t> per_source_;
  std::uint64_t total_ = 0;
};

}  // namespace artemis::feeds

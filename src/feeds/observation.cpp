#include "feeds/observation.hpp"

namespace artemis::feeds {

std::string_view to_string(ObservationType t) {
  switch (t) {
    case ObservationType::kAnnouncement: return "announce";
    case ObservationType::kWithdrawal: return "withdraw";
    case ObservationType::kRouteState: return "state";
  }
  return "?";
}

std::string Observation::to_string() const {
  std::string out(feeds::to_string(type));
  out += " " + prefix.to_string();
  out += " via AS" + std::to_string(vantage);
  if (type != ObservationType::kWithdrawal) {
    out += " path [" + attrs.as_path.to_string() + "]";
  }
  out += " src=" + source;
  out += " lag=" + feed_lag().to_string();
  return out;
}

}  // namespace artemis::feeds

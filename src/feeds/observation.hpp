// The unit of monitoring data ARTEMIS consumes.
//
// Every source — streaming collectors, legacy batch archives, looking
// glasses — reduces to a stream of Observations: "vantage AS V was seen
// routing/announcing prefix P via path X at event time T, and ARTEMIS
// learned this at delivery time D". Detection latency is exactly
// D - (hijack launch time), so modeling D per source is what reproduces
// the paper's Table (E1/E3).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <type_traits>

#include "bgp/route.hpp"
#include "netbase/prefix.hpp"
#include "util/time.hpp"

namespace artemis::feeds {

enum class ObservationType : std::uint8_t {
  kAnnouncement,  ///< an UPDATE announcing the prefix
  kWithdrawal,    ///< an UPDATE withdrawing the prefix
  kRouteState,    ///< a point-in-time best route (LG answer or RIB dump)
};

std::string_view to_string(ObservationType t);

struct Observation {
  ObservationType type = ObservationType::kAnnouncement;
  /// Which feed produced this ("ris-live", "bgpmon", "periscope",
  /// "batch-updates", "batch-rib"). Benches group by this label.
  std::string source;
  /// The vantage-point AS whose view this is.
  bgp::Asn vantage = bgp::kNoAsn;
  net::Prefix prefix;
  /// Attributes as exported by the vantage (empty for withdrawals).
  bgp::PathAttributes attrs;
  /// When the vantage point saw the event.
  SimTime event_time;
  /// When ARTEMIS received the observation (>= event_time).
  SimTime delivered_at;

  bgp::Asn origin_as() const { return attrs.as_path.origin_as(); }
  SimDuration feed_lag() const { return delivered_at - event_time; }
  std::string to_string() const;
};

// Feeds hand observations between pipeline stages by span and move them
// into queues; a throwing move would tear a batch in half, so the hot
// handoff relies on this holding for every member (string, path vector,
// prefix, timestamps).
static_assert(std::is_nothrow_move_constructible_v<Observation>);
static_assert(std::is_nothrow_move_assignable_v<Observation>);

using ObservationHandler = std::function<void(const Observation&)>;

/// Batch-first consumer: one call per delivered batch. The span is only
/// valid for the duration of the call; consumers that keep observations
/// must copy (or move from their own staging buffer).
using ObservationBatchHandler = std::function<void(std::span<const Observation>)>;

}  // namespace artemis::feeds

#include "feeds/stream_feed.hpp"

#include <cmath>

namespace artemis::feeds {

StreamFeed::StreamFeed(sim::Network& network, StreamFeedParams params, Rng rng)
    : network_(network), params_(std::move(params)), rng_(rng) {
  for (const auto vantage : params_.vantages) {
    network_.speaker(vantage).add_change_tap(
        [this, vantage](const bgp::UpdateMessage& update) {
          on_vantage_update(vantage, update);
        });
  }
}

void StreamFeed::subscribe(ObservationHandler handler) {
  subscribers_.push_back(std::move(handler));
}

SimDuration StreamFeed::sample_latency() {
  const double mu = std::log(params_.median_latency.as_seconds());
  return SimDuration::seconds(rng_.lognormal(mu, params_.latency_sigma));
}

void StreamFeed::on_vantage_update(bgp::Asn vantage, const bgp::UpdateMessage& update) {
  auto& sim = network_.simulator();
  const SimTime event_time = sim.now();

  // One observation per announced/withdrawn prefix, delivered after an
  // independently sampled latency (stream messages are not ordered across
  // prefixes; subscribers must tolerate reordering, as with real RIS-live).
  for (const auto& prefix : update.announced) {
    Observation obs;
    obs.type = ObservationType::kAnnouncement;
    obs.source = params_.name;
    obs.vantage = vantage;
    obs.prefix = prefix;
    obs.attrs = update.attrs;
    obs.event_time = event_time;
    const SimDuration latency = sample_latency();
    obs.delivered_at = event_time + latency;
    sim.after(latency, [this, obs] {
      ++delivered_;
      for (const auto& handler : subscribers_) handler(obs);
    });
  }
  for (const auto& prefix : update.withdrawn) {
    Observation obs;
    obs.type = ObservationType::kWithdrawal;
    obs.source = params_.name;
    obs.vantage = vantage;
    obs.prefix = prefix;
    obs.event_time = event_time;
    const SimDuration latency = sample_latency();
    obs.delivered_at = event_time + latency;
    sim.after(latency, [this, obs] {
      ++delivered_;
      for (const auto& handler : subscribers_) handler(obs);
    });
  }
}

}  // namespace artemis::feeds

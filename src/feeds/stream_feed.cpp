#include "feeds/stream_feed.hpp"

#include <cmath>

namespace artemis::feeds {

StreamFeed::StreamFeed(sim::Network& network, StreamFeedParams params, Rng rng)
    : network_(network), params_(std::move(params)), rng_(rng) {
  for (const auto vantage : params_.vantages) {
    network_.speaker(vantage).add_change_tap(
        [this, vantage](const bgp::UpdateMessage& update) {
          on_vantage_update(vantage, update);
        });
  }
}

void StreamFeed::subscribe(ObservationHandler handler) {
  fanout_.add(std::move(handler));
}

void StreamFeed::subscribe_batch(ObservationBatchHandler handler) {
  fanout_.add_batch(std::move(handler));
}

SimDuration StreamFeed::sample_latency() {
  const double mu = std::log(params_.median_latency.as_seconds());
  return SimDuration::seconds(rng_.lognormal(mu, params_.latency_sigma));
}

void StreamFeed::on_vantage_update(bgp::Asn vantage, const bgp::UpdateMessage& update) {
  auto& sim = network_.simulator();
  const SimTime event_time = sim.now();

  // One collector message per vantage update: every announced/withdrawn
  // prefix of the update travels together and arrives after one sampled
  // latency, delivered to subscribers as a single batch. Messages are not
  // ordered against each other (as with real RIS-live).
  const SimDuration latency = sample_latency();
  const SimTime delivered_at = event_time + latency;
  std::vector<Observation> message;
  message.reserve(update.announced.size() + update.withdrawn.size());
  for (const auto& prefix : update.announced) {
    Observation& obs = message.emplace_back();
    obs.type = ObservationType::kAnnouncement;
    obs.source = params_.name;
    obs.vantage = vantage;
    obs.prefix = prefix;
    obs.attrs = update.attrs;
    obs.event_time = event_time;
    obs.delivered_at = delivered_at;
  }
  for (const auto& prefix : update.withdrawn) {
    Observation& obs = message.emplace_back();
    obs.type = ObservationType::kWithdrawal;
    obs.source = params_.name;
    obs.vantage = vantage;
    obs.prefix = prefix;
    obs.event_time = event_time;
    obs.delivered_at = delivered_at;
  }
  if (message.empty()) return;
  sim.after(latency, [this, message = std::move(message)] {
    delivered_ += message.size();
    fanout_.emit(message);
  });
}

}  // namespace artemis::feeds

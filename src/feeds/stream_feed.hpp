// Streaming BGP feeds: the RIPE RIS streaming service and BGPmon.
//
// A StreamFeed models a route collector with live streaming delivery:
// the collector peers with a set of vantage ASes; every best-route change
// at a vantage is shipped to subscribers after a per-message delivery
// latency (collection + queuing + stream transport), drawn from a
// log-normal distribution. The paper's key argument is that this latency
// is *seconds*, vs minutes-to-hours for the archive pipeline (BatchFeed).
//
// Delivery is message-framed, as on the real stream: one collector
// message carries every observation of one vantage update (all announced
// and withdrawn prefixes), arrives after one sampled latency, and is
// handed to subscribers as a single batch. Messages still reorder freely
// against each other, as with real RIS-live.
#pragma once

#include <string>
#include <vector>

#include "feeds/fanout.hpp"
#include "feeds/observation.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace artemis::feeds {

struct StreamFeedParams {
  std::string name = "ris-live";
  /// Vantage ASes the collector peers with.
  std::vector<bgp::Asn> vantages;
  /// Delivery latency: log-normal with this median and sigma (of the
  /// underlying normal). Defaults approximate the 2016-era RIS streaming
  /// prototype / BGPmon (median ~15 s, heavy tail; see EXPERIMENTS.md
  /// calibration notes).
  SimDuration median_latency = SimDuration::seconds(15);
  double latency_sigma = 0.8;
};

class StreamFeed {
 public:
  /// Installs taps on all vantages. The feed must outlive the network use.
  StreamFeed(sim::Network& network, StreamFeedParams params, Rng rng);

  StreamFeed(const StreamFeed&) = delete;
  StreamFeed& operator=(const StreamFeed&) = delete;

  /// Registers a subscriber; called (in simulated time) per observation.
  void subscribe(ObservationHandler handler);

  /// Registers a batch subscriber; called once per delivered collector
  /// message (all observations of one vantage update).
  void subscribe_batch(ObservationBatchHandler handler);

  const std::string& name() const { return params_.name; }
  const std::vector<bgp::Asn>& vantages() const { return params_.vantages; }

  /// Total observations delivered so far (overhead accounting, E5).
  std::uint64_t delivered_count() const { return delivered_; }

 private:
  void on_vantage_update(bgp::Asn vantage, const bgp::UpdateMessage& update);
  SimDuration sample_latency();

  sim::Network& network_;
  StreamFeedParams params_;
  Rng rng_;
  ObservationFanout fanout_;
  std::uint64_t delivered_ = 0;
};

}  // namespace artemis::feeds

#include "ingest/fetch_source.hpp"

#include <algorithm>

namespace artemis::ingest {

std::int64_t backoff_delay_ms(const FetchPolicy& policy, int retry, Rng& rng) {
  // Cap the shift before shifting: retry counts beyond ~40 would overflow
  // long before the min() could save them.
  std::int64_t delay = policy.max_backoff_ms;
  if (retry < 40) {
    delay = std::min(policy.max_backoff_ms, policy.backoff_ms << retry);
  }
  if (delay <= 0) return 0;
  // Jitter into [delay/2, delay]: keeps the exponential shape (tests can
  // bound it) while decorrelating a fleet of retrying sources.
  const std::int64_t half = delay / 2;
  return half + static_cast<std::int64_t>(
                    rng.uniform_u64(static_cast<std::uint64_t>(delay - half) + 1));
}

std::string_view to_string(SourceState state) {
  switch (state) {
    case SourceState::kPending: return "pending";
    case SourceState::kFetching: return "fetching";
    case SourceState::kBackoff: return "backoff";
    case SourceState::kDone: return "done";
    case SourceState::kFailed: return "failed";
  }
  return "pending";
}

FetchSource::FetchSource(std::string url, FetchPolicy policy, Rng rng)
    : url_(std::move(url)), policy_(policy), rng_(rng) {}

FetchOutcome FetchSource::run(const HttpBodySink& sink, const SleepFn& sleep) {
  const std::optional<Url> url = parse_url(url_);
  if (!url) {
    state_ = SourceState::kFailed;
    stats_.last_error = "malformed URL: " + url_;
    return FetchOutcome::kPermanent;
  }

  int consecutive_failures = 0;
  for (;;) {
    state_ = SourceState::kFetching;
    ++stats_.attempts;
    if (stats_.attempts > 1) ++stats_.retries;

    HttpGetOptions options;
    options.range_start = stats_.resume_offset;
    options.connect_timeout_ms = policy_.connect_timeout_ms;
    options.io_timeout_ms = policy_.io_timeout_ms;

    // http_get de-duplicates the ignore-Range case itself (the sink only
    // ever sees entity bytes >= resume_offset), so the wrapper here just
    // keeps the ledger.
    const HttpBodySink wrapped = [&](std::span<const std::uint8_t> data) {
      stats_.bytes_fetched += data.size();
      stats_.resume_offset += data.size();
      sink(data);
    };
    const HttpResult result = http_get(*url, options, wrapped);
    const std::uint64_t delivered_this_attempt = result.body_bytes;
    stats_.bytes_discarded += result.discarded_bytes;
    stats_.last_status = result.status;
    stats_.last_error = result.error;

    if (result.outcome == FetchOutcome::kOk) {
      state_ = SourceState::kDone;
      return FetchOutcome::kOk;
    }
    if (result.outcome == FetchOutcome::kPermanent) {
      state_ = SourceState::kFailed;
      return FetchOutcome::kPermanent;
    }

    // Transient: progress refunds the consecutive-failure count.
    consecutive_failures = delivered_this_attempt > 0 ? 1 : consecutive_failures + 1;
    if (consecutive_failures > policy_.max_retries) {
      state_ = SourceState::kFailed;
      if (stats_.last_error.empty()) stats_.last_error = "retry budget exhausted";
      return FetchOutcome::kTransient;
    }
    const std::int64_t delay =
        backoff_delay_ms(policy_, consecutive_failures - 1, rng_);
    stats_.last_backoff_ms = delay;
    state_ = SourceState::kBackoff;
    if (sleep) sleep(delay);
  }
}

}  // namespace artemis::ingest

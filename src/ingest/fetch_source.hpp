// FetchSource: one archive URL's retry state machine.
//
// Wraps the HTTP client with the policy the supervisor needs per source:
// a retry budget, capped exponential backoff with deterministic jitter,
// and byte-offset resume. Every *entity* byte reaches the sink exactly
// once, in order, across any number of transient failures — a cut
// connection resumes with a Range request at the delivered byte count,
// and a server that ignores Range (replies 200 from byte 0) has its
// already-seen prefix discarded before the sink sees anything. That
// exactly-once contract is what lets a live decompressor sit directly
// behind the sink: its stream state survives retries because the byte
// stream it observes is seamless.
//
// Error classification drives the machine: kPermanent (404, bad scheme)
// fails the source on the spot with no retries; kTransient (5xx, resets,
// stalls, short bodies) spends the budget. An attempt that delivered new
// bytes refunds the consecutive-failure count — progress proves the
// source is alive, so only *stalled* sources exhaust the budget.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ingest/http.hpp"
#include "util/rng.hpp"

namespace artemis::ingest {

struct FetchPolicy {
  /// Consecutive no-progress transient failures before the source fails.
  int max_retries = 8;
  std::int64_t backoff_ms = 250;       ///< first retry delay (doubles per retry)
  std::int64_t max_backoff_ms = 30'000;  ///< backoff growth cap
  int connect_timeout_ms = 5000;
  int io_timeout_ms = 5000;
};

/// Deterministic capped-exponential backoff with jitter: base 2^retry
/// growth capped at max_backoff_ms, then uniformly jittered to
/// [delay/2, delay] so a fleet of sources seeded differently desynchronizes.
/// Pure in (policy, retry, rng-state): tests replay it bit-for-bit.
std::int64_t backoff_delay_ms(const FetchPolicy& policy, int retry, Rng& rng);

enum class SourceState : std::uint8_t {
  kPending,   ///< not started
  kFetching,  ///< attempt in flight
  kBackoff,   ///< waiting out a retry delay
  kDone,      ///< fully delivered
  kFailed,    ///< permanent error or retry budget exhausted
};

std::string_view to_string(SourceState state);

/// The per-source ledger the stats surface renders. bytes_fetched counts
/// deduplicated entity bytes (what the sink saw); bytes_discarded counts
/// re-received prefix bytes a Range-ignoring server forced us to drop.
struct SourceStats {
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;          ///< attempts after the first, incl. refunded
  std::uint64_t bytes_fetched = 0;
  std::uint64_t bytes_discarded = 0;
  std::uint64_t resume_offset = 0;    ///< next attempt resumes from this byte
  std::int64_t last_backoff_ms = 0;   ///< delay before the most recent retry
  int last_status = 0;
  std::string last_error;
};

class FetchSource {
 public:
  /// Called instead of sleeping for real; tests pass a recorder, the
  /// supervisor passes an interruptible wait.
  using SleepFn = std::function<void(std::int64_t ms)>;

  /// `rng` should be forked per source (e.g. seed.fork(url)) so backoff
  /// jitter is independent across sources but reproducible per seed.
  FetchSource(std::string url, FetchPolicy policy, Rng rng);

  FetchSource(const FetchSource&) = delete;
  FetchSource& operator=(const FetchSource&) = delete;

  /// Runs attempts until the source is kDone or kFailed. `sink` receives
  /// each entity byte exactly once, in order. Blocking (socket I/O +
  /// sleeps); never throws on network faults.
  FetchOutcome run(const HttpBodySink& sink, const SleepFn& sleep);

  const std::string& url() const { return url_; }
  SourceState state() const { return state_; }
  const SourceStats& stats() const { return stats_; }

 private:
  std::string url_;
  FetchPolicy policy_;
  Rng rng_;
  SourceState state_ = SourceState::kPending;
  SourceStats stats_;
};

}  // namespace artemis::ingest

#include "ingest/http.hpp"

#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <vector>

namespace artemis::ingest {
namespace {

std::string ascii_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// A connected socket with close-on-scope-exit.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() {
    if (fd_ >= 0) ::close(fd_);
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  void adopt(int fd) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

/// Waits for readability/writability with a deadline. Returns false on
/// timeout or poll error.
bool wait_fd(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

bool connect_with_timeout(const Url& url, const HttpGetOptions& options,
                          Socket& sock, std::string& error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(url.host.c_str(), url.port.c_str(), &hints, &res);
  if (rc != 0) {
    error = "resolve " + url.host + ": " + ::gai_strerror(rc);
    return false;
  }
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK,
                            ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      sock.adopt(fd);
      ::freeaddrinfo(res);
      return true;
    }
    if (errno == EINPROGRESS &&
        wait_fd(fd, POLLOUT, options.connect_timeout_ms)) {
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) == 0 &&
          soerr == 0) {
        sock.adopt(fd);
        ::freeaddrinfo(res);
        return true;
      }
      errno = soerr;
    }
    error = "connect " + url.host + ":" + url.port + ": " +
            (errno != 0 ? std::strerror(errno) : "timed out");
    ::close(fd);
  }
  ::freeaddrinfo(res);
  if (error.empty()) error = "connect " + url.host + ": no usable address";
  return false;
}

bool send_all(int fd, std::string_view data, int timeout_ms, std::string& error) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_fd(fd, POLLOUT, timeout_ms)) {
        error = "send: stalled";
        return false;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    error = std::string("send: ") + std::strerror(errno);
    return false;
  }
  return true;
}

/// Read outcomes below the HTTP framing layer.
enum class ReadStatus { kData, kEof, kStall, kError };

ReadStatus read_some(int fd, std::span<std::uint8_t> buf, int timeout_ms,
                     std::size_t& got, std::string& error) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n > 0) {
      got = static_cast<std::size_t>(n);
      return ReadStatus::kData;
    }
    if (n == 0) return ReadStatus::kEof;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_fd(fd, POLLIN, timeout_ms)) {
        error = "recv: stalled";
        return ReadStatus::kStall;
      }
      continue;
    }
    if (errno == EINTR) continue;
    error = std::string("recv: ") + std::strerror(errno);
    return ReadStatus::kError;
  }
}

struct ResponseHead {
  int status = 0;
  std::int64_t content_length = -1;
  bool chunked = false;
  /// Start byte from Content-Range ("bytes <start>-<end>/<total>"), -1 if
  /// the header is absent or unparsable.
  std::int64_t content_range_start = -1;
};

bool parse_head(std::string_view head, ResponseHead& out, std::string& error) {
  const std::size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  if (!status_line.starts_with("HTTP/1.")) {
    error = "malformed status line";
    return false;
  }
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || sp + 4 > status_line.size()) {
    error = "malformed status line";
    return false;
  }
  const std::string_view code = status_line.substr(sp + 1, 3);
  const auto [p, ec] = std::from_chars(code.data(), code.data() + 3, out.status);
  if (ec != std::errc{} || p != code.data() + 3) {
    error = "malformed status code";
    return false;
  }

  std::size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string name = ascii_lower(trim(line.substr(0, colon)));
    const std::string_view value = trim(line.substr(colon + 1));
    if (name == "content-length") {
      std::int64_t len = 0;
      const auto [vp, vec] =
          std::from_chars(value.data(), value.data() + value.size(), len);
      if (vec != std::errc{} || vp != value.data() + value.size() || len < 0) {
        error = "malformed Content-Length";
        return false;
      }
      out.content_length = len;
    } else if (name == "transfer-encoding") {
      out.chunked = ascii_lower(value).find("chunked") != std::string::npos;
    } else if (name == "content-range") {
      // "bytes <start>-<end>/<total>" — only the start matters for resume
      // validation.
      const std::string v = ascii_lower(value);
      constexpr std::string_view kBytes = "bytes ";
      if (v.starts_with(kBytes)) {
        const char* b = v.data() + kBytes.size();
        const char* e = v.data() + v.size();
        std::int64_t start = 0;
        const auto [sp2, sec] = std::from_chars(b, e, start);
        if (sec == std::errc{} && sp2 != b) out.content_range_start = start;
      }
    }
  }
  return true;
}

/// De-chunks a Transfer-Encoding: chunked body incrementally.
class ChunkedBody {
 public:
  /// Feeds raw socket bytes; forwards payload to `body`. Returns false on
  /// a framing error (error set).
  bool feed(std::span<const std::uint8_t> in, const HttpBodySink& body,
            std::uint64_t& delivered, std::string& error) {
    std::size_t i = 0;
    while (i < in.size()) {
      switch (state_) {
        case State::kSize: {
          const char c = static_cast<char>(in[i]);
          if (c == '\r') {
            ++i;
            break;
          }
          if (c == '\n') {
            ++i;
            if (!size_line_.empty()) {
              std::size_t size = 0;
              const std::size_t semi = size_line_.find(';');
              const std::string_view digits =
                  std::string_view(size_line_).substr(0, semi);
              const auto [p, ec] = std::from_chars(
                  digits.data(), digits.data() + digits.size(), size, 16);
              if (ec != std::errc{} || p != digits.data() + digits.size()) {
                error = "malformed chunk size";
                return false;
              }
              size_line_.clear();
              remaining_ = size;
              state_ = size == 0 ? State::kTrailer : State::kData;
            }
            break;
          }
          size_line_.push_back(c);
          ++i;
          break;
        }
        case State::kData: {
          const std::size_t take = std::min(in.size() - i, remaining_);
          if (take > 0) {
            body(in.subspan(i, take));
            delivered += take;
            remaining_ -= take;
            i += take;
          }
          if (remaining_ == 0) state_ = State::kDataEnd;
          break;
        }
        case State::kDataEnd: {
          // Consume the CRLF after the chunk payload.
          const char c = static_cast<char>(in[i]);
          ++i;
          if (c == '\n') state_ = State::kSize;
          break;
        }
        case State::kTrailer: {
          // Swallow trailers until the blank line.
          const char c = static_cast<char>(in[i]);
          ++i;
          if (c == '\n') {
            if (trailer_line_empty_) {
              done_ = true;
              return true;
            }
            trailer_line_empty_ = true;
          } else if (c != '\r') {
            trailer_line_empty_ = false;
          }
          break;
        }
      }
      if (done_) return true;
    }
    return true;
  }

  bool done() const { return done_; }

 private:
  enum class State { kSize, kData, kDataEnd, kTrailer };
  State state_ = State::kSize;
  std::string size_line_;
  std::size_t remaining_ = 0;
  bool trailer_line_empty_ = true;
  bool done_ = false;
};

}  // namespace

std::optional<Url> parse_url(std::string_view text) {
  constexpr std::string_view kSep = "://";
  const std::size_t sep = text.find(kSep);
  if (sep == std::string_view::npos || sep == 0) return std::nullopt;
  Url url;
  url.scheme = ascii_lower(text.substr(0, sep));
  std::string_view rest = text.substr(sep + kSep.size());
  const std::size_t slash = rest.find('/');
  std::string_view authority =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  url.target = slash == std::string_view::npos ? "/" : std::string(rest.substr(slash));
  const std::size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos &&
      authority.find(':') == colon) {  // exclude bare IPv6 literals
    url.host = std::string(authority.substr(0, colon));
    url.port = std::string(authority.substr(colon + 1));
    if (url.port.empty() ||
        !std::all_of(url.port.begin(), url.port.end(), [](char c) {
          return std::isdigit(static_cast<unsigned char>(c));
        })) {
      return std::nullopt;
    }
  } else {
    url.host = std::string(authority);
    url.port = url.scheme == "https" ? "443" : "80";
  }
  if (url.host.empty()) return std::nullopt;
  return url;
}

std::string_view to_string(FetchOutcome outcome) {
  switch (outcome) {
    case FetchOutcome::kOk: return "ok";
    case FetchOutcome::kTransient: return "transient";
    case FetchOutcome::kPermanent: return "permanent";
  }
  return "transient";
}

FetchOutcome classify_status(int status) {
  if (status >= 200 && status < 300) return FetchOutcome::kOk;
  if (status == 416) return FetchOutcome::kOk;  // nothing past the offset
  if (status == 408 || status == 429) return FetchOutcome::kTransient;
  if (status >= 500) return FetchOutcome::kTransient;
  return FetchOutcome::kPermanent;  // 3xx/4xx: redirects unsupported, 404s final
}

HttpResult http_get(const Url& url, const HttpGetOptions& options,
                    const HttpBodySink& body) {
  HttpResult result;
  if (url.scheme != "http") {
    result.outcome = FetchOutcome::kPermanent;
    result.error = url.scheme == "https"
                       ? "https is not supported in this build; use an http:// "
                         "mirror (see README \"Running as a service\")"
                       : "unsupported URL scheme \"" + url.scheme + "\"";
    return result;
  }

  Socket sock;
  if (!connect_with_timeout(url, options, sock, result.error)) {
    result.outcome = FetchOutcome::kTransient;
    return result;
  }

  std::string request = "GET " + url.target + " HTTP/1.1\r\nHost: " + url.host +
                        "\r\nUser-Agent: artemis-ingest/1\r\n";
  if (options.range_start > 0) {
    request += "Range: bytes=" + std::to_string(options.range_start) + "-\r\n";
  }
  request += "Connection: close\r\n\r\n";
  if (!send_all(sock.fd(), request, options.io_timeout_ms, result.error)) {
    result.outcome = FetchOutcome::kTransient;
    return result;
  }

  // --- read + split head from body ---------------------------------------
  std::vector<std::uint8_t> buf(64u << 10);
  std::string head;
  std::size_t body_start = 0;  // offset into buf of the first body byte
  std::size_t body_len = 0;
  bool have_head = false;
  while (!have_head) {
    std::size_t got = 0;
    const ReadStatus rs =
        read_some(sock.fd(), buf, options.io_timeout_ms, got, result.error);
    if (rs != ReadStatus::kData) {
      if (rs == ReadStatus::kEof) result.error = "connection closed before response";
      result.outcome = FetchOutcome::kTransient;
      return result;
    }
    head.append(reinterpret_cast<const char*>(buf.data()), got);
    const std::size_t end = head.find("\r\n\r\n");
    if (end != std::string_view::npos) {
      // Bytes past the blank line in THIS read belong to the body.
      const std::size_t head_total = end + 4;
      const std::size_t prior = head.size() - got;
      body_start = head_total > prior ? head_total - prior : 0;
      body_len = got - body_start;
      head.resize(head_total);
      have_head = true;
    } else if (head.size() > (1u << 20)) {
      result.error = "response header exceeds 1 MiB";
      result.outcome = FetchOutcome::kTransient;
      return result;
    }
  }

  ResponseHead parsed;
  if (!parse_head(head, parsed, result.error)) {
    result.outcome = FetchOutcome::kTransient;
    return result;
  }
  result.status = parsed.status;
  result.content_length = parsed.content_length;
  result.outcome = classify_status(parsed.status);
  if (parsed.status == 416) return result;  // no body we care about
  if (result.outcome != FetchOutcome::kOk) {
    // Error statuses: the body (if any) is diagnostics, not archive bytes.
    result.error = "HTTP status " + std::to_string(parsed.status);
    return result;
  }
  if (options.range_start > 0 && parsed.status == 206) {
    if (parsed.content_range_start !=
        static_cast<std::int64_t>(options.range_start)) {
      result.error = "Content-Range start " +
                     std::to_string(parsed.content_range_start) +
                     " does not match requested offset " +
                     std::to_string(options.range_start);
      result.outcome = FetchOutcome::kTransient;
      return result;
    }
    result.ranged = true;
  }

  // --- body --------------------------------------------------------------
  // A 200 despite our Range request restarts the entity from byte 0:
  // swallow the prefix here, where the status is known BEFORE the first
  // body byte, so the caller's sink sees a seamless byte stream either way.
  std::uint64_t discard = (options.range_start > 0 && parsed.status == 200)
                              ? options.range_start
                              : 0;
  const HttpBodySink deduped = [&](std::span<const std::uint8_t> data) {
    if (discard > 0) {
      const std::uint64_t skip = std::min<std::uint64_t>(discard, data.size());
      discard -= skip;
      result.discarded_bytes += skip;
      data = data.subspan(skip);
    }
    if (data.empty()) return;
    result.body_bytes += data.size();
    body(data);
  };

  ChunkedBody chunked;
  std::uint64_t raw_body = 0;         // identity-framing byte count
  std::uint64_t chunk_payload = 0;    // de-chunked payload byte count
  const auto deliver = [&](std::span<const std::uint8_t> data) -> bool {
    if (data.empty()) return true;
    if (parsed.chunked) {
      return chunked.feed(data, deduped, chunk_payload, result.error);
    }
    std::span<const std::uint8_t> take = data;
    if (parsed.content_length >= 0) {
      const std::uint64_t want =
          static_cast<std::uint64_t>(parsed.content_length) - raw_body;
      if (take.size() > want) take = take.subspan(0, want);
    }
    raw_body += take.size();
    if (!take.empty()) deduped(take);
    return true;
  };

  if (!deliver({buf.data() + body_start, body_len})) {
    result.outcome = FetchOutcome::kTransient;
    return result;
  }
  for (;;) {
    if (parsed.chunked && chunked.done()) break;
    if (!parsed.chunked && parsed.content_length >= 0 &&
        raw_body >= static_cast<std::uint64_t>(parsed.content_length)) {
      break;
    }
    std::size_t got = 0;
    const ReadStatus rs =
        read_some(sock.fd(), buf, options.io_timeout_ms, got, result.error);
    if (rs == ReadStatus::kEof) {
      if (parsed.chunked && !chunked.done()) {
        result.error = "connection closed mid-chunked-body";
        result.outcome = FetchOutcome::kTransient;
      } else if (parsed.content_length >= 0 &&
                 raw_body < static_cast<std::uint64_t>(parsed.content_length)) {
        result.error = "short body: got " + std::to_string(raw_body) + " of " +
                       std::to_string(parsed.content_length) + " bytes";
        result.outcome = FetchOutcome::kTransient;
      }
      // No Content-Length, not chunked: EOF IS the delimiter — success.
      return result;
    }
    if (rs != ReadStatus::kData) {
      result.outcome = FetchOutcome::kTransient;
      return result;
    }
    if (!deliver({buf.data(), got})) {
      result.outcome = FetchOutcome::kTransient;
      return result;
    }
  }
  return result;
}

}  // namespace artemis::ingest

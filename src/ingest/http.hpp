// Minimal HTTP/1.1 GET client for the ingest supervisor.
//
// Archive mirrors (RouteViews, RIPE RIS, a local rsync'd copy behind any
// static file server) need nothing more than GET + Range, and the
// supervisor needs *classified* failures more than it needs protocol
// breadth: a refused connection and a 503 should back off and retry, a
// 404 should fail the source fast, and a connection cut mid-body should
// resume from the received byte count. So this client is deliberately
// small — blocking sockets with poll()-based timeouts, identity and
// chunked transfer framing, `Connection: close` (one request per
// connection; archive fetches are long transfers, not RPC chatter) — and
// classifies every outcome instead of throwing: network faults are the
// supervisor's steady state, not exceptional.
//
// TLS is intentionally out: https:// URLs classify as permanent errors
// with a pointer at using an http:// mirror (see README "Running as a
// service"). The URL/response layer is transport-agnostic, so a TLS
// stream can slot in behind the same interface later.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace artemis::ingest {

struct Url {
  std::string scheme;  ///< "http" (anything else is rejected at fetch time)
  std::string host;
  std::string port;    ///< defaulted from the scheme when absent
  std::string target;  ///< path + query, always starting with '/'
};

/// Parses "http://host[:port]/path?query". Returns nullopt on anything
/// that does not look like an absolute URL with a host.
std::optional<Url> parse_url(std::string_view text);

/// How a fetch attempt ended, from the retry policy's point of view.
enum class FetchOutcome : std::uint8_t {
  kOk,         ///< response fully consumed (incl. 416 "nothing past offset")
  kTransient,  ///< worth a backoff + retry: 5xx/408/429, resets, timeouts,
               ///< short bodies, malformed frames
  kPermanent,  ///< retrying cannot help: 404-class statuses, bad URL, TLS
};

std::string_view to_string(FetchOutcome outcome);

struct HttpResult {
  FetchOutcome outcome = FetchOutcome::kTransient;
  int status = 0;            ///< HTTP status, 0 when none was received
  std::string error;         ///< human-readable cause when not kOk
  std::uint64_t body_bytes = 0;  ///< NEW entity bytes delivered to the sink
  /// Duplicate prefix bytes swallowed when a server ignored our Range
  /// header and replied 200 from entity byte 0: http_get discards the
  /// first range_start raw body bytes itself, so the sink only ever sees
  /// entity bytes >= range_start regardless of server behavior.
  std::uint64_t discarded_bytes = 0;
  std::int64_t content_length = -1;  ///< from the response, -1 unknown
  /// True when the server honored our Range header (206 + matching
  /// Content-Range).
  bool ranged = false;
};

struct HttpGetOptions {
  /// Request "Range: bytes=<range_start>-" when > 0 (resume).
  std::uint64_t range_start = 0;
  int connect_timeout_ms = 5000;
  /// Per-poll receive timeout: a server that sends nothing for this long
  /// counts as stalled (kTransient).
  int io_timeout_ms = 5000;
};

/// Raw body payload chunks, in order. Never invoked after a tear's last
/// received byte; HttpResult::body_bytes totals exactly what was passed.
using HttpBodySink = std::function<void(std::span<const std::uint8_t>)>;

/// One blocking GET. Never throws on network/protocol faults — every
/// outcome is classified in the result (exceptions escape only for
/// programming errors, e.g. a null sink).
HttpResult http_get(const Url& url, const HttpGetOptions& options,
                    const HttpBodySink& body);

/// Classifies a status code the way http_get does (exposed for tests and
/// for the supervisor's stats rendering).
FetchOutcome classify_status(int status);

}  // namespace artemis::ingest

#include "ingest/pipeline.hpp"

#include <algorithm>
#include <cstring>

namespace artemis::ingest {

bool parse_lag_policy(std::string_view text, LagPolicy& policy) {
  if (text == "flush") {
    policy = LagPolicy::kFlush;
    return true;
  }
  if (text == "drop") {
    policy = LagPolicy::kDrop;
    return true;
  }
  return false;
}

std::string_view to_string(LagPolicy policy) {
  switch (policy) {
    case LagPolicy::kFlush: return "flush";
    case LagPolicy::kDrop: return "drop";
  }
  return "flush";
}

IngestPipeline::IngestPipeline(journal::JournalWriter& writer,
                               PipelineOptions options)
    : writer_(writer), options_(options), converter_(options.convert) {
  if (options_.metrics != nullptr) {
    metrics_ = telemetry::register_ingest(*options_.metrics);
    writer_.set_metrics(telemetry::register_journal(*options_.metrics));
  }
  // Bind the two hot-path callbacks once; per-chunk work then goes
  // through pre-allocated std::functions instead of constructing them.
  batch_sink_ = [this](std::span<const feeds::Observation> batch) {
    on_batch(batch);
  };
  decompressed_sink_ = [this](std::span<const std::uint8_t> data) {
    converter_.feed(data, batch_sink_);
  };
}

void IngestPipeline::begin_source(std::uint64_t skip_observations) {
  stats_ = SourceFeedStats{};
  active_ = nullptr;
  head_len_ = 0;
  skip_remaining_ = skip_observations;
  converter_.begin_file();
}

mrt::ChunkDecompressor* IngestPipeline::decompressor_for(
    mrt::Compression compression) {
  std::unique_ptr<mrt::ChunkDecompressor>* slot = nullptr;
  switch (compression) {
    case mrt::Compression::kNone: slot = &identity_; break;
    case mrt::Compression::kGzip: slot = &gzip_; break;
    case mrt::Compression::kBzip2: slot = &bzip2_; break;
  }
  if (!*slot) {
    *slot = mrt::make_chunk_decompressor(compression);
  } else {
    (*slot)->reset();
  }
  return slot->get();
}

void IngestPipeline::feed(std::span<const std::uint8_t> chunk) {
  stats_.bytes_in += chunk.size();
  if (active_ == nullptr) {
    // Stash bytes until the magic is decidable (bzip2's is 4 bytes; a
    // stream shorter than the stash sniffs at finish_source()).
    while (head_len_ < sizeof(head_) && !chunk.empty()) {
      head_[head_len_++] = chunk.front();
      chunk = chunk.subspan(1);
    }
    if (head_len_ < sizeof(head_)) return;
    stats_.compression = mrt::sniff_compression({head_, head_len_});
    active_ = decompressor_for(stats_.compression);
    active_->feed({head_, head_len_}, decompressed_sink_);
  }
  if (!chunk.empty()) active_->feed(chunk, decompressed_sink_);
}

void IngestPipeline::on_batch(std::span<const feeds::Observation> batch) {
  if (batch.empty()) return;
  // Ledger order matters for /healthz: bump `converted` before any
  // outcome counter, so a concurrent scrape can only observe
  // converted >= journaled + skipped + dropped (never the reverse).
  if (metrics_.converted != nullptr) metrics_.converted->add(batch.size());
  // Resume shim: the leading `skip_remaining_` observations of this
  // re-converted stream are already durable from the pre-crash run.
  if (skip_remaining_ > 0) {
    const std::uint64_t skip =
        std::min<std::uint64_t>(skip_remaining_, batch.size());
    skip_remaining_ -= skip;
    stats_.observations_skipped += skip;
    if (metrics_.skipped != nullptr) metrics_.skipped->add(skip);
    batch = batch.subspan(static_cast<std::size_t>(skip));
    if (batch.empty()) return;
  }
  // Backpressure: bound the journal lag before taking on more records.
  if (writer_.records_buffered() >= options_.max_lag_records) {
    if (options_.lag_policy == LagPolicy::kDrop) {
      ++stats_.batches_dropped;
      stats_.observations_dropped += batch.size();
      if (metrics_.dropped != nullptr) metrics_.dropped->add(batch.size());
      return;
    }
    writer_.flush();
    ++stats_.lag_flushes;
  }
  writer_.append_batch(batch);
  stats_.observations_journaled += batch.size();
  if (metrics_.journaled != nullptr) metrics_.journaled->add(batch.size());
  // Tap AFTER the append succeeds, with the identical span: the live
  // detector only ever sees observations the journal holds, keeping
  // "replay the journal" a faithful re-run of what detection saw.
  if (options_.detection_tap) options_.detection_tap(batch);
}

SourceFeedStats IngestPipeline::finish_source() {
  if (active_ == nullptr) {
    // Stream ended before the sniff stash filled: sniff what there is.
    // (Real MRT records are >= 12 bytes, so this is the empty-or-garbage
    // tail case; the converter will report it as truncated if nonempty.)
    stats_.compression = mrt::sniff_compression({head_, head_len_});
    active_ = decompressor_for(stats_.compression);
    if (head_len_ > 0) active_->feed({head_, head_len_}, decompressed_sink_);
    head_len_ = 0;
  }
  active_->finish(decompressed_sink_);
  stats_.stream_truncated = active_->truncated();
  stats_.stream_error = active_->error();
  stats_.convert = converter_.finish_file(batch_sink_);
  // A transport-layer tear is a truncation of the source even when the
  // recovered prefix happened to end on an MRT record boundary — the same
  // patch import_mrt_files applies for the pull path (the stream's own
  // message stays in stream_error, mirroring its transport_error).
  if (stats_.stream_truncated && stats_.convert.error.empty()) {
    stats_.convert.truncated = true;
  }
  if (metrics_.enabled()) {
    metrics_.convert_records->add(stats_.convert.records);
    metrics_.convert_skips->add(stats_.convert.skipped_records);
  }
  active_ = nullptr;
  return stats_;
}

}  // namespace artemis::ingest

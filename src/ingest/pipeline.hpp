// IngestPipeline: transport bytes in, journal records out.
//
// Sits between a FetchSource (or any byte producer) and a JournalWriter:
// sniffs the compression from the stream's magic bytes, pushes chunks
// through a reused ChunkDecompressor, feeds the decompressed MRT bytes to
// the streaming ObservationConverter, and appends the resulting batches —
// all in O(chunk) memory, allocation-free once warm (the decompressors,
// the converter's scratch and the writer's buffer are all recycled across
// sources; tests/detection_alloc_test.cpp pins it).
//
// Two concerns live at the append shim:
//
//  * Crash resume. A restarted supervisor re-fetches the interrupted URL
//    from byte 0 and re-converts deterministically; the shim drops the
//    first `skip` observations — exactly the ones the durable journal
//    already holds — so the journal continues without a duplicated or
//    lost record (the supervisor computes `skip` from the journal tail
//    and its persisted cursor).
//
//  * Backpressure. The journal lag (writer.records_buffered()) is
//    bounded by max_lag_records. kFlush (default) pushes the buffered
//    records to the OS — ingest pays the write, nothing is lost. kDrop
//    sheds the incoming batch instead and ACCOUNTS it: dropped counts are
//    first-class stats, never silent, and the arithmetic invariant
//      converted == journaled + skipped + dropped
//    holds at every finish_source() (tests assert it under fault load).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "feeds/observation.hpp"
#include "journal/writer.hpp"
#include "mrt/observation_convert.hpp"
#include "mrt/stream_reader.hpp"
#include "telemetry/metrics.hpp"

namespace artemis::ingest {

enum class LagPolicy : std::uint8_t {
  kFlush,  ///< bound lag by flushing the writer (lossless, default)
  kDrop,   ///< bound lag by shedding incoming batches (accounted loss)
};

/// Parses "flush" / "drop". Returns false on any other text.
bool parse_lag_policy(std::string_view text, LagPolicy& policy);
std::string_view to_string(LagPolicy policy);

struct PipelineOptions {
  mrt::ObservationConvertOptions convert;
  /// Backpressure bound on writer.records_buffered(), checked per batch.
  std::size_t max_lag_records = 65536;
  LagPolicy lag_policy = LagPolicy::kFlush;
  /// Optional live-detection tap, invoked with exactly the span each
  /// append journals (after the resume skip, after a kDrop shed). That
  /// equivalence is the contract: in a run with no drops and no crash,
  /// the tap sees the same stream a later journal replay would — so a
  /// ShardedDetector fed here (artemis_ingest --detect) raises the same
  /// alerts the replay path does. Called on the ingest thread; a threaded
  /// detector's submit_batch is its single producer.
  feeds::ObservationBatchHandler detection_tap;
  /// When set, the pipeline registers the ingest counter bundle and
  /// feeds the live ledger (converted/journaled/skipped/dropped, plus
  /// converter record counts at finish_source). Counter ordering is the
  /// /healthz contract: `converted` is bumped BEFORE the outcome
  /// counters, so a concurrent reader sees converted >= journaled +
  /// skipped + dropped (the difference is in flight) and a true ledger
  /// violation only as journaled+skipped+dropped > converted. Must
  /// outlive the pipeline.
  telemetry::MetricsRegistry* metrics = nullptr;
};

/// Per-source ledger, reset by begin_source(). The "no silent loss"
/// invariant: convert.observations == journaled + skipped + dropped.
struct SourceFeedStats {
  mrt::ConvertFileStats convert;
  mrt::Compression compression = mrt::Compression::kNone;
  std::uint64_t bytes_in = 0;  ///< transport (possibly compressed) bytes fed
  std::uint64_t observations_journaled = 0;
  std::uint64_t observations_skipped = 0;  ///< resume shim (already durable)
  std::uint64_t observations_dropped = 0;  ///< kDrop backpressure sheds
  std::uint64_t batches_dropped = 0;
  std::uint64_t lag_flushes = 0;  ///< kFlush backpressure flushes
  bool stream_truncated = false;  ///< compressed stream tore mid-member
  std::string stream_error;
};

class IngestPipeline {
 public:
  IngestPipeline(journal::JournalWriter& writer, PipelineOptions options = {});

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Starts a new source stream. `skip_observations` > 0 is the crash-
  /// resume case: that many leading observations re-converted from the
  /// re-fetched stream are dropped at the append shim (they are already
  /// durable in the journal).
  void begin_source(std::uint64_t skip_observations = 0);

  /// Pushes transport bytes (an HTTP body chunk, a file slice). Safe to
  /// call with any chunking, including one byte at a time.
  void feed(std::span<const std::uint8_t> chunk);

  /// Ends the source stream: drains the decompressor and the converter's
  /// carried tail, flushes the final partial batch, and returns the
  /// source's ledger. A mid-member transport tear surfaces here as
  /// stream_truncated (+ convert.truncated), same as the whole-file path.
  SourceFeedStats finish_source();

  /// The running ledger of the in-flight source (finish_source() returns
  /// the final version of the same object).
  const SourceFeedStats& current() const { return stats_; }

  mrt::ObservationConverter& converter() { return converter_; }
  journal::JournalWriter& writer() { return writer_; }

  /// The registered counter bundle (cells null when options.metrics was
  /// null). The supervisor shares it for fetch/cursor accounting.
  const telemetry::IngestCounters& metrics() const { return metrics_; }

 private:
  void on_batch(std::span<const feeds::Observation> batch);
  mrt::ChunkDecompressor* decompressor_for(mrt::Compression compression);

  journal::JournalWriter& writer_;
  PipelineOptions options_;
  mrt::ObservationConverter converter_;
  feeds::ObservationBatchHandler batch_sink_;  ///< bound once; reused per feed
  mrt::ChunkDecompressor::Output decompressed_sink_;
  // One decompressor per kind, created on first use and reset() on reuse,
  // so a long-running ingest loop allocates nothing per source.
  std::unique_ptr<mrt::ChunkDecompressor> identity_;
  std::unique_ptr<mrt::ChunkDecompressor> gzip_;
  std::unique_ptr<mrt::ChunkDecompressor> bzip2_;
  mrt::ChunkDecompressor* active_ = nullptr;  ///< null until sniffed
  std::uint8_t head_[4];                      ///< pre-sniff byte stash
  std::size_t head_len_ = 0;
  std::uint64_t skip_remaining_ = 0;
  SourceFeedStats stats_;
  telemetry::IngestCounters metrics_;  ///< null cells = disabled
};

}  // namespace artemis::ingest

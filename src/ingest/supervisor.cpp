#include "ingest/supervisor.hpp"

#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace artemis::ingest {
namespace {

constexpr std::string_view kCursorFile = "ingest-cursor.json";

void sleep_ms(std::int64_t ms) {
  if (ms <= 0) return;
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = (ms % 1000) * 1'000'000;
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

std::string cursor_path(const std::string& journal_dir) {
  return journal_dir + "/" + std::string(kCursorFile);
}

std::string_view compression_name(mrt::Compression compression) {
  switch (compression) {
    case mrt::Compression::kNone: return "none";
    case mrt::Compression::kGzip: return "gzip";
    case mrt::Compression::kBzip2: return "bzip2";
  }
  return "none";
}

}  // namespace

std::optional<IngestCursor> load_ingest_cursor(const std::string& journal_dir) {
  const std::string path = cursor_path(journal_dir);
  if (!std::filesystem::exists(path)) return std::nullopt;
  const json::Value doc = json::parse_file(path);
  IngestCursor cursor;
  cursor.url_index = static_cast<std::uint64_t>(doc.get_int("url_index", 0));
  cursor.url = doc.get_string("url", "");
  cursor.start_seq = static_cast<std::uint64_t>(doc.get_int("start_seq", 0));
  cursor.start_clock_us = doc.get_int("start_clock_us", 0);
  return cursor;
}

void store_ingest_cursor(const std::string& journal_dir,
                         const IngestCursor& cursor) {
  json::Object doc;
  doc["version"] = json::Value(std::int64_t{1});
  doc["url_index"] = json::Value(static_cast<std::int64_t>(cursor.url_index));
  doc["url"] = json::Value(cursor.url);
  doc["start_seq"] = json::Value(static_cast<std::int64_t>(cursor.start_seq));
  doc["start_clock_us"] = json::Value(cursor.start_clock_us);
  const std::string text = json::Value(std::move(doc)).dump(2);

  // tmp + rename: the cursor is either the old complete file or the new
  // complete file, never a torn hybrid — a SIGKILL between the two leaves
  // the previous cursor, which resume handles (it just re-skips more).
  const std::string path = cursor_path(journal_dir);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.put('\n');
    if (!out) {
      throw journal::JournalError("cannot write ingest cursor " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw journal::JournalError("cannot rename ingest cursor into place: " +
                                ec.message());
  }
}

IngestSupervisor::IngestSupervisor(SupervisorOptions options,
                                   std::vector<std::string> urls)
    : options_(std::move(options)),
      urls_(std::move(urls)),
      writer_(options_.journal_dir, options_.journal),
      pipeline_(writer_, options_.pipeline) {
  if (!options_.sleep) options_.sleep = sleep_ms;
  // Count backoff waits at the one choke point every retry path shares.
  // Wrapping happens once here — the per-wait cost is two relaxed adds.
  if (pipeline_.metrics().enabled()) {
    const telemetry::IngestCounters& metrics = pipeline_.metrics();
    FetchSource::SleepFn inner = std::move(options_.sleep);
    options_.sleep = [inner = std::move(inner), &metrics](std::int64_t ms) {
      metrics.backoff_waits->add();
      if (ms > 0) metrics.backoff_ms->add(static_cast<std::uint64_t>(ms));
      inner(ms);
    };
  }
}

IngestReport IngestSupervisor::partial_report() const {
  IngestReport report = report_;
  report.records_journaled = writer_.records_written();
  report.journal_next_seq = writer_.next_sequence();
  report.journal_segments = writer_.segments_opened();
  report.journal_bytes = writer_.bytes_written();
  report.fsyncs = writer_.fsyncs();
  return report;
}

IngestReport IngestSupervisor::run() {
  report_ = IngestReport{};
  IngestReport& report = report_;

  // Where did the previous incarnation die? The cursor names the URL in
  // flight; the durable journal says how much of it survived.
  std::uint64_t first_index = 0;
  std::uint64_t resume_skip = 0;
  std::int64_t resume_clock_us = 0;
  bool resuming = false;
  const std::optional<IngestCursor> cursor =
      load_ingest_cursor(options_.journal_dir);
  if (cursor && cursor->url_index < urls_.size() &&
      urls_[cursor->url_index] == cursor->url) {
    first_index = cursor->url_index;
    if (writer_.next_sequence() < cursor->start_seq) {
      throw journal::JournalError(
          "ingest cursor claims sequence " + std::to_string(cursor->start_seq) +
          " but the journal resumes at " +
          std::to_string(writer_.next_sequence()) +
          " — cursor and journal are from different runs");
    }
    resume_skip = writer_.next_sequence() - cursor->start_seq;
    resume_clock_us = cursor->start_clock_us;
    resuming = true;
  }

  const Rng seed_rng(options_.seed);
  for (std::uint64_t i = first_index; i < urls_.size(); ++i) {
    const std::string& url = urls_[i];
    const bool resumed = resuming && i == first_index;
    const std::uint64_t skip = resumed ? resume_skip : 0;

    if (resumed) {
      pipeline_.converter().restore_clock(resume_clock_us);
    } else {
      // Flush first: the cursor's start_seq must never exceed what a
      // SIGKILL would leave durable, or restart's skip count underflows.
      writer_.flush();
      IngestCursor next;
      next.url_index = i;
      next.url = url;
      next.start_seq = writer_.next_sequence();
      next.start_clock_us = pipeline_.converter().clock_us();
      store_ingest_cursor(options_.journal_dir, next);
      if (pipeline_.metrics().cursor_persists != nullptr) {
        pipeline_.metrics().cursor_persists->add();
      }
    }

    FetchSource source(url, options_.fetch, seed_rng.fork(url));
    pipeline_.begin_source(skip);
    const FetchOutcome outcome = source.run(
        [this](std::span<const std::uint8_t> data) { pipeline_.feed(data); },
        options_.sleep);

    SourceReport sr;
    sr.url = url;
    sr.state = source.state();
    sr.outcome = outcome;
    sr.fetch = source.stats();
    if (pipeline_.metrics().enabled()) {
      pipeline_.metrics().bytes_fetched->add(sr.fetch.bytes_fetched);
      pipeline_.metrics().fetch_retries->add(sr.fetch.retries);
    }
    sr.feed = pipeline_.finish_source();
    sr.resumed = resumed;
    sr.resume_skipped = sr.feed.observations_skipped;
    if (outcome != FetchOutcome::kOk) {
      ++report.sources_failed;
    } else if (sr.feed.convert.truncated || !sr.feed.convert.error.empty()) {
      ++report.sources_truncated;
    } else {
      ++report.sources_done;
    }
    report.sources.push_back(std::move(sr));
  }

  report.records_journaled = writer_.records_written();
  report.journal_segments = writer_.segments_opened();
  report.fsyncs = writer_.fsyncs();
  writer_.close();
  report.journal_next_seq = writer_.next_sequence();
  report.journal_bytes = writer_.bytes_written();
  return report;
}

json::Value ingest_report_to_json(const SupervisorOptions& options,
                                  const IngestReport& report) {
  json::Object out;
  out["journal_dir"] = json::Value(options.journal_dir);
  out["fsync_policy"] = json::Value(fsync_policy_to_string(options.journal));
  out["lag_policy"] =
      json::Value(std::string(to_string(options.pipeline.lag_policy)));
  out["max_lag_records"] =
      json::Value(static_cast<std::int64_t>(options.pipeline.max_lag_records));
  out["sources_done"] = json::Value(static_cast<std::int64_t>(report.sources_done));
  out["sources_truncated"] =
      json::Value(static_cast<std::int64_t>(report.sources_truncated));
  out["sources_failed"] =
      json::Value(static_cast<std::int64_t>(report.sources_failed));
  out["records_journaled"] =
      json::Value(static_cast<std::int64_t>(report.records_journaled));
  out["journal_next_seq"] =
      json::Value(static_cast<std::int64_t>(report.journal_next_seq));
  out["journal_segments"] =
      json::Value(static_cast<std::int64_t>(report.journal_segments));
  out["journal_bytes"] =
      json::Value(static_cast<std::int64_t>(report.journal_bytes));
  out["fsyncs"] = json::Value(static_cast<std::int64_t>(report.fsyncs));

  json::Array sources;
  for (const SourceReport& sr : report.sources) {
    json::Object s;
    s["url"] = json::Value(sr.url);
    s["state"] = json::Value(std::string(to_string(sr.state)));
    s["outcome"] = json::Value(std::string(to_string(sr.outcome)));
    s["attempts"] = json::Value(static_cast<std::int64_t>(sr.fetch.attempts));
    s["retries"] = json::Value(static_cast<std::int64_t>(sr.fetch.retries));
    s["bytes_fetched"] =
        json::Value(static_cast<std::int64_t>(sr.fetch.bytes_fetched));
    s["bytes_discarded"] =
        json::Value(static_cast<std::int64_t>(sr.fetch.bytes_discarded));
    s["resume_offset"] =
        json::Value(static_cast<std::int64_t>(sr.fetch.resume_offset));
    s["last_backoff_ms"] = json::Value(sr.fetch.last_backoff_ms);
    s["last_status"] = json::Value(sr.fetch.last_status);
    if (!sr.fetch.last_error.empty()) {
      s["last_error"] = json::Value(sr.fetch.last_error);
    }
    s["compression"] =
        json::Value(std::string(compression_name(sr.feed.compression)));
    s["records"] =
        json::Value(static_cast<std::int64_t>(sr.feed.convert.records));
    s["skipped_records"] =
        json::Value(static_cast<std::int64_t>(sr.feed.convert.skipped_records));
    s["observations_converted"] =
        json::Value(static_cast<std::int64_t>(sr.feed.convert.observations));
    s["observations_journaled"] =
        json::Value(static_cast<std::int64_t>(sr.feed.observations_journaled));
    s["observations_skipped"] =
        json::Value(static_cast<std::int64_t>(sr.feed.observations_skipped));
    s["observations_dropped"] =
        json::Value(static_cast<std::int64_t>(sr.feed.observations_dropped));
    s["batches_dropped"] =
        json::Value(static_cast<std::int64_t>(sr.feed.batches_dropped));
    s["lag_flushes"] =
        json::Value(static_cast<std::int64_t>(sr.feed.lag_flushes));
    s["stream_truncated"] = json::Value(sr.feed.stream_truncated);
    s["truncated"] = json::Value(sr.feed.convert.truncated);
    s["resumed"] = json::Value(sr.resumed);
    sources.push_back(json::Value(std::move(s)));
  }
  out["sources"] = json::Value(std::move(sources));
  return json::Value(std::move(out));
}

}  // namespace artemis::ingest

// IngestSupervisor: the always-on archive ingest loop.
//
// Drives a list of archive URLs, in order, through FetchSource →
// IngestPipeline → JournalWriter, and makes the whole run crash-proof:
// SIGKILL the process at ANY instant, restart it with the same arguments,
// and the journal continues byte-exact — no observation duplicated, none
// lost beyond the writer's documented in-memory window (and none at all
// once the lag bound has flushed them).
//
// The resume protocol needs only two durable artifacts:
//
//  1. The journal itself. JournalWriter::resume_existing() already
//     recovers the durable record count (truncating a torn tail), so the
//     journal tail IS the progress marker — there is no separate "records
//     done" counter to keep consistent with it.
//
//  2. A tiny per-URL cursor (`ingest-cursor.json` in the journal dir,
//     written atomically via tmp+rename) recording which URL is in
//     flight, the journal sequence at which its observations START, and
//     the converter clock at that point. The cursor is written BEFORE a
//     URL's first byte is converted, after a writer flush — so on disk,
//     journal next_seq >= cursor.start_seq always holds.
//
// Restart then computes skip = durable_next_seq − cursor.start_seq,
// re-fetches the in-flight URL from byte 0, re-converts it (conversion is
// deterministic), drops the first `skip` observations at the append shim,
// restores the converter clock, and continues as if the kill never
// happened. Compressed archives make byte-offset resume across process
// death impossible (the decompressor's state died), which is why restart
// re-fetches and re-skips; *within* a process, transient retries do
// resume at the byte offset with the live decompressor.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ingest/fetch_source.hpp"
#include "ingest/pipeline.hpp"
#include "json/json.hpp"

namespace artemis::ingest {

/// The durable resume cursor. `start_seq` / `start_clock_us` snapshot the
/// journal sequence and import clock immediately before `url`'s first
/// converted observation.
struct IngestCursor {
  std::uint64_t url_index = 0;
  std::string url;
  std::uint64_t start_seq = 0;
  std::int64_t start_clock_us = 0;
};

/// Reads `<journal_dir>/ingest-cursor.json`. nullopt when absent;
/// throws json::JsonError on a malformed file (a half-written cursor is
/// impossible by construction — rename is atomic — so malformed means
/// operator error, not crash debris).
std::optional<IngestCursor> load_ingest_cursor(const std::string& journal_dir);

/// Atomically replaces the cursor file (write tmp + rename).
void store_ingest_cursor(const std::string& journal_dir,
                         const IngestCursor& cursor);

struct SupervisorOptions {
  std::string journal_dir;
  journal::JournalWriterOptions journal;
  PipelineOptions pipeline;
  FetchPolicy fetch;
  /// Seeds backoff jitter (forked per URL, so schedules are independent
  /// across sources but reproducible per seed).
  std::uint64_t seed = 1;
  /// Test hook: replaces real backoff sleeps. Defaults to nanosleep.
  FetchSource::SleepFn sleep;
};

/// Everything the run learned about one URL, for the stats surface.
struct SourceReport {
  std::string url;
  SourceState state = SourceState::kPending;
  FetchOutcome outcome = FetchOutcome::kTransient;
  SourceStats fetch;
  SourceFeedStats feed;
  /// Crash-resume bookkeeping: observations this restart dropped at the
  /// append shim because the pre-crash run already journaled them.
  std::uint64_t resume_skipped = 0;
  bool resumed = false;
};

struct IngestReport {
  std::vector<SourceReport> sources;
  std::uint64_t sources_done = 0;
  std::uint64_t sources_truncated = 0;  ///< done-with-tear (partial archive)
  std::uint64_t sources_failed = 0;
  std::uint64_t records_journaled = 0;  ///< this run's appended records
  std::uint64_t journal_next_seq = 0;   ///< sequence after the run
  std::uint64_t journal_segments = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t fsyncs = 0;

  bool all_ok() const { return sources_failed == 0; }
};

/// Renders the report (plus the options that shaped it) as the stats
/// JSON `artemis_ingest --stats-json` emits. The per-source objects
/// carry the full no-silent-loss ledger:
///   converted == journaled + skipped + dropped
json::Value ingest_report_to_json(const SupervisorOptions& options,
                                  const IngestReport& report);

class IngestSupervisor {
 public:
  /// Opens (or RESUMES) the journal in options.journal_dir. Throws
  /// journal::JournalError like JournalWriter does.
  IngestSupervisor(SupervisorOptions options, std::vector<std::string> urls);

  IngestSupervisor(const IngestSupervisor&) = delete;
  IngestSupervisor& operator=(const IngestSupervisor&) = delete;

  /// Fetches every URL in order (blocking). Idempotent across crashes:
  /// killed runs continue where the durable journal ends. Closes the
  /// journal on completion.
  IngestReport run();

  /// Snapshot of progress so far: the sources completed before the
  /// current instant plus the journal's live counters. This is the
  /// fatal-error stats path — safe to call after run() threw, so
  /// --stats-json can still say what the run accomplished before dying.
  IngestReport partial_report() const;

  /// The pipeline's registered telemetry bundle (null cells when
  /// options.pipeline.metrics was unset). The /healthz ledger check
  /// reads the live converted/journaled/skipped/dropped cells from it.
  const telemetry::IngestCounters& metrics() const {
    return pipeline_.metrics();
  }

 private:
  SupervisorOptions options_;
  std::vector<std::string> urls_;
  journal::JournalWriter writer_;
  IngestPipeline pipeline_;
  IngestReport report_;  ///< built incrementally so partial_report() works
};

}  // namespace artemis::ingest

#include "journal/codec.hpp"

#include <algorithm>
#include <cstring>

namespace artemis::journal {
namespace {

// Payload layout (all integers varint/LEB128 unless noted):
//   u8      observation type
//   varint  source id (== current table size: inline definition follows,
//           varint length + raw bytes)
//   varint  vantage ASN
//   u8      address family (4 | 6)
//   u8      prefix length
//   raw     ceil(length / 8) address bytes (canonical network form)
//   varint  AS-path hop count, then one varint per hop (front first)
//   u8      BGP origin
//   varint  local_pref
//   varint  med
//   varint  community count, then per community: varint asn, varint value
//   zigzag  event_time - previous record's event_time (micros)
//   zigzag  delivered_at - event_time (micros)

constexpr std::size_t prefix_bytes(int length) {
  return static_cast<std::size_t>(length + 7) / 8;
}

[[noreturn]] void malformed(const char* what) {
  throw JournalError(std::string("malformed record payload: ") + what);
}

bool get_u8(const std::uint8_t*& cursor, const std::uint8_t* end,
            std::uint8_t& value) {
  if (cursor == end) return false;
  value = *cursor++;
  return true;
}

}  // namespace

// --------------------------------------------------------------- encoder

void RecordEncoder::reset() {
  sources_.clear();
  by_name_.clear();
  prev_event_us_ = 0;
}

std::uint32_t RecordEncoder::intern(std::string_view source) {
  const auto it = std::lower_bound(
      by_name_.begin(), by_name_.end(), source,
      [this](std::uint32_t id, std::string_view s) { return sources_[id] < s; });
  if (it != by_name_.end() && sources_[*it] == source) return *it;
  const auto id = static_cast<std::uint32_t>(sources_.size());
  sources_.emplace_back(source);
  by_name_.insert(it, id);
  return id;
}

void RecordEncoder::encode(const feeds::Observation& obs,
                           std::vector<std::uint8_t>& out) {
  scratch_.clear();
  scratch_.push_back(static_cast<std::uint8_t>(obs.type));

  const std::size_t known_sources = sources_.size();
  const std::uint32_t source_id = intern(obs.source);
  put_varint(scratch_, source_id);
  if (source_id == known_sources) {  // first sight: define inline
    put_varint(scratch_, obs.source.size());
    scratch_.insert(scratch_.end(), obs.source.begin(), obs.source.end());
  }

  put_varint(scratch_, obs.vantage);

  scratch_.push_back(static_cast<std::uint8_t>(obs.prefix.family()));
  scratch_.push_back(static_cast<std::uint8_t>(obs.prefix.length()));
  const auto& addr = obs.prefix.address().bytes();
  scratch_.insert(scratch_.end(), addr.begin(),
                  addr.begin() + prefix_bytes(obs.prefix.length()));

  const auto& hops = obs.attrs.as_path.hops();
  put_varint(scratch_, hops.size());
  for (const auto hop : hops) put_varint(scratch_, hop);
  scratch_.push_back(static_cast<std::uint8_t>(obs.attrs.origin));
  put_varint(scratch_, obs.attrs.local_pref);
  put_varint(scratch_, obs.attrs.med);
  put_varint(scratch_, obs.attrs.communities.size());
  for (const auto& community : obs.attrs.communities) {
    put_varint(scratch_, community.asn);
    put_varint(scratch_, community.value);
  }

  const std::int64_t event_us = obs.event_time.as_micros();
  put_varint(scratch_, zigzag_encode(event_us - prev_event_us_));
  put_varint(scratch_, zigzag_encode(obs.delivered_at.as_micros() - event_us));
  prev_event_us_ = event_us;

  // Frame: length | payload | CRC32 (little-endian).
  put_varint(out, scratch_.size());
  out.insert(out.end(), scratch_.begin(), scratch_.end());
  const std::uint32_t crc = crc32(scratch_.data(), scratch_.size());
  out.push_back(static_cast<std::uint8_t>(crc));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
  out.push_back(static_cast<std::uint8_t>(crc >> 16));
  out.push_back(static_cast<std::uint8_t>(crc >> 24));
}

// --------------------------------------------------------------- decoder

void RecordDecoder::reset() {
  sources_.clear();
  prev_event_us_ = 0;
  last_idempotent_ = false;
}

void RecordDecoder::decode(const std::uint8_t* payload, std::size_t size,
                           feeds::Observation& obs) {
  const std::uint8_t* cursor = payload;
  const std::uint8_t* const end = payload + size;

  std::uint8_t type = 0;
  if (!get_u8(cursor, end, type)) malformed("type");
  if (type > static_cast<std::uint8_t>(feeds::ObservationType::kRouteState)) {
    malformed("unknown observation type");
  }
  obs.type = static_cast<feeds::ObservationType>(type);

  std::uint64_t source_id = 0;
  bool defined_source = false;
  if (!get_varint(cursor, end, source_id)) malformed("source id");
  if (source_id == sources_.size()) {  // inline definition
    defined_source = true;
    std::uint64_t length = 0;
    if (!get_varint(cursor, end, length) ||
        length > static_cast<std::uint64_t>(end - cursor)) {
      malformed("source name");
    }
    sources_.emplace_back(reinterpret_cast<const char*>(cursor),
                          static_cast<std::size_t>(length));
    cursor += length;
  } else if (source_id > sources_.size()) {
    malformed("source id out of range");
  }
  obs.source = sources_[static_cast<std::size_t>(source_id)];

  std::uint64_t vantage = 0;
  if (!get_varint(cursor, end, vantage)) malformed("vantage");
  obs.vantage = static_cast<bgp::Asn>(vantage);

  std::uint8_t family = 0;
  std::uint8_t length = 0;
  if (!get_u8(cursor, end, family) || !get_u8(cursor, end, length)) {
    malformed("prefix");
  }
  if (family != static_cast<std::uint8_t>(net::IpFamily::kIpv4) &&
      family != static_cast<std::uint8_t>(net::IpFamily::kIpv6)) {
    malformed("address family");
  }
  const auto ip_family = static_cast<net::IpFamily>(family);
  if (length > net::family_bits(ip_family)) malformed("prefix length");
  const std::size_t addr_bytes = prefix_bytes(length);
  if (addr_bytes > static_cast<std::size_t>(end - cursor)) malformed("prefix bytes");
  std::uint8_t addr[16] = {};
  std::memcpy(addr, cursor, addr_bytes);
  cursor += addr_bytes;
  // The writer stored canonical (network-form) bytes, and the unstored
  // tail bytes are zero by construction here; masking the one partial
  // byte re-establishes the full canonical invariant even for a
  // tampered-but-CRC-patched file, without the Prefix constructor's
  // full re-masking round trip (this is the decode hot path).
  if ((length & 7) != 0) {
    addr[addr_bytes - 1] &=
        static_cast<std::uint8_t>(0xFF00u >> (length & 7));
  }
  obs.prefix =
      net::Prefix::from_canonical(net::IpAddress::from_bytes(ip_family, addr), length);

  std::uint64_t hop_count = 0;
  if (!get_varint(cursor, end, hop_count) ||
      hop_count > static_cast<std::uint64_t>(end - cursor)) {
    malformed("AS path");
  }
  hops_.clear();
  hops_.reserve(static_cast<std::size_t>(hop_count));
  for (std::uint64_t i = 0; i < hop_count; ++i) {
    std::uint64_t hop = 0;
    if (!get_varint(cursor, end, hop)) malformed("AS path hop");
    hops_.push_back(static_cast<bgp::Asn>(hop));
  }
  obs.attrs.as_path.assign(hops_.data(), hops_.size());

  std::uint8_t origin = 0;
  if (!get_u8(cursor, end, origin)) malformed("origin");
  if (origin > static_cast<std::uint8_t>(bgp::Origin::kIncomplete)) {
    malformed("unknown origin");
  }
  obs.attrs.origin = static_cast<bgp::Origin>(origin);

  std::uint64_t local_pref = 0;
  std::uint64_t med = 0;
  if (!get_varint(cursor, end, local_pref)) malformed("local_pref");
  if (!get_varint(cursor, end, med)) malformed("med");
  obs.attrs.local_pref = static_cast<std::uint32_t>(local_pref);
  obs.attrs.med = static_cast<std::uint32_t>(med);

  std::uint64_t community_count = 0;
  if (!get_varint(cursor, end, community_count) ||
      community_count > static_cast<std::uint64_t>(end - cursor)) {
    malformed("communities");
  }
  obs.attrs.communities.clear();
  obs.attrs.communities.reserve(static_cast<std::size_t>(community_count));
  for (std::uint64_t i = 0; i < community_count; ++i) {
    std::uint64_t asn = 0;
    std::uint64_t value = 0;
    if (!get_varint(cursor, end, asn)) malformed("community asn");
    if (!get_varint(cursor, end, value)) malformed("community value");
    obs.attrs.communities.push_back(
        bgp::Community{static_cast<std::uint16_t>(asn),
                       static_cast<std::uint16_t>(value)});
  }

  std::uint64_t event_delta = 0;
  std::uint64_t delivery_delta = 0;
  if (!get_varint(cursor, end, event_delta)) malformed("event time");
  if (!get_varint(cursor, end, delivery_delta)) malformed("delivery time");
  const std::int64_t event_us = prev_event_us_ + zigzag_decode(event_delta);
  obs.event_time = SimTime::at_micros(event_us);
  obs.delivered_at = SimTime::at_micros(event_us + zigzag_decode(delivery_delta));
  prev_event_us_ = event_us;
  last_idempotent_ = event_delta == 0 && !defined_source;

  if (cursor != end) malformed("trailing bytes");
}

}  // namespace artemis::journal

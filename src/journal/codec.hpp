// The observation record codec: compact, delta-encoded, per-segment state.
//
// One encoded record is ~20-30 bytes for a typical stream observation
// (vs ~150+ for the in-memory form): varint integers everywhere,
// timestamps as zigzag deltas (event_time delta-chained record to
// record, delivered_at as an offset from its own event_time — both are
// small and usually positive), prefixes as only their meaningful
// address bytes, and source names interned per segment (the first
// occurrence carries the string inline; every later record spends one
// or two bytes on the id).
//
// Encoder and decoder are deliberately symmetric state machines: both
// maintain (source table, previous event time), both reset() at segment
// boundaries, and the round-trip property test in tests/journal_test.cpp
// drives them over randomized batches. The encoder's steady state —
// every source already interned — performs no heap allocations
// (tests/detection_alloc_test.cpp enforces this through the writer tap).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "feeds/observation.hpp"
#include "journal/format.hpp"

namespace artemis::journal {

class RecordEncoder {
 public:
  /// Forgets interned sources and the timestamp chain (call at segment
  /// boundaries; segments must decode standalone). Keeps buffer capacity.
  void reset();

  /// Appends one framed record — varint length, payload, CRC32 — to
  /// `out`. Steady state (source already interned, `out` at capacity)
  /// allocates nothing.
  void encode(const feeds::Observation& obs, std::vector<std::uint8_t>& out);

  std::size_t source_table_size() const { return sources_.size(); }

  /// The interned source table, id order (== first-sight order). The
  /// writer snapshots this at seal time for the segment's index footer.
  const std::vector<std::string>& sources() const { return sources_; }

 private:
  /// Returns the id for `source`; ids are dense and assigned in first-
  /// sight order, mirroring the decoder's reconstruction.
  std::uint32_t intern(std::string_view source);

  std::vector<std::string> sources_;    ///< id -> name, first-sight order
  std::vector<std::uint32_t> by_name_;  ///< ids sorted by name
  std::int64_t prev_event_us_ = 0;
  std::vector<std::uint8_t> scratch_;  ///< payload staging (framing needs its size)
};

class RecordDecoder {
 public:
  /// Mirror of RecordEncoder::reset().
  void reset();

  /// Decodes one CRC-verified payload into `obs`, reusing its heap
  /// buffers (string/vector capacity) when possible. Throws JournalError
  /// on a malformed payload — with a valid CRC that means a codec bug or
  /// deliberate tampering, never a torn write.
  void decode(const std::uint8_t* payload, std::size_t size,
              feeds::Observation& obs);

  /// True when the last decoded payload was *idempotent*: re-decoding
  /// the identical bytes would yield the identical observation and leave
  /// the decoder state unchanged (zero event-time delta, no inline
  /// source definition) — the precondition for the reader's run-memo
  /// fast path.
  bool last_payload_idempotent() const { return last_idempotent_; }

 private:
  std::vector<std::string> sources_;  ///< id -> name, first-sight order
  std::int64_t prev_event_us_ = 0;
  std::vector<bgp::Asn> hops_;  ///< AS-path staging, capacity reused
  bool last_idempotent_ = false;
};

}  // namespace artemis::journal

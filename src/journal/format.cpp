#include "journal/format.hpp"

#include <cstring>

namespace artemis::journal {
namespace {

// ------------------------------------------------------------- CRC-32C

/// Slicing-by-8 tables for the reflected Castagnoli polynomial. Table 0
/// is the classic byte-at-a-time table; table k extends it to bytes k
/// positions deeper, letting the hot loop fold 8 bytes per step.
struct Crc32cTables {
  std::uint32_t t[8][256];
  Crc32cTables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
  }
};

const Crc32cTables kCrcTables;

std::uint32_t crc32c_sw(const std::uint8_t* data, std::size_t size) {
  const auto& t = kCrcTables.t;
  std::uint32_t crc = ~0u;
  while (size >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, data, 4);
    std::memcpy(&hi, data + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
          t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    data += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = t[0][(crc ^ *data++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

#if defined(__x86_64__) && defined(__GNUC__)
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(const std::uint8_t* data,
                                                          std::size_t size) {
  std::uint64_t crc = ~0u;
  while (size >= 8) {
    std::uint64_t word;
    std::memcpy(&word, data, 8);
    crc = __builtin_ia32_crc32di(crc, word);
    data += 8;
    size -= 8;
  }
  std::uint32_t crc32 = static_cast<std::uint32_t>(crc);
  while (size-- > 0) {
    crc32 = __builtin_ia32_crc32qi(crc32, *data++);
  }
  return ~crc32;
}
#endif

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool hw = __builtin_cpu_supports("sse4.2");
  if (hw) return crc32c_hw(data, size);
#endif
  return crc32c_sw(data, size);
}

namespace {

// Header layout (little-endian):
//   0  u32 magic
//   4  u16 version
//   6  u16 reserved (0)
//   8  u64 first_seq
//  16  i64 base_time_us
//  24  u32 crc32 of bytes [0, 24)
//  28  u32 reserved (0)

void store_le(std::uint8_t* out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t load_le(const std::uint8_t* in, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

void SegmentHeader::encode(std::uint8_t out[kSegmentHeaderSize]) const {
  std::memset(out, 0, kSegmentHeaderSize);
  store_le(out + 0, kSegmentMagic, 4);
  store_le(out + 4, version, 2);
  store_le(out + 8, first_seq, 8);
  store_le(out + 16, static_cast<std::uint64_t>(base_time_us), 8);
  store_le(out + 24, crc32(out, 24), 4);
}

SegmentHeader SegmentHeader::decode(const std::uint8_t in[kSegmentHeaderSize],
                                    const std::string& file) {
  if (load_le(in + 0, 4) != kSegmentMagic) {
    throw JournalError(file + ": not a journal segment (bad magic)");
  }
  if (load_le(in + 24, 4) != crc32(in, 24)) {
    throw JournalError(file + ": segment header CRC mismatch");
  }
  SegmentHeader header;
  header.version = static_cast<std::uint16_t>(load_le(in + 4, 2));
  header.first_seq = load_le(in + 8, 8);
  header.base_time_us = static_cast<std::int64_t>(load_le(in + 16, 8));
  return header;
}

}  // namespace artemis::journal

// Journal wire-format primitives: varints, zigzag, CRC32, segment header.
//
// The observation journal is a directory of append-only segment files
// ("flight recorder" style, after NDN-DPDK's segment-file I/O). Each
// segment is:
//
//   [SegmentHeader]                       32 bytes, fixed
//   [record]*                             until EOF (or truncated tail)
//
// and each record is:
//
//   varint payload_len | payload bytes | crc32(payload) LE32
//
// The payload encoding (codec.hpp) is delta/varint compressed and
// self-contained per segment: interned source strings and timestamp
// deltas reset at every segment boundary, so any segment can be decoded
// knowing only its header. The header carries the format version (the
// reader refuses anything it does not speak — no misparsing) and the
// sequence number of the first record, so a directory of segments forms
// one monotone, gap-checkable sequence.
//
// Crash recovery contract: a torn write can only produce an incomplete
// record at the tail of the *last* segment. The reader treats "bytes end
// before the record does" as a clean end-of-journal (recovering every
// complete record); a CRC mismatch on a complete record is corruption
// and is reported as an error, never silently skipped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace artemis::journal {

/// Thrown for unreadable directories, bad magic, unsupported format
/// versions, sequence gaps and CRC failures. Truncated tails are NOT
/// errors (see reader.hpp).
class JournalError : public std::runtime_error {
 public:
  explicit JournalError(const std::string& what) : std::runtime_error(what) {}
};

// ------------------------------------------------------------ constants

/// Segment file magic: "AJRN" (Artemis JouRNal), little-endian u32.
inline constexpr std::uint32_t kSegmentMagic = 0x4E524A41u;

/// The format version this build writes and reads. Bump on any payload
/// or header layout change; readers hard-reject other versions.
inline constexpr std::uint16_t kFormatVersion = 1;

/// Fixed header size; the first record starts at this offset.
inline constexpr std::size_t kSegmentHeaderSize = 32;

/// Segment file names: seg-<first_seq, 16 lowercase hex digits>.aj —
/// lexicographic order == sequence order. A sealed segment may instead
/// be stored gzip-compressed as seg-<hex>.aj.gz (cold archive form; the
/// reader decompresses transparently and replay is bit-identical), and
/// carries its index footer in a seg-<hex>.ajx sidecar (docs/
/// journal-format.md) — advisory metadata with the batch-frames
/// contract: torn or missing degrades to a full scan, never an error.
inline constexpr std::string_view kSegmentPrefix = "seg-";
inline constexpr std::string_view kSegmentSuffix = ".aj";
inline constexpr std::string_view kCompressedSegmentSuffix = ".aj.gz";
inline constexpr std::string_view kIndexSuffix = ".ajx";

/// Batch-framing sidecar: an append-only file of varint batch sizes, one
/// per append_batch call, after an 8-byte magic. Deliberately NOT a
/// segment name, so is_segment_file_name() keeps it invisible to the
/// reader, the resume scan and sequence accounting — it is advisory
/// metadata that lets replay reproduce the recorded batch boundaries
/// (and with them exact per-source/per-batch stats). Crash rules mirror
/// the journal's: a torn trailing varint is a clean end; framing may
/// over- or under-cover the record stream after a crash, and replay
/// clamps or falls back accordingly.
inline constexpr std::string_view kFramesFileName = "batch-frames.ajf";
inline constexpr std::string_view kFramesMagic = "AJFRAME1";

namespace detail {
/// "seg-" + 16 lowercase hex digits + `suffix`, nothing else.
inline bool is_segment_name_with_suffix(std::string_view name,
                                        std::string_view suffix) {
  if (name.size() != kSegmentPrefix.size() + 16 + suffix.size() ||
      !name.starts_with(kSegmentPrefix) || !name.ends_with(suffix)) {
    return false;
  }
  for (std::size_t i = 0; i < 16; ++i) {
    const char c = name[kSegmentPrefix.size() + i];
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}
}  // namespace detail

inline bool is_raw_segment_file_name(std::string_view name) {
  return detail::is_segment_name_with_suffix(name, kSegmentSuffix);
}

inline bool is_compressed_segment_file_name(std::string_view name) {
  return detail::is_segment_name_with_suffix(name, kCompressedSegmentSuffix);
}

/// A reader-visible segment in either storage form. The index sidecar
/// (.ajx) and framing sidecar deliberately fail this test, so sequence
/// accounting and resume only ever see record-bearing files.
inline bool is_segment_file_name(std::string_view name) {
  return is_raw_segment_file_name(name) || is_compressed_segment_file_name(name);
}

inline bool is_index_file_name(std::string_view name) {
  return detail::is_segment_name_with_suffix(name, kIndexSuffix);
}

/// The first_seq a segment-shaped file name encodes. Callers must have
/// checked one of the predicates above.
inline std::uint64_t segment_name_seq(std::string_view name) {
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const char c = name[kSegmentPrefix.size() + i];
    seq = (seq << 4) |
          static_cast<std::uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }
  return seq;
}

// -------------------------------------------------------------- varints

/// Appends an LEB128 varint (1-10 bytes). `Sink` needs push_back(uint8_t).
template <typename Sink>
inline void put_varint(Sink& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// ZigZag: maps small-magnitude signed values to small unsigned varints.
inline constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Bounded varint read. Returns false when the buffer ends mid-varint
/// (truncation) or the varint overflows 10 bytes (corruption — the
/// caller distinguishes via the CRC that follows).
inline bool get_varint(const std::uint8_t*& cursor, const std::uint8_t* end,
                       std::uint64_t& value) {
  value = 0;
  int shift = 0;
  while (cursor != end && shift < 70) {
    const std::uint8_t byte = *cursor++;
    value |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) return true;
    shift += 7;
  }
  return false;
}

// ------------------------------------------------------------- framing

/// Steps over one framed record (`varint len | payload | crc32`).
/// Returns true with `payload`/`length` set and `cursor` advanced past
/// the frame; false — leaving `cursor` untouched — when the bytes end
/// before the frame does (a torn tail). Overflow-safe against corrupt
/// near-UINT64_MAX length varints. Shared by the reader's decode loop
/// and the writer's resume scan so both agree on what counts as a
/// complete record.
inline bool next_frame(const std::uint8_t*& cursor, const std::uint8_t* end,
                       const std::uint8_t*& payload, std::uint64_t& length) {
  const std::uint8_t* p = cursor;
  if (!get_varint(p, end, length)) return false;
  const std::uint64_t remaining = static_cast<std::uint64_t>(end - p);
  if (length > remaining || remaining - length < 4) return false;
  payload = p;
  cursor = p + length + 4;
  return true;
}

// ---------------------------------------------------------------- CRC32

/// The journal's checksum: CRC-32C (Castagnoli, poly 0x1EDC6F41,
/// reflected), the polynomial with hardware support on x86 (SSE4.2) and
/// ARM. The software path is slicing-by-8 (~0.5 B/cycle vs ~3 cycles/B
/// byte-at-a-time); hardware and software produce identical values, so
/// journals are portable across machines. Self-contained — no zlib.
/// Implementation in format.cpp; records pay this per ~25-byte payload,
/// which is why the table-per-byte variant was too slow for the replay
/// throughput bar (bench_journal).
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

// ------------------------------------------------------- segment header

/// Fixed 32-byte little-endian header at the front of every segment.
struct SegmentHeader {
  std::uint16_t version = kFormatVersion;
  /// Sequence number of this segment's first record. Sequences are
  /// assigned by the writer, start at 0 and increment by 1 per record;
  /// the reader checks contiguity across segments.
  std::uint64_t first_seq = 0;
  /// delivered_at (micros) of the last record in the *previous* segment
  /// (0 for the first) — purely informational, handy for seeking tools.
  std::int64_t base_time_us = 0;

  void encode(std::uint8_t out[kSegmentHeaderSize]) const;

  /// Validates magic and the header CRC; throws JournalError on either.
  /// Does NOT validate the version — the caller checks it explicitly so
  /// it can name the offending file and versions in its error.
  static SegmentHeader decode(const std::uint8_t in[kSegmentHeaderSize],
                              const std::string& file);
};

}  // namespace artemis::journal

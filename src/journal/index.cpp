#include "journal/index.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>

#include "journal/codec.hpp"
#include "mrt/stream_reader.hpp"

namespace artemis::journal {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------ the Bloom
//
// Everything below is normative: docs/journal-format.md §Bloom documents
// these exact constants and steps so a second implementation (or a
// fixture regenerated from the spec) produces identical footer bytes.

/// Truncation ladders. A record prefix inserts every rung <= its own
/// length; a query prefix tests every rung <= its own length. Records
/// shorter than the first rung insert the per-family marker (rung 0).
constexpr int kLadderV4[3] = {8, 16, 24};
constexpr int kLadderV6[3] = {16, 32, 48};

inline const int* ladder_for(std::uint8_t family) {
  return family == static_cast<std::uint8_t>(net::IpFamily::kIpv4) ? kLadderV4
                                                                   : kLadderV6;
}

/// 64-bit finalizer (the murmur3/splitmix constants).
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

/// Hash of one Bloom key: (family, rung, address truncated to rung bits).
/// The 16 canonical address bytes — bits past `rung` zeroed; rungs are
/// byte multiples so zeroing is whole trailing bytes — load as two
/// little-endian u64 words and fold with the (family<<8 | rung) tag.
inline std::uint64_t bloom_key_hash(std::uint8_t family, int rung,
                                    const std::uint8_t* addr16) {
  std::uint8_t masked[16] = {};
  std::memcpy(masked, addr16, static_cast<std::size_t>(rung / 8));
  std::uint64_t w0;
  std::uint64_t w1;
  std::memcpy(&w0, masked, 8);
  std::memcpy(&w1, masked + 8, 8);
  const std::uint64_t tag =
      (static_cast<std::uint64_t>(family) << 8) | static_cast<std::uint64_t>(rung);
  std::uint64_t h = mix64(w0 ^ (0x9E3779B97F4A7C15ull * (tag + 1)));
  return mix64(h ^ w1);
}

/// The number of probe bits per key.
constexpr std::uint8_t kBloomHashes = 4;

inline void bloom_set(std::vector<std::uint64_t>& words, std::uint64_t m_bits,
                      std::uint64_t h) {
  const std::uint64_t h2 = mix64(h) | 1u;  // odd: full-period double hashing
  for (std::uint8_t i = 0; i < kBloomHashes; ++i) {
    const std::uint64_t bit = (h + i * h2) & (m_bits - 1);
    words[bit >> 6] |= 1ull << (bit & 63);
  }
}

inline bool bloom_test(const std::vector<std::uint64_t>& words,
                       std::uint64_t m_bits, std::uint64_t h) {
  const std::uint64_t h2 = mix64(h) | 1u;
  for (std::uint8_t i = 0; i < kBloomHashes; ++i) {
    const std::uint64_t bit = (h + i * h2) & (m_bits - 1);
    if ((words[bit >> 6] & (1ull << (bit & 63))) == 0) return false;
  }
  return true;
}

void store_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

/// Bounded zigzag varint read for the decoder below.
bool get_zigzag(const std::uint8_t*& cursor, const std::uint8_t* end,
                std::int64_t& value) {
  std::uint64_t raw = 0;
  if (!get_varint(cursor, end, raw)) return false;
  value = zigzag_decode(raw);
  return true;
}

}  // namespace

std::string index_path(const std::string& dir, std::uint64_t first_seq) {
  char name[32];  // "seg-" + 16 hex + ".ajx"
  std::snprintf(name, sizeof(name), "seg-%016llx.ajx",
                static_cast<unsigned long long>(first_seq));
  return dir + "/" + name;
}

// ---------------------------------------------------------- QueryFilter

bool QueryFilter::matches(const feeds::Observation& obs) const {
  const std::int64_t event_us = obs.event_time.as_micros();
  if (event_us < min_event_us || event_us > max_event_us) return false;
  if (prefix.has_value() && !prefix->overlaps(obs.prefix)) return false;
  if (!any_prefixes.empty()) {
    bool any = false;
    for (const auto& candidate : any_prefixes) {
      if (candidate.overlaps(obs.prefix)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  if (!source.empty() && obs.source != source) return false;
  if (origin != bgp::kNoAsn && obs.origin_as() != origin) return false;
  if (type.has_value() && obs.type != *type) return false;
  return true;
}

// ---------------------------------------------------------- SegmentIndex

bool SegmentIndex::may_contain_prefix(const net::Prefix& prefix) const {
  if (bloom_bits == 0 || bloom.empty()) return true;  // no filter recorded
  const auto family = static_cast<std::uint8_t>(prefix.family());
  const int* ladder = ladder_for(family);
  // Shorter than the first rung: the filter cannot rule overlap out
  // (records longer than the query share no tested key with it).
  if (prefix.length() < ladder[0]) return true;
  const std::uint8_t* addr = prefix.address().bytes().data();
  // The marker covers records shorter than the first rung (they overlap
  // any same-family query whose bits they share — too coarse to test,
  // so their presence alone forces a scan).
  if (bloom_test(bloom, bloom_bits, bloom_key_hash(family, 0, addr))) {
    return true;
  }
  for (int i = 0; i < 3; ++i) {
    if (ladder[i] > prefix.length()) break;
    if (bloom_test(bloom, bloom_bits, bloom_key_hash(family, ladder[i], addr))) {
      return true;
    }
  }
  return false;
}

bool SegmentIndex::contains_source(std::string_view source) const {
  return std::find(sources.begin(), sources.end(), source) != sources.end();
}

bool SegmentIndex::may_match(const QueryFilter& filter) const {
  if (record_count == 0) return false;
  if (max_event_us < filter.min_event_us || min_event_us > filter.max_event_us) {
    return false;
  }
  if (!filter.source.empty() && !contains_source(filter.source)) return false;
  if (filter.prefix.has_value() && !may_contain_prefix(*filter.prefix)) {
    return false;
  }
  if (!filter.any_prefixes.empty()) {
    // The segment survives if ANY projected prefix might overlap it;
    // only a filter that rules out every one proves a skip.
    bool any = false;
    for (const auto& candidate : filter.any_prefixes) {
      if (may_contain_prefix(candidate)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

std::vector<std::uint8_t> SegmentIndex::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(64 + sources.size() * 16 + bloom.size() * 8);
  for (const char c : kIndexMagic) out.push_back(static_cast<std::uint8_t>(c));
  out.push_back(static_cast<std::uint8_t>(kIndexVersion));
  out.push_back(static_cast<std::uint8_t>(kIndexVersion >> 8));
  put_varint(out, first_seq);
  put_varint(out, record_count);
  put_varint(out, zigzag_encode(min_event_us));
  put_varint(out, zigzag_encode(max_event_us));
  put_varint(out, zigzag_encode(min_delivered_us));
  put_varint(out, zigzag_encode(max_delivered_us));
  put_varint(out, sources.size());
  for (const auto& source : sources) {
    put_varint(out, source.size());
    out.insert(out.end(), source.begin(), source.end());
  }
  out.push_back(bloom_hashes);
  put_varint(out, bloom_bits);
  // Trailing zero words are trimmed on disk (a sparse segment's footer
  // is tiny) and restored to zero on decode.
  std::size_t stored = bloom.size();
  while (stored > 0 && bloom[stored - 1] == 0) --stored;
  put_varint(out, stored);
  for (std::size_t i = 0; i < stored; ++i) {
    const std::uint64_t word = bloom[i];
    for (int b = 0; b < 8; ++b) {
      out.push_back(static_cast<std::uint8_t>(word >> (8 * b)));
    }
  }
  store_le32(out, crc32(out.data(), out.size()));
  return out;
}

std::optional<SegmentIndex> SegmentIndex::decode(const std::uint8_t* data,
                                                 std::size_t size) {
  // Advisory metadata: every malformation — short file, bad magic, torn
  // tail, flipped byte, foreign version — is a quiet nullopt.
  if (size < kIndexMagic.size() + 2 + 4) return std::nullopt;
  if (std::memcmp(data, kIndexMagic.data(), kIndexMagic.size()) != 0) {
    return std::nullopt;
  }
  const std::uint8_t* crc_bytes = data + size - 4;
  const std::uint32_t stored_crc = static_cast<std::uint32_t>(crc_bytes[0]) |
                                   static_cast<std::uint32_t>(crc_bytes[1]) << 8 |
                                   static_cast<std::uint32_t>(crc_bytes[2]) << 16 |
                                   static_cast<std::uint32_t>(crc_bytes[3]) << 24;
  if (crc32(data, size - 4) != stored_crc) return std::nullopt;

  const std::uint8_t* cursor = data + kIndexMagic.size();
  const std::uint8_t* const end = data + size - 4;
  const std::uint16_t version =
      static_cast<std::uint16_t>(cursor[0] | (cursor[1] << 8));
  cursor += 2;
  if (version != kIndexVersion) return std::nullopt;

  SegmentIndex index;
  if (!get_varint(cursor, end, index.first_seq)) return std::nullopt;
  if (!get_varint(cursor, end, index.record_count)) return std::nullopt;
  if (!get_zigzag(cursor, end, index.min_event_us)) return std::nullopt;
  if (!get_zigzag(cursor, end, index.max_event_us)) return std::nullopt;
  if (!get_zigzag(cursor, end, index.min_delivered_us)) return std::nullopt;
  if (!get_zigzag(cursor, end, index.max_delivered_us)) return std::nullopt;

  std::uint64_t source_count = 0;
  if (!get_varint(cursor, end, source_count) ||
      source_count > static_cast<std::uint64_t>(end - cursor)) {
    return std::nullopt;
  }
  index.sources.reserve(static_cast<std::size_t>(source_count));
  for (std::uint64_t i = 0; i < source_count; ++i) {
    std::uint64_t length = 0;
    if (!get_varint(cursor, end, length) ||
        length > static_cast<std::uint64_t>(end - cursor)) {
      return std::nullopt;
    }
    index.sources.emplace_back(reinterpret_cast<const char*>(cursor),
                               static_cast<std::size_t>(length));
    cursor += length;
  }

  if (cursor == end) return std::nullopt;
  index.bloom_hashes = *cursor++;
  if (!get_varint(cursor, end, index.bloom_bits)) return std::nullopt;
  // Power-of-two and bounded (1 GiB of filter is corruption, not config).
  if (index.bloom_bits != 0 &&
      ((index.bloom_bits & (index.bloom_bits - 1)) != 0 ||
       index.bloom_bits < 64 || index.bloom_bits > (1ull << 33))) {
    return std::nullopt;
  }
  std::uint64_t stored_words = 0;
  if (!get_varint(cursor, end, stored_words)) return std::nullopt;
  const std::uint64_t total_words = index.bloom_bits / 64;
  if (stored_words > total_words ||
      stored_words * 8 != static_cast<std::uint64_t>(end - cursor)) {
    return std::nullopt;
  }
  index.bloom.assign(static_cast<std::size_t>(total_words), 0);
  for (std::uint64_t i = 0; i < stored_words; ++i) {
    std::uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      word |= static_cast<std::uint64_t>(cursor[b]) << (8 * b);
    }
    cursor += 8;
    index.bloom[static_cast<std::size_t>(i)] = word;
  }
  return index;
}

std::optional<SegmentIndex> load_segment_index(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<std::uint8_t> data(size > 0 ? static_cast<std::size_t>(size) : 0);
  const bool ok =
      data.empty() || std::fread(data.data(), 1, data.size(), file) == data.size();
  std::fclose(file);
  if (!ok) return std::nullopt;
  return SegmentIndex::decode(data.data(), data.size());
}

// --------------------------------------------------- SegmentIndexBuilder

SegmentIndexBuilder::SegmentIndexBuilder(std::uint32_t bloom_bits)
    : bloom_bits_(bloom_bits) {
  if (bloom_bits_ != 0) {
    if ((bloom_bits_ & (bloom_bits_ - 1)) != 0 || bloom_bits_ < 64) {
      throw JournalError("index bloom_bits must be a power of two >= 64");
    }
    bloom_.assign(static_cast<std::size_t>(bloom_bits_ / 64), 0);
  }
  reset(0);
}

void SegmentIndexBuilder::reset(std::uint64_t first_seq) {
  first_seq_ = first_seq;
  record_count_ = 0;
  min_event_us_ = std::numeric_limits<std::int64_t>::max();
  max_event_us_ = std::numeric_limits<std::int64_t>::min();
  min_delivered_us_ = std::numeric_limits<std::int64_t>::max();
  max_delivered_us_ = std::numeric_limits<std::int64_t>::min();
  std::fill(bloom_.begin(), bloom_.end(), 0);
  any_prefix_ = false;
}

void SegmentIndexBuilder::add(const feeds::Observation& obs) {
  ++record_count_;
  const std::int64_t event_us = obs.event_time.as_micros();
  const std::int64_t delivered_us = obs.delivered_at.as_micros();
  min_event_us_ = std::min(min_event_us_, event_us);
  max_event_us_ = std::max(max_event_us_, event_us);
  min_delivered_us_ = std::min(min_delivered_us_, delivered_us);
  max_delivered_us_ = std::max(max_delivered_us_, delivered_us);
  if (bloom_.empty()) return;
  // Bursts repeat one prefix for many records; one insertion covers them
  // all (the Bloom is a set), keeping the append tap near its old cost.
  if (any_prefix_ && obs.prefix == last_prefix_) return;
  last_prefix_ = obs.prefix;
  any_prefix_ = true;
  const auto family = static_cast<std::uint8_t>(obs.prefix.family());
  const int* ladder = ladder_for(family);
  const std::uint8_t* addr = obs.prefix.address().bytes().data();
  bool any_rung = false;
  for (int i = 0; i < 3; ++i) {
    if (ladder[i] > obs.prefix.length()) break;
    bloom_set(bloom_, bloom_bits_, bloom_key_hash(family, ladder[i], addr));
    any_rung = true;
  }
  if (!any_rung) {
    bloom_set(bloom_, bloom_bits_, bloom_key_hash(family, 0, addr));
  }
}

SegmentIndex SegmentIndexBuilder::finalize(
    const std::vector<std::string>& sources) const {
  SegmentIndex index;
  index.first_seq = first_seq_;
  index.record_count = record_count_;
  if (record_count_ > 0) {
    index.min_event_us = min_event_us_;
    index.max_event_us = max_event_us_;
    index.min_delivered_us = min_delivered_us_;
    index.max_delivered_us = max_delivered_us_;
  }
  index.sources = sources;
  index.bloom_hashes = bloom_.empty() ? 0 : kBloomHashes;
  index.bloom_bits = bloom_.empty() ? 0 : bloom_bits_;
  index.bloom = bloom_;
  return index;
}

// ------------------------------------------------------- maintenance

namespace {

/// Reads a segment's decompressed bytes; empty optional when the file
/// cannot be read (or is compressed and this build lacks the codec). A
/// torn compressed stream returns the recovered prefix — the same
/// truncated-tail shape the reader already handles.
std::optional<std::vector<std::uint8_t>> read_segment_bytes(
    const std::string& path) {
  try {
    auto input = mrt::open_input(path);
    std::vector<std::uint8_t> out;
    std::uint8_t chunk[64 << 10];
    for (;;) {
      const std::size_t n = input->read(chunk);
      if (n == 0) break;
      out.insert(out.end(), chunk, chunk + n);
    }
    return out;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

std::size_t build_missing_footers(const std::string& dir,
                                  std::uint32_t bloom_bits) {
  std::error_code ec;
  // seq -> path, raw preferred when both storage forms exist.
  std::map<std::uint64_t, std::string> segments;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!is_segment_file_name(name)) continue;
    const std::uint64_t seq = segment_name_seq(name);
    auto [it, inserted] = segments.emplace(seq, entry.path().string());
    if (!inserted && is_raw_segment_file_name(name)) it->second = entry.path().string();
  }
  if (ec) {
    throw JournalError("cannot read journal directory " + dir + ": " +
                       ec.message());
  }

  std::size_t written = 0;
  SegmentIndexBuilder builder(bloom_bits);
  for (const auto& [seq, path] : segments) {
    const std::string idx_path = index_path(dir, seq);
    if (const auto existing = load_segment_index(idx_path);
        existing.has_value() && existing->first_seq == seq) {
      continue;  // already indexed
    }
    const auto bytes = read_segment_bytes(path);
    if (!bytes.has_value() || bytes->size() < kSegmentHeaderSize) continue;
    builder.reset(seq);
    std::vector<std::string> sources;
    try {
      const SegmentHeader header = SegmentHeader::decode(bytes->data(), path);
      if (header.version != kFormatVersion || header.first_seq != seq) continue;
      RecordDecoder decoder;
      feeds::Observation obs;
      const std::uint8_t* cursor = bytes->data() + kSegmentHeaderSize;
      const std::uint8_t* const end = bytes->data() + bytes->size();
      const std::uint8_t* payload = nullptr;
      std::uint64_t length = 0;
      while (next_frame(cursor, end, payload, length)) {
        decoder.decode(payload, static_cast<std::size_t>(length), obs);
        builder.add(obs);
        // First-sight source order mirrors the segment's interned table.
        if (std::find(sources.begin(), sources.end(), obs.source) ==
            sources.end()) {
          sources.push_back(obs.source);
        }
      }
    } catch (const std::exception&) {
      continue;  // undecodable segment: leave unindexed, it will full-scan
    }
    if (builder.record_count() == 0) continue;
    const std::vector<std::uint8_t> encoded = builder.finalize(sources).encode();
    const std::string tmp = idx_path + ".tmp";
    std::FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr) {
      throw JournalError("cannot write index footer " + tmp);
    }
    const bool ok =
        std::fwrite(encoded.data(), 1, encoded.size(), file) == encoded.size();
    std::fclose(file);
    if (!ok) {
      fs::remove(tmp, ec);
      throw JournalError("short write on index footer " + tmp);
    }
    fs::rename(tmp, idx_path, ec);
    if (ec) {
      throw JournalError("cannot install index footer " + idx_path + ": " +
                         ec.message());
    }
    ++written;
  }
  return written;
}

}  // namespace artemis::journal

// Per-segment index footers: the journal's queryable-archive layer.
//
// Every sealed segment seg-<hex>.aj[.gz] gets a sibling seg-<hex>.ajx
// "footer" file summarizing what the segment holds: its sequence range,
// its event/delivery time ranges, the interned source set, and a Bloom
// filter over the prefixes it mentions. A predicate query (journal_query,
// or a filtered ReplayFeed) reads only the tiny footers to decide which
// segments can possibly match, then decodes just those — cold archives
// stay compressed on disk unless the footer says they matter.
//
// The footer is ADVISORY metadata, same contract as the batch-frames
// sidecar: a missing, torn, or corrupt footer degrades that segment to a
// full scan, never an error. The record stream remains the only source
// of truth; footers can always be rebuilt from it (build_missing_footers,
// `journal_query --build-index`). Wire format is normative in
// docs/journal-format.md — fixtures regenerate from the document.
//
// Bloom semantics (the part that has to be exactly right): the filter
// answers "could any record's prefix OVERLAP query prefix P?" — overlap,
// not equality, because hijack forensics asks about covering routes and
// sub-prefix hijacks alike. Each record prefix is inserted truncated to
// every ladder length <= its own length (v4 ladder 8/16/24, v6 ladder
// 16/32/48); a record shorter than the first rung inserts a per-family
// marker key instead. A query tests P truncated to every ladder rung
// <= len(P), plus the marker; any hit means "maybe". A query prefix
// shorter than the first rung disables the Bloom test (conservatively
// "maybe") — see docs/journal-format.md §Bloom for the proof sketch.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bgp/route.hpp"
#include "feeds/observation.hpp"
#include "journal/format.hpp"
#include "netbase/prefix.hpp"

namespace artemis::journal {

/// seg-<hex>.ajx magic, first 8 bytes of the file.
inline constexpr std::string_view kIndexMagic = "AJINDEX1";

/// The footer format version this build writes and reads. A footer with
/// a different version is ignored (full scan), not an error — footers
/// are advisory.
inline constexpr std::uint16_t kIndexVersion = 1;

/// Default Bloom size: 2^17 bits = 16 KiB per segment before trailing-
/// zero trimming (a sparse segment's footer is much smaller on disk).
inline constexpr std::uint32_t kDefaultBloomBits = 1u << 17;

/// "seg-<hex>.ajx" next to the segment files.
std::string index_path(const std::string& dir, std::uint64_t first_seq);

// ------------------------------------------------------------ the query

/// A replay/query predicate. Default-constructed matches everything.
/// Segment-level pruning uses the footer for the time range, source and
/// prefix terms; origin and type always filter record by record.
struct QueryFilter {
  /// Inclusive event-time window, in sim micros.
  std::int64_t min_event_us = std::numeric_limits<std::int64_t>::min();
  std::int64_t max_event_us = std::numeric_limits<std::int64_t>::max();
  /// Overlap predicate: matches records whose prefix covers or is
  /// covered by this one.
  std::optional<net::Prefix> prefix;
  /// Any-overlap predicate: matches records whose prefix overlaps AT
  /// LEAST ONE of these (ANDed with every other term, including
  /// `prefix`). This is the ownership projection — journal_alerts loads
  /// a config's owned prefixes here so footers prune segments that never
  /// mention owned space. Empty matches any.
  std::vector<net::Prefix> any_prefixes;
  /// Exact source name ("mrt:AS1234"); empty matches any.
  std::string source;
  /// Origin AS of the record's path; kNoAsn matches any.
  bgp::Asn origin = bgp::kNoAsn;
  /// Observation type; nullopt matches any.
  std::optional<feeds::ObservationType> type;

  bool is_trivial() const {
    return min_event_us == std::numeric_limits<std::int64_t>::min() &&
           max_event_us == std::numeric_limits<std::int64_t>::max() &&
           !prefix.has_value() && any_prefixes.empty() && source.empty() &&
           origin == bgp::kNoAsn && !type.has_value();
  }

  /// The record-level test (exact, no false positives).
  bool matches(const feeds::Observation& obs) const;
};

// ----------------------------------------------------------- the footer

/// A decoded seg-<hex>.ajx footer.
struct SegmentIndex {
  std::uint64_t first_seq = 0;
  std::uint64_t record_count = 0;
  std::int64_t min_event_us = 0;
  std::int64_t max_event_us = 0;
  std::int64_t min_delivered_us = 0;
  std::int64_t max_delivered_us = 0;
  std::vector<std::string> sources;  ///< interned set, first-sight order
  std::uint8_t bloom_hashes = 0;     ///< k
  std::uint64_t bloom_bits = 0;      ///< m, power of two
  std::vector<std::uint64_t> bloom;  ///< m/64 words (zero tail restored)

  /// False only when the footer PROVES no record can match — every
  /// "don't know" answers true (the reader then scans the segment).
  bool may_match(const QueryFilter& filter) const;

  /// The Bloom overlap test alone ("could any record prefix overlap P?").
  bool may_contain_prefix(const net::Prefix& prefix) const;

  bool contains_source(std::string_view source) const;

  /// Serializes to the .ajx wire form (magic..CRC).
  std::vector<std::uint8_t> encode() const;

  /// Parses footer bytes. Returns nullopt — never throws — on short,
  /// torn, foreign-version, corrupt-CRC or malformed input: advisory
  /// metadata degrades, it does not error.
  static std::optional<SegmentIndex> decode(const std::uint8_t* data,
                                            std::size_t size);
};

/// Loads and validates `path`. nullopt when the file is missing or fails
/// SegmentIndex::decode — both mean "full-scan this segment".
std::optional<SegmentIndex> load_segment_index(const std::string& path);

// -------------------------------------------------------- the builder

/// Accumulates one open segment's footer as records are appended (the
/// writer's side). The Bloom array is allocated once and memset at
/// reset(), so the append hot path stays allocation-free; consecutive
/// records repeating one prefix (the common burst shape) pay the Bloom
/// insertion only once.
class SegmentIndexBuilder {
 public:
  explicit SegmentIndexBuilder(std::uint32_t bloom_bits = kDefaultBloomBits);

  /// Clears all state for a fresh segment starting at `first_seq`.
  void reset(std::uint64_t first_seq);

  /// Folds one appended observation into the running summary.
  void add(const feeds::Observation& obs);

  std::uint64_t record_count() const { return record_count_; }

  /// Snapshots the footer. `sources` is the segment's interned source
  /// table (the record encoder already maintains exactly this set).
  SegmentIndex finalize(const std::vector<std::string>& sources) const;

 private:
  std::uint64_t first_seq_ = 0;
  std::uint64_t record_count_ = 0;
  std::int64_t min_event_us_ = 0;
  std::int64_t max_event_us_ = 0;
  std::int64_t min_delivered_us_ = 0;
  std::int64_t max_delivered_us_ = 0;
  std::uint64_t bloom_bits_;
  std::vector<std::uint64_t> bloom_;
  net::Prefix last_prefix_;  ///< burst dedup for the Bloom insertion
  bool any_prefix_ = false;
};

// ------------------------------------------------------- maintenance

/// Builds footers for sealed segments that lack a valid one, by decoding
/// the segment (decompressing if needed). The LAST segment in a journal
/// is assumed sealed too — callers invoke this on quiescent journals
/// (a live writer footers its own segments). Returns the number of
/// footers written; segments that fail to decode are skipped (they will
/// full-scan, which is the correct degradation). Throws JournalError
/// only when `dir` itself is unreadable.
std::size_t build_missing_footers(const std::string& dir,
                                  std::uint32_t bloom_bits = kDefaultBloomBits);

}  // namespace artemis::journal

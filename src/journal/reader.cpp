#include "journal/reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>

#include "mrt/stream_reader.hpp"

namespace artemis::journal {

void JournalReader::MappedSegment::reset() {
  if (data != nullptr && mapped) ::munmap(const_cast<std::uint8_t*>(data), size);
  owned.clear();
  data = nullptr;
  size = 0;
  mapped = false;
}

JournalReader::MappedSegment::~MappedSegment() { reset(); }

/// Maps (or, when mmap is unavailable, reads) one segment. Decoding
/// straight out of the page cache keeps replay zero-copy, the
/// segment-file style NDN-DPDK uses for its I/O path.
void JournalReader::MappedSegment::open(const std::string& path) {
  reset();
  if (is_compressed_segment_file_name(
          std::filesystem::path(path).filename().string())) {
    // A cold (gzip) segment: decompress into owned storage. Compressed
    // segments are written whole at seal time (tmp + rename), so unlike
    // a raw tail, a torn stream here is corruption, not a crash scar.
    auto input = mrt::open_input(path);
    std::uint8_t chunk[256 << 10];
    for (std::size_t n = input->read(chunk); n != 0; n = input->read(chunk)) {
      owned.insert(owned.end(), chunk, chunk + n);
    }
    if (input->truncated()) {
      throw JournalError(path + ": compressed segment is torn (" +
                         input->error() + ")");
    }
    size = owned.size();
    data = owned.empty() ? nullptr : owned.data();
    return;
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw JournalError("cannot open journal segment " + path);
  struct ::stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw JournalError("cannot stat journal segment " + path);
  }
  size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    data = nullptr;
    return;
  }
  void* mem = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (mem != MAP_FAILED) {
    data = static_cast<const std::uint8_t*>(mem);
    mapped = true;
    ::close(fd);
    return;
  }
  owned.resize(size);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, owned.data() + done, size - done);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      throw JournalError("short read on journal segment " + path);
    }
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
  data = owned.data();
}

JournalReader::JournalReader(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  // seg-<16 hex digits>.aj[.gz]: one entry per sequence number. When a
  // crash during compression left BOTH storage forms, the raw file wins
  // (it is the one that was sealed first; the writer's resume sweeps the
  // duplicate).
  std::map<std::uint64_t, std::string> by_seq;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (!is_segment_file_name(name)) continue;
    auto [it, inserted] =
        by_seq.emplace(segment_name_seq(name), entry.path().string());
    if (!inserted && is_raw_segment_file_name(name)) {
      it->second = entry.path().string();
    }
  }
  if (ec) {
    throw JournalError("cannot read journal directory " + dir_ + ": " +
                       ec.message());
  }
  if (by_seq.empty()) {
    throw JournalError("no journal segments in " + dir_);
  }
  segments_.reserve(by_seq.size());
  for (auto& [seq, path] : by_seq) segments_.push_back(std::move(path));
}

bool JournalReader::advance_segment() {
  while (segment_index_ < segments_.size() && filtering_) {
    // Footer pruning: when the segment's index footer proves no record
    // can match the filter, step over it without opening it — for a cold
    // .gz segment that skips the whole decompression. Anything less than
    // a valid, matching footer falls through to a normal scan.
    const std::string& path = segments_[segment_index_];
    const std::uint64_t name_seq = segment_name_seq(
        std::filesystem::path(path).filename().string());
    const auto footer = load_segment_index(index_path(dir_, name_seq));
    if (!footer.has_value() || footer->first_seq != name_seq ||
        footer->may_match(filter_)) {
      break;
    }
    if (truncated_tail_) {
      throw JournalError(segments_[segment_index_ - 1] +
                         ": truncated mid-journal (later segments exist)");
    }
    // The skip preserves exact sequence accounting: the footer's record
    // count (CRC-protected) advances the expected sequence, so the next
    // scanned segment faces the same gap check it always did.
    if (first_segment_) {
      next_seq_ = name_seq;
      first_segment_ = false;
    } else if (name_seq != next_seq_) {
      throw JournalError(path + ": sequence gap (expected " +
                         std::to_string(next_seq_) + ", segment starts at " +
                         std::to_string(name_seq) + ")");
    }
    next_seq_ += footer->record_count;
    ++segment_index_;
    ++segments_skipped_;
  }
  if (segment_index_ >= segments_.size()) return false;
  if (truncated_tail_) {
    // A torn record can only exist at the very end of the journal; more
    // segments after one means the middle of the history is damaged.
    throw JournalError(segments_[segment_index_ - 1] +
                       ": truncated mid-journal (later segments exist)");
  }
  const std::string& path = segments_[segment_index_++];
  ++segments_scanned_;
  segment_.open(path);
  if (segment_.size < kSegmentHeaderSize) {
    // A segment torn before its header finished: recoverable only at the
    // tail, same rule as a torn record.
    if (segment_index_ < segments_.size()) {
      throw JournalError(path + ": truncated segment header mid-journal");
    }
    truncated_tail_ = true;
    return false;
  }
  const SegmentHeader header = SegmentHeader::decode(segment_.data, path);
  if (header.version != kFormatVersion) {
    throw JournalError(path + ": format version " +
                       std::to_string(header.version) +
                       " (this build reads only version " +
                       std::to_string(kFormatVersion) + ")");
  }
  if (first_segment_) {
    next_seq_ = header.first_seq;
    first_segment_ = false;
  } else if (header.first_seq != next_seq_) {
    throw JournalError(path + ": sequence gap (expected " +
                       std::to_string(next_seq_) + ", segment starts at " +
                       std::to_string(header.first_seq) + ")");
  }
  cursor_ = kSegmentHeaderSize;
  decoder_.reset();
  prev_length_ = static_cast<std::size_t>(-1);  // memo is per segment
  segment_loaded_ = true;
  return true;
}

std::size_t JournalReader::read_batch(pipeline::ObservationBatch& out,
                                      std::size_t max) {
  out.clear();
  while (out.size() < max) {
    if (!segment_loaded_ || cursor_ >= segment_.size) {
      segment_loaded_ = false;
      if (!advance_segment()) break;
      if (cursor_ >= segment_.size) continue;  // header-only segment
    }
    const std::uint8_t* record = segment_.data + cursor_;
    const std::uint8_t* const end = segment_.data + segment_.size;
    const std::uint8_t* payload = nullptr;
    std::uint64_t length = 0;
    if (!next_frame(record, end, payload, length)) {
      // The record's bytes end before the record does: a torn write.
      // Legal only at the journal's very tail (enforced on the next
      // advance_segment()); everything before it was delivered.
      truncated_tail_ = true;
      segment_loaded_ = false;
      cursor_ = segment_.size;
      continue;
    }
    const std::uint8_t* crc_bytes = payload + length;
    const std::uint32_t stored = static_cast<std::uint32_t>(crc_bytes[0]) |
                                 static_cast<std::uint32_t>(crc_bytes[1]) << 8 |
                                 static_cast<std::uint32_t>(crc_bytes[2]) << 16 |
                                 static_cast<std::uint32_t>(crc_bytes[3]) << 24;
    feeds::Observation& slot = out.emplace_back();
    if (length == prev_length_ && stored == prev_crc_ &&
        decoder_.last_payload_idempotent() &&
        std::memcmp(segment_.data + prev_offset_, payload,
                    static_cast<std::size_t>(length)) == 0) {
      // Byte-identical to the previously verified record AND that record
      // was idempotent (zero time delta, no source definition), so
      // decoding these bytes again must reproduce it exactly: the memcmp
      // IS the integrity check — reuse the decoded form.
      slot = prev_obs_;
    } else {
      if (crc32(payload, static_cast<std::size_t>(length)) != stored) {
        out.pop_back();
        throw JournalError(segments_[segment_index_ - 1] + ": record " +
                           std::to_string(next_seq_) + " CRC mismatch");
      }
      try {
        decoder_.decode(payload, static_cast<std::size_t>(length), slot);
      } catch (...) {
        out.pop_back();
        throw;
      }
      // Only an idempotent record can ever be served from the memo, so
      // skip the deep copy for the (unique-record) majority.
      if (decoder_.last_payload_idempotent()) prev_obs_ = slot;
    }
    // The record-level filter runs after decode (the decoder's delta
    // chain needs every record regardless); a rejected record leaves the
    // batch but all sequence and memo bookkeeping still advances.
    const bool emit = !filtering_ || filter_.matches(slot);
    if (!emit) out.pop_back();
    prev_offset_ = static_cast<std::size_t>(payload - segment_.data);
    prev_length_ = static_cast<std::size_t>(length);
    prev_crc_ = stored;
    const std::size_t frame_begin = cursor_;
    cursor_ = static_cast<std::size_t>(crc_bytes + 4 - segment_.data);
    ++next_seq_;
    ++records_scanned_;
    if (emit) ++records_read_;

    // Run extension: while the NEXT whole frame (length varint, payload,
    // CRC) is byte-identical to the one just emitted and that record is
    // idempotent, emit copies directly — one memcmp replaces framing,
    // CRC and decode per repeat. This is the common case for feed bursts
    // (a collector message repeating one route). A filtered-out record's
    // repeats are stepped over the same way, just without emitting.
    if (decoder_.last_payload_idempotent()) {
      const std::size_t frame_len = cursor_ - frame_begin;
      while (cursor_ + frame_len <= segment_.size &&
             !(emit && out.size() >= max) &&
             std::memcmp(segment_.data + frame_begin, segment_.data + cursor_,
                         frame_len) == 0) {
        if (emit) out.emplace_back() = prev_obs_;
        cursor_ += frame_len;
        ++next_seq_;
        ++records_scanned_;
        if (emit) ++records_read_;
      }
    }
  }
  return out.size();
}

}  // namespace artemis::journal

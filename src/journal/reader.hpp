// JournalReader: sequential decode of a journal directory.
//
// Opens every segment (sorted by the first-sequence number embedded in
// the file name), validates each header — magic, header CRC, and an
// exact format-version match: a segment written by a different format
// version is refused with a named error, never misparsed — and checks
// that record sequences run contiguously across segments, so a missing
// or mid-journal-truncated segment surfaces as a hard error instead of
// silently dropped history.
//
// Recovery semantics: an incomplete record at the tail of the LAST
// segment is the expected signature of a crashed writer; the reader
// recovers every complete record before it and reports the condition via
// truncated_tail() instead of throwing. A CRC mismatch on a complete
// record is real corruption and throws JournalError.
//
// Reading decodes into a pipeline::ObservationBatch whose recycled slots
// keep their heap buffers, so a warm replay loop allocates only when a
// record is genuinely larger than anything seen before.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "journal/codec.hpp"
#include "journal/index.hpp"
#include "pipeline/observation_batch.hpp"

namespace artemis::journal {

class JournalReader {
 public:
  /// Scans `dir` for segments. Throws JournalError when the directory is
  /// unreadable or holds no segments.
  explicit JournalReader(std::string dir);

  JournalReader(const JournalReader&) = delete;
  JournalReader& operator=(const JournalReader&) = delete;

  /// Restricts read_batch to records matching `filter`. Call before the
  /// first read. Segments whose index footer proves no record can match
  /// are skipped without being opened (or decompressed) at all; records
  /// in scanned segments are filtered exactly, after decode. Sequence
  /// accounting stays intact across skips (the footer's CRC-protected
  /// record count advances the expected sequence), so gap detection is
  /// as strict as an unfiltered read.
  void set_filter(QueryFilter filter) {
    filter_ = std::move(filter);
    filtering_ = !filter_.is_trivial();
  }

  /// Clears `out` and refills it with up to `max` observations in
  /// recorded order (matching the filter, when one is set). Returns the
  /// number delivered; 0 means end of journal. Throws JournalError on
  /// corruption (bad CRC, sequence gap, foreign format version).
  std::size_t read_batch(pipeline::ObservationBatch& out, std::size_t max);

  /// True once an incomplete record was found at the journal's tail (all
  /// complete records before it were delivered normally).
  bool truncated_tail() const { return truncated_tail_; }

  std::uint64_t records_read() const { return records_read_; }
  /// Sequence number of the next record to be delivered.
  std::uint64_t next_sequence() const { return next_seq_; }
  std::size_t segment_count() const { return segments_.size(); }
  const std::string& dir() const { return dir_; }

  // Scan accounting (the `journal_query` acceptance check: a selective
  // predicate over a multi-segment journal must SKIP the segments whose
  // footers rule them out, not open them).
  /// Segments opened and decoded so far.
  std::uint64_t segments_scanned() const { return segments_scanned_; }
  /// Segments pruned by their index footer without being opened.
  std::uint64_t segments_skipped() const { return segments_skipped_; }
  /// Records decoded (or run-memo stepped) so far — delivered or not.
  std::uint64_t records_scanned() const { return records_scanned_; }

 private:
  /// One segment's bytes, mmap'd read-only straight from the page cache
  /// (zero-copy, NDN-DPDK segment-file style); falls back to a plain
  /// read when mapping fails (e.g. filesystems without mmap).
  struct MappedSegment {
    MappedSegment() = default;
    ~MappedSegment();
    MappedSegment(const MappedSegment&) = delete;
    MappedSegment& operator=(const MappedSegment&) = delete;
    void open(const std::string& path);
    void reset();
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
    bool mapped = false;
    std::vector<std::uint8_t> owned;  ///< fallback storage only
  };

  /// Loads + validates the next segment; returns false when none remain.
  bool advance_segment();

  std::string dir_;
  std::vector<std::string> segments_;  ///< full paths, sequence order
  std::size_t segment_index_ = 0;      ///< next segment to load
  MappedSegment segment_;              ///< current segment contents
  std::size_t cursor_ = 0;             ///< decode position in the segment
  bool segment_loaded_ = false;
  RecordDecoder decoder_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t records_read_ = 0;
  bool first_segment_ = true;
  bool truncated_tail_ = false;
  QueryFilter filter_;
  bool filtering_ = false;
  std::uint64_t segments_scanned_ = 0;
  std::uint64_t segments_skipped_ = 0;
  std::uint64_t records_scanned_ = 0;

  // Run memo: real feeds repeat a route within a burst, so consecutive
  // records are frequently byte-identical (the delta encoding maps
  // "same route, same instant" to the same bytes). When the framed
  // payload AND stored CRC match the previous record's exactly, the
  // observation is the verified previous one — copy it and skip the CRC
  // and decode work entirely. ~3-4× on bench_journal's replay bench.
  std::size_t prev_offset_ = 0;  ///< previous payload offset in data_
  std::size_t prev_length_ = static_cast<std::size_t>(-1);
  std::uint32_t prev_crc_ = 0;
  feeds::Observation prev_obs_;
};

}  // namespace artemis::journal

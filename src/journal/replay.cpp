#include "journal/replay.hpp"

#include <cstdio>
#include <stdexcept>

#include "journal/format.hpp"

namespace artemis::journal {

ReplayFeed::ReplayFeed(JournalReader& reader, ReplayOptions options)
    : reader_(reader), options_(options) {
  if (options_.batch_size == 0) {
    throw std::invalid_argument("ReplayOptions::batch_size must be > 0");
  }
  if (!(options_.speedup > 0.0)) {
    throw std::invalid_argument("ReplayOptions::speedup must be > 0");
  }
  buffer_.reserve(options_.batch_size);
  if (!options_.filter.is_trivial()) {
    // Predicate replay: push the filter down to the reader (footer-based
    // segment pruning + exact per-record filtering). Recorded framing
    // describes the unfiltered stream, so it cannot apply here.
    reader_.set_filter(options_.filter);
    options_.use_recorded_framing = false;
  }
  if (options_.use_recorded_framing) load_frames();
}

void ReplayFeed::load_frames() {
  const std::string path =
      reader_.dir() + "/" + std::string(kFramesFileName);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return;  // no sidecar: plain fixed-size chunking
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<std::uint8_t> data(size > 0 ? static_cast<std::size_t>(size) : 0);
  const bool ok =
      data.empty() || std::fread(data.data(), 1, data.size(), file) == data.size();
  std::fclose(file);
  if (!ok || data.size() < kFramesMagic.size() ||
      std::string_view(reinterpret_cast<const char*>(data.data()),
                       kFramesMagic.size()) != kFramesMagic) {
    return;  // foreign or torn-before-magic file: ignore, fall back
  }
  const std::uint8_t* cursor = data.data() + kFramesMagic.size();
  const std::uint8_t* const end = data.data() + data.size();
  std::uint64_t value = 0;
  // A torn trailing varint (crash mid-write) is a clean end of framing.
  while (get_varint(cursor, end, value)) frames_.push_back(value);
}

std::uint64_t ReplayFeed::replay_all(const feeds::ObservationBatchHandler& sink) {
  std::uint64_t delivered = 0;
  for (;;) {
    // Framed mode: ask for exactly the recorded batch size. The reader
    // fills across segment boundaries, so a short read means the journal
    // is exhausted — which also clamps an over-counting frame left by a
    // crash. Once frames run out, fall back to fixed-size chunks.
    std::size_t want = options_.batch_size;
    bool framed = false;
    if (frame_cursor_ < frames_.size()) {
      want = static_cast<std::size_t>(frames_[frame_cursor_]);
      framed = true;
      ++frame_cursor_;
      if (want == 0) continue;  // crash debris; a real append is never empty
    }
    if (reader_.read_batch(buffer_, want) == 0) {
      if (framed) continue;  // skip unbacked frames, then fall back / end
      break;
    }
    sink(buffer_.view());
    delivered += buffer_.size();
  }
  replayed_ += delivered;
  return delivered;
}

std::uint64_t ReplayFeed::replay_all(feeds::MonitorHub& hub) {
  return replay_all(hub.batch_inlet());
}

void ReplayFeed::schedule(sim::Simulator& sim, feeds::ObservationBatchHandler sink) {
  sink_ = std::move(sink);
  cursor_ = 0;
  buffer_.clear();
  schedule_next(sim);
}

void ReplayFeed::schedule_next(sim::Simulator& sim) {
  if (cursor_ >= buffer_.size()) {
    cursor_ = 0;
    if (reader_.read_batch(buffer_, options_.batch_size) == 0) return;  // done
  }
  const SimTime recorded = buffer_[cursor_].delivered_at;
  const auto warped = SimTime::at_micros(static_cast<std::int64_t>(
      static_cast<double>(recorded.as_micros()) / options_.speedup));
  sim.at(warped, [this, &sim, recorded] {
    // Emit the whole run sharing this delivery instant as one batch —
    // the same framing a live hub would have seen at that moment.
    std::size_t end = cursor_;
    while (end < buffer_.size() && buffer_[end].delivered_at == recorded) ++end;
    const auto batch = buffer_.view().subspan(cursor_, end - cursor_);
    replayed_ += batch.size();
    cursor_ = end;
    sink_(batch);
    schedule_next(sim);
  });
}

}  // namespace artemis::journal

#include "journal/replay.hpp"

#include <stdexcept>

namespace artemis::journal {

ReplayFeed::ReplayFeed(JournalReader& reader, ReplayOptions options)
    : reader_(reader), options_(options) {
  if (options_.batch_size == 0) {
    throw std::invalid_argument("ReplayOptions::batch_size must be > 0");
  }
  if (!(options_.speedup > 0.0)) {
    throw std::invalid_argument("ReplayOptions::speedup must be > 0");
  }
  buffer_.reserve(options_.batch_size);
}

std::uint64_t ReplayFeed::replay_all(const feeds::ObservationBatchHandler& sink) {
  std::uint64_t delivered = 0;
  while (reader_.read_batch(buffer_, options_.batch_size) > 0) {
    sink(buffer_.view());
    delivered += buffer_.size();
  }
  replayed_ += delivered;
  return delivered;
}

std::uint64_t ReplayFeed::replay_all(feeds::MonitorHub& hub) {
  return replay_all(hub.batch_inlet());
}

void ReplayFeed::schedule(sim::Simulator& sim, feeds::ObservationBatchHandler sink) {
  sink_ = std::move(sink);
  cursor_ = 0;
  buffer_.clear();
  schedule_next(sim);
}

void ReplayFeed::schedule_next(sim::Simulator& sim) {
  if (cursor_ >= buffer_.size()) {
    cursor_ = 0;
    if (reader_.read_batch(buffer_, options_.batch_size) == 0) return;  // done
  }
  const SimTime recorded = buffer_[cursor_].delivered_at;
  const auto warped = SimTime::at_micros(static_cast<std::int64_t>(
      static_cast<double>(recorded.as_micros()) / options_.speedup));
  sim.at(warped, [this, &sim, recorded] {
    // Emit the whole run sharing this delivery instant as one batch —
    // the same framing a live hub would have seen at that moment.
    std::size_t end = cursor_;
    while (end < buffer_.size() && buffer_[end].delivered_at == recorded) ++end;
    const auto batch = buffer_.view().subspan(cursor_, end - cursor_);
    replayed_ += batch.size();
    cursor_ = end;
    sink_(batch);
    schedule_next(sim);
  });
}

}  // namespace artemis::journal

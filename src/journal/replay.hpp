// ReplayFeed: re-emits a recorded journal into the observation pipeline.
//
// Two modes, both batch-native:
//
//   * replay_all(sink)      — as fast as possible: drains the journal in
//     batches of `batch_size` straight into any ObservationBatchHandler
//     (a MonitorHub inlet, a ShardedDetector, a bare DetectionService).
//     This is the crash-recovery path: a restarted monitor replays its
//     journal into fresh services and reaches the same dedup/alert state
//     bit-identically — detection output is batch-boundary independent
//     (the batch-vs-loop oracle), so the replay chunking need not match
//     the recorded chunking.
//
//   * schedule(sim, sink)   — time-warped: each run of records with the
//     same recorded delivered_at is published at that instant divided by
//     `speedup` on the simulator clock (10× speedup compresses an hour
//     of recording into six simulated minutes). The event chain is
//     self-perpetuating, so arbitrarily long journals replay in bounded
//     memory.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "feeds/monitor_hub.hpp"
#include "journal/reader.hpp"
#include "pipeline/observation_batch.hpp"
#include "sim/simulator.hpp"

namespace artemis::journal {

struct ReplayOptions {
  /// Max observations per emitted batch in replay_all (and per read in
  /// scheduled mode, where emission is additionally cut at delivery-time
  /// changes so pacing is exact).
  std::size_t batch_size = 1024;
  /// Scheduled-mode time warp: 1.0 replays at recorded pacing, N > 1
  /// compresses the timeline N×. Must be > 0.
  double speedup = 1.0;
  /// replay_all only: re-emit the exact batch boundaries the writer
  /// recorded in the framing sidecar (format.hpp kFramesFileName), so a
  /// replayed hub reproduces per-batch and per-source statistics
  /// bit-for-bit, not just detection output (which is batch-boundary
  /// independent either way). Crash tolerance: an over-counting frame is
  /// clamped to the records actually on disk, and once frames run out
  /// (sidecar lost/torn/absent) replay falls back to fixed batch_size
  /// chunks for the remainder. Scheduled mode ignores this — its framing
  /// is delivery-time runs, which is already exact pacing.
  bool use_recorded_framing = false;
  /// Predicate replay: only matching records are emitted, and segments
  /// whose index footer rules them out are never opened (see
  /// JournalReader::set_filter). A non-trivial filter disables
  /// use_recorded_framing — the recorded batch boundaries count records
  /// the filter removes, so they no longer describe the emitted stream.
  QueryFilter filter;
};

class ReplayFeed {
 public:
  /// The reader must outlive the feed (and the simulator run when
  /// schedule() is used).
  explicit ReplayFeed(JournalReader& reader, ReplayOptions options = {});

  ReplayFeed(const ReplayFeed&) = delete;
  ReplayFeed& operator=(const ReplayFeed&) = delete;

  /// Drains the rest of the journal into `sink` as fast as possible.
  /// Returns the number of observations replayed.
  std::uint64_t replay_all(const feeds::ObservationBatchHandler& sink);

  /// Convenience: replay into a hub (the normal "feed the whole app"
  /// wiring — detection, monitoring and mitigation all see the stream).
  std::uint64_t replay_all(feeds::MonitorHub& hub);

  /// Time-warped replay: schedules the journal through `sim`. Call
  /// sim.run_all() (or run_until) afterwards to execute; replayed()
  /// reports progress. The feed must outlive the simulation.
  void schedule(sim::Simulator& sim, feeds::ObservationBatchHandler sink);

  std::uint64_t replayed() const { return replayed_; }

  /// Batch sizes loaded from the framing sidecar (empty when framing is
  /// off or the sidecar is absent).
  const std::vector<std::uint64_t>& recorded_frames() const { return frames_; }

 private:
  /// Scheduled mode: emit the run of equal-delivery-time records at the
  /// buffer cursor, then arm the event for the next run.
  void schedule_next(sim::Simulator& sim);

  /// Parses the sidecar into frames_ (missing file = no frames).
  void load_frames();

  JournalReader& reader_;
  ReplayOptions options_;
  pipeline::ObservationBatch buffer_;
  std::size_t cursor_ = 0;  ///< scheduled mode: next unemitted record
  feeds::ObservationBatchHandler sink_;
  std::uint64_t replayed_ = 0;
  std::vector<std::uint64_t> frames_;  ///< recorded batch sizes, in order
  std::size_t frame_cursor_ = 0;       ///< next unconsumed frame
};

}  // namespace artemis::journal

#include "journal/writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <utility>

#include "mrt/stream_reader.hpp"

namespace artemis::journal {
namespace {

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string segment_path(const std::string& dir, std::uint64_t first_seq) {
  char name[32];  // kSegmentPrefix + 16 hex digits + kSegmentSuffix
  std::snprintf(name, sizeof(name), "seg-%016llx.aj",
                static_cast<unsigned long long>(first_seq));
  return dir + "/" + name;
}

std::string compressed_segment_path(const std::string& dir,
                                    std::uint64_t first_seq) {
  return segment_path(dir, first_seq) + ".gz";
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw JournalError(what + ": " + std::strerror(errno));
}

/// Writes `data` to `path` via tmp + fsync + rename, so the file either
/// exists complete or not at all. Returns false on any failure (the tmp
/// is removed; nothing else changes).
bool write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t done = 0;
  bool ok = true;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    done += static_cast<std::size_t>(n);
  }
  if (ok) ok = ::fsync(fd) == 0;
  ::close(fd);
  std::error_code ec;
  if (ok) {
    std::filesystem::rename(tmp, path, ec);
    ok = !ec;
  }
  if (!ok) std::filesystem::remove(tmp, ec);
  return ok;
}

}  // namespace

bool parse_fsync_policy(std::string_view text, JournalWriterOptions& options) {
  if (text == "never") {
    options.fsync_policy = FsyncPolicy::kNever;
    return true;
  }
  if (text == "on_rotate") {
    options.fsync_policy = FsyncPolicy::kOnRotate;
    return true;
  }
  constexpr std::string_view kIntervalPrefix = "interval:";
  if (text.starts_with(kIntervalPrefix)) {
    const std::string_view ms_text = text.substr(kIntervalPrefix.size());
    std::int64_t ms = 0;
    const auto [p, ec] =
        std::from_chars(ms_text.data(), ms_text.data() + ms_text.size(), ms);
    if (ec != std::errc{} || p != ms_text.data() + ms_text.size() || ms < 0) {
      return false;
    }
    options.fsync_policy = FsyncPolicy::kInterval;
    options.fsync_interval_ms = ms;
    return true;
  }
  return false;
}

std::string fsync_policy_to_string(const JournalWriterOptions& options) {
  switch (options.fsync_policy) {
    case FsyncPolicy::kNever: return "never";
    case FsyncPolicy::kOnRotate: return "on_rotate";
    case FsyncPolicy::kInterval:
      return "interval:" + std::to_string(options.fsync_interval_ms);
  }
  return "never";
}

namespace {

/// "<digits><optional unit>" with the given unit table ("" = factor 1).
bool parse_scaled(std::string_view text,
                  std::span<const std::pair<std::string_view, std::uint64_t>> units,
                  std::uint64_t& value) {
  std::uint64_t n = 0;
  const auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), n);
  if (ec != std::errc{}) return false;
  const std::string_view unit(p, static_cast<std::size_t>(
                                     text.data() + text.size() - p));
  for (const auto& [name, factor] : units) {
    if (unit == name) {
      if (n > std::numeric_limits<std::uint64_t>::max() / (factor ? factor : 1)) {
        return false;
      }
      value = n * factor;
      return true;
    }
  }
  return false;
}

}  // namespace

bool parse_retention_policy(std::string_view text, JournalWriterOptions& options) {
  RetentionPolicy policy;
  if (text == "none") {
    options.retention = policy;
    return true;
  }
  static constexpr std::pair<std::string_view, std::uint64_t> kByteUnits[] = {
      {"", 1}, {"k", 1u << 10}, {"m", 1u << 20}, {"g", 1u << 30}};
  static constexpr std::pair<std::string_view, std::uint64_t> kAgeUnits[] = {
      {"s", 1}, {"m", 60}, {"h", 3600}, {"d", 86400}};
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    const std::string_view term = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    const std::size_t eq = term.find('=');
    if (eq == std::string_view::npos) return false;
    const std::string_view key = term.substr(0, eq);
    const std::string_view val = term.substr(eq + 1);
    std::uint64_t n = 0;
    if (key == "segments") {
      static constexpr std::pair<std::string_view, std::uint64_t> kNone[] = {
          {"", 1}};
      if (!parse_scaled(val, kNone, n) || n == 0) return false;
      policy.max_segments = static_cast<std::size_t>(n);
    } else if (key == "bytes") {
      if (!parse_scaled(val, kByteUnits, n) || n == 0) return false;
      policy.max_bytes = n;
    } else if (key == "age") {
      if (!parse_scaled(val, kAgeUnits, n) || n == 0) return false;
      policy.max_age_us = static_cast<std::int64_t>(n) * 1'000'000;
    } else {
      return false;
    }
  }
  if (!policy.enabled()) return false;  // empty string
  options.retention = policy;
  return true;
}

std::string retention_policy_to_string(const JournalWriterOptions& options) {
  const RetentionPolicy& p = options.retention;
  if (!p.enabled()) return "none";
  std::string out;
  const auto term = [&out](const std::string& t) {
    if (!out.empty()) out += ',';
    out += t;
  };
  if (p.max_segments != 0) term("segments=" + std::to_string(p.max_segments));
  if (p.max_bytes != 0) term("bytes=" + std::to_string(p.max_bytes));
  if (p.max_age_us != 0) {
    term("age=" + std::to_string(p.max_age_us / 1'000'000) + "s");
  }
  return out;
}

JournalWriter::JournalWriter(std::string dir, JournalWriterOptions options)
    : dir_(std::move(dir)),
      options_(options),
      index_builder_(options.index_segments ? options.index_bloom_bits : 0) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw JournalError("cannot create journal directory " + dir_ + ": " +
                       ec.message());
  }
  buffer_.reserve(options_.buffer_bytes + (64u << 10));
  frames_buffer_.reserve(4096);
  last_fsync_ms_ = steady_ms();
  resume_existing();
  // Every segment on disk is now sealed (the resume scan truncated any
  // torn tail; appends go to a fresh segment). A crash can have sealed
  // segments without footers — backfill so the archive stays queryable.
  if (options_.index_segments) {
    build_missing_footers(dir_, options_.index_bloom_bits);
  }
  if (options_.retention.enabled()) load_sealed_registry();
  open_segment();
  open_frames_file();
}

void JournalWriter::open_frames_file() {
  const std::string path = dir_ + "/" + std::string(kFramesFileName);
  frames_fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (frames_fd_ < 0) throw_errno("cannot open framing sidecar " + path);
  // A fresh sidecar gets the magic; a resumed one just keeps appending
  // (O_APPEND) — a torn trailing varint from the previous life is the
  // reader's clean end-of-framing.
  const off_t size = ::lseek(frames_fd_, 0, SEEK_END);
  if (size == 0) {
    frames_buffer_.insert(frames_buffer_.end(), kFramesMagic.begin(),
                          kFramesMagic.end());
  }
}

void JournalWriter::write_frames_buffer() {
  // Same partial-write resume discipline as write_buffer(): the consumed
  // prefix survives a throw so a retry never duplicates bytes.
  while (frames_consumed_ < frames_buffer_.size()) {
    const ssize_t n = ::write(frames_fd_, frames_buffer_.data() + frames_consumed_,
                              frames_buffer_.size() - frames_consumed_);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("framing sidecar write failed in " + dir_);
    }
    frames_consumed_ += static_cast<std::size_t>(n);
  }
  frames_buffer_.clear();
  frames_consumed_ = 0;
}

void JournalWriter::resume_existing() {
  // A restarted monitor reuses its journal_dir: find where the recorded
  // sequence ends, drop any torn tail the crash left, and continue in a
  // NEW segment (appending into the old one is impossible — its encoder
  // state died with the writer; segments decode standalone by design).
  namespace fs = std::filesystem;
  std::uint64_t first_seq = 0;
  std::string last_path;
  bool last_compressed = false;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (!is_segment_file_name(name)) continue;
    const std::uint64_t seq = segment_name_seq(name);
    // A crash between "compressed copy renamed in" and "raw removed"
    // leaves both storage forms. The raw file is the one that was sealed
    // first — prefer it and sweep the stale duplicate.
    if (is_compressed_segment_file_name(name) &&
        fs::exists(segment_path(dir_, seq))) {
      std::error_code ec;
      fs::remove(entry.path(), ec);
      continue;
    }
    if (last_path.empty() || seq > first_seq ||
        (seq == first_seq && last_compressed)) {
      first_seq = seq;
      last_path = entry.path().string();
      last_compressed = is_compressed_segment_file_name(name);
    }
  }
  if (last_path.empty()) return;

  std::vector<std::uint8_t> data;
  if (last_compressed) {
    // A compressed segment was written whole (tmp + rename at seal), so
    // it cannot hold a torn tail; decode it only to count its records.
    auto input = mrt::open_input(last_path);
    std::uint8_t chunk[64 << 10];
    for (std::size_t n = input->read(chunk); n != 0; n = input->read(chunk)) {
      data.insert(data.end(), chunk, chunk + n);
    }
    if (input->truncated()) {
      throw JournalError(last_path + ": compressed segment is torn (" +
                         input->error() + ")");
    }
  } else {
    std::FILE* file = std::fopen(last_path.c_str(), "rb");
    if (file == nullptr) {
      throw JournalError("cannot open journal segment " + last_path);
    }
    std::fseek(file, 0, SEEK_END);
    const long file_size = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    data.resize(file_size > 0 ? static_cast<std::size_t>(file_size) : 0);
    const bool ok = data.empty() ||
                    std::fread(data.data(), 1, data.size(), file) == data.size();
    std::fclose(file);
    if (!ok) throw JournalError("short read on journal segment " + last_path);
  }

  std::size_t complete_end = 0;
  std::uint64_t records = 0;
  if (data.size() >= kSegmentHeaderSize) {
    const SegmentHeader header = SegmentHeader::decode(data.data(), last_path);
    if (header.version != kFormatVersion) {
      throw JournalError(last_path + ": cannot resume a journal written with "
                         "format version " + std::to_string(header.version));
    }
    // The file name encodes first_seq; it is the fallback identity when a
    // crash tore the write before the header itself was complete.
    if (header.first_seq != first_seq) {
      throw JournalError(last_path + ": header sequence " +
                         std::to_string(header.first_seq) +
                         " disagrees with the file name");
    }
    // Walk the frames to the last complete record (next_frame is the
    // same step the reader takes, so resume and recovery agree on what
    // counts as complete); whatever follows is a torn tail to discard.
    const std::uint8_t* cursor = data.data() + kSegmentHeaderSize;
    const std::uint8_t* const end = data.data() + data.size();
    const std::uint8_t* payload = nullptr;
    std::uint64_t length = 0;
    while (next_frame(cursor, end, payload, length)) {
      complete_end = static_cast<std::size_t>(cursor - data.data());
      ++records;
    }
  }
  if (last_compressed && complete_end < data.size()) {
    throw JournalError(last_path + ": compressed segment ends mid-record");
  }

  if (records == 0) {
    // Header-only (or torn-before-header) segment: reclaim its slot so
    // the new segment can take the same first_seq without colliding.
    fs::remove(last_path);
    std::error_code ec;
    fs::remove(index_path(dir_, first_seq), ec);
  } else if (complete_end < data.size()) {
    std::error_code ec;
    fs::resize_file(last_path, complete_end, ec);
    if (ec) {
      throw JournalError("cannot truncate torn tail of " + last_path + ": " +
                         ec.message());
    }
    // Any footer sealed before the tear now over-counts the segment
    // (its record_count includes the records just truncated away, which
    // would corrupt skip-mode sequence accounting once a later segment
    // exists). Drop it; the backfill pass rebuilds an accurate one.
    fs::remove(index_path(dir_, first_seq), ec);
  }
  next_seq_ = first_seq + records;
}

JournalWriter::~JournalWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; a failed final flush loses buffered
    // records, which the durability model already allows for crashes.
  }
}

void JournalWriter::open_segment() {
  const std::string path = segment_path(dir_, next_seq_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd_ < 0) throw_errno("cannot create journal segment " + path);
  ++segments_;
  segment_first_seq_ = next_seq_;
  segment_written_ = 0;

  SegmentHeader header;
  header.first_seq = next_seq_;
  header.base_time_us = last_delivered_us_;
  std::uint8_t raw[kSegmentHeaderSize];
  header.encode(raw);
  buffer_.insert(buffer_.end(), raw, raw + kSegmentHeaderSize);
  encoder_.reset();  // segments decode standalone
  index_builder_.reset(next_seq_);
}

void JournalWriter::write_buffer() {
  // buffer_consumed_ persists across calls: if write(2) fails mid-loop
  // (ENOSPC and the like) and the caller retries after the condition
  // clears, the retry resumes exactly where the last write stopped —
  // re-writing the already-flushed prefix would splice duplicate bytes
  // into the segment and corrupt every record after them.
  while (buffer_consumed_ < buffer_.size()) {
    const ssize_t n = ::write(fd_, buffer_.data() + buffer_consumed_,
                              buffer_.size() - buffer_consumed_);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("journal write failed in " + dir_);
    }
    buffer_consumed_ += static_cast<std::size_t>(n);
    segment_written_ += static_cast<std::size_t>(n);
    total_bytes_ += static_cast<std::size_t>(n);
  }
  buffer_.clear();
  buffer_consumed_ = 0;
  records_flushed_ = records_;
  // Records first, framing second: a crash between the two leaves the
  // sidecar UNDER-counting, which framed replay handles by falling back
  // to fixed-size batches for the uncovered tail.
  write_frames_buffer();
  if (metrics_.lag_records != nullptr) metrics_.lag_records->set(0);
  if (options_.fsync_policy == FsyncPolicy::kInterval && fd_ >= 0 &&
      steady_ms() - last_fsync_ms_ >= options_.fsync_interval_ms) {
    do_fsync();
  }
}

void JournalWriter::do_fsync() {
  if (::fsync(fd_) != 0) throw_errno("journal fsync failed in " + dir_);
  ++fsyncs_;
  if (metrics_.fsyncs != nullptr) metrics_.fsyncs->add();
  last_fsync_ms_ = steady_ms();
}

void JournalWriter::append_batch(std::span<const feeds::Observation> batch) {
  if (closed_) throw JournalError("append on a closed JournalWriter (" + dir_ + ")");
  if (batch.empty()) return;
  for (const auto& obs : batch) {
    encoder_.encode(obs, buffer_);
    if (options_.index_segments) index_builder_.add(obs);
    ++next_seq_;
    ++records_;
    last_delivered_us_ = obs.delivered_at.as_micros();
  }
  ++batches_;
  put_varint(frames_buffer_, batch.size());
  if (metrics_.appends != nullptr) {
    metrics_.appends->add();
    metrics_.records->add(batch.size());
    metrics_.lag_records->set(
        static_cast<std::int64_t>(records_ - records_flushed_));
  }
  if (buffer_.size() >= options_.buffer_bytes) write_buffer();
  // Rotation is a batch-boundary event so the steady state inside one
  // segment stays allocation-free.
  if (segment_written_ + buffer_.size() >= options_.segment_bytes) {
    write_buffer();
    if (options_.fsync_policy == FsyncPolicy::kOnRotate) do_fsync();
    if (metrics_.rotations != nullptr) metrics_.rotations->add();
    // close(2) releases the descriptor even on failure: drop fd_ first
    // so a throw cannot leave a dangling descriptor to double-close or
    // write through later.
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) throw_errno("journal segment close failed in " + dir_);
    // Seal before open_segment(): sealing snapshots the encoder's source
    // table and the index accumulator, both of which open_segment resets.
    seal_segment(segment_first_seq_);
    open_segment();
  }
}

void JournalWriter::flush() {
  if (closed_) return;
  write_buffer();
}

void JournalWriter::sync() {
  if (closed_) return;
  write_buffer();
  if (fd_ >= 0) do_fsync();
}

void JournalWriter::close() {
  if (closed_) return;
  write_buffer();
  // A continuation segment that never received a record is pure noise: a
  // no-op restart (everything resume-skipped) would otherwise grow the
  // journal by one header-only file per run. Reclaim it here — the same
  // cleanup the next resume_existing() would do, just earlier. A fresh
  // journal's very first segment is kept even when empty, so "created an
  // empty journal" remains observable.
  const bool empty_continuation =
      next_seq_ == segment_first_seq_ && segment_first_seq_ > 0;
  if (!empty_continuation && options_.fsync_policy != FsyncPolicy::kNever &&
      fd_ >= 0) {
    do_fsync();
  }
  closed_ = true;
  if (frames_fd_ >= 0) {
    ::close(frames_fd_);  // buffer already drained by write_buffer above
    frames_fd_ = -1;
  }
  if (fd_ >= 0 && ::close(fd_) != 0) {
    fd_ = -1;
    throw_errno("journal segment close failed in " + dir_);
  }
  fd_ = -1;
  if (empty_continuation) {
    std::error_code ec;
    std::filesystem::remove(segment_path(dir_, segment_first_seq_), ec);
  } else if (next_seq_ > segment_first_seq_) {
    // Seal the final partial segment too — footer, compression, retention
    // — so a freshly-stopped journal is immediately index-queryable. (A
    // record-less first segment stays raw and unfootered: there is
    // nothing to summarize, and readers treat it as the empty journal.)
    seal_segment(segment_first_seq_);
  }
}

void JournalWriter::seal_segment(std::uint64_t first_seq) {
  SealedSegment sealed;
  sealed.first_seq = first_seq;
  sealed.has_footer = write_footer(first_seq);
  sealed.bytes = store_sealed(first_seq);
  sealed.max_delivered_us = last_delivered_us_;
  sealed_.push_back(sealed);
  enforce_retention();
}

bool JournalWriter::write_footer(std::uint64_t first_seq) {
  if (!options_.index_segments || index_builder_.record_count() == 0) {
    return false;
  }
  const std::vector<std::uint8_t> encoded =
      index_builder_.finalize(encoder_.sources()).encode();
  // Best-effort, atomic: a footer either lands whole or the segment just
  // full-scans (and the next resume backfills it).
  return write_file_atomic(index_path(dir_, first_seq), encoded);
}

std::uint64_t JournalWriter::store_sealed(std::uint64_t first_seq) {
  namespace fs = std::filesystem;
  const std::string raw_path = segment_path(dir_, first_seq);
  std::error_code ec;
  const std::uint64_t raw_size = fs::file_size(raw_path, ec);
  if (ec) return 0;
#ifdef ARTEMIS_HAVE_ZLIB
  if (options_.compress_segments) {
    std::FILE* file = std::fopen(raw_path.c_str(), "rb");
    if (file == nullptr) return raw_size;
    std::vector<std::uint8_t> raw(static_cast<std::size_t>(raw_size));
    const bool read_ok =
        std::fread(raw.data(), 1, raw.size(), file) == raw.size();
    std::fclose(file);
    if (!read_ok) return raw_size;
    const std::vector<std::uint8_t> gz = mrt::gzip_compress(raw);
    const std::string gz_path = compressed_segment_path(dir_, first_seq);
    // The compressed copy is fsynced before the raw file goes away, so a
    // power loss never holds the records hostage to page cache; a crash
    // between rename and remove leaves both forms, and everything
    // (reader, resume, query) prefers raw.
    if (!write_file_atomic(gz_path, gz)) return raw_size;
    fs::remove(raw_path, ec);
    ++compressions_;
    if (metrics_.compressions != nullptr) metrics_.compressions->add();
    return gz.size();
  }
#endif
  return raw_size;
}

void JournalWriter::load_sealed_registry() {
  namespace fs = std::filesystem;
  std::map<std::uint64_t, std::uint64_t> sizes;  // first_seq -> bytes
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (!is_segment_file_name(name)) continue;
    std::error_code ec;
    const std::uint64_t size = fs::file_size(entry.path(), ec);
    if (!ec) sizes[segment_name_seq(name)] = size;
  }
  sealed_.clear();
  for (const auto& [seq, bytes] : sizes) {
    SealedSegment sealed;
    sealed.first_seq = seq;
    sealed.bytes = bytes;
    if (const auto footer = load_segment_index(index_path(dir_, seq));
        footer.has_value() && footer->first_seq == seq &&
        footer->record_count > 0) {
      sealed.max_delivered_us = footer->max_delivered_us;
      sealed.has_footer = true;
    }
    sealed_.push_back(sealed);
  }
}

void JournalWriter::enforce_retention() {
  const RetentionPolicy& policy = options_.retention;
  if (!policy.enabled()) return;
  std::uint64_t total_bytes = 0;
  for (const SealedSegment& s : sealed_) total_bytes += s.bytes;
  // Only a PREFIX of the sealed list may go: deleting a middle segment
  // would open a sequence gap, which readers correctly refuse. The age
  // rule therefore stops at the first segment it cannot judge (no
  // footer) or that is still young.
  while (!sealed_.empty()) {
    const SealedSegment& oldest = sealed_.front();
    bool reap = false;
    if (policy.max_segments != 0 && sealed_.size() > policy.max_segments) {
      reap = true;
    }
    if (!reap && policy.max_bytes != 0 && total_bytes > policy.max_bytes) {
      reap = true;
    }
    if (!reap && policy.max_age_us != 0 && oldest.has_footer &&
        last_delivered_us_ - oldest.max_delivered_us > policy.max_age_us) {
      reap = true;
    }
    if (!reap) break;
    std::error_code ec;
    std::filesystem::remove(segment_path(dir_, oldest.first_seq), ec);
    std::filesystem::remove(compressed_segment_path(dir_, oldest.first_seq), ec);
    std::filesystem::remove(index_path(dir_, oldest.first_seq), ec);
    total_bytes -= oldest.bytes;
    sealed_.erase(sealed_.begin());
    ++retention_deletes_;
    if (metrics_.retention_deletes != nullptr) metrics_.retention_deletes->add();
  }
}

}  // namespace artemis::journal

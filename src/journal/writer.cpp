#include "journal/writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace artemis::journal {
namespace {

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string segment_path(const std::string& dir, std::uint64_t first_seq) {
  char name[32];  // kSegmentPrefix + 16 hex digits + kSegmentSuffix
  std::snprintf(name, sizeof(name), "seg-%016llx.aj",
                static_cast<unsigned long long>(first_seq));
  return dir + "/" + name;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw JournalError(what + ": " + std::strerror(errno));
}

}  // namespace

bool parse_fsync_policy(std::string_view text, JournalWriterOptions& options) {
  if (text == "never") {
    options.fsync_policy = FsyncPolicy::kNever;
    return true;
  }
  if (text == "on_rotate") {
    options.fsync_policy = FsyncPolicy::kOnRotate;
    return true;
  }
  constexpr std::string_view kIntervalPrefix = "interval:";
  if (text.starts_with(kIntervalPrefix)) {
    const std::string_view ms_text = text.substr(kIntervalPrefix.size());
    std::int64_t ms = 0;
    const auto [p, ec] =
        std::from_chars(ms_text.data(), ms_text.data() + ms_text.size(), ms);
    if (ec != std::errc{} || p != ms_text.data() + ms_text.size() || ms < 0) {
      return false;
    }
    options.fsync_policy = FsyncPolicy::kInterval;
    options.fsync_interval_ms = ms;
    return true;
  }
  return false;
}

std::string fsync_policy_to_string(const JournalWriterOptions& options) {
  switch (options.fsync_policy) {
    case FsyncPolicy::kNever: return "never";
    case FsyncPolicy::kOnRotate: return "on_rotate";
    case FsyncPolicy::kInterval:
      return "interval:" + std::to_string(options.fsync_interval_ms);
  }
  return "never";
}

JournalWriter::JournalWriter(std::string dir, JournalWriterOptions options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw JournalError("cannot create journal directory " + dir_ + ": " +
                       ec.message());
  }
  buffer_.reserve(options_.buffer_bytes + (64u << 10));
  frames_buffer_.reserve(4096);
  last_fsync_ms_ = steady_ms();
  resume_existing();
  open_segment();
  open_frames_file();
}

void JournalWriter::open_frames_file() {
  const std::string path = dir_ + "/" + std::string(kFramesFileName);
  frames_fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (frames_fd_ < 0) throw_errno("cannot open framing sidecar " + path);
  // A fresh sidecar gets the magic; a resumed one just keeps appending
  // (O_APPEND) — a torn trailing varint from the previous life is the
  // reader's clean end-of-framing.
  const off_t size = ::lseek(frames_fd_, 0, SEEK_END);
  if (size == 0) {
    frames_buffer_.insert(frames_buffer_.end(), kFramesMagic.begin(),
                          kFramesMagic.end());
  }
}

void JournalWriter::write_frames_buffer() {
  // Same partial-write resume discipline as write_buffer(): the consumed
  // prefix survives a throw so a retry never duplicates bytes.
  while (frames_consumed_ < frames_buffer_.size()) {
    const ssize_t n = ::write(frames_fd_, frames_buffer_.data() + frames_consumed_,
                              frames_buffer_.size() - frames_consumed_);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("framing sidecar write failed in " + dir_);
    }
    frames_consumed_ += static_cast<std::size_t>(n);
  }
  frames_buffer_.clear();
  frames_consumed_ = 0;
}

void JournalWriter::resume_existing() {
  // A restarted monitor reuses its journal_dir: find where the recorded
  // sequence ends, drop any torn tail the crash left, and continue in a
  // NEW segment (appending into the old one is impossible — its encoder
  // state died with the writer; segments decode standalone by design).
  namespace fs = std::filesystem;
  std::string last_path;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (is_segment_file_name(name) && entry.path().string() > last_path) {
      last_path = entry.path().string();
    }
  }
  if (last_path.empty()) return;

  std::FILE* file = std::fopen(last_path.c_str(), "rb");
  if (file == nullptr) throw JournalError("cannot open journal segment " + last_path);
  std::fseek(file, 0, SEEK_END);
  const long file_size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<std::uint8_t> data(file_size > 0 ? static_cast<std::size_t>(file_size)
                                               : 0);
  const bool ok =
      data.empty() || std::fread(data.data(), 1, data.size(), file) == data.size();
  std::fclose(file);
  if (!ok) throw JournalError("short read on journal segment " + last_path);

  // The file name encodes first_seq; it is the fallback identity when a
  // crash tore the write before the header itself was complete.
  const std::string name = fs::path(last_path).filename().string();
  std::uint64_t first_seq =
      std::stoull(name.substr(kSegmentPrefix.size(), 16), nullptr, 16);
  std::size_t complete_end = 0;
  std::uint64_t records = 0;
  if (data.size() >= kSegmentHeaderSize) {
    const SegmentHeader header = SegmentHeader::decode(data.data(), last_path);
    if (header.version != kFormatVersion) {
      throw JournalError(last_path + ": cannot resume a journal written with "
                         "format version " + std::to_string(header.version));
    }
    if (header.first_seq != first_seq) {
      throw JournalError(last_path + ": header sequence " +
                         std::to_string(header.first_seq) +
                         " disagrees with the file name");
    }
    // Walk the frames to the last complete record (next_frame is the
    // same step the reader takes, so resume and recovery agree on what
    // counts as complete); whatever follows is a torn tail to discard.
    const std::uint8_t* cursor = data.data() + kSegmentHeaderSize;
    const std::uint8_t* const end = data.data() + data.size();
    const std::uint8_t* payload = nullptr;
    std::uint64_t length = 0;
    while (next_frame(cursor, end, payload, length)) {
      complete_end = static_cast<std::size_t>(cursor - data.data());
      ++records;
    }
  }

  if (records == 0) {
    // Header-only (or torn-before-header) segment: reclaim its slot so
    // the new segment can take the same first_seq without colliding.
    fs::remove(last_path);
  } else if (complete_end < data.size()) {
    std::error_code ec;
    fs::resize_file(last_path, complete_end, ec);
    if (ec) {
      throw JournalError("cannot truncate torn tail of " + last_path + ": " +
                         ec.message());
    }
  }
  next_seq_ = first_seq + records;
}

JournalWriter::~JournalWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; a failed final flush loses buffered
    // records, which the durability model already allows for crashes.
  }
}

void JournalWriter::open_segment() {
  const std::string path = segment_path(dir_, next_seq_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd_ < 0) throw_errno("cannot create journal segment " + path);
  ++segments_;
  segment_first_seq_ = next_seq_;
  segment_written_ = 0;

  SegmentHeader header;
  header.first_seq = next_seq_;
  header.base_time_us = last_delivered_us_;
  std::uint8_t raw[kSegmentHeaderSize];
  header.encode(raw);
  buffer_.insert(buffer_.end(), raw, raw + kSegmentHeaderSize);
  encoder_.reset();  // segments decode standalone
}

void JournalWriter::write_buffer() {
  // buffer_consumed_ persists across calls: if write(2) fails mid-loop
  // (ENOSPC and the like) and the caller retries after the condition
  // clears, the retry resumes exactly where the last write stopped —
  // re-writing the already-flushed prefix would splice duplicate bytes
  // into the segment and corrupt every record after them.
  while (buffer_consumed_ < buffer_.size()) {
    const ssize_t n = ::write(fd_, buffer_.data() + buffer_consumed_,
                              buffer_.size() - buffer_consumed_);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("journal write failed in " + dir_);
    }
    buffer_consumed_ += static_cast<std::size_t>(n);
    segment_written_ += static_cast<std::size_t>(n);
    total_bytes_ += static_cast<std::size_t>(n);
  }
  buffer_.clear();
  buffer_consumed_ = 0;
  records_flushed_ = records_;
  // Records first, framing second: a crash between the two leaves the
  // sidecar UNDER-counting, which framed replay handles by falling back
  // to fixed-size batches for the uncovered tail.
  write_frames_buffer();
  if (metrics_.lag_records != nullptr) metrics_.lag_records->set(0);
  if (options_.fsync_policy == FsyncPolicy::kInterval && fd_ >= 0 &&
      steady_ms() - last_fsync_ms_ >= options_.fsync_interval_ms) {
    do_fsync();
  }
}

void JournalWriter::do_fsync() {
  if (::fsync(fd_) != 0) throw_errno("journal fsync failed in " + dir_);
  ++fsyncs_;
  if (metrics_.fsyncs != nullptr) metrics_.fsyncs->add();
  last_fsync_ms_ = steady_ms();
}

void JournalWriter::append_batch(std::span<const feeds::Observation> batch) {
  if (closed_) throw JournalError("append on a closed JournalWriter (" + dir_ + ")");
  if (batch.empty()) return;
  for (const auto& obs : batch) {
    encoder_.encode(obs, buffer_);
    ++next_seq_;
    ++records_;
    last_delivered_us_ = obs.delivered_at.as_micros();
  }
  ++batches_;
  put_varint(frames_buffer_, batch.size());
  if (metrics_.appends != nullptr) {
    metrics_.appends->add();
    metrics_.records->add(batch.size());
    metrics_.lag_records->set(
        static_cast<std::int64_t>(records_ - records_flushed_));
  }
  if (buffer_.size() >= options_.buffer_bytes) write_buffer();
  // Rotation is a batch-boundary event so the steady state inside one
  // segment stays allocation-free.
  if (segment_written_ + buffer_.size() >= options_.segment_bytes) {
    write_buffer();
    if (options_.fsync_policy == FsyncPolicy::kOnRotate) do_fsync();
    if (metrics_.rotations != nullptr) metrics_.rotations->add();
    // close(2) releases the descriptor even on failure: drop fd_ first
    // so a throw cannot leave a dangling descriptor to double-close or
    // write through later.
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) throw_errno("journal segment close failed in " + dir_);
    open_segment();
  }
}

void JournalWriter::flush() {
  if (closed_) return;
  write_buffer();
}

void JournalWriter::sync() {
  if (closed_) return;
  write_buffer();
  if (fd_ >= 0) do_fsync();
}

void JournalWriter::close() {
  if (closed_) return;
  write_buffer();
  // A continuation segment that never received a record is pure noise: a
  // no-op restart (everything resume-skipped) would otherwise grow the
  // journal by one header-only file per run. Reclaim it here — the same
  // cleanup the next resume_existing() would do, just earlier. A fresh
  // journal's very first segment is kept even when empty, so "created an
  // empty journal" remains observable.
  const bool empty_continuation =
      next_seq_ == segment_first_seq_ && segment_first_seq_ > 0;
  if (!empty_continuation && options_.fsync_policy != FsyncPolicy::kNever &&
      fd_ >= 0) {
    do_fsync();
  }
  closed_ = true;
  if (frames_fd_ >= 0) {
    ::close(frames_fd_);  // buffer already drained by write_buffer above
    frames_fd_ = -1;
  }
  if (fd_ >= 0 && ::close(fd_) != 0) {
    fd_ = -1;
    throw_errno("journal segment close failed in " + dir_);
  }
  fd_ = -1;
  if (empty_continuation) {
    std::error_code ec;
    std::filesystem::remove(segment_path(dir_, segment_first_seq_), ec);
  }
}

}  // namespace artemis::journal

// JournalWriter: the flight recorder's append side.
//
// Taps a MonitorHub's batch stream (or is fed directly) and appends every
// observation to the current segment file, rotating to a new segment once
// the configured size is exceeded. All encoding goes through one reusable
// byte buffer that is handed to write(2) in large chunks, so the steady
// state — sources interned, buffer at its high-water capacity — performs
// no heap allocations per batch: the hub's zero-allocation contract
// extends through the tap (tests/detection_alloc_test.cpp).
//
// Durability model: records become readable once flush()ed (or when the
// buffer fills); a crash between flushes loses only buffered records and
// can tear at most the final record on disk, which the reader's
// truncated-tail recovery drops cleanly. close() (or destruction)
// flushes everything.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "feeds/monitor_hub.hpp"
#include "feeds/observation.hpp"
#include "journal/codec.hpp"
#include "journal/index.hpp"
#include "telemetry/metrics.hpp"

namespace artemis::journal {

/// When the writer calls fsync(2). flush() alone makes records survive a
/// process kill (the bytes are the kernel's); fsync additionally makes
/// them survive a host power loss. kNever is the replay-tool default —
/// machine crashes lose the tail, which the resume contract already
/// drops cleanly. kOnRotate bounds power-loss exposure to one segment;
/// kInterval bounds it to a wall-clock window at a per-interval fsync
/// cost (the always-on ingest service's setting).
enum class FsyncPolicy : std::uint8_t { kNever, kOnRotate, kInterval };

/// What the writer deletes, and when. All limits apply to SEALED
/// segments only — the active segment is never deleted — and are
/// enforced oldest-first at every seal (rotation or close). Zero means
/// "no limit" for each knob; the default policy deletes nothing.
struct RetentionPolicy {
  /// Keep at most this many sealed segments.
  std::size_t max_segments = 0;
  /// Keep at most this many on-disk bytes of sealed segments (compressed
  /// segments count their compressed size).
  std::uint64_t max_bytes = 0;
  /// Delete sealed segments whose newest record was delivered more than
  /// this far (sim micros) before the journal's newest record. Applies
  /// only to segments with a readable index footer — age is unknowable
  /// without one, and retention never guesses.
  std::int64_t max_age_us = 0;

  bool enabled() const {
    return max_segments != 0 || max_bytes != 0 || max_age_us != 0;
  }
};

struct JournalWriterOptions {
  /// Rotate to a new segment once the current one reaches this many
  /// bytes (checked at batch boundaries; segments overshoot by at most
  /// one batch).
  std::size_t segment_bytes = 64u << 20;
  /// Buffered encode bytes before a write(2). Batches stage in memory up
  /// to this amount; flush() forces the write.
  std::size_t buffer_bytes = 256u << 10;
  FsyncPolicy fsync_policy = FsyncPolicy::kNever;
  /// kInterval only: wall-clock milliseconds between fsyncs, checked
  /// whenever buffered bytes reach the file (so an idle writer does not
  /// wake; the bound is "interval after the next write").
  std::int64_t fsync_interval_ms = 1000;
  /// Write a seg-<hex>.ajx index footer for every sealed segment (at
  /// rotation and at close), and backfill footers missing after a crash
  /// on resume. Footers are advisory — readers work without them — so
  /// this is safe to toggle per run.
  bool index_segments = true;
  /// Bloom filter size for the footers, bits (power of two >= 64).
  std::uint32_t index_bloom_bits = kDefaultBloomBits;
  /// Re-store sealed segments gzip-compressed (seg-<hex>.aj.gz; the raw
  /// file is removed only after the compressed one is fully on disk).
  /// Silently keeps segments raw when the binary lacks zlib.
  bool compress_segments = false;
  RetentionPolicy retention;
};

/// Parses the CLI spelling of the retention knob into `options`:
/// "none", or a comma-separated list of `segments=<n>`, `bytes=<n[k|m|g]>`
/// and `age=<n[s|m|h|d]>` terms ("segments=48,age=24h"). Returns false
/// on any other text.
bool parse_retention_policy(std::string_view text, JournalWriterOptions& options);

/// The inverse spelling, for stats output ("segments=48,age=86400s").
std::string retention_policy_to_string(const JournalWriterOptions& options);

/// Parses the CLI/scenario spelling of the knob — "never", "on_rotate",
/// or "interval:<ms>" — into `options`. Returns false on any other text.
bool parse_fsync_policy(std::string_view text, JournalWriterOptions& options);

/// The inverse spelling, for stats output ("interval:250").
std::string fsync_policy_to_string(const JournalWriterOptions& options);

class JournalWriter {
 public:
  /// Creates `dir` (and parents) if needed and opens a segment. When the
  /// directory already holds a journal (the restarted-monitor case), the
  /// writer RESUMES it: a torn tail left by a crash is truncated away
  /// and recording continues in a fresh segment at the next sequence
  /// number, so readers see one contiguous history. Throws JournalError
  /// when the directory/segment cannot be created or the existing
  /// journal was written by a different format version.
  explicit JournalWriter(std::string dir, JournalWriterOptions options = {});
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends a batch (usually called via the hub tap). Not thread-safe:
  /// one writer belongs to one hub's delivery thread.
  void append_batch(std::span<const feeds::Observation> batch);

  void append(const feeds::Observation& obs) { append_batch({&obs, 1}); }

  /// A batch handler that records into this writer — subscribe it to any
  /// feed or hub. The writer must outlive the subscription's use.
  feeds::ObservationBatchHandler tap() {
    return [this](std::span<const feeds::Observation> batch) {
      append_batch(batch);
    };
  }

  /// Subscribes the tap to a hub's batch stream.
  void attach(feeds::MonitorHub& hub) { hub.subscribe_batch(tap()); }

  /// Writes all buffered records to the current segment file.
  void flush();

  /// flush() + fsync(2), regardless of the configured policy. The
  /// ingest supervisor calls this before persisting a fetch cursor, so
  /// the cursor can never claim more than the journal holds.
  void sync();

  /// flush() + close the segment. Idempotent; further appends throw.
  void close();

  const std::string& dir() const { return dir_; }
  std::uint64_t records_written() const { return records_; }
  std::uint64_t segments_opened() const { return segments_; }
  /// Encoded bytes handed to the OS so far (excludes buffered bytes).
  std::uint64_t bytes_written() const { return total_bytes_; }
  /// Sequence number the next record will get.
  std::uint64_t next_sequence() const { return next_seq_; }

  // Lag accounting: how far the durable journal trails the append
  // stream. The ingest supervisor's backpressure policy bounds
  // records_buffered(); the stats surface exposes it as "journal lag".
  /// Records appended but not yet handed to write(2) (lost by a kill).
  std::uint64_t records_buffered() const { return records_ - records_flushed_; }
  /// Encoded bytes staged in memory, not yet handed to write(2).
  std::size_t bytes_buffered() const { return buffer_.size() - buffer_consumed_; }
  /// fsync(2) calls issued so far (policy-driven plus explicit sync()).
  std::uint64_t fsyncs() const { return fsyncs_; }

  /// Batches appended so far (== lines in the framing sidecar).
  std::uint64_t batches_written() const { return batches_; }

  /// Sealed segments re-stored gzip-compressed so far.
  std::uint64_t segments_compressed() const { return compressions_; }
  /// Sealed segments deleted by the retention policy so far.
  std::uint64_t segments_deleted() const { return retention_deletes_; }

  /// Attaches telemetry cells (register via telemetry::register_journal).
  /// Observation-only relaxed stores; the tap's zero-allocation steady
  /// state is unchanged (alloc-test enforced).
  void set_metrics(const telemetry::JournalCounters& metrics) {
    metrics_ = metrics;
  }

 private:
  /// One sealed segment the retention policy may reap: identity, on-disk
  /// cost, and (when its footer was readable) the delivery time of its
  /// newest record for the age rule.
  struct SealedSegment {
    std::uint64_t first_seq = 0;
    std::uint64_t bytes = 0;
    std::int64_t max_delivered_us = 0;
    bool has_footer = false;
  };

  /// Continues an existing journal in `dir_`: computes the resume
  /// sequence from the last segment and truncates its torn tail, if any.
  void resume_existing();
  void open_segment();
  void write_buffer();
  void do_fsync();
  void open_frames_file();
  void write_frames_buffer();
  /// Post-close-of-fd sealing of the segment starting at `first_seq`:
  /// index footer, optional compression, retention sweep. Must run
  /// before open_segment() resets the encoder's source table.
  void seal_segment(std::uint64_t first_seq);
  /// True when a valid footer is on disk afterwards (footer writes are
  /// best-effort: a failure degrades that segment to full scans).
  bool write_footer(std::uint64_t first_seq);
  /// Rewrites seg-<hex>.aj as seg-<hex>.aj.gz; returns the stored size
  /// (compressed, or raw when compression is off/unavailable).
  std::uint64_t store_sealed(std::uint64_t first_seq);
  void enforce_retention();
  /// Scans dir_ for already-sealed segments (resume) so retention counts
  /// the journal's full history, not just this process's segments.
  void load_sealed_registry();

  std::string dir_;
  JournalWriterOptions options_;
  RecordEncoder encoder_;
  std::vector<std::uint8_t> buffer_;
  std::size_t buffer_consumed_ = 0;  ///< buffer_ prefix already written out
  int fd_ = -1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t segment_first_seq_ = 0;  ///< first_seq of the open segment
  std::uint64_t segment_written_ = 0;  ///< bytes written to current segment
  std::int64_t last_delivered_us_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t records_flushed_ = 0;
  std::uint64_t segments_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::int64_t last_fsync_ms_ = 0;  ///< steady-clock ms of the last fsync
  std::uint64_t batches_ = 0;
  // Batch-framing sidecar (format.hpp kFramesFileName): one varint batch
  // size per append_batch, buffered here and flushed on the same cadence
  // as the record buffer. O_APPEND, so resume just continues the file.
  int frames_fd_ = -1;
  std::vector<std::uint8_t> frames_buffer_;
  std::size_t frames_consumed_ = 0;  ///< frames_buffer_ prefix written out
  telemetry::JournalCounters metrics_;  ///< null cells = disabled
  bool closed_ = false;
  // Queryable-archive state: the open segment's footer accumulator (its
  // Bloom array is allocated once here and memset per segment, keeping
  // the append tap allocation-free) and the sealed-segment registry the
  // retention sweep walks oldest-first.
  SegmentIndexBuilder index_builder_;
  std::vector<SealedSegment> sealed_;  ///< ascending first_seq
  std::uint64_t compressions_ = 0;
  std::uint64_t retention_deletes_ = 0;
};

}  // namespace artemis::journal

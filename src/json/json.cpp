#include "json/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace artemis::json {

std::string_view to_string(Type t) {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

namespace {

[[noreturn]] void type_error(Type want, Type got) {
  throw JsonError(std::string("expected ") + std::string(to_string(want)) + ", got " +
                  std::string(to_string(got)));
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error(Type::kBool, type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error(Type::kNumber, type_);
  return num_;
}

std::int64_t Value::as_int() const {
  const double n = as_number();
  const auto i = static_cast<std::int64_t>(n);
  if (static_cast<double>(i) != n) throw JsonError("number is not an integer");
  return i;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error(Type::kString, type_);
  return str_;
}

const Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error(Type::kArray, type_);
  return arr_;
}

const Object& Value::as_object() const {
  if (type_ != Type::kObject) type_error(Type::kObject, type_);
  return obj_;
}

Array& Value::as_array() {
  if (type_ != Type::kArray) type_error(Type::kArray, type_);
  return arr_;
}

Object& Value::as_object() {
  if (type_ != Type::kObject) type_error(Type::kObject, type_);
  return obj_;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = obj_.find(std::string(key));
  return it == obj_.end() ? nullptr : &it->second;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) throw JsonError("missing key: " + std::string(key));
  return *v;
}

bool Value::get_bool(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return v != nullptr ? v->as_bool() : fallback;
}

double Value::get_number(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr ? v->as_number() : fallback;
}

std::int64_t Value::get_int(std::string_view key, std::int64_t fallback) const {
  const Value* v = find(key);
  return v != nullptr ? v->as_int() : fallback;
}

std::string Value::get_string(std::string_view key, std::string_view fallback) const {
  const Value* v = find(key);
  return v != nullptr ? v->as_string() : std::string(fallback);
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return num_ == other.num_;
    case Type::kString: return str_ == other.str_;
    case Type::kArray: return arr_ == other.arr_;
    case Type::kObject: return obj_ == other.obj_;
  }
  return false;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double n) {
  if (n == static_cast<double>(static_cast<std::int64_t>(n)) && std::fabs(n) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(n));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", n);
  out += buf;
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_indent = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: number_into(out, num_); break;
    case Type::kString: escape_into(out, str_); break;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj_) {
        if (!first) out += ',';
        first = false;
        newline_indent(depth + 1);
        escape_into(out, key);
        out += indent > 0 ? ": " : ":";
        value.dump_to(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError(why + " at offset " + std::to_string(pos_));
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  Value parse_value() {
    // Depth guard against pathological nesting blowing the stack.
    if (depth_ > 256) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': return parse_literal("true", Value(true));
      case 'f': return parse_literal("false", Value(false));
      case 'n': return parse_literal("null", Value(nullptr));
      default: return parse_number();
    }
  }

  Value parse_literal(std::string_view lit, Value v) {
    if (text_.substr(pos_, lit.size()) != lit) fail("invalid literal");
    pos_ += lit.size();
    return v;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
    // RFC 8259: the integer part is either "0" or starts with 1-9.
    const bool leading_zero = peek() == '0';
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (leading_zero && pos_ - start > (text_[start] == '-' ? 2u : 1u)) {
      fail("leading zeros not allowed");
    }
    if (consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digits required after decimal point");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digits required in exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    double out = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc() || ptr != last) fail("invalid number");
    return Value(out);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = advance();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = advance();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = advance();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // Encode as UTF-8 (BMP only; surrogate pairs are rejected).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate pairs unsupported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Value parse_array() {
    expect('[');
    ++depth_;
    Array arr;
    skip_ws();
    if (consume(']')) {
      --depth_;
      return Value(std::move(arr));
    }
    for (;;) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      if (consume(']')) break;
      expect(',');
    }
    --depth_;
    return Value(std::move(arr));
  }

  Value parse_object() {
    expect('{');
    ++depth_;
    Object obj;
    skip_ws();
    if (consume('}')) {
      --depth_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (consume('}')) break;
      expect(',');
    }
    --depth_;
    return Value(std::move(obj));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

}  // namespace artemis::json

// Minimal JSON value model, parser and serializer.
//
// ARTEMIS configuration files (owned prefixes, legitimate origins, monitor
// selection, mitigation policy) are JSON; this module is the only parser
// the library depends on. It supports the full JSON grammar except for
// \uXXXX surrogate pairs outside the BMP (sufficient for config files,
// which are ASCII in practice).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace artemis::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps object keys ordered, making serialization deterministic.
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

std::string_view to_string(Type t);

/// Thrown on malformed documents and on type-mismatched accessors.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// A JSON value. Value-semantic; copies are deep.
class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double n) : type_(Type::kNumber), num_(n) {}
  Value(int n) : type_(Type::kNumber), num_(n) {}
  Value(std::int64_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Value(std::uint64_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Checked accessors; throw JsonError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  ///< also rejects non-integral numbers
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object member lookup; returns nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// Object member lookup that throws when the key is missing.
  const Value& at(std::string_view key) const;

  /// Typed lookups with defaults, for ergonomic config reading.
  bool get_bool(std::string_view key, bool fallback) const;
  double get_number(std::string_view key, double fallback) const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  std::string get_string(std::string_view key, std::string_view fallback) const;

  bool operator==(const Value& other) const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
Value parse(std::string_view text);

/// Parses the file at `path`; throws JsonError (unreadable / malformed).
Value parse_file(const std::string& path);

}  // namespace artemis::json

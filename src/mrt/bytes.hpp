// Big-endian byte buffer primitives for the MRT codec.
//
// All MRT/BGP wire fields are network byte order; these two classes are
// the only place byte-order handling lives.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace artemis::mrt {

/// Thrown by ByteReader on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends big-endian fields to a growable buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);

  /// Reserves a 16-bit length slot; returns its offset for patch_u16.
  std::size_t reserve_u16();
  /// Reserves a 32-bit length slot; returns its offset for patch_u32.
  std::size_t reserve_u32();
  void patch_u16(std::size_t offset, std::uint16_t v);
  void patch_u32(std::size_t offset, std::uint32_t v);

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Consumes big-endian fields from a fixed buffer; throws DecodeError on
/// any attempt to read past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::span<const std::uint8_t> bytes(std::size_t n);

  /// A sub-reader over the next `n` bytes (consumes them here).
  ByteReader sub(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace artemis::mrt

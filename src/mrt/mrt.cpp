#include "mrt/mrt.hpp"

#include <algorithm>
#include <cstring>

namespace artemis::mrt {
namespace {

// BGP message type codes (RFC 4271 §4.1).
constexpr std::uint8_t kBgpMsgUpdate = 2;

// Path attribute type codes.
constexpr std::uint8_t kAttrOrigin = 1;
constexpr std::uint8_t kAttrAsPath = 2;
constexpr std::uint8_t kAttrNextHop = 3;
constexpr std::uint8_t kAttrMed = 4;
constexpr std::uint8_t kAttrLocalPref = 5;
constexpr std::uint8_t kAttrCommunity = 8;
constexpr std::uint8_t kAttrMpReach = 14;
constexpr std::uint8_t kAttrMpUnreach = 15;
constexpr std::uint8_t kAttrAs4Path = 17;

// RFC 4760 AFI / SAFI values for the families we model.
constexpr std::uint16_t kAfiIpv4 = 1;
constexpr std::uint16_t kAfiIpv6 = 2;
constexpr std::uint8_t kSafiUnicast = 1;
constexpr std::uint8_t kSafiMplsVpn = 128;  ///< labeled VPN (RFC 4364)

// RFC 8277 label-stack entries are 24 bits: label(20) | TC(3) | BoS(1).
// A withdraw carries the compat value 0x800000 instead of a real stack.
constexpr std::uint32_t kVpnWithdrawLabel = 0x800000;
constexpr int kVpnLabelBits = 24;
constexpr int kVpnRdBits = 64;  ///< route distinguisher (RFC 4364 §4.2)

// Attribute flag bits.
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagExtendedLen = 0x10;

constexpr std::uint8_t kAsSet = 1;
constexpr std::uint8_t kAsSequence = 2;

void write_attr_header(ByteWriter& w, std::uint8_t flags, std::uint8_t type,
                       std::size_t len) {
  if (len > 255) {
    w.u8(static_cast<std::uint8_t>(flags | kFlagExtendedLen));
    w.u8(type);
    w.u16(static_cast<std::uint16_t>(len));
  } else {
    w.u8(flags);
    w.u8(type);
    w.u8(static_cast<std::uint8_t>(len));
  }
}

std::size_t nlri_bytes(std::span<const net::Prefix> prefixes, bool labeled) {
  // A labeled NLRI (RFC 8277) spends 3 label + 8 RD bytes before the
  // prefix; the length byte counts those bits too.
  std::size_t total = 0;
  for (const auto& p : prefixes) {
    total += 1 + static_cast<std::size_t>((p.length() + 7) / 8) + (labeled ? 11 : 0);
  }
  return total;
}

/// One SAFI 128 NLRI: length counts label + RD + prefix bits; a one-entry
/// label stack, a zero RD, then the prefix bytes.
void write_labeled_nlri_prefix(ByteWriter& w, const net::Prefix& p,
                               std::uint32_t label_entry) {
  w.u8(static_cast<std::uint8_t>(kVpnLabelBits + kVpnRdBits + p.length()));
  w.u8(static_cast<std::uint8_t>((label_entry >> 16) & 0xFF));
  w.u8(static_cast<std::uint8_t>((label_entry >> 8) & 0xFF));
  w.u8(static_cast<std::uint8_t>(label_entry & 0xFF));
  for (int i = 0; i < kVpnRdBits / 8; ++i) w.u8(0);  // RD 0:0 (fixtures)
  const int nbytes = (p.length() + 7) / 8;
  w.bytes(std::span(p.address().bytes().data(), static_cast<std::size_t>(nbytes)));
}

/// MP_UNREACH_NLRI (RFC 4760 §4): AFI, SAFI, withdrawn v6 NLRI. The only
/// attribute of a v6-withdraw-only update. With mp_labeled_vpn the SAFI
/// is 128 and each NLRI leads with the 0x800000 withdraw-compat label.
void write_mp_unreach(ByteWriter& w, std::span<const net::Prefix> withdrawn,
                      const UpdateEncodeOptions& options) {
  const bool labeled = options.mp_labeled_vpn;
  write_attr_header(w, static_cast<std::uint8_t>(kFlagOptional),
                    kAttrMpUnreach, 3 + nlri_bytes(withdrawn, labeled));
  w.u16(kAfiIpv6);
  w.u8(labeled ? kSafiMplsVpn : kSafiUnicast);
  for (const auto& p : withdrawn) {
    if (labeled) {
      write_labeled_nlri_prefix(w, p, kVpnWithdrawLabel);
    } else {
      write_nlri_prefix(w, p);
    }
  }
}

/// Shared by the AS4 and pre-AS4 encoders: `two_byte_as_path` writes
/// 16-bit AS_PATH hops (AS_TRANS for wide ASNs) and appends an AS4_PATH
/// attribute carrying the true path when any hop was squashed. IPv6
/// prefixes ride in MP_REACH_NLRI / MP_UNREACH_NLRI attributes with a
/// zero next hop of `options.mp_next_hop_len` bytes (16 global-only, 32
/// with the link-local slot most RIS peers fill).
void encode_attrs(ByteWriter& w, const bgp::PathAttributes& attrs,
                  bool two_byte_as_path, std::span<const net::Prefix> mp_announced,
                  std::span<const net::Prefix> mp_withdrawn,
                  const UpdateEncodeOptions& options) {
  // ORIGIN
  write_attr_header(w, kFlagTransitive, kAttrOrigin, 1);
  w.u8(static_cast<std::uint8_t>(attrs.origin));
  // AS_PATH: one AS_SEQUENCE segment (AS_SET for the aggregate fixture).
  const auto& hops = attrs.as_path.hops();
  bool needs_as4 = false;
  {
    const std::size_t hop_bytes = two_byte_as_path ? 2 : 4;
    const std::size_t seg_len = 2 + hop_bytes * hops.size();
    write_attr_header(w, kFlagTransitive, kAttrAsPath, seg_len);
    w.u8(options.as_set_path ? kAsSet : kAsSequence);
    w.u8(static_cast<std::uint8_t>(hops.size()));
    for (const auto asn : hops) {
      if (two_byte_as_path) {
        const bool wide = asn > 0xFFFF;
        needs_as4 = needs_as4 || wide;
        w.u16(static_cast<std::uint16_t>(wide ? kAsTrans : asn));
      } else {
        w.u32(asn);
      }
    }
  }
  // NEXT_HOP: not modeled at the AS level; encoded as 0.0.0.0 for wire
  // completeness and ignored on decode.
  write_attr_header(w, kFlagTransitive, kAttrNextHop, 4);
  w.u32(0);
  // MED
  write_attr_header(w, kFlagOptional, kAttrMed, 4);
  w.u32(attrs.med);
  // LOCAL_PREF
  write_attr_header(w, kFlagTransitive, kAttrLocalPref, 4);
  w.u32(attrs.local_pref);
  // COMMUNITY
  if (!attrs.communities.empty()) {
    write_attr_header(w, static_cast<std::uint8_t>(kFlagOptional | kFlagTransitive),
                      kAttrCommunity, 4 * attrs.communities.size());
    for (const auto& c : attrs.communities) {
      w.u16(c.asn);
      w.u16(c.value);
    }
  }
  // AS4_PATH (RFC 6793): only when a wide ASN was replaced by AS_TRANS.
  if (needs_as4 && !options.as_set_path) {
    write_attr_header(w, static_cast<std::uint8_t>(kFlagOptional | kFlagTransitive),
                      kAttrAs4Path, 2 + 4 * hops.size());
    w.u8(kAsSequence);
    w.u8(static_cast<std::uint8_t>(hops.size()));
    for (const auto asn : hops) w.u32(asn);
  }
  // MP_REACH_NLRI (RFC 4760 §3): AFI, SAFI, next hop, reserved, v6 NLRI.
  // Labeled VPN (SAFI 128) prepends an 8-byte RD to the next hop and a
  // label stack + RD to each NLRI.
  if (!mp_announced.empty()) {
    const bool labeled = options.mp_labeled_vpn;
    // Labeled: every 16-byte v6 next hop gains its own 8-byte RD, so the
    // global-only form is 24 and the global+link-local form is 48.
    const auto nh_len = static_cast<std::size_t>(
        labeled ? (options.mp_next_hop_len == 32 ? 48 : 24)
                : options.mp_next_hop_len);
    write_attr_header(w, static_cast<std::uint8_t>(kFlagOptional), kAttrMpReach,
                      5 + nh_len + nlri_bytes(mp_announced, labeled));
    w.u16(kAfiIpv6);
    w.u8(labeled ? kSafiMplsVpn : kSafiUnicast);
    w.u8(static_cast<std::uint8_t>(nh_len));
    for (std::size_t i = 0; i < nh_len; ++i) w.u8(0);  // next hop: not modeled
    w.u8(0);  // reserved
    for (const auto& p : mp_announced) {
      if (labeled) {
        // label(20) | TC(3)=0 | bottom-of-stack.
        write_labeled_nlri_prefix(w, p, ((options.mp_vpn_label & 0xFFFFF) << 4) | 0x1);
      } else {
        write_nlri_prefix(w, p);
      }
    }
  }
  if (!mp_withdrawn.empty()) write_mp_unreach(w, mp_withdrawn, options);
}

}  // namespace

void write_nlri_prefix(ByteWriter& w, const net::Prefix& p) {
  w.u8(static_cast<std::uint8_t>(p.length()));
  const int nbytes = (p.length() + 7) / 8;
  w.bytes(std::span(p.address().bytes().data(), static_cast<std::size_t>(nbytes)));
}

net::Prefix read_nlri_prefix(ByteReader& r, net::IpFamily family) {
  const int len = r.u8();
  if (len > family_bits(family)) throw DecodeError("NLRI prefix length out of range");
  const int nbytes = (len + 7) / 8;
  std::uint8_t buf[16] = {};
  const auto raw = r.bytes(static_cast<std::size_t>(nbytes));
  std::memcpy(buf, raw.data(), raw.size());
  return net::Prefix(net::IpAddress::from_bytes(family, buf), len);
}

void encode_path_attributes(ByteWriter& w, const bgp::PathAttributes& attrs) {
  encode_attrs(w, attrs, /*two_byte_as_path=*/false, {}, {}, UpdateEncodeOptions{});
}

namespace {

/// The decoded AFI/SAFI prelude of an MP attribute.
struct MpFamily {
  net::IpFamily family;
  bool labeled;  ///< SAFI 128: NLRI carry a label stack + RD prefix
};

/// Reads the shared AFI/SAFI prelude of an MP attribute. Anything but
/// v4/v6 unicast or labeled VPN is a shape we do not model.
MpFamily read_mp_family(ByteReader& body, const char* attr_name) {
  const std::uint16_t afi = body.u16();
  const std::uint8_t safi = body.u8();
  if ((afi != kAfiIpv4 && afi != kAfiIpv6) ||
      (safi != kSafiUnicast && safi != kSafiMplsVpn)) {
    throw UnsupportedRecord(std::string("unsupported ") + attr_name + " AFI/SAFI");
  }
  return {afi == kAfiIpv4 ? net::IpFamily::kIpv4 : net::IpFamily::kIpv6,
          safi == kSafiMplsVpn};
}

/// Reads one SAFI 128 NLRI (RFC 8277 §2): the length byte counts the
/// label stack, the route distinguisher, AND the prefix bits. The label
/// stack is skipped entry by entry until the bottom-of-stack bit (or the
/// withdraw-compat 0x800000 value, which has BoS clear); the RD is
/// skipped whole. Only the bare prefix survives — this AS-level model
/// has no VRFs, and a VPN hijack of owned space is still a hijack of the
/// prefix.
net::Prefix read_labeled_nlri_prefix(ByteReader& r, net::IpFamily family) {
  int bits = r.u8();
  for (;;) {
    if (bits < kVpnLabelBits) {
      throw DecodeError("labeled NLRI shorter than a label-stack entry");
    }
    std::uint32_t entry = static_cast<std::uint32_t>(r.u8()) << 16;
    entry |= static_cast<std::uint32_t>(r.u8()) << 8;
    entry |= r.u8();
    bits -= kVpnLabelBits;
    if ((entry & 0x1) != 0 || entry == kVpnWithdrawLabel) break;
  }
  if (bits < kVpnRdBits) {
    throw DecodeError("labeled NLRI shorter than a route distinguisher");
  }
  r.bytes(kVpnRdBits / 8);  // route distinguisher: not modeled
  bits -= kVpnRdBits;
  if (bits > family_bits(family)) throw DecodeError("NLRI prefix length out of range");
  const int nbytes = (bits + 7) / 8;
  std::uint8_t buf[16] = {};
  const auto raw = r.bytes(static_cast<std::size_t>(nbytes));
  std::memcpy(buf, raw.data(), raw.size());
  return net::Prefix(net::IpAddress::from_bytes(family, buf), bits);
}

}  // namespace

void decode_path_attributes_into(ByteReader& attrs_reader, bgp::PathAttributes& out,
                                 bool two_byte_as_path,
                                 std::vector<bgp::Asn>& hops_scratch,
                                 std::vector<bgp::Asn>& as4_scratch,
                                 MpNlriScratch* mp) {
  out.reset();
  hops_scratch.clear();
  as4_scratch.clear();
  if (mp != nullptr) mp->clear();
  bool have_as4 = false;
  while (!attrs_reader.done()) {
    const std::uint8_t flags = attrs_reader.u8();
    const std::uint8_t type = attrs_reader.u8();
    const std::size_t len =
        (flags & kFlagExtendedLen) != 0 ? attrs_reader.u16() : attrs_reader.u8();
    ByteReader body = attrs_reader.sub(len);
    switch (type) {
      case kAttrOrigin: {
        const std::uint8_t o = body.u8();
        if (o > 2) throw DecodeError("bad ORIGIN value");
        out.origin = static_cast<bgp::Origin>(o);
        break;
      }
      case kAttrAsPath: {
        while (!body.done()) {
          const std::uint8_t seg_type = body.u8();
          const std::uint8_t count = body.u8();
          if (seg_type != kAsSequence) {
            throw UnsupportedRecord("unsupported AS_PATH segment");
          }
          for (int i = 0; i < count; ++i) {
            hops_scratch.push_back(two_byte_as_path ? body.u16() : body.u32());
          }
        }
        break;
      }
      case kAttrAs4Path: {
        // Always 4-byte hops, regardless of the speaker's AS_PATH width.
        while (!body.done()) {
          const std::uint8_t seg_type = body.u8();
          const std::uint8_t count = body.u8();
          if (seg_type != kAsSequence) {
            throw UnsupportedRecord("unsupported AS4_PATH segment");
          }
          for (int i = 0; i < count; ++i) as4_scratch.push_back(body.u32());
        }
        have_as4 = true;
        break;
      }
      case kAttrNextHop:
        break;  // intentionally ignored (AS-level model)
      case kAttrMpReach: {
        // With no staging area (TABLE_DUMP_V2 RIB entries, where RFC 6396
        // abbreviates this attribute to a bare next hop) skip it whole —
        // body was fully consumed by sub() above.
        if (mp == nullptr) break;
        const MpFamily fam = read_mp_family(body, "MP_REACH_NLRI");
        const std::uint8_t nh_len = body.u8();
        // Unicast v4: 4, or 16/32 for v4-NLRI-over-v6-next-hop (RFC 8950
        // — the next hop is discarded unmodeled, the NLRI is ordinary v4
        // unicast). Unicast v6: 16, or 32 with the link-local slot.
        // Labeled VPN prepends the 8-byte RD to each next hop
        // (RFC 4364 §4.3.2 / RFC 4659 §3.2.1): v4 12, or 24 over a v6
        // next hop; v6 24, or 48 with the link-local slot.
        const bool nh_ok =
            fam.labeled ? (fam.family == net::IpFamily::kIpv4
                               ? (nh_len == 12 || nh_len == 24)
                               : (nh_len == 24 || nh_len == 48))
                        : (fam.family == net::IpFamily::kIpv4
                               ? (nh_len == 4 || nh_len == 16 || nh_len == 32)
                               : (nh_len == 16 || nh_len == 32));
        if (!nh_ok) throw DecodeError("bad MP_REACH_NLRI next-hop length");
        body.bytes(nh_len);  // next hop(s): not modeled
        body.u8();           // reserved
        while (!body.done()) {
          mp->announced.push_back(fam.labeled
                                      ? read_labeled_nlri_prefix(body, fam.family)
                                      : read_nlri_prefix(body, fam.family));
        }
        break;
      }
      case kAttrMpUnreach: {
        if (mp == nullptr) break;
        const MpFamily fam = read_mp_family(body, "MP_UNREACH_NLRI");
        while (!body.done()) {
          mp->withdrawn.push_back(fam.labeled
                                      ? read_labeled_nlri_prefix(body, fam.family)
                                      : read_nlri_prefix(body, fam.family));
        }
        break;
      }
      case kAttrMed:
        out.med = body.u32();
        break;
      case kAttrLocalPref:
        out.local_pref = body.u32();
        break;
      case kAttrCommunity: {
        while (!body.done()) {
          bgp::Community c;
          c.asn = body.u16();
          c.value = body.u16();
          out.communities.push_back(c);
        }
        break;
      }
      default:
        break;  // unknown attributes are skipped (already consumed by sub())
    }
  }
  // RFC 6793 §4.2.3 merge: the AS4_PATH rewrites the tail of the AS_PATH;
  // any excess leading AS_PATH hops (added by old speakers after the
  // AS4_PATH was attached) are kept; an AS4_PATH longer than the AS_PATH
  // is bogus and ignored wholesale. The merge only applies to 2-byte
  // speakers: a 4-byte AS_PATH is already authoritative, and a stale
  // propagated AS4_PATH riding along a MESSAGE_AS4 record must not
  // overwrite it (§4.2.3 "NEW BGP speaker ... MUST NOT" consult it).
  if (two_byte_as_path && have_as4 && as4_scratch.size() <= hops_scratch.size()) {
    std::copy(as4_scratch.begin(), as4_scratch.end(),
              hops_scratch.end() - static_cast<std::ptrdiff_t>(as4_scratch.size()));
  }
  out.as_path.assign(hops_scratch.data(), hops_scratch.size());
}

bgp::PathAttributes decode_path_attributes(ByteReader& attrs_reader) {
  bgp::PathAttributes attrs;
  std::vector<bgp::Asn> hops;
  std::vector<bgp::Asn> as4;
  decode_path_attributes_into(attrs_reader, attrs, /*two_byte_as_path=*/false, hops,
                              as4);
  return attrs;
}

namespace {

std::vector<std::uint8_t> encode_bgp_update_impl(const bgp::UpdateMessage& update,
                                                 bool two_byte_as_path,
                                                 const UpdateEncodeOptions& options) {
  // Split by family: v4 prefixes use the classic WITHDRAWN/NLRI fields,
  // v6 prefixes the MP_REACH/MP_UNREACH attributes (RFC 4760).
  std::vector<net::Prefix> v6_announced;
  std::vector<net::Prefix> v6_withdrawn;
  for (const auto& p : update.announced) {
    if (!p.is_v4()) v6_announced.push_back(p);
  }
  for (const auto& p : update.withdrawn) {
    if (!p.is_v4()) v6_withdrawn.push_back(p);
  }

  ByteWriter w;
  // 16-byte marker of all ones.
  for (int i = 0; i < 16; ++i) w.u8(0xFF);
  const std::size_t len_slot = w.reserve_u16();
  w.u8(kBgpMsgUpdate);
  // Withdrawn routes (v4 only; v6 withdrawals travel in MP_UNREACH).
  const std::size_t wd_slot = w.reserve_u16();
  const std::size_t wd_start = w.size();
  for (const auto& p : update.withdrawn) {
    if (p.is_v4()) write_nlri_prefix(w, p);
  }
  w.patch_u16(wd_slot, static_cast<std::uint16_t>(w.size() - wd_start));
  // Path attributes. A pure-v4 withdrawal carries none; a v6-withdraw-only
  // update carries a lone MP_UNREACH attribute (the real withdraw shape).
  const std::size_t attrs_slot = w.reserve_u16();
  const std::size_t attrs_start = w.size();
  if (!update.announced.empty()) {
    encode_attrs(w, update.attrs, two_byte_as_path, v6_announced, v6_withdrawn,
                 options);
  } else if (!v6_withdrawn.empty()) {
    write_mp_unreach(w, v6_withdrawn, options);
  }
  w.patch_u16(attrs_slot, static_cast<std::uint16_t>(w.size() - attrs_start));
  // Classic NLRI (v4 only).
  for (const auto& p : update.announced) {
    if (p.is_v4()) write_nlri_prefix(w, p);
  }
  w.patch_u16(len_slot, static_cast<std::uint16_t>(w.size()));
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> encode_bgp_update(const bgp::UpdateMessage& update,
                                            const UpdateEncodeOptions& options) {
  return encode_bgp_update_impl(update, /*two_byte_as_path=*/false, options);
}

bgp::UpdateMessage decode_bgp_update(ByteReader& reader, bgp::Asn sender,
                                     bool two_byte_as_path) {
  for (int i = 0; i < 16; ++i) {
    if (reader.u8() != 0xFF) throw DecodeError("bad BGP marker");
  }
  const std::uint16_t total_len = reader.u16();
  if (total_len < 19) throw DecodeError("BGP message too short");
  const std::uint8_t msg_type = reader.u8();
  if (msg_type != kBgpMsgUpdate) throw DecodeError("not a BGP UPDATE");
  ByteReader body = reader.sub(static_cast<std::size_t>(total_len) - 19);

  bgp::UpdateMessage update;
  update.sender = sender;
  ByteReader withdrawn = body.sub(body.u16());
  while (!withdrawn.done()) {
    update.withdrawn.push_back(read_nlri_prefix(withdrawn, net::IpFamily::kIpv4));
  }
  ByteReader attrs = body.sub(body.u16());
  MpNlriScratch mp;
  if (attrs.remaining() > 0) {
    std::vector<bgp::Asn> hops;
    std::vector<bgp::Asn> as4;
    decode_path_attributes_into(attrs, update.attrs, two_byte_as_path, hops, as4, &mp);
  }
  while (!body.done()) {
    update.announced.push_back(read_nlri_prefix(body, net::IpFamily::kIpv4));
  }
  // MP NLRI append after the classic fields: a decoded update lists its
  // v4 prefixes first, v6 second (the importer emits the same order).
  update.announced.insert(update.announced.end(), mp.announced.begin(),
                          mp.announced.end());
  update.withdrawn.insert(update.withdrawn.end(), mp.withdrawn.begin(),
                          mp.withdrawn.end());
  return update;
}

void write_raw_record(ByteWriter& writer, RecordType type, std::uint16_t subtype,
                      SimTime timestamp, std::span<const std::uint8_t> body) {
  const auto micros = timestamp.as_micros();
  writer.u32(static_cast<std::uint32_t>(micros / 1'000'000));
  writer.u16(static_cast<std::uint16_t>(type));
  writer.u16(subtype);
  if (type == RecordType::kBgp4mpEt) {
    // The microsecond field counts toward the record length (RFC 6396 §3).
    writer.u32(static_cast<std::uint32_t>(body.size() + 4));
    writer.u32(static_cast<std::uint32_t>(micros % 1'000'000));
  } else {
    writer.u32(static_cast<std::uint32_t>(body.size()));
  }
  writer.bytes(body);
}

std::optional<RawRecord> read_raw_record(ByteReader& reader) {
  if (reader.done()) return std::nullopt;
  RawRecord rec;
  const std::uint32_t seconds = reader.u32();
  rec.type = reader.u16();
  rec.subtype = reader.u16();
  std::uint32_t length = reader.u32();
  std::uint32_t micros = 0;
  if (rec.type == static_cast<std::uint16_t>(RecordType::kBgp4mpEt)) {
    if (length < 4) throw DecodeError("ET record too short");
    micros = reader.u32();
    length -= 4;
  }
  rec.timestamp =
      SimTime::at_micros(static_cast<std::int64_t>(seconds) * 1'000'000 + micros);
  const auto body = reader.bytes(length);
  rec.body.assign(body.begin(), body.end());
  return rec;
}

namespace {

/// The BGP4MP peer/local address block: AFI tracks the peer's transport
/// family — a v6 session records 16-byte addresses (RFC 6396 §4.4).
void write_bgp4mp_addresses(ByteWriter& body, const net::IpAddress& peer_ip) {
  if (peer_ip.is_v4()) {
    body.u16(1);  // address family: IPv4
    body.u32(peer_ip.v4_value());
    body.u32(0);  // local IP (collector); not modeled
  } else {
    body.u16(2);  // address family: IPv6
    body.bytes(std::span(peer_ip.bytes().data(), 16));
    for (int i = 0; i < 16; ++i) body.u8(0);  // local IP; not modeled
  }
}

}  // namespace

std::vector<std::uint8_t> encode_update_record(const UpdateRecord& rec,
                                               const UpdateEncodeOptions& options) {
  ByteWriter body;
  body.u32(rec.peer_asn);
  body.u32(rec.local_asn);
  body.u16(0);  // interface index
  write_bgp4mp_addresses(body, rec.peer_ip);
  const auto msg = encode_bgp_update(rec.update, options);
  body.bytes(msg);

  ByteWriter out;
  write_raw_record(out, RecordType::kBgp4mpEt,
                   static_cast<std::uint16_t>(Bgp4mpSubtype::kMessageAs4), rec.timestamp,
                   body.data());
  return out.take();
}

std::vector<std::uint8_t> encode_update_record_as2(const UpdateRecord& rec,
                                                   const UpdateEncodeOptions& options) {
  const auto as2 = [](bgp::Asn asn) {
    return static_cast<std::uint16_t>(asn > 0xFFFF ? kAsTrans : asn);
  };
  ByteWriter body;
  body.u16(as2(rec.peer_asn));
  body.u16(as2(rec.local_asn));
  body.u16(0);  // interface index
  write_bgp4mp_addresses(body, rec.peer_ip);
  const auto msg = encode_bgp_update_impl(rec.update, /*two_byte_as_path=*/true, options);
  body.bytes(msg);

  ByteWriter out;
  write_raw_record(out, RecordType::kBgp4mpEt,
                   static_cast<std::uint16_t>(Bgp4mpSubtype::kMessage), rec.timestamp,
                   body.data());
  return out.take();
}

std::vector<std::uint8_t> encode_update_record_as_set(const UpdateRecord& rec) {
  UpdateEncodeOptions options;
  options.as_set_path = true;
  return encode_update_record(rec, options);
}

UpdateRecord decode_update_record(const RawRecord& raw) {
  if (raw.type != static_cast<std::uint16_t>(RecordType::kBgp4mpEt) &&
      raw.type != static_cast<std::uint16_t>(RecordType::kBgp4mp)) {
    throw DecodeError("not a BGP4MP record");
  }
  const bool as4 = raw.subtype == static_cast<std::uint16_t>(Bgp4mpSubtype::kMessageAs4);
  if (!as4 && raw.subtype != static_cast<std::uint16_t>(Bgp4mpSubtype::kMessage)) {
    throw DecodeError("unsupported BGP4MP subtype");
  }
  ByteReader r(raw.body);
  UpdateRecord rec;
  rec.timestamp = raw.timestamp;
  rec.peer_asn = as4 ? r.u32() : r.u16();
  rec.local_asn = as4 ? r.u32() : r.u16();
  r.u16();  // interface index
  const std::uint16_t afi = r.u16();
  if (afi != 1 && afi != 2) throw DecodeError("bad BGP4MP address family");
  if (afi == 1) {
    rec.peer_ip = net::IpAddress::v4(r.u32());
    r.u32();  // local IP
  } else {
    rec.peer_ip = net::IpAddress::from_bytes(net::IpFamily::kIpv6, r.bytes(16).data());
    r.bytes(16);  // local IP
  }
  rec.update = decode_bgp_update(r, rec.peer_asn, /*two_byte_as_path=*/!as4);
  rec.update.sent_at = rec.timestamp;
  return rec;
}

std::vector<std::uint8_t> encode_table_dump(const std::vector<RibEntryRecord>& entries,
                                            SimTime snapshot_time) {
  // Build the peer index: unique peer ASNs in first-appearance order.
  std::vector<bgp::Asn> peers;
  auto peer_index = [&peers](bgp::Asn asn) -> std::uint16_t {
    for (std::size_t i = 0; i < peers.size(); ++i) {
      if (peers[i] == asn) return static_cast<std::uint16_t>(i);
    }
    peers.push_back(asn);
    return static_cast<std::uint16_t>(peers.size() - 1);
  };
  struct Indexed {
    std::uint16_t peer;
    const RibEntryRecord* rec;
  };
  std::vector<Indexed> indexed;
  indexed.reserve(entries.size());
  for (const auto& e : entries) indexed.push_back({peer_index(e.peer_asn), &e});

  ByteWriter out;
  // PEER_INDEX_TABLE
  {
    ByteWriter body;
    body.u32(0);  // collector BGP ID
    body.u16(0);  // view name length (empty)
    body.u16(static_cast<std::uint16_t>(peers.size()));
    for (const auto asn : peers) {
      body.u8(0x02);  // peer type: AS4, IPv4
      body.u32(0);    // peer BGP ID
      body.u32(0);    // peer IP (not modeled)
      body.u32(asn);
    }
    write_raw_record(out, RecordType::kTableDumpV2,
                     static_cast<std::uint16_t>(TableDumpV2Subtype::kPeerIndexTable),
                     snapshot_time, body.data());
  }
  // One RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record per run of
  // consecutive same-prefix entries — the real collector shape (one
  // record per prefix carrying one entry per peer), which is also what
  // makes RIB decode fast: the prefix parses once per record. Sequence
  // numbers increase across both families, matching collector output.
  std::uint32_t sequence = 0;
  for (std::size_t i = 0; i < indexed.size();) {
    const net::Prefix& prefix = indexed[i].rec->route.prefix;
    std::size_t run_end = i + 1;
    while (run_end < indexed.size() &&
           indexed[run_end].rec->route.prefix == prefix) {
      ++run_end;
    }
    ByteWriter body;
    body.u32(sequence++);
    write_nlri_prefix(body, prefix);
    body.u16(static_cast<std::uint16_t>(run_end - i));  // entry count
    for (std::size_t k = i; k < run_end; ++k) {
      const auto& ix = indexed[k];
      body.u16(ix.peer);
      body.u32(static_cast<std::uint32_t>(ix.rec->timestamp.as_micros() / 1'000'000));
      const std::size_t attr_slot = body.reserve_u16();
      const std::size_t attr_start = body.size();
      encode_path_attributes(body, ix.rec->route.attrs);
      body.patch_u16(attr_slot, static_cast<std::uint16_t>(body.size() - attr_start));
    }
    const auto subtype = prefix.is_v4() ? TableDumpV2Subtype::kRibIpv4Unicast
                                        : TableDumpV2Subtype::kRibIpv6Unicast;
    write_raw_record(out, RecordType::kTableDumpV2, static_cast<std::uint16_t>(subtype),
                     snapshot_time, body.data());
    i = run_end;
  }
  return out.take();
}

}  // namespace artemis::mrt

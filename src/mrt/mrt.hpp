// MRT (RFC 6396) record encoding/decoding.
//
// Legacy pipelines the paper compares against (RouteViews / RIPE RIS
// archives) ship BGP data as MRT files: BGP4MP_ET message records for
// updates and TABLE_DUMP_V2 records for RIB snapshots. This module
// implements the subset the reproduction needs, byte-compatible with the
// RFC for that subset:
//   * BGP4MP_ET / BGP4MP_MESSAGE_AS4 carrying a BGP UPDATE (IPv4 unicast
//     NLRI; attributes ORIGIN, AS_PATH, NEXT_HOP, MED, LOCAL_PREF,
//     COMMUNITY, and MP_REACH_NLRI / MP_UNREACH_NLRI (RFC 4760) for the
//     IPv6 unicast NLRI real dual-stack collectors emit, plus SAFI 128
//     labeled-VPN NLRI (RFC 8277) whose label stack and route
//     distinguisher are stripped back to the bare prefix)
//   * TABLE_DUMP_V2 / RIB_IPV4_UNICAST + RIB_IPV6_UNICAST with an inline
//     peer index
// The BatchFeed uses these files verbatim; bench_micro measures codec
// throughput.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/update.hpp"
#include "mrt/bytes.hpp"
#include "util/time.hpp"

namespace artemis::mrt {

/// MRT header "Type" values (RFC 6396 §4).
enum class RecordType : std::uint16_t {
  kTableDumpV2 = 13,
  kBgp4mp = 16,
  kBgp4mpEt = 17,  ///< extended timestamp (adds microseconds)
};

/// Subtypes used by this implementation.
enum class Bgp4mpSubtype : std::uint16_t {
  kMessage = 1,     ///< 2-byte ASNs on the wire (pre-RFC 6793 speakers)
  kMessageAs4 = 4,  ///< 4-byte ASNs throughout
};
enum class TableDumpV2Subtype : std::uint16_t {
  kPeerIndexTable = 1,
  kRibIpv4Unicast = 2,
  kRibIpv6Unicast = 4,
};

/// AS_TRANS (RFC 6793 §9): the 2-byte stand-in a pre-AS4 speaker writes
/// into AS_PATH for any ASN that does not fit 16 bits; the true path
/// travels in the optional-transitive AS4_PATH attribute.
inline constexpr bgp::Asn kAsTrans = 23456;

/// Thrown for record shapes this implementation recognizes but does not
/// model (an AS_SET path segment, an MP AFI/SAFI other than v4/v6
/// unicast or labeled VPN). Derives from DecodeError so legacy callers keep their
/// fail-the-stream behavior; the streaming importer catches it first and
/// skips just the offending record (ConvertFileStats::skipped_records).
class UnsupportedRecord : public DecodeError {
 public:
  explicit UnsupportedRecord(const std::string& what) : DecodeError(what) {}
};

/// A decoded MRT record header plus raw body.
struct RawRecord {
  SimTime timestamp;  ///< seconds + (for *_ET) microseconds
  std::uint16_t type = 0;
  std::uint16_t subtype = 0;
  std::vector<std::uint8_t> body;
};

/// A BGP4MP update record: who exchanged the message and the message.
struct UpdateRecord {
  bgp::Asn peer_asn = bgp::kNoAsn;   ///< the router that sent the update
  bgp::Asn local_asn = bgp::kNoAsn;  ///< the collector side
  net::IpAddress peer_ip;
  SimTime timestamp;
  bgp::UpdateMessage update;
};

/// One RIB entry of a TABLE_DUMP_V2 snapshot.
struct RibEntryRecord {
  bgp::Asn peer_asn = bgp::kNoAsn;
  SimTime timestamp;  ///< originated time of the entry
  bgp::Route route;
};

/// Fixture-encoder knobs for the wire shapes real archives contain.
struct UpdateEncodeOptions {
  /// MP_REACH_NLRI next-hop length for IPv6 NLRI: 16 (global only) or 32
  /// (global + link-local, the shape most RIS peers emit).
  int mp_next_hop_len = 16;
  /// Write the AS_PATH as a single AS_SET segment (the aggregate shape
  /// this implementation recognizes but does not model — decoding it
  /// throws UnsupportedRecord). AS4_PATH emission is suppressed.
  bool as_set_path = false;
  /// Encode the MP attributes as SAFI 128 labeled VPN (RFC 4364 /
  /// RFC 8277): each NLRI gains a one-entry label stack (bottom-of-stack
  /// set; MP_UNREACH uses the 0x800000 withdraw-compat value) and a zero
  /// route distinguisher, and the next hop grows the 8-byte RD prefix
  /// VPN speakers write. Decode strips all of it back to the bare prefix.
  bool mp_labeled_vpn = false;
  /// The 20-bit MPLS label announced NLRI carry with mp_labeled_vpn.
  std::uint32_t mp_vpn_label = 1000;
};

/// Encodes one BGP4MP_ET/MESSAGE_AS4 record (header + body). IPv4
/// prefixes in `update.announced`/`withdrawn` travel in the classic
/// NLRI / WITHDRAWN fields; IPv6 prefixes travel in MP_REACH_NLRI /
/// MP_UNREACH_NLRI path attributes (RFC 4760), exactly as dual-stack
/// collectors record them. A v6-withdraw-only update encodes a lone
/// MP_UNREACH attribute and nothing else, the real withdraw shape.
std::vector<std::uint8_t> encode_update_record(const UpdateRecord& rec,
                                               const UpdateEncodeOptions& options = {});

/// Encodes one BGP4MP_ET/MESSAGE record as a pre-AS4 speaker would:
/// 2-byte header ASNs and 2-byte AS_PATH hops with AS_TRANS substituted
/// for wide ASNs, plus an AS4_PATH attribute carrying the true path when
/// any hop needs it. Archived RouteViews windows predating AS4 adoption
/// are full of this shape; the importer's merge test feeds on it.
std::vector<std::uint8_t> encode_update_record_as2(const UpdateRecord& rec,
                                                   const UpdateEncodeOptions& options = {});

/// Fixture encoder: a complete, well-framed BGP4MP_ET/MESSAGE_AS4 record
/// whose AS_PATH is a single AS_SET segment (the aggregate shape this
/// implementation recognizes but does not model) — shorthand for
/// encode_update_record with UpdateEncodeOptions::as_set_path. The
/// importer's record-skip tests and the golden determinism fixture both
/// feed on it — decoding it throws UnsupportedRecord.
std::vector<std::uint8_t> encode_update_record_as_set(const UpdateRecord& rec);

/// Decodes the body of a BGP4MP_ET/MESSAGE or MESSAGE_AS4 record
/// (2-byte AS_PATHs are AS4_PATH-merged per RFC 6793 §4.2.3).
UpdateRecord decode_update_record(const RawRecord& raw);

/// Encodes a full TABLE_DUMP_V2 snapshot: one PEER_INDEX_TABLE record
/// followed by one RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record per entry
/// (subtype chosen by each prefix's family). `snapshot_time` is stamped
/// on every record.
std::vector<std::uint8_t> encode_table_dump(const std::vector<RibEntryRecord>& entries,
                                            SimTime snapshot_time);

/// Reads the next raw record off a byte stream; nullopt at clean EOF,
/// DecodeError on a truncated record.
std::optional<RawRecord> read_raw_record(ByteReader& reader);

/// Writes the MRT common header followed by `body`.
void write_raw_record(ByteWriter& writer, RecordType type, std::uint16_t subtype,
                      SimTime timestamp, std::span<const std::uint8_t> body);

/// Encodes just the BGP UPDATE wire message (RFC 4271 §4.3), without the
/// MRT envelope. Exposed for tests and for the codec microbenchmarks.
std::vector<std::uint8_t> encode_bgp_update(const bgp::UpdateMessage& update,
                                            const UpdateEncodeOptions& options = {});
/// Decodes a BGP UPDATE. MP_REACH/MP_UNREACH NLRI are appended to
/// `announced`/`withdrawn` after the classic v4 fields, so a decoded
/// update carries its v4 prefixes first and its v6 prefixes second.
bgp::UpdateMessage decode_bgp_update(ByteReader& reader, bgp::Asn sender,
                                     bool two_byte_as_path = false);

/// Path-attribute codec shared by UPDATE bodies and TABLE_DUMP_V2 RIB
/// entries (both use the RFC 4271 attribute encoding).
void encode_path_attributes(ByteWriter& writer, const bgp::PathAttributes& attrs);
bgp::PathAttributes decode_path_attributes(ByteReader& attrs_reader);

/// NLRI prefix codec (RFC 4271 §4.3 <length, prefix> tuples), shared by
/// UPDATE bodies, TABLE_DUMP_V2 RIB records and the streaming importer.
void write_nlri_prefix(ByteWriter& writer, const net::Prefix& prefix);
net::Prefix read_nlri_prefix(ByteReader& reader, net::IpFamily family);

/// Caller-owned staging area for multiprotocol NLRI (RFC 4760): prefixes
/// carried in MP_REACH_NLRI / MP_UNREACH_NLRI attributes land here during
/// decode_path_attributes_into, reusing capacity across records.
struct MpNlriScratch {
  std::vector<net::Prefix> announced;
  std::vector<net::Prefix> withdrawn;

  void clear() {
    announced.clear();
    withdrawn.clear();
  }
};

/// Allocation-reusing decode: fills `out` in place (clearing it first)
/// and stages AS hops in the caller-owned scratch vectors, so a warmed-up
/// import loop touches no heap. With `two_byte_as_path` the mandatory
/// AS_PATH is read as 16-bit hops and, when an AS4_PATH attribute is
/// present, the two are merged per RFC 6793 §4.2.3: the AS4_PATH rewrites
/// the tail of the AS_PATH, excess leading (oldest-speaker) hops survive,
/// and an over-long AS4_PATH is ignored entirely.
///
/// With `mp` non-null, MP_REACH/MP_UNREACH NLRI (cleared first) decode
/// into it — v4 and v6 unicast AFIs, 16- and 32-byte v6 next hops; any
/// other AFI/SAFI throws UnsupportedRecord. With `mp` null the MP
/// attributes are skipped whole, which is exactly right for TABLE_DUMP_V2
/// RIB entries (RFC 6396 abbreviates MP_REACH there to a bare next hop).
void decode_path_attributes_into(ByteReader& attrs_reader, bgp::PathAttributes& out,
                                 bool two_byte_as_path,
                                 std::vector<bgp::Asn>& hops_scratch,
                                 std::vector<bgp::Asn>& as4_scratch,
                                 MpNlriScratch* mp = nullptr);

}  // namespace artemis::mrt

// MRT (RFC 6396) record encoding/decoding.
//
// Legacy pipelines the paper compares against (RouteViews / RIPE RIS
// archives) ship BGP data as MRT files: BGP4MP_ET message records for
// updates and TABLE_DUMP_V2 records for RIB snapshots. This module
// implements the subset the reproduction needs, byte-compatible with the
// RFC for that subset:
//   * BGP4MP_ET / BGP4MP_MESSAGE_AS4 carrying a BGP UPDATE (IPv4 unicast
//     NLRI; attributes ORIGIN, AS_PATH, NEXT_HOP, MED, LOCAL_PREF,
//     COMMUNITY)
//   * TABLE_DUMP_V2 / RIB_IPV4_UNICAST with an inline peer index
// The BatchFeed uses these files verbatim; bench_micro measures codec
// throughput.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/update.hpp"
#include "mrt/bytes.hpp"
#include "util/time.hpp"

namespace artemis::mrt {

/// MRT header "Type" values (RFC 6396 §4).
enum class RecordType : std::uint16_t {
  kTableDumpV2 = 13,
  kBgp4mp = 16,
  kBgp4mpEt = 17,  ///< extended timestamp (adds microseconds)
};

/// Subtypes used by this implementation.
enum class Bgp4mpSubtype : std::uint16_t { kMessageAs4 = 4 };
enum class TableDumpV2Subtype : std::uint16_t {
  kPeerIndexTable = 1,
  kRibIpv4Unicast = 2,
};

/// A decoded MRT record header plus raw body.
struct RawRecord {
  SimTime timestamp;  ///< seconds + (for *_ET) microseconds
  std::uint16_t type = 0;
  std::uint16_t subtype = 0;
  std::vector<std::uint8_t> body;
};

/// A BGP4MP update record: who exchanged the message and the message.
struct UpdateRecord {
  bgp::Asn peer_asn = bgp::kNoAsn;   ///< the router that sent the update
  bgp::Asn local_asn = bgp::kNoAsn;  ///< the collector side
  net::IpAddress peer_ip;
  SimTime timestamp;
  bgp::UpdateMessage update;
};

/// One RIB entry of a TABLE_DUMP_V2 snapshot.
struct RibEntryRecord {
  bgp::Asn peer_asn = bgp::kNoAsn;
  SimTime timestamp;  ///< originated time of the entry
  bgp::Route route;
};

/// Encodes one BGP4MP_ET/MESSAGE_AS4 record (header + body).
std::vector<std::uint8_t> encode_update_record(const UpdateRecord& rec);

/// Decodes the body of a BGP4MP_ET/MESSAGE_AS4 record.
UpdateRecord decode_update_record(const RawRecord& raw);

/// Encodes a full TABLE_DUMP_V2 snapshot: one PEER_INDEX_TABLE record
/// followed by one RIB_IPV4_UNICAST record per prefix. `snapshot_time` is
/// stamped on every record.
std::vector<std::uint8_t> encode_table_dump(const std::vector<RibEntryRecord>& entries,
                                            SimTime snapshot_time);

/// Reads the next raw record off a byte stream; nullopt at clean EOF,
/// DecodeError on a truncated record.
std::optional<RawRecord> read_raw_record(ByteReader& reader);

/// Writes the MRT common header followed by `body`.
void write_raw_record(ByteWriter& writer, RecordType type, std::uint16_t subtype,
                      SimTime timestamp, std::span<const std::uint8_t> body);

/// Encodes just the BGP UPDATE wire message (RFC 4271 §4.3), without the
/// MRT envelope. Exposed for tests and for the codec microbenchmarks.
std::vector<std::uint8_t> encode_bgp_update(const bgp::UpdateMessage& update);
bgp::UpdateMessage decode_bgp_update(ByteReader& reader, bgp::Asn sender);

/// Path-attribute codec shared by UPDATE bodies and TABLE_DUMP_V2 RIB
/// entries (both use the RFC 4271 attribute encoding).
void encode_path_attributes(ByteWriter& writer, const bgp::PathAttributes& attrs);
bgp::PathAttributes decode_path_attributes(ByteReader& attrs_reader);

}  // namespace artemis::mrt

#include "mrt/observation_convert.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "mrt/stream_reader.hpp"

namespace artemis::mrt {
namespace {

constexpr std::uint8_t kBgpMsgUpdate = 2;

/// Sanity cap on one MRT record (header + body). Real records top out in
/// the hundreds of KB (a grouped RIB record); a length field beyond this
/// is corruption, and bounding it keeps the chunk-boundary carry buffer
/// from ballooning on garbage input.
constexpr std::uint64_t kMaxRecordBytes = 64ull * 1024 * 1024;

/// Read-only view of one input file: mmap'd when possible (a full RIB
/// snapshot is gigabytes — the converter only ever looks at one record,
/// so the page cache streams it through in O(1) resident memory), plain
/// read fallback for filesystems without mmap.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw std::runtime_error("cannot open MRT file: " + path);
    struct ::stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      throw std::runtime_error("cannot stat MRT file: " + path);
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
      void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (p != MAP_FAILED) {
        data_ = static_cast<const std::uint8_t*>(p);
        mapped_ = true;
        // The importer walks strictly forward.
        ::madvise(p, size_, MADV_SEQUENTIAL);
      } else {
        owned_.resize(size_);
        std::size_t off = 0;
        while (off < size_) {
          const ::ssize_t n = ::read(fd, owned_.data() + off, size_ - off);
          if (n <= 0) {
            ::close(fd);
            throw std::runtime_error("cannot read MRT file: " + path);
          }
          off += static_cast<std::size_t>(n);
        }
        data_ = owned_.data();
      }
    }
    ::close(fd);
  }

  ~MappedFile() {
    if (mapped_) ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const std::uint8_t> view() const { return {data_, size_}; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::uint8_t> owned_;
};

std::uint16_t be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

}  // namespace

ObservationConverter::ObservationConverter(ObservationConvertOptions options)
    : options_(std::move(options)) {
  batch_.reserve(options_.batch_capacity);
}

const std::string& ObservationConverter::source_for(bgp::Asn peer) {
  if (options_.source_scheme == ImportSourceScheme::kSingle) {
    return options_.source_prefix;
  }
  const auto it = std::lower_bound(
      sources_.begin(), sources_.end(), peer,
      [](const PeerSource& s, bgp::Asn p) { return s.peer < p; });
  if (it != sources_.end() && it->peer == peer) return it->name;
  PeerSource entry;
  entry.peer = peer;
  entry.name = options_.source_prefix + ":AS" + std::to_string(peer);
  return sources_.insert(it, std::move(entry))->name;
}

feeds::Observation& ObservationConverter::slot(feeds::ObservationType type,
                                               bgp::Asn peer, std::int64_t event_us) {
  feeds::Observation& obs = batch_.emplace_back();
  obs.type = type;
  obs.source = source_for(peer);  // copy-assign into recycled capacity
  obs.vantage = peer;
  obs.event_time = SimTime::at_micros(event_us);
  obs.delivered_at = SimTime::at_micros(event_us + options_.delivery_lag.as_micros());
  return obs;
}

void ObservationConverter::flush(const feeds::ObservationBatchHandler& sink) {
  if (batch_.empty()) return;
  sink(batch_.view());
  emitted_ += batch_.size();
  batch_.clear();
}

void ObservationConverter::convert_bgp4mp(ByteReader body, bool as4,
                                          std::int64_t event_us) {
  const bgp::Asn peer = as4 ? body.u32() : body.u16();
  if (as4) {
    body.u32();  // local ASN
  } else {
    body.u16();
  }
  body.u16();  // interface index
  const std::uint16_t afi = body.u16();
  if (afi != 1 && afi != 2) throw DecodeError("bad BGP4MP address family");
  const std::size_t addr_len = afi == 1 ? 4 : 16;
  body.bytes(addr_len);  // peer IP
  body.bytes(addr_len);  // local IP

  for (int i = 0; i < 16; ++i) {
    if (body.u8() != 0xFF) throw DecodeError("bad BGP marker");
  }
  const std::uint16_t total_len = body.u16();
  if (total_len < 19) throw DecodeError("BGP message too short");
  const std::uint8_t msg_type = body.u8();
  ByteReader msg = body.sub(static_cast<std::size_t>(total_len) - 19);
  // Real archives interleave OPENs/KEEPALIVEs with UPDATEs; only UPDATEs
  // carry elems.
  if (msg_type != kBgpMsgUpdate) return;

  withdrawn_scratch_.clear();
  ByteReader withdrawn = msg.sub(msg.u16());
  while (!withdrawn.done()) {
    withdrawn_scratch_.push_back(read_nlri_prefix(withdrawn, net::IpFamily::kIpv4));
  }
  ByteReader attrs = msg.sub(msg.u16());
  if (attrs.remaining() > 0) {
    decode_path_attributes_into(attrs, scratch_attrs_, /*two_byte_as_path=*/!as4,
                                hops_scratch_, as4_scratch_, &mp_scratch_);
  } else {
    scratch_attrs_.reset();
    mp_scratch_.clear();
  }
  // Announcements before withdrawals within a record, v4 (classic fields)
  // before v6 (MP attributes) within each — the ElemReader /
  // libBGPStream order the equivalence tests rely on.
  while (!msg.done()) {
    const net::Prefix prefix = read_nlri_prefix(msg, net::IpFamily::kIpv4);
    feeds::Observation& obs = slot(feeds::ObservationType::kAnnouncement, peer, event_us);
    obs.prefix = prefix;
    obs.attrs = scratch_attrs_;
  }
  for (const auto& prefix : mp_scratch_.announced) {
    feeds::Observation& obs = slot(feeds::ObservationType::kAnnouncement, peer, event_us);
    obs.prefix = prefix;
    obs.attrs = scratch_attrs_;
  }
  for (const auto& prefix : withdrawn_scratch_) {
    feeds::Observation& obs = slot(feeds::ObservationType::kWithdrawal, peer, event_us);
    obs.prefix = prefix;
    obs.attrs.reset();
  }
  for (const auto& prefix : mp_scratch_.withdrawn) {
    feeds::Observation& obs = slot(feeds::ObservationType::kWithdrawal, peer, event_us);
    obs.prefix = prefix;
    obs.attrs.reset();
  }
}

void ObservationConverter::convert_peer_index(ByteReader body) {
  body.u32();  // collector BGP ID
  const std::uint16_t name_len = body.u16();
  body.bytes(name_len);  // view name
  const std::uint16_t count = body.u16();
  peer_table_.clear();
  peer_table_.reserve(count);
  for (int i = 0; i < count; ++i) {
    const std::uint8_t peer_type = body.u8();
    body.u32();  // peer BGP ID
    body.bytes((peer_type & 0x01) != 0 ? 16 : 4);  // peer IP
    peer_table_.push_back((peer_type & 0x02) != 0 ? body.u32() : body.u16());
  }
}

void ObservationConverter::convert_rib(ByteReader body, net::IpFamily family,
                                       std::int64_t event_us) {
  body.u32();  // sequence
  const net::Prefix prefix = read_nlri_prefix(body, family);
  const std::uint16_t entry_count = body.u16();
  for (int i = 0; i < entry_count; ++i) {
    const std::uint16_t peer_index = body.u16();
    if (peer_index >= peer_table_.size()) {
      throw DecodeError("RIB entry references unknown peer");
    }
    body.u32();  // originated time (the import clock uses the record header)
    ByteReader attrs = body.sub(body.u16());
    decode_path_attributes_into(attrs, scratch_attrs_, /*two_byte_as_path=*/false,
                                hops_scratch_, as4_scratch_);
    feeds::Observation& obs =
        slot(feeds::ObservationType::kRouteState, peer_table_[peer_index], event_us);
    obs.prefix = prefix;
    obs.attrs = scratch_attrs_;
  }
}

bool ObservationConverter::process_record(const std::uint8_t* p, std::size_t total,
                                          const feeds::ObservationBatchHandler& sink) {
  // MRT common header: u32 seconds, u16 type, u16 subtype, u32 length.
  const std::uint32_t seconds = be32(p);
  const std::uint16_t type = be16(p + 4);
  const std::uint16_t subtype = be16(p + 6);
  std::size_t body_off = 12;
  std::size_t length = total - 12;
  std::int64_t ts_us = static_cast<std::int64_t>(seconds) * 1'000'000;
  if (type == static_cast<std::uint16_t>(RecordType::kBgp4mpEt)) {
    if (length < 4) {
      file_stats_.error = "ET record too short";
      stopped_ = true;
      return false;
    }
    ts_us += be32(p + 12);
    body_off = 16;
    length -= 4;
  }
  // Monotone import clock: archives interleave collector shards whose
  // headers can step backwards; clamp so event_time never regresses.
  const std::int64_t event_us = std::max(clock_us_, ts_us);

  ByteReader body({p + body_off, length});
  const std::size_t mark = batch_.size();
  try {
    if (type == static_cast<std::uint16_t>(RecordType::kBgp4mp) ||
        type == static_cast<std::uint16_t>(RecordType::kBgp4mpEt)) {
      if (subtype == static_cast<std::uint16_t>(Bgp4mpSubtype::kMessageAs4)) {
        convert_bgp4mp(body, /*as4=*/true, event_us);
      } else if (subtype == static_cast<std::uint16_t>(Bgp4mpSubtype::kMessage)) {
        convert_bgp4mp(body, /*as4=*/false, event_us);
      }
      // Other BGP4MP subtypes (state changes) carry no elems.
    } else if (type == static_cast<std::uint16_t>(RecordType::kTableDumpV2)) {
      if (subtype == static_cast<std::uint16_t>(TableDumpV2Subtype::kPeerIndexTable)) {
        convert_peer_index(body);
      } else if (subtype ==
                 static_cast<std::uint16_t>(TableDumpV2Subtype::kRibIpv4Unicast)) {
        convert_rib(body, net::IpFamily::kIpv4, event_us);
      } else if (subtype ==
                 static_cast<std::uint16_t>(TableDumpV2Subtype::kRibIpv6Unicast)) {
        convert_rib(body, net::IpFamily::kIpv6, event_us);
      }
      // Unknown TABLE_DUMP_V2 subtypes are skipped.
    }
    // Unknown record types are skipped (forward compatibility).
  } catch (const UnsupportedRecord&) {
    // A shape we recognize but do not model (AS_SET, exotic AFI/SAFI):
    // drop the record's partially-staged observations and keep going at
    // the next record boundary — the rest of the window is good data.
    while (batch_.size() > mark) batch_.pop_back();
    file_stats_.skipped_records += 1;
    file_stats_.bytes_consumed += total;
    clock_us_ = event_us;
    return true;
  } catch (const DecodeError& e) {
    // Malformed interior record: drop its partially-staged observations
    // so every emitted batch ends on a record boundary, and stop the
    // file cleanly at the previous record.
    while (batch_.size() > mark) batch_.pop_back();
    file_stats_.error = e.what();
    stopped_ = true;
    return false;
  }
  clock_us_ = event_us;
  file_stats_.records += 1;
  file_stats_.observations += batch_.size() - mark;
  file_stats_.bytes_consumed += total;
  if (batch_.size() >= options_.batch_capacity) flush(sink);
  return true;
}

void ObservationConverter::begin_file() {
  file_stats_ = ConvertFileStats{};
  carry_.clear();
  stopped_ = false;
  peer_table_.clear();  // the peer index never spans files
}

void ObservationConverter::feed(std::span<const std::uint8_t> chunk,
                                const feeds::ObservationBatchHandler& sink) {
  std::size_t pos = 0;
  const std::size_t size = chunk.size();
  while (pos < size && !stopped_) {
    if (!carry_.empty()) {
      // A record is straddling chunk boundaries: grow the carry to the
      // header, learn the record length, then to the full record.
      if (carry_.size() < 12) {
        const std::size_t take = std::min<std::size_t>(12 - carry_.size(), size - pos);
        carry_.insert(carry_.end(), chunk.begin() + static_cast<std::ptrdiff_t>(pos),
                      chunk.begin() + static_cast<std::ptrdiff_t>(pos + take));
        pos += take;
        if (carry_.size() < 12) return;  // chunk exhausted mid-header
      }
      const std::uint64_t total = 12 + static_cast<std::uint64_t>(be32(&carry_[8]));
      if (total > kMaxRecordBytes) {
        file_stats_.error = "oversized MRT record";
        stopped_ = true;
        return;
      }
      const std::size_t take =
          std::min<std::size_t>(static_cast<std::size_t>(total) - carry_.size(),
                                size - pos);
      carry_.insert(carry_.end(), chunk.begin() + static_cast<std::ptrdiff_t>(pos),
                    chunk.begin() + static_cast<std::ptrdiff_t>(pos + take));
      pos += take;
      if (carry_.size() < total) return;  // still incomplete
      process_record(carry_.data(), static_cast<std::size_t>(total), sink);
      carry_.clear();
      continue;
    }
    // Fast path: complete records converted in place, zero copy.
    if (size - pos < 12) break;
    const std::uint64_t total = 12 + static_cast<std::uint64_t>(be32(&chunk[pos + 8]));
    if (total > kMaxRecordBytes) {
      file_stats_.error = "oversized MRT record";
      stopped_ = true;
      return;
    }
    if (size - pos < total) break;
    if (!process_record(&chunk[pos], static_cast<std::size_t>(total), sink)) return;
    pos += static_cast<std::size_t>(total);
  }
  if (!stopped_ && pos < size) {
    carry_.assign(chunk.begin() + static_cast<std::ptrdiff_t>(pos), chunk.end());
  }
}

ConvertFileStats ObservationConverter::finish_file(
    const feeds::ObservationBatchHandler& sink) {
  if (!stopped_ && !carry_.empty()) file_stats_.truncated = true;
  carry_.clear();
  stopped_ = false;
  flush(sink);
  return file_stats_;
}

ConvertFileStats ObservationConverter::convert_file(
    std::span<const std::uint8_t> data, const feeds::ObservationBatchHandler& sink) {
  begin_file();
  feed(data, sink);
  return finish_file(sink);
}

MrtImportResult import_mrt_files(std::span<const std::string> paths,
                                 const std::string& journal_dir,
                                 const ObservationConvertOptions& options,
                                 const journal::JournalWriterOptions& writer_options) {
  MrtImportResult result;
  journal::JournalWriter writer(journal_dir, writer_options);
  ObservationConverter converter(options);
  const feeds::ObservationBatchHandler sink = writer.tap();
  for (const auto& path : paths) {
    ConvertFileStats stats;
    std::string transport_error;
    const MappedFile file(path);
    const Compression compression = sniff_compression(file.view());
    if (compression == Compression::kNone) {
      // Uncompressed: one zero-copy pass over the mmap'd file.
      stats = converter.convert_file(file.view(), sink);
    } else {
      // Compressed transport: stream decompressed chunks through the
      // converter — no temp file, O(chunk) resident memory. A torn or
      // corrupt compressed stream imports everything recovered before
      // the tear and counts as a truncated file. The sniff above is
      // reused, so the codec re-opens the path exactly once.
      const auto in = open_input(path, compression);
      std::vector<std::uint8_t> buf(1 << 20);
      converter.begin_file();
      for (;;) {
        const std::size_t n = in->read(buf);
        if (n == 0) break;
        converter.feed({buf.data(), n}, sink);
      }
      stats = converter.finish_file(sink);
      if (in->truncated() && stats.error.empty()) {
        stats.truncated = true;
        transport_error = in->error();
      }
    }
    result.records += stats.records;
    result.skipped_records += stats.skipped_records;
    result.observations += stats.observations;
    result.mrt_bytes += stats.bytes_consumed;
    if (stats.clean()) {
      result.files += 1;
    } else if (stats.truncated) {
      result.truncated_files += 1;
      std::string message = path + ": truncated mid-record (" +
                            std::to_string(stats.records) +
                            " complete records imported)";
      if (!transport_error.empty()) message += "; " + transport_error;
      result.file_errors.push_back(std::move(message));
    } else {
      result.failed_files += 1;
      result.file_errors.push_back(path + ": " + stats.error);
    }
    if (stats.skipped_records > 0) {
      result.file_errors.push_back(path + ": skipped " +
                                   std::to_string(stats.skipped_records) +
                                   " unsupported record(s)");
    }
  }
  writer.close();
  result.journal_bytes = writer.bytes_written();
  result.segments = writer.segments_opened();
  return result;
}

json::Value import_result_to_json(const std::string& journal_dir,
                                  const MrtImportResult& result) {
  json::Object out;
  out["journal_dir"] = json::Value(journal_dir);
  out["files"] = json::Value(static_cast<std::int64_t>(result.files));
  out["truncated_files"] = json::Value(static_cast<std::int64_t>(result.truncated_files));
  out["failed_files"] = json::Value(static_cast<std::int64_t>(result.failed_files));
  out["records"] = json::Value(static_cast<std::int64_t>(result.records));
  out["skipped_records"] =
      json::Value(static_cast<std::int64_t>(result.skipped_records));
  out["observations"] = json::Value(static_cast<std::int64_t>(result.observations));
  out["mrt_bytes"] = json::Value(static_cast<std::int64_t>(result.mrt_bytes));
  out["journal_bytes"] = json::Value(static_cast<std::int64_t>(result.journal_bytes));
  out["segments"] = json::Value(static_cast<std::int64_t>(result.segments));
  return json::Value(std::move(out));
}

}  // namespace artemis::mrt

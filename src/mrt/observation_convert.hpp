// Streaming MRT -> Observation conversion: the archive import hot path.
//
// Archived control-plane history (RouteViews / RIPE RIS windows) arrives
// as MRT files; replaying it through ARTEMIS at line rate needs a
// decoder that does NOT materialize intermediate vectors per record the
// way ElemReader does. ObservationConverter walks one MRT byte stream
// record by record, decodes BGP4MP updates (2- and 4-byte AS flavors,
// AS4_PATH merged) and TABLE_DUMP_V2 RIB snapshots (IPv4 + IPv6)
// directly into recycled slots of an internal ObservationBatch, and
// hands full batches to any ObservationBatchHandler — a JournalWriter
// tap, a MonitorHub inlet, a bare ShardedDetector. Steady state (sources
// interned, batch and scratch buffers at their high-water capacity) the
// converter performs zero heap allocations per record
// (tests/detection_alloc_test.cpp enforces this through the writer tap).
//
// Timestamps are synthesized monotone: MRT header timestamps drive a
// non-decreasing import clock (archives interleave collector shards, so
// raw headers can step backwards), `event_time` is the clamped header
// time and `delivered_at` trails it by a configurable lag. The clock
// persists across files, so a multi-file window imports as one
// contiguous, monotone history.
//
// Truncation contract: a file that ends mid-record (the classic
// interrupted-download shape) converts every complete record before the
// tear and reports `truncated` instead of throwing; a malformed interior
// record stops the file at the previous record boundary and reports
// `error`. Either way every emitted batch ends on a record boundary, so
// an importer feeding a JournalWriter always leaves a clean, readable
// journal — never a torn segment.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "feeds/observation.hpp"
#include "journal/writer.hpp"
#include "json/json.hpp"
#include "mrt/mrt.hpp"
#include "pipeline/observation_batch.hpp"

namespace artemis::mrt {

enum class ImportSourceScheme : std::uint8_t {
  /// One interned source per collector peer: "<prefix>:AS<peer-asn>".
  /// Per-source stats and detection first-seen times then resolve per
  /// vantage session, like a live multi-feed deployment.
  kPerCollectorPeer,
  /// Every observation carries "<prefix>" verbatim (one merged source).
  kSingle,
};

struct ObservationConvertOptions {
  std::string source_prefix = "mrt";
  ImportSourceScheme source_scheme = ImportSourceScheme::kPerCollectorPeer;
  /// delivered_at = event_time + delivery_lag. Archive imports default to
  /// zero lag: the journal then replays at recorded event pacing.
  SimDuration delivery_lag = SimDuration::seconds(0);
  /// Emit threshold: batches flush to the sink once they reach this many
  /// observations (always at a record boundary, so the last batch of a
  /// file may be short and a huge record may overshoot).
  std::size_t batch_capacity = 4096;
};

struct ConvertFileStats {
  std::uint64_t records = 0;       ///< complete MRT records converted
  std::uint64_t observations = 0;  ///< observations emitted for this file
  std::uint64_t bytes_consumed = 0;  ///< bytes of complete records
  /// Complete records skipped whole for shapes we recognize but do not
  /// model (AS_SET path segments, exotic MP AFI/SAFIs). The file keeps
  /// converting at the next record — real archives sprinkle a handful of
  /// AS_SET updates through an otherwise clean window.
  std::uint64_t skipped_records = 0;
  bool truncated = false;  ///< file ended mid-record (clean partial stop)
  std::string error;       ///< non-empty: malformed record stopped the file

  bool clean() const { return !truncated && error.empty(); }
};

class ObservationConverter {
 public:
  explicit ObservationConverter(ObservationConvertOptions options = {});

  ObservationConverter(const ObservationConverter&) = delete;
  ObservationConverter& operator=(const ObservationConverter&) = delete;

  /// Streams one MRT file's bytes into `sink` (called once per full
  /// batch, plus once for the final partial batch). Cross-file state —
  /// the monotone import clock, the interned source table — persists;
  /// the TABLE_DUMP_V2 peer index resets per file, as the format
  /// requires. Never throws on truncated input (see ConvertFileStats).
  /// Equivalent to begin_file() + feed(data) + finish_file().
  ConvertFileStats convert_file(std::span<const std::uint8_t> data,
                                const feeds::ObservationBatchHandler& sink);

  /// Chunked variant for sources that cannot hand over one contiguous
  /// span — a streaming gzip/bz2 decompressor most of all. Records may
  /// straddle chunk boundaries arbitrarily: complete records convert
  /// in place (zero copy), the partial tail is carried into the next
  /// feed(). The truncation contract is per *file*: finish_file()
  /// reports a leftover partial record as `truncated`. After a hard
  /// decode error the rest of the file is swallowed cheaply.
  void begin_file();
  void feed(std::span<const std::uint8_t> chunk,
            const feeds::ObservationBatchHandler& sink);
  ConvertFileStats finish_file(const feeds::ObservationBatchHandler& sink);

  std::uint64_t observations_emitted() const { return emitted_; }
  std::size_t source_table_size() const { return sources_.size(); }
  /// Current value of the monotone import clock (microseconds).
  std::int64_t clock_us() const { return clock_us_; }
  /// Restores the import clock from a persisted ingest cursor, so a
  /// supervisor restarted mid-window clamps timestamps exactly as the
  /// uninterrupted run would have. Ratchets: the clock never goes back.
  void restore_clock(std::int64_t clock_us) {
    if (clock_us > clock_us_) clock_us_ = clock_us;
  }

 private:
  struct PeerSource {
    bgp::Asn peer = bgp::kNoAsn;
    std::string name;
  };

  /// Interned source name for a collector peer (kSingle: the prefix).
  const std::string& source_for(bgp::Asn peer);
  /// Appends one observation slot with the shared per-record fields set.
  feeds::Observation& slot(feeds::ObservationType type, bgp::Asn peer,
                           std::int64_t event_us);
  void flush(const feeds::ObservationBatchHandler& sink);

  /// Converts one complete record (`total` bytes starting at the common
  /// header). Returns false when a hard decode error stopped the file.
  bool process_record(const std::uint8_t* p, std::size_t total,
                      const feeds::ObservationBatchHandler& sink);

  void convert_bgp4mp(ByteReader body, bool as4, std::int64_t event_us);
  void convert_peer_index(ByteReader body);
  void convert_rib(ByteReader body, net::IpFamily family, std::int64_t event_us);

  ObservationConvertOptions options_;
  pipeline::ObservationBatch batch_;
  std::vector<PeerSource> sources_;  ///< sorted by peer ASN
  std::vector<bgp::Asn> peer_table_;
  bgp::PathAttributes scratch_attrs_;
  std::vector<bgp::Asn> hops_scratch_;
  std::vector<bgp::Asn> as4_scratch_;
  MpNlriScratch mp_scratch_;
  std::vector<net::Prefix> withdrawn_scratch_;
  // Per-file chunk state (begin_file .. finish_file).
  ConvertFileStats file_stats_;
  std::vector<std::uint8_t> carry_;  ///< partial record straddling chunks
  bool stopped_ = false;  ///< hard error: swallow the rest of the file
  std::int64_t clock_us_ = 0;
  std::uint64_t emitted_ = 0;
};

/// Aggregate result of importing a list of MRT files into a journal.
struct MrtImportResult {
  std::uint64_t files = 0;            ///< files fully imported
  std::uint64_t truncated_files = 0;  ///< imported up to a torn tail
  std::uint64_t failed_files = 0;     ///< stopped early on a malformed record
  std::uint64_t records = 0;
  std::uint64_t skipped_records = 0;  ///< unsupported shapes skipped whole
  std::uint64_t observations = 0;
  std::uint64_t mrt_bytes = 0;      ///< complete-record MRT bytes consumed
  std::uint64_t journal_bytes = 0;  ///< encoded bytes written to the journal
  std::uint64_t segments = 0;
  /// "path: message" per truncated/failed file, in input order.
  std::vector<std::string> file_errors;
};

/// The mrt2journal core: streams every file through one converter into a
/// JournalWriter on `journal_dir` (created or RESUMED — see
/// JournalWriter) and closes it. Files are imported in argument order;
/// truncated or malformed files contribute their complete records and
/// are tallied, so the resulting journal is always clean and readable.
/// gzip'd and bzip2'd files are decompressed transparently (sniffed by
/// magic, streamed in O(chunk) memory — see mrt/stream_reader.hpp); a
/// torn compressed stream imports every record recovered before the tear
/// and counts as a truncated file.
/// Throws journal::JournalError (unwritable dir, foreign journal) or
/// std::runtime_error (unreadable input file).
MrtImportResult import_mrt_files(std::span<const std::string> paths,
                                 const std::string& journal_dir,
                                 const ObservationConvertOptions& options = {},
                                 const journal::JournalWriterOptions& writer_options = {});

/// The machine-readable import summary mrt2journal and
/// `scenario_runner --import-mrt` print (file_errors go to stderr, not
/// here).
json::Value import_result_to_json(const std::string& journal_dir,
                                  const MrtImportResult& result);

}  // namespace artemis::mrt

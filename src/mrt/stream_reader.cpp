#include "mrt/stream_reader.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#ifdef ARTEMIS_HAVE_ZLIB
#include <zlib.h>
#endif
#ifdef ARTEMIS_HAVE_BZIP2
#include <bzlib.h>
#endif

namespace artemis::mrt {

Compression sniff_compression(std::span<const std::uint8_t> head) {
  if (head.size() >= 2 && head[0] == 0x1F && head[1] == 0x8B) return Compression::kGzip;
  // "BZh" plus the block-size digit: a bare 3-byte check would
  // misclassify a raw MRT file whose first timestamp is 0x425A68xx.
  if (head.size() >= 4 && head[0] == 'B' && head[1] == 'Z' && head[2] == 'h' &&
      head[3] >= '1' && head[3] <= '9') {
    return Compression::kBzip2;
  }
  return Compression::kNone;
}

namespace {

/// Raw file bytes via read(2); owns the descriptor.
class FdSource {
 public:
  explicit FdSource(const std::string& path)
      : fd_(::open(path.c_str(), O_RDONLY)), path_(path) {
    if (fd_ < 0) throw std::runtime_error("cannot open MRT file: " + path);
  }
  ~FdSource() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdSource(const FdSource&) = delete;
  FdSource& operator=(const FdSource&) = delete;

  std::size_t read(std::span<std::uint8_t> buf) {
    std::size_t off = 0;
    while (off < buf.size()) {
      const ::ssize_t n = ::read(fd_, buf.data() + off, buf.size() - off);
      if (n == 0) break;
      if (n < 0) {
        if (errno == EINTR) continue;  // signal mid-import: retry, not abort
        throw std::runtime_error("cannot read MRT file: " + path_);
      }
      off += static_cast<std::size_t>(n);
    }
    return off;
  }

  const std::string& path() const { return path_; }

 private:
  int fd_;
  std::string path_;
};

class RawInput final : public InputStream {
 public:
  explicit RawInput(const std::string& path) : src_(path) {}
  std::size_t read(std::span<std::uint8_t> buf) override { return src_.read(buf); }

 private:
  FdSource src_;
};

constexpr std::size_t kCompressedChunk = 256 * 1024;

#ifdef ARTEMIS_HAVE_ZLIB
class GzipInput final : public InputStream {
 public:
  explicit GzipInput(const std::string& path) : src_(path), in_(kCompressedChunk) {
    zs_.zalloc = Z_NULL;
    zs_.zfree = Z_NULL;
    zs_.opaque = Z_NULL;
    // 15 + 32: max window, auto-detect zlib vs gzip wrapper.
    if (inflateInit2(&zs_, 15 + 32) != Z_OK) {
      throw std::runtime_error("inflateInit failed for " + path);
    }
  }
  ~GzipInput() override { inflateEnd(&zs_); }

  std::size_t read(std::span<std::uint8_t> buf) override {
    zs_.next_out = buf.data();
    zs_.avail_out = static_cast<uInt>(buf.size());
    while (zs_.avail_out > 0 && !done_) {
      if (zs_.avail_in == 0 && !eof_) refill();
      const int r = inflate(&zs_, Z_NO_FLUSH);
      if (r == Z_STREAM_END) {
        // Concatenated members (pigz, split-and-cat mirrors): if the next
        // bytes open another gzip member, keep inflating; trailing
        // non-member bytes are ignored like gzip(1) does. refill()
        // preserves undrained input, so a member boundary straddling a
        // read is still detected.
        if (zs_.avail_in < 2 && !eof_) refill();
        if (zs_.avail_in >= 2 && zs_.next_in[0] == 0x1F && zs_.next_in[1] == 0x8B) {
          if (inflateReset(&zs_) != Z_OK) {
            tear("gzip member reset failed");
            break;
          }
          continue;
        }
        done_ = true;
      } else if (r == Z_OK) {
        if (zs_.avail_in == 0 && eof_ && zs_.avail_out > 0) {
          tear("gzip stream truncated");  // mid-member EOF
        }
      } else if (r == Z_BUF_ERROR && zs_.avail_in == 0 && eof_) {
        tear("gzip stream truncated");
      } else {
        tear(zs_.msg != nullptr ? zs_.msg : "gzip stream corrupt");
      }
    }
    return buf.size() - zs_.avail_out;
  }

 private:
  void refill() {
    // Preserve undrained input: a member boundary can straddle reads.
    const std::size_t keep = zs_.avail_in;
    if (keep > 0 && zs_.next_in != in_.data()) {
      std::memmove(in_.data(), zs_.next_in, keep);
    }
    const std::size_t n = src_.read({in_.data() + keep, in_.size() - keep});
    zs_.next_in = in_.data();
    zs_.avail_in = static_cast<uInt>(keep + n);
    eof_ = n == 0;
  }
  void tear(const std::string& what) {
    truncated_ = true;
    error_ = what;
    done_ = true;
  }

  FdSource src_;
  std::vector<std::uint8_t> in_;
  z_stream zs_ = {};
  bool eof_ = false;
  bool done_ = false;
};
#endif  // ARTEMIS_HAVE_ZLIB

#ifdef ARTEMIS_HAVE_BZIP2
class Bz2Input final : public InputStream {
 public:
  explicit Bz2Input(const std::string& path) : src_(path), in_(kCompressedChunk) {
    if (BZ2_bzDecompressInit(&bzs_, 0, 0) != BZ_OK) {
      throw std::runtime_error("bzDecompressInit failed for " + path);
    }
  }
  ~Bz2Input() override { BZ2_bzDecompressEnd(&bzs_); }

  std::size_t read(std::span<std::uint8_t> buf) override {
    bzs_.next_out = reinterpret_cast<char*>(buf.data());
    bzs_.avail_out = static_cast<unsigned>(buf.size());
    while (bzs_.avail_out > 0 && !done_) {
      if (bzs_.avail_in == 0 && !eof_) refill();
      const int r = BZ2_bzDecompress(&bzs_);
      if (r == BZ_STREAM_END) {
        // Multi-stream files (pbzip2): restart on a following "BZh<1-9>".
        // refill() preserves undrained input across the boundary.
        if (bzs_.avail_in < 4 && !eof_) refill();
        if (bzs_.avail_in >= 4 && bzs_.next_in[0] == 'B' && bzs_.next_in[1] == 'Z' &&
            bzs_.next_in[2] == 'h' && bzs_.next_in[3] >= '1' && bzs_.next_in[3] <= '9') {
          char* carry_in = bzs_.next_in;
          const unsigned carry_avail = bzs_.avail_in;
          char* carry_out = bzs_.next_out;
          const unsigned carry_out_avail = bzs_.avail_out;
          BZ2_bzDecompressEnd(&bzs_);
          bzs_ = {};
          const int init = BZ2_bzDecompressInit(&bzs_, 0, 0);
          // Restore the output cursor either way: the wiped struct must
          // not make `buf.size() - avail_out` over-report written bytes.
          bzs_.next_out = carry_out;
          bzs_.avail_out = carry_out_avail;
          if (init != BZ_OK) {
            tear("bzip2 stream reset failed");
            break;
          }
          bzs_.next_in = carry_in;
          bzs_.avail_in = carry_avail;
          continue;
        }
        done_ = true;
      } else if (r == BZ_OK) {
        if (bzs_.avail_in == 0 && eof_ && bzs_.avail_out > 0) {
          tear("bzip2 stream truncated");
        }
      } else {
        tear("bzip2 stream corrupt");
      }
    }
    return buf.size() - bzs_.avail_out;
  }

 private:
  void refill() {
    const std::size_t keep = bzs_.avail_in;
    if (keep > 0 &&
        bzs_.next_in != reinterpret_cast<char*>(in_.data())) {
      std::memmove(in_.data(), bzs_.next_in, keep);
    }
    const std::size_t n = src_.read({in_.data() + keep, in_.size() - keep});
    bzs_.next_in = reinterpret_cast<char*>(in_.data());
    bzs_.avail_in = static_cast<unsigned>(keep + n);
    eof_ = n == 0;
  }
  void tear(const std::string& what) {
    truncated_ = true;
    error_ = what;
    done_ = true;
  }

  FdSource src_;
  std::vector<std::uint8_t> in_;
  bz_stream bzs_ = {};
  bool eof_ = false;
  bool done_ = false;
};
#endif  // ARTEMIS_HAVE_BZIP2

Compression sniff_file(const std::string& path) {
  FdSource src(path);
  std::uint8_t head[4] = {};
  const std::size_t n = src.read(head);
  return sniff_compression({head, n});
}

// -------------------------------------------------- push-mode decompression

/// kNone: transport bytes ARE the payload; forward the span untouched.
class IdentityChunk final : public ChunkDecompressor {
 public:
  bool feed(std::span<const std::uint8_t> in, const Output& out) override {
    if (!in.empty()) out(in);
    return true;
  }
  void finish(const Output&) override {}
  void reset() override {}
};

/// Shared shape of the zlib/bz2 push decoders: a persistent codec stream
/// fed directly from the caller's chunk, draining into one reusable
/// output buffer; member/stream boundaries may straddle chunks, so up to
/// magic-length bytes are carried while deciding "next member or
/// trailing garbage". Tears follow the InputStream contract (flag, not
/// throw) — both decoders only differ in the codec calls.
template <typename Derived>
class CodecChunkBase : public ChunkDecompressor {
 public:
  CodecChunkBase() : out_buf_(kCompressedChunk) {}

  bool feed(std::span<const std::uint8_t> in, const Output& out) override {
    std::size_t pos = 0;
    while (pos < in.size() && !done_) {
      if (boundary_len_ > 0 || at_boundary_) {
        // Between members: accumulate magic-length bytes to decide.
        while (boundary_len_ < Derived::kMagicLen && pos < in.size()) {
          boundary_carry_[boundary_len_++] = in[pos++];
        }
        if (boundary_len_ < Derived::kMagicLen) return !done_;
        if (!Derived::is_magic(boundary_carry_)) {
          done_ = true;  // trailing non-member bytes: ignored, clean end
          return false;
        }
        if (!self().restart()) {
          tear(Derived::kResetError);
          return false;
        }
        at_boundary_ = false;
        // Replay the carried magic through the fresh stream (codec
        // streams accept arbitrarily partial input).
        const std::size_t len = boundary_len_;
        boundary_len_ = 0;
        decode({boundary_carry_, len}, out);
        continue;
      }
      pos += decode(in.subspan(pos), out);
    }
    return !done_;
  }

  void finish(const Output&) override {
    if (done_) return;
    if (at_boundary_ || boundary_len_ > 0) {
      // Ended while sniffing a possible next member: whatever those
      // bytes were, a complete member already finished — clean end.
      done_ = true;
      return;
    }
    if (self().mid_member()) {
      tear(Derived::kTruncatedError);
    }
    done_ = true;
  }

  void reset() override {
    if (!self().restart()) throw std::runtime_error(Derived::kResetError);
    truncated_ = false;
    error_.clear();
    done_ = false;
    at_boundary_ = false;
    boundary_len_ = 0;
  }

 protected:
  /// Runs the codec over `in`, emitting to `out`; returns bytes consumed.
  /// Sets at_boundary_ at member end, done_/tear on corruption.
  std::size_t decode(std::span<const std::uint8_t> in, const Output& out) {
    return self().decode_impl(in, out);
  }

  void tear(const char* what) {
    truncated_ = true;
    error_ = what;
    done_ = true;
  }

  Derived& self() { return static_cast<Derived&>(*this); }

  std::vector<std::uint8_t> out_buf_;
  std::uint8_t boundary_carry_[4] = {};
  std::size_t boundary_len_ = 0;
  bool at_boundary_ = false;
  bool done_ = false;
};

#ifdef ARTEMIS_HAVE_ZLIB
class GzipChunk final : public CodecChunkBase<GzipChunk> {
 public:
  static constexpr std::size_t kMagicLen = 2;
  static constexpr const char* kResetError = "gzip member reset failed";
  static constexpr const char* kTruncatedError = "gzip stream truncated";

  GzipChunk() {
    zs_.zalloc = Z_NULL;
    zs_.zfree = Z_NULL;
    zs_.opaque = Z_NULL;
    if (inflateInit2(&zs_, 15 + 32) != Z_OK) {
      throw std::runtime_error("inflateInit failed");
    }
  }
  ~GzipChunk() override { inflateEnd(&zs_); }

  static bool is_magic(const std::uint8_t* p) { return p[0] == 0x1F && p[1] == 0x8B; }

  bool restart() { return inflateReset(&zs_) == Z_OK; }

  /// Mid-member iff inflate has consumed header bytes since the last
  /// member end and not reached the next one.
  bool mid_member() const { return started_; }

  std::size_t decode_impl(std::span<const std::uint8_t> in, const Output& out) {
    zs_.next_in = const_cast<Bytef*>(in.data());
    zs_.avail_in = static_cast<uInt>(in.size());
    started_ = true;
    while (zs_.avail_in > 0 && !done_ && !at_boundary_) {
      zs_.next_out = out_buf_.data();
      zs_.avail_out = static_cast<uInt>(out_buf_.size());
      const int r = inflate(&zs_, Z_NO_FLUSH);
      const std::size_t produced = out_buf_.size() - zs_.avail_out;
      if (produced > 0) out({out_buf_.data(), produced});
      if (r == Z_STREAM_END) {
        at_boundary_ = true;
        started_ = false;
      } else if (r != Z_OK && r != Z_BUF_ERROR) {
        tear(zs_.msg != nullptr ? zs_.msg : "gzip stream corrupt");
      }
    }
    return in.size() - zs_.avail_in;
  }

 private:
  z_stream zs_ = {};
  bool started_ = false;
};
#endif  // ARTEMIS_HAVE_ZLIB

#ifdef ARTEMIS_HAVE_BZIP2
class Bz2Chunk final : public CodecChunkBase<Bz2Chunk> {
 public:
  static constexpr std::size_t kMagicLen = 4;
  static constexpr const char* kResetError = "bzip2 stream reset failed";
  static constexpr const char* kTruncatedError = "bzip2 stream truncated";

  Bz2Chunk() {
    if (BZ2_bzDecompressInit(&bzs_, 0, 0) != BZ_OK) {
      throw std::runtime_error("bzDecompressInit failed");
    }
  }
  ~Bz2Chunk() override { BZ2_bzDecompressEnd(&bzs_); }

  static bool is_magic(const std::uint8_t* p) {
    return p[0] == 'B' && p[1] == 'Z' && p[2] == 'h' && p[3] >= '1' && p[3] <= '9';
  }

  bool restart() {
    BZ2_bzDecompressEnd(&bzs_);
    bzs_ = {};
    return BZ2_bzDecompressInit(&bzs_, 0, 0) == BZ_OK;
  }

  bool mid_member() const { return started_; }

  std::size_t decode_impl(std::span<const std::uint8_t> in, const Output& out) {
    bzs_.next_in = const_cast<char*>(reinterpret_cast<const char*>(in.data()));
    bzs_.avail_in = static_cast<unsigned>(in.size());
    started_ = true;
    while (bzs_.avail_in > 0 && !done_ && !at_boundary_) {
      bzs_.next_out = reinterpret_cast<char*>(out_buf_.data());
      bzs_.avail_out = static_cast<unsigned>(out_buf_.size());
      const int r = BZ2_bzDecompress(&bzs_);
      const std::size_t produced = out_buf_.size() - bzs_.avail_out;
      if (produced > 0) out({out_buf_.data(), produced});
      if (r == BZ_STREAM_END) {
        at_boundary_ = true;
        started_ = false;
      } else if (r != BZ_OK) {
        tear("bzip2 stream corrupt");
      }
    }
    return in.size() - bzs_.avail_in;
  }

 private:
  bz_stream bzs_ = {};
  bool started_ = false;
};
#endif  // ARTEMIS_HAVE_BZIP2

}  // namespace

std::unique_ptr<ChunkDecompressor> make_chunk_decompressor(Compression compression) {
  switch (compression) {
    case Compression::kGzip:
#ifdef ARTEMIS_HAVE_ZLIB
      return std::make_unique<GzipChunk>();
#else
      throw std::runtime_error("gzip payload but built without zlib");
#endif
    case Compression::kBzip2:
#ifdef ARTEMIS_HAVE_BZIP2
      return std::make_unique<Bz2Chunk>();
#else
      throw std::runtime_error("bzip2 payload but built without libbz2");
#endif
    case Compression::kNone:
      break;
  }
  return std::make_unique<IdentityChunk>();
}

std::unique_ptr<InputStream> open_input(const std::string& path) {
  return open_input(path, sniff_file(path));
}

std::unique_ptr<InputStream> open_input(const std::string& path,
                                        Compression compression) {
  switch (compression) {
    case Compression::kGzip:
#ifdef ARTEMIS_HAVE_ZLIB
      return std::make_unique<GzipInput>(path);
#else
      throw std::runtime_error("gzip input but built without zlib: " + path);
#endif
    case Compression::kBzip2:
#ifdef ARTEMIS_HAVE_BZIP2
      return std::make_unique<Bz2Input>(path);
#else
      throw std::runtime_error("bzip2 input but built without libbz2: " + path);
#endif
    case Compression::kNone:
      break;
  }
  return std::make_unique<RawInput>(path);
}

#ifdef ARTEMIS_HAVE_ZLIB
std::vector<std::uint8_t> gzip_compress(std::span<const std::uint8_t> in, int level) {
  z_stream zs = {};
  // 15 + 16: gzip wrapper; zlib writes mtime 0 and no name by default.
  if (deflateInit2(&zs, level, Z_DEFLATED, 15 + 16, 8, Z_DEFAULT_STRATEGY) != Z_OK) {
    throw std::runtime_error("deflateInit failed");
  }
  // Feed input in sub-4GiB slices: avail_in is 32-bit, and a silent
  // wrap would emit a valid-looking member missing most of the data.
  std::vector<std::uint8_t> out;
  std::uint8_t buf[64 * 1024];
  std::size_t pos = 0;
  for (;;) {
    const std::size_t take = std::min<std::size_t>(in.size() - pos, 1u << 30);
    zs.next_in = const_cast<Bytef*>(in.data() + pos);
    zs.avail_in = static_cast<uInt>(take);
    pos += take;
    const int flush = pos == in.size() ? Z_FINISH : Z_NO_FLUSH;
    int r = Z_OK;
    do {
      zs.next_out = buf;
      zs.avail_out = sizeof buf;
      r = deflate(&zs, flush);
      if (r == Z_STREAM_ERROR) {
        deflateEnd(&zs);
        throw std::runtime_error("deflate failed");
      }
      out.insert(out.end(), buf, buf + (sizeof buf - zs.avail_out));
    } while (zs.avail_out == 0);
    if (r == Z_STREAM_END) break;
  }
  deflateEnd(&zs);
  return out;
}
#endif  // ARTEMIS_HAVE_ZLIB

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  const auto in = open_input(path);
  std::vector<std::uint8_t> out;
  std::vector<std::uint8_t> buf(1 << 20);
  for (;;) {
    const std::size_t n = in->read(buf);
    if (n == 0) break;
    out.insert(out.end(), buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  if (in->truncated()) {
    throw std::runtime_error("compressed stream torn in " + path + ": " + in->error());
  }
  return out;
}

std::string_view to_string(ElemType t) {
  switch (t) {
    case ElemType::kAnnounce: return "A";
    case ElemType::kWithdraw: return "W";
    case ElemType::kRibEntry: return "R";
  }
  return "?";
}

std::string BgpElem::to_string() const {
  std::string out(mrt::to_string(type));
  out += "|" + timestamp.to_string();
  out += "|AS" + std::to_string(peer_asn);
  out += "|" + prefix.to_string();
  if (type != ElemType::kWithdraw) {
    out += "|[" + attrs.as_path.to_string() + "]";
  }
  return out;
}

void ElemReader::load_record() {
  while (pending_.empty()) {
    const auto raw = read_raw_record(reader_);
    if (!raw) return;  // end of stream
    if (raw->type == static_cast<std::uint16_t>(RecordType::kBgp4mpEt) ||
        raw->type == static_cast<std::uint16_t>(RecordType::kBgp4mp)) {
      const UpdateRecord rec = decode_update_record(*raw);
      // Emit announcements before withdrawals within a record (mirrors
      // libBGPStream). pending_ is drained from the back, so push in the
      // desired order and reverse.
      for (const auto& p : rec.update.announced) {
        BgpElem e;
        e.type = ElemType::kAnnounce;
        e.timestamp = rec.timestamp;
        e.peer_asn = rec.peer_asn;
        e.prefix = p;
        e.attrs = rec.update.attrs;
        pending_.push_back(std::move(e));
      }
      for (const auto& p : rec.update.withdrawn) {
        BgpElem e;
        e.type = ElemType::kWithdraw;
        e.timestamp = rec.timestamp;
        e.peer_asn = rec.peer_asn;
        e.prefix = p;
        pending_.push_back(std::move(e));
      }
      std::reverse(pending_.begin(), pending_.end());
    } else if (raw->type == static_cast<std::uint16_t>(RecordType::kTableDumpV2)) {
      ByteReader body(raw->body);
      if (raw->subtype ==
          static_cast<std::uint16_t>(TableDumpV2Subtype::kPeerIndexTable)) {
        body.u32();  // collector BGP ID
        const std::uint16_t name_len = body.u16();
        body.bytes(name_len);
        const std::uint16_t count = body.u16();
        peer_table_.clear();
        peer_table_.reserve(count);
        for (int i = 0; i < count; ++i) {
          const std::uint8_t peer_type = body.u8();
          body.u32();  // BGP ID
          body.bytes((peer_type & 0x01) != 0 ? 16 : 4);  // peer IP
          peer_table_.push_back((peer_type & 0x02) != 0 ? body.u32() : body.u16());
        }
      } else if (raw->subtype ==
                     static_cast<std::uint16_t>(TableDumpV2Subtype::kRibIpv4Unicast) ||
                 raw->subtype ==
                     static_cast<std::uint16_t>(TableDumpV2Subtype::kRibIpv6Unicast)) {
        const auto family =
            raw->subtype == static_cast<std::uint16_t>(TableDumpV2Subtype::kRibIpv4Unicast)
                ? net::IpFamily::kIpv4
                : net::IpFamily::kIpv6;
        body.u32();  // sequence
        const int plen = body.u8();
        if (plen > net::family_bits(family)) {
          throw DecodeError("RIB prefix length out of range");
        }
        std::uint8_t buf[16] = {};
        const auto raw_prefix = body.bytes(static_cast<std::size_t>((plen + 7) / 8));
        std::memcpy(buf, raw_prefix.data(), raw_prefix.size());
        const net::Prefix prefix(net::IpAddress::from_bytes(family, buf), plen);
        const std::uint16_t entry_count = body.u16();
        for (int i = 0; i < entry_count; ++i) {
          const std::uint16_t peer_index = body.u16();
          if (peer_index >= peer_table_.size()) {
            throw DecodeError("RIB entry references unknown peer");
          }
          const std::uint32_t originated = body.u32();
          ByteReader attrs_reader = body.sub(body.u16());
          BgpElem e;
          e.type = ElemType::kRibEntry;
          e.timestamp = SimTime::at_seconds(originated);
          e.peer_asn = peer_table_[peer_index];
          e.prefix = prefix;
          // RIB entries carry the same attribute encoding as UPDATEs.
          e.attrs = decode_path_attributes(attrs_reader);
          pending_.push_back(std::move(e));
        }
        std::reverse(pending_.begin(), pending_.end());
      }
      // Unknown TABLE_DUMP_V2 subtypes are skipped silently.
    }
    // Unknown record types are skipped silently (forward compatibility).
  }
}

std::optional<BgpElem> ElemReader::next() {
  if (pending_.empty()) load_record();
  if (pending_.empty()) return std::nullopt;
  BgpElem e = std::move(pending_.back());
  pending_.pop_back();
  return e;
}

std::vector<BgpElem> read_elems(std::span<const std::uint8_t> data) {
  ElemReader reader(data);
  std::vector<BgpElem> out;
  while (auto e = reader.next()) out.push_back(std::move(*e));
  return out;
}

std::vector<BgpElem> read_elems_from_file(const std::string& path) {
  // Transparent decompression: archived update windows ship gzip'd, RIB
  // snapshots bzip2'd; the elem layer never sees the transport.
  return read_elems(read_file_bytes(path));
}

}  // namespace artemis::mrt

#include "mrt/stream_reader.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

namespace artemis::mrt {

std::string_view to_string(ElemType t) {
  switch (t) {
    case ElemType::kAnnounce: return "A";
    case ElemType::kWithdraw: return "W";
    case ElemType::kRibEntry: return "R";
  }
  return "?";
}

std::string BgpElem::to_string() const {
  std::string out(mrt::to_string(type));
  out += "|" + timestamp.to_string();
  out += "|AS" + std::to_string(peer_asn);
  out += "|" + prefix.to_string();
  if (type != ElemType::kWithdraw) {
    out += "|[" + attrs.as_path.to_string() + "]";
  }
  return out;
}

void ElemReader::load_record() {
  while (pending_.empty()) {
    const auto raw = read_raw_record(reader_);
    if (!raw) return;  // end of stream
    if (raw->type == static_cast<std::uint16_t>(RecordType::kBgp4mpEt) ||
        raw->type == static_cast<std::uint16_t>(RecordType::kBgp4mp)) {
      const UpdateRecord rec = decode_update_record(*raw);
      // Emit announcements before withdrawals within a record (mirrors
      // libBGPStream). pending_ is drained from the back, so push in the
      // desired order and reverse.
      for (const auto& p : rec.update.announced) {
        BgpElem e;
        e.type = ElemType::kAnnounce;
        e.timestamp = rec.timestamp;
        e.peer_asn = rec.peer_asn;
        e.prefix = p;
        e.attrs = rec.update.attrs;
        pending_.push_back(std::move(e));
      }
      for (const auto& p : rec.update.withdrawn) {
        BgpElem e;
        e.type = ElemType::kWithdraw;
        e.timestamp = rec.timestamp;
        e.peer_asn = rec.peer_asn;
        e.prefix = p;
        pending_.push_back(std::move(e));
      }
      std::reverse(pending_.begin(), pending_.end());
    } else if (raw->type == static_cast<std::uint16_t>(RecordType::kTableDumpV2)) {
      ByteReader body(raw->body);
      if (raw->subtype ==
          static_cast<std::uint16_t>(TableDumpV2Subtype::kPeerIndexTable)) {
        body.u32();  // collector BGP ID
        const std::uint16_t name_len = body.u16();
        body.bytes(name_len);
        const std::uint16_t count = body.u16();
        peer_table_.clear();
        peer_table_.reserve(count);
        for (int i = 0; i < count; ++i) {
          const std::uint8_t peer_type = body.u8();
          body.u32();  // BGP ID
          body.bytes((peer_type & 0x01) != 0 ? 16 : 4);  // peer IP
          peer_table_.push_back((peer_type & 0x02) != 0 ? body.u32() : body.u16());
        }
      } else if (raw->subtype ==
                     static_cast<std::uint16_t>(TableDumpV2Subtype::kRibIpv4Unicast) ||
                 raw->subtype ==
                     static_cast<std::uint16_t>(TableDumpV2Subtype::kRibIpv6Unicast)) {
        const auto family =
            raw->subtype == static_cast<std::uint16_t>(TableDumpV2Subtype::kRibIpv4Unicast)
                ? net::IpFamily::kIpv4
                : net::IpFamily::kIpv6;
        body.u32();  // sequence
        const int plen = body.u8();
        if (plen > net::family_bits(family)) {
          throw DecodeError("RIB prefix length out of range");
        }
        std::uint8_t buf[16] = {};
        const auto raw_prefix = body.bytes(static_cast<std::size_t>((plen + 7) / 8));
        std::memcpy(buf, raw_prefix.data(), raw_prefix.size());
        const net::Prefix prefix(net::IpAddress::from_bytes(family, buf), plen);
        const std::uint16_t entry_count = body.u16();
        for (int i = 0; i < entry_count; ++i) {
          const std::uint16_t peer_index = body.u16();
          if (peer_index >= peer_table_.size()) {
            throw DecodeError("RIB entry references unknown peer");
          }
          const std::uint32_t originated = body.u32();
          ByteReader attrs_reader = body.sub(body.u16());
          BgpElem e;
          e.type = ElemType::kRibEntry;
          e.timestamp = SimTime::at_seconds(originated);
          e.peer_asn = peer_table_[peer_index];
          e.prefix = prefix;
          // RIB entries carry the same attribute encoding as UPDATEs.
          e.attrs = decode_path_attributes(attrs_reader);
          pending_.push_back(std::move(e));
        }
        std::reverse(pending_.begin(), pending_.end());
      }
      // Unknown TABLE_DUMP_V2 subtypes are skipped silently.
    }
    // Unknown record types are skipped silently (forward compatibility).
  }
}

std::optional<BgpElem> ElemReader::next() {
  if (pending_.empty()) load_record();
  if (pending_.empty()) return std::nullopt;
  BgpElem e = std::move(pending_.back());
  pending_.pop_back();
  return e;
}

std::vector<BgpElem> read_elems(std::span<const std::uint8_t> data) {
  ElemReader reader(data);
  std::vector<BgpElem> out;
  while (auto e = reader.next()) out.push_back(std::move(*e));
  return out;
}

std::vector<BgpElem> read_elems_from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open MRT file: " + path);
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  return read_elems(data);
}

}  // namespace artemis::mrt

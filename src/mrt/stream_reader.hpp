// A BGPStream-style element reader over MRT byte streams.
//
// libBGPStream exposes BGP data as a flat sequence of "elems" (announce /
// withdraw / RIB entries), regardless of the underlying record framing.
// This reader provides the same abstraction over this module's MRT
// encoding: BGP4MP updates fan out into one elem per announced/withdrawn
// prefix, TABLE_DUMP_V2 snapshots fan out into one RIB elem per entry
// (peer index table handled internally).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/route.hpp"
#include "mrt/mrt.hpp"

namespace artemis::mrt {

enum class ElemType : std::uint8_t { kAnnounce, kWithdraw, kRibEntry };

std::string_view to_string(ElemType t);

/// One flattened BGP observation (the unit the detection service consumes).
struct BgpElem {
  ElemType type = ElemType::kAnnounce;
  SimTime timestamp;
  bgp::Asn peer_asn = bgp::kNoAsn;  ///< vantage point that observed it
  net::Prefix prefix;
  /// Valid for kAnnounce / kRibEntry.
  bgp::PathAttributes attrs;

  bgp::Asn origin_as() const { return attrs.as_path.origin_as(); }
  std::string to_string() const;
};

/// Iterates elems over an in-memory MRT stream.
class ElemReader {
 public:
  explicit ElemReader(std::span<const std::uint8_t> data) : reader_(data) {}

  /// Next elem, or nullopt at end of stream. Throws DecodeError on
  /// malformed input.
  std::optional<BgpElem> next();

 private:
  void load_record();

  ByteReader reader_;
  std::vector<BgpElem> pending_;  // elems of the current record, reversed
  std::vector<bgp::Asn> peer_table_;
};

/// Reads every elem of an MRT file. Throws DecodeError / std::runtime_error.
std::vector<BgpElem> read_elems_from_file(const std::string& path);

/// Convenience: decode all elems from a buffer.
std::vector<BgpElem> read_elems(std::span<const std::uint8_t> data);

}  // namespace artemis::mrt

// A BGPStream-style element reader over MRT byte streams.
//
// libBGPStream exposes BGP data as a flat sequence of "elems" (announce /
// withdraw / RIB entries), regardless of the underlying record framing.
// This reader provides the same abstraction over this module's MRT
// encoding: BGP4MP updates fan out into one elem per announced/withdrawn
// prefix, TABLE_DUMP_V2 snapshots fan out into one RIB elem per entry
// (peer index table handled internally).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/route.hpp"
#include "mrt/mrt.hpp"

namespace artemis::mrt {

// ------------------------------------------------------------ transport
//
// Archived RouteViews/RIS windows ship gzip'd (updates) or bzip2'd (RIB
// snapshots). This layer makes compression a transport detail: open a
// path, get decompressed MRT bytes — streaming, no temp files, O(chunk)
// resident memory. Compression is sniffed from magic bytes, never file
// extensions (mirrors on object stores rename freely).

enum class Compression : std::uint8_t { kNone, kGzip, kBzip2 };

/// Sniffs the leading magic bytes (gzip 1f 8b, bzip2 "BZh" + block-size
/// digit).
Compression sniff_compression(std::span<const std::uint8_t> head);

/// A pull source of decompressed bytes. A torn or corrupt compressed
/// stream is NOT an exception: read() returns what was recovered, then 0,
/// with truncated() set — the MRT record layer treats the tail exactly
/// like an interrupted download of an uncompressed file.
class InputStream {
 public:
  virtual ~InputStream() = default;

  /// Fills up to buf.size() bytes; 0 means end of stream.
  virtual std::size_t read(std::span<std::uint8_t> buf) = 0;

  bool truncated() const { return truncated_; }
  const std::string& error() const { return error_; }

 protected:
  bool truncated_ = false;
  std::string error_;  ///< non-empty iff truncated(): what tore
};

/// Opens `path` with transparent decompression (sniffed, streaming).
/// Throws std::runtime_error if the file cannot be opened, or if it is
/// compressed and the binary was built without the matching library.
std::unique_ptr<InputStream> open_input(const std::string& path);

/// Same, with the compression already known (a caller that sniffed the
/// leading bytes itself skips the extra open+read here).
std::unique_ptr<InputStream> open_input(const std::string& path,
                                        Compression compression);

/// Push-mode peer of InputStream, for transports that deliver bytes to
/// us instead of being pulled from a file — the ingest supervisor's HTTP
/// body arrives one socket read at a time. Same tear contract as the
/// whole-file path: a torn or corrupt stream is NOT an exception. The
/// already-recovered prefix has been delivered to `out`, truncated() is
/// set, and further input is ignored — so a chunk-fed import recovers
/// exactly what the pull-based import of the same bytes would
/// (tests/mrt_import_test.cpp pins the equivalence).
class ChunkDecompressor {
 public:
  using Output = std::function<void(std::span<const std::uint8_t>)>;

  virtual ~ChunkDecompressor() = default;

  /// Pushes transport bytes; delivers decompressed bytes to `out` (zero
  /// or more calls; the identity codec forwards the span unchanged).
  /// Returns false once the stream has torn.
  virtual bool feed(std::span<const std::uint8_t> in, const Output& out) = 0;

  /// Signals end of transport. A stream cut mid-member tears here;
  /// trailing non-member bytes after a complete member are ignored, like
  /// gzip(1). Idempotent.
  virtual void finish(const Output& out) = 0;

  /// Rearms for a new stream of the same compression kind, so a
  /// long-running ingest loop reuses one decompressor (and its buffers)
  /// per source instead of allocating per fetch.
  virtual void reset() = 0;

  bool truncated() const { return truncated_; }
  const std::string& error() const { return error_; }

 protected:
  bool truncated_ = false;
  std::string error_;  ///< non-empty iff truncated(): what tore
};

/// Push-mode peer of open_input. Throws std::runtime_error for a
/// compression whose library this binary was built without.
std::unique_ptr<ChunkDecompressor> make_chunk_decompressor(Compression compression);

#ifdef ARTEMIS_HAVE_ZLIB
/// Deterministic single-member gzip (mtime 0, no name: the output
/// depends only on the input bytes, the level and the zlib version).
/// Fixture tooling today; the journal cold-segment archiver tomorrow.
std::vector<std::uint8_t> gzip_compress(std::span<const std::uint8_t> in,
                                        int level = 9);
#endif

/// Whole-file convenience: reads and transparently decompresses. A torn
/// or corrupt compressed stream throws std::runtime_error — a record-
/// boundary tear would otherwise be indistinguishable from a complete
/// file. (The streaming importer keeps its recover-the-prefix behavior
/// by driving InputStream directly and checking truncated().)
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

enum class ElemType : std::uint8_t { kAnnounce, kWithdraw, kRibEntry };

std::string_view to_string(ElemType t);

/// One flattened BGP observation (the unit the detection service consumes).
struct BgpElem {
  ElemType type = ElemType::kAnnounce;
  SimTime timestamp;
  bgp::Asn peer_asn = bgp::kNoAsn;  ///< vantage point that observed it
  net::Prefix prefix;
  /// Valid for kAnnounce / kRibEntry.
  bgp::PathAttributes attrs;

  bgp::Asn origin_as() const { return attrs.as_path.origin_as(); }
  std::string to_string() const;
};

/// Iterates elems over an in-memory MRT stream.
class ElemReader {
 public:
  explicit ElemReader(std::span<const std::uint8_t> data) : reader_(data) {}

  /// Next elem, or nullopt at end of stream. Throws DecodeError on
  /// malformed input.
  std::optional<BgpElem> next();

 private:
  void load_record();

  ByteReader reader_;
  std::vector<BgpElem> pending_;  // elems of the current record, reversed
  std::vector<bgp::Asn> peer_table_;
};

/// Reads every elem of an MRT file. Throws DecodeError / std::runtime_error.
std::vector<BgpElem> read_elems_from_file(const std::string& path);

/// Convenience: decode all elems from a buffer.
std::vector<BgpElem> read_elems(std::span<const std::uint8_t> data);

}  // namespace artemis::mrt

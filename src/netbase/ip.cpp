#include "netbase/ip.hpp"

#include <cstdio>
#include <cstring>

#include "util/strings.hpp"

namespace artemis::net {

IpAddress IpAddress::v4(std::uint32_t host_order) {
  IpAddress a;
  a.family_ = IpFamily::kIpv4;
  a.bytes_[0] = static_cast<std::uint8_t>(host_order >> 24);
  a.bytes_[1] = static_cast<std::uint8_t>(host_order >> 16);
  a.bytes_[2] = static_cast<std::uint8_t>(host_order >> 8);
  a.bytes_[3] = static_cast<std::uint8_t>(host_order);
  return a;
}

IpAddress IpAddress::v6(std::uint64_t hi, std::uint64_t lo) {
  IpAddress a;
  a.family_ = IpFamily::kIpv6;
  for (int i = 0; i < 8; ++i) {
    a.bytes_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(hi >> (56 - 8 * i));
    a.bytes_[static_cast<std::size_t>(8 + i)] = static_cast<std::uint8_t>(lo >> (56 - 8 * i));
  }
  return a;
}

IpAddress IpAddress::from_bytes(IpFamily family, const std::uint8_t* bytes) {
  IpAddress a;
  a.family_ = family;
  std::memcpy(a.bytes_.data(), bytes, family == IpFamily::kIpv4 ? 4 : 16);
  return a;
}

std::uint32_t IpAddress::v4_value() const {
  return (static_cast<std::uint32_t>(bytes_[0]) << 24) |
         (static_cast<std::uint32_t>(bytes_[1]) << 16) |
         (static_cast<std::uint32_t>(bytes_[2]) << 8) | static_cast<std::uint32_t>(bytes_[3]);
}

namespace {

std::optional<IpAddress> parse_v4(std::string_view text) {
  const auto parts = split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    const auto octet = parse_u32(part, 255);
    if (!octet) return std::nullopt;
    // Reject leading zeros ("01") to keep representations canonical.
    if (part.size() > 1 && part[0] == '0') return std::nullopt;
    value = (value << 8) | *octet;
  }
  return IpAddress::v4(value);
}

std::optional<std::uint16_t> parse_hex16(std::string_view s) {
  if (s.empty() || s.size() > 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const char c : s) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return static_cast<std::uint16_t>(value);
}

std::optional<IpAddress> parse_v6(std::string_view text) {
  // Split around at most one "::".
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  const std::size_t gap = text.find("::");
  std::string_view head_text = text;
  std::string_view tail_text;
  bool has_gap = false;
  if (gap != std::string_view::npos) {
    has_gap = true;
    head_text = text.substr(0, gap);
    tail_text = text.substr(gap + 2);
    if (tail_text.find("::") != std::string_view::npos) return std::nullopt;
  }
  const auto parse_groups = [](std::string_view t, std::vector<std::uint16_t>& out) {
    if (t.empty()) return true;
    for (const auto g : split(t, ':')) {
      const auto h = parse_hex16(g);
      if (!h) return false;
      out.push_back(*h);
    }
    return true;
  };
  if (!parse_groups(head_text, head) || !parse_groups(tail_text, tail)) return std::nullopt;
  const std::size_t total = head.size() + tail.size();
  if (has_gap) {
    if (total >= 8) return std::nullopt;  // "::" must compress >= 1 group
  } else if (total != 8) {
    return std::nullopt;
  }
  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < head.size(); ++i) groups[i] = head[i];
  for (std::size_t i = 0; i < tail.size(); ++i) groups[8 - tail.size() + i] = tail[i];
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 4; ++i) hi = (hi << 16) | groups[static_cast<std::size_t>(i)];
  for (int i = 4; i < 8; ++i) lo = (lo << 16) | groups[static_cast<std::size_t>(i)];
  return IpAddress::v6(hi, lo);
}

}  // namespace

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) return parse_v6(text);
  return parse_v4(text);
}

std::string IpAddress::to_string() const {
  char buf[64];
  if (is_v4()) {
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bytes_[0], bytes_[1], bytes_[2], bytes_[3]);
    return buf;
  }
  // RFC 5952: compress the longest run of zero groups (leftmost on ties).
  std::uint16_t groups[8];
  for (int i = 0; i < 8; ++i) {
    const auto idx = static_cast<std::size_t>(2 * i);
    groups[i] = static_cast<std::uint16_t>((bytes_[idx] << 8) | bytes_[idx + 1]);
  }
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;  // single zero group is not compressed
  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      if (i == 8) return out;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof(buf), "%x", groups[i]);
    out += buf;
    ++i;
  }
  return out;
}

}  // namespace artemis::net

// IP addresses (IPv4 and IPv6) as immutable value types.
//
// Addresses are stored big-endian in a fixed 16-byte array; IPv4 uses the
// first 4 bytes. All prefix arithmetic in prefix.hpp operates on this
// canonical byte form, so IPv4 and IPv6 share one code path.
#pragma once

#include <array>
#include <bit>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace artemis::net {

enum class IpFamily : std::uint8_t { kIpv4 = 4, kIpv6 = 6 };

/// Number of address bits for a family (32 or 128).
constexpr int family_bits(IpFamily f) { return f == IpFamily::kIpv4 ? 32 : 128; }

/// An immutable IPv4 or IPv6 address.
class IpAddress {
 public:
  /// Default-constructs 0.0.0.0.
  IpAddress() = default;

  /// IPv4 from a host-order 32-bit value, e.g. 0x0A000001 == 10.0.0.1.
  static IpAddress v4(std::uint32_t host_order);

  /// IPv6 from two host-order 64-bit halves (hi = first 8 bytes).
  static IpAddress v6(std::uint64_t hi, std::uint64_t lo);

  /// From raw big-endian bytes (4 or 16 of them, per family).
  static IpAddress from_bytes(IpFamily family, const std::uint8_t* bytes);

  /// Parses dotted-quad or RFC 4291 text ("10.0.0.1", "2001:db8::1").
  /// Returns nullopt on malformed input.
  static std::optional<IpAddress> parse(std::string_view text);

  IpFamily family() const { return family_; }
  bool is_v4() const { return family_ == IpFamily::kIpv4; }
  int bits() const { return family_bits(family_); }

  /// Host-order value; only valid for IPv4.
  std::uint32_t v4_value() const;

  /// Raw big-endian bytes; 4 valid bytes for IPv4, 16 for IPv6.
  const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }

  /// The i-th address bit, MSB-first (bit 0 is the top bit). i < bits().
  /// Inline: called per bit level on the trie/RIB hot paths.
  bool bit(int i) const {
    const auto byte = static_cast<std::size_t>(i / 8);
    const int shift = 7 - (i % 8);
    return ((bytes_[byte] >> shift) & 1U) != 0;
  }

  /// Returns a copy with the i-th bit set/cleared.
  IpAddress with_bit(int i, bool value) const {
    IpAddress out = *this;
    const auto byte = static_cast<std::size_t>(i / 8);
    const auto mask = static_cast<std::uint8_t>(1U << (7 - (i % 8)));
    if (value) {
      out.bytes_[byte] |= mask;
    } else {
      out.bytes_[byte] &= static_cast<std::uint8_t>(~mask);
    }
    return out;
  }

  /// Returns a copy with all bits below `prefix_len` kept and the rest
  /// cleared — i.e. the network address for that prefix length.
  IpAddress masked(int prefix_len) const {
    auto [hi, lo] = words();
    if (prefix_len <= 0) {
      hi = 0;
      lo = 0;
    } else if (prefix_len < 64) {
      hi &= ~0ULL << (64 - prefix_len);
      lo = 0;
    } else if (prefix_len == 64) {
      lo = 0;
    } else if (prefix_len < 128) {
      lo &= ~0ULL << (128 - prefix_len);
    }
    return from_words(family_, hi, lo);
  }

  /// The address as two MSB-first 64-bit words: bit i of the address is
  /// bit (63 - i%64) of words[i/64]. IPv4 occupies the top 32 bits of
  /// .first; everything else is zero. This is the trie's key form: whole
  /// prefixes compare with two XORs + countl_zero instead of per-bit calls.
  std::pair<std::uint64_t, std::uint64_t> words() const {
    return {load_be64(0), load_be64(8)};
  }

  /// Rebuilds an address from the words() form.
  static IpAddress from_words(IpFamily family, std::uint64_t hi, std::uint64_t lo) {
    IpAddress a;
    a.family_ = family;
    a.store_be64(0, hi);
    a.store_be64(8, lo);
    return a;
  }

  /// Length (in bits) of the longest common prefix with `other`.
  /// Addresses of different families share no prefix (returns 0).
  int common_prefix_len(const IpAddress& other) const {
    if (family_ != other.family_) return 0;
    const auto [a_hi, a_lo] = words();
    const auto [b_hi, b_lo] = other.words();
    int common;
    const std::uint64_t xh = a_hi ^ b_hi;
    if (xh != 0) {
      common = std::countl_zero(xh);
    } else {
      const std::uint64_t xl = a_lo ^ b_lo;
      common = xl != 0 ? 64 + std::countl_zero(xl) : 128;
    }
    const int total = bits();
    return common < total ? common : total;
  }

  std::string to_string() const;

  auto operator<=>(const IpAddress&) const = default;

 private:
  std::uint64_t load_be64(int offset) const {
    // memcpy + byteswap compiles to a single bswap load; the equivalent
    // byte-shift loop does not (checked on GCC 12).
    std::uint64_t w;
    __builtin_memcpy(&w, bytes_.data() + offset, 8);
    if constexpr (std::endian::native == std::endian::little) {
      w = __builtin_bswap64(w);
    }
    return w;
  }

  void store_be64(int offset, std::uint64_t w) {
    if constexpr (std::endian::native == std::endian::little) {
      w = __builtin_bswap64(w);
    }
    __builtin_memcpy(bytes_.data() + offset, &w, 8);
  }

  IpFamily family_ = IpFamily::kIpv4;
  std::array<std::uint8_t, 16> bytes_{};  // big-endian, zero padded
};

}  // namespace artemis::net

// IP addresses (IPv4 and IPv6) as immutable value types.
//
// Addresses are stored big-endian in a fixed 16-byte array; IPv4 uses the
// first 4 bytes. All prefix arithmetic in prefix.hpp operates on this
// canonical byte form, so IPv4 and IPv6 share one code path.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace artemis::net {

enum class IpFamily : std::uint8_t { kIpv4 = 4, kIpv6 = 6 };

/// Number of address bits for a family (32 or 128).
constexpr int family_bits(IpFamily f) { return f == IpFamily::kIpv4 ? 32 : 128; }

/// An immutable IPv4 or IPv6 address.
class IpAddress {
 public:
  /// Default-constructs 0.0.0.0.
  IpAddress() = default;

  /// IPv4 from a host-order 32-bit value, e.g. 0x0A000001 == 10.0.0.1.
  static IpAddress v4(std::uint32_t host_order);

  /// IPv6 from two host-order 64-bit halves (hi = first 8 bytes).
  static IpAddress v6(std::uint64_t hi, std::uint64_t lo);

  /// From raw big-endian bytes (4 or 16 of them, per family).
  static IpAddress from_bytes(IpFamily family, const std::uint8_t* bytes);

  /// Parses dotted-quad or RFC 4291 text ("10.0.0.1", "2001:db8::1").
  /// Returns nullopt on malformed input.
  static std::optional<IpAddress> parse(std::string_view text);

  IpFamily family() const { return family_; }
  bool is_v4() const { return family_ == IpFamily::kIpv4; }
  int bits() const { return family_bits(family_); }

  /// Host-order value; only valid for IPv4.
  std::uint32_t v4_value() const;

  /// Raw big-endian bytes; 4 valid bytes for IPv4, 16 for IPv6.
  const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }

  /// The i-th address bit, MSB-first (bit 0 is the top bit). i < bits().
  bool bit(int i) const;

  /// Returns a copy with the i-th bit set/cleared.
  IpAddress with_bit(int i, bool value) const;

  /// Returns a copy with all bits below `prefix_len` kept and the rest
  /// cleared — i.e. the network address for that prefix length.
  IpAddress masked(int prefix_len) const;

  /// Length (in bits) of the longest common prefix with `other`.
  /// Addresses of different families share no prefix (returns 0).
  int common_prefix_len(const IpAddress& other) const;

  std::string to_string() const;

  auto operator<=>(const IpAddress&) const = default;

 private:
  IpFamily family_ = IpFamily::kIpv4;
  std::array<std::uint8_t, 16> bytes_{};  // big-endian, zero padded
};

}  // namespace artemis::net

#include "netbase/prefix.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace artemis::net {

Prefix::Prefix(IpAddress addr, int length) : addr_(addr.masked(length)), length_(length) {
  if (length < 0 || length > addr.bits()) {
    throw std::out_of_range("prefix length out of range");
  }
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IpAddress::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const auto len_text = text.substr(slash + 1);
  const auto len = parse_u32(len_text, 128);
  if (!len) return std::nullopt;
  if (static_cast<int>(*len) > addr->bits()) return std::nullopt;
  return Prefix(*addr, static_cast<int>(*len));
}

Prefix Prefix::must_parse(std::string_view text) {
  const auto p = parse(text);
  if (!p) throw std::invalid_argument("bad prefix: " + std::string(text));
  return *p;
}

bool Prefix::contains(const IpAddress& addr) const {
  if (addr.family() != addr_.family()) return false;
  return addr.common_prefix_len(addr_) >= length_;
}

bool Prefix::covers(const Prefix& other) const {
  if (other.family() != family()) return false;
  return other.length_ >= length_ && contains(other.addr_);
}

bool Prefix::overlaps(const Prefix& other) const {
  return covers(other) || other.covers(*this);
}

std::pair<Prefix, Prefix> Prefix::split() const {
  if (length_ >= max_length()) {
    throw std::logic_error("cannot split a host prefix");
  }
  const Prefix low(addr_, length_ + 1);
  const Prefix high(addr_.with_bit(length_, true), length_ + 1);
  return {low, high};
}

std::vector<Prefix> Prefix::deaggregate(int target_len) const {
  if (target_len < length_ || target_len > max_length()) {
    throw std::out_of_range("deaggregate target out of range");
  }
  if (target_len - length_ > 12) {
    throw std::out_of_range("deaggregate fan-out too large");
  }
  std::vector<Prefix> out{*this};
  for (int l = length_; l < target_len; ++l) {
    std::vector<Prefix> next;
    next.reserve(out.size() * 2);
    for (const auto& p : out) {
      const auto [lo, hi] = p.split();
      next.push_back(lo);
      next.push_back(hi);
    }
    out = std::move(next);
  }
  return out;
}

Prefix Prefix::parent() const {
  if (length_ == 0) throw std::logic_error("/0 has no parent");
  return Prefix(addr_, length_ - 1);
}

std::uint64_t Prefix::size_v4() const {
  if (!is_v4()) throw std::logic_error("size_v4 on IPv6 prefix");
  return 1ULL << (32 - length_);
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

}  // namespace artemis::net

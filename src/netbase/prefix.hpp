// CIDR prefixes and prefix arithmetic.
//
// The mitigation service's core operation is *de-aggregation*: splitting a
// hijacked prefix into its two more-specific halves (10.0.0.0/23 ->
// 10.0.0.0/24 + 10.0.1.0/24). This header provides that, plus the
// containment/overlap predicates the detection service uses to match
// observed routes against the list of owned prefixes.
#pragma once

#include <compare>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/ip.hpp"

namespace artemis::net {

/// An IP prefix in CIDR form. Invariant: the address is stored in network
/// form — all bits beyond `length()` are zero (enforced on construction).
class Prefix {
 public:
  /// Default: 0.0.0.0/0.
  Prefix() = default;

  /// Canonicalizes: host bits beyond `length` are cleared.
  Prefix(IpAddress addr, int length);

  /// Parses "10.0.0.0/23" or "2001:db8::/32". Returns nullopt on bad text
  /// or out-of-range length.
  static std::optional<Prefix> parse(std::string_view text);

  /// Parse-or-throw convenience for literals in tests and examples.
  static Prefix must_parse(std::string_view text);

  /// Builds a prefix from an address that is already in network form (all
  /// bits beyond `length` zero), skipping re-canonicalization. The trie
  /// uses this on its hot paths; callers must uphold the invariant.
  static Prefix from_canonical(const IpAddress& addr, int length) {
    Prefix p;
    p.addr_ = addr;
    p.length_ = length;
    return p;
  }

  const IpAddress& address() const { return addr_; }
  int length() const { return length_; }
  IpFamily family() const { return addr_.family(); }
  bool is_v4() const { return addr_.is_v4(); }

  /// Maximum length for this family (32 or 128).
  int max_length() const { return addr_.bits(); }

  /// True if `addr` falls inside this prefix.
  bool contains(const IpAddress& addr) const;

  /// True if `other` is equal to or more specific than this prefix.
  bool covers(const Prefix& other) const;

  /// True if the two prefixes share any address (one covers the other).
  bool overlaps(const Prefix& other) const;

  /// Splits into the two /(length+1) halves. Requires length < max_length().
  std::pair<Prefix, Prefix> split() const;

  /// All sub-prefixes of `target_len` covering the same space, in address
  /// order. Requires length() <= target_len and a sane fan-out
  /// (target_len - length() <= 12 to bound the result at 4096 prefixes).
  std::vector<Prefix> deaggregate(int target_len) const;

  /// The enclosing /(length-1) prefix. Requires length() > 0.
  Prefix parent() const;

  /// Number of addresses covered (IPv4 only; saturates at 2^32).
  std::uint64_t size_v4() const;

  std::string to_string() const;

  auto operator<=>(const Prefix&) const = default;

 private:
  IpAddress addr_;
  int length_ = 0;
};

}  // namespace artemis::net

template <>
struct std::hash<artemis::net::Prefix> {
  std::size_t operator()(const artemis::net::Prefix& p) const noexcept {
    // FNV-1a over the address bytes and the length.
    std::size_t h = 0xcbf29ce484222325ULL;
    for (const auto b : p.address().bytes()) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
    h ^= static_cast<std::size_t>(p.length());
    h *= 0x100000001b3ULL;
    h ^= static_cast<std::size_t>(p.family());
    return h;
  }
};

// A path-compressed (Patricia-style) binary radix trie keyed by IP
// prefixes, backed by a contiguous node arena, with an adaptive direct-
// indexed stride table accelerating large IPv4 tables.
//
// This is the lookup structure behind every RIB and behind the detection
// service's owned-prefix matching: longest-prefix match answers "which of
// my routes forwards this address", and subtree iteration answers "which
// observed routes fall inside an owned prefix" (sub-prefix hijacks).
//
// Layout
// ------
// Nodes live in one std::vector<Node> pool and refer to each other by
// uint32_t index (kNil = absent); indices 0 and 1 are the permanent IPv4
// and IPv6 roots. Each node stores its *entire* key as two MSB-first
// 64-bit words plus a bit length, so an edge implicitly carries the
// skip-label from its parent's length to its own: a /24 insert costs
// O(branching points), not 24 heap allocations. Traversal compares whole
// prefixes with two XORs + countl_zero on the raw words instead of
// calling IpAddress::bit() per level.
//
// Values sit in a std::deque side table (stable addresses under growth)
// indexed by the node's value slot; erased slots go on a free list and
// are reused. erase() clears the value but leaves nodes in place — RIB
// churn makes free-and-restructure a pessimization, and a dead node is
// just an extra branching point.
//
// Stride tables
// -------------
// Once a family's subtrie outgrows a threshold, direct-indexed tables
// over the top S bits of that family's key space (the DIR-24-8 /
// poptrie recipe) map every S-bit chunk to {deepest trie node on that
// path, deepest *valued* node on that path}. A lookup or descent for a
// key of length >= S then starts S bits down with the covering best
// already in hand — one table load replaces the entire dense upper
// region of the trie. Tables form a per-family cascade added as the
// subtrie grows — v4: S = 8, 10, 12, 14, 16, 20 (kStrideSchedule4);
// v6: S = 16, 20, 24 over the top bits of the upper 64-bit word
// (kStrideSchedule6) — and an operation uses the largest stride <= its
// key length, so short-prefix inserts and erases skip the dense region
// too, not just full-address lookups. The v6 strides stop at 24: a
// direct table on the /32 or /48 allocation boundaries would need 2^32+
// slots, while S = 24 (16M slots, sized like DIR-24-8's primary table)
// already absorbs the RIR /12s and the dense bits below them; path
// compression carries the sparse remainder. Small tries — the simulator
// keeps thousands of per-AS RIBs — never allocate any table, and each
// family activates on its own node count, so a large v4 RIB with a
// handful of v6 routes builds no v6 table.
//
// Zero-allocation invariant: find(), lookup(), lookup_covering() and the
// visit_* walks never allocate. insert() allocates only when it creates
// nodes (at most two) or a fresh value slot; overwrites and re-inserts
// after erase() reuse existing storage.
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "netbase/prefix.hpp"

namespace artemis::net {

/// Maps Prefix -> T with longest-prefix-match and covered-subtree queries.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() { init_roots(); }

  /// Inserts or overwrites. Returns true if the prefix was newly inserted.
  bool insert(const Prefix& prefix, T value) {
    const auto [hi, lo] = prefix.address().words();
    const int plen = prefix.length();
    const bool v4 = prefix.is_v4();
    std::uint32_t cur = start_node(hi, plen, v4);
    for (;;) {
      // Invariant: nodes_[cur].len <= plen and its key matches (hi,lo).
      if (nodes_[cur].len == plen) {
        return set_value(cur, std::move(value), v4);
      }
      const bool b = key_bit(hi, lo, nodes_[cur].len);
      const std::uint32_t c = nodes_[cur].child[b];
      if (c == kNil) {
        const std::uint32_t leaf = new_node(hi, lo, plen, v4);
        nodes_[cur].child[b] = leaf;
        return set_value(leaf, std::move(value), v4);
      }
      const std::uint64_t child_hi = nodes_[c].key_hi;
      const std::uint64_t child_lo = nodes_[c].key_lo;
      const int child_len = nodes_[c].len;
      int m = common_bits(hi, lo, child_hi, child_lo);
      const int cap = plen < child_len ? plen : child_len;
      if (m > cap) m = cap;
      if (m == child_len) {  // full edge match, child no more specific than key
        cur = c;
        continue;
      }
      if (m == plen) {
        // The new prefix sits on the edge above the child: splice it in.
        const std::uint32_t mid = new_node(hi, lo, plen, v4);
        nodes_[mid].child[key_bit(child_hi, child_lo, plen)] = c;
        nodes_[cur].child[b] = mid;
        return set_value(mid, std::move(value), v4);
      }
      // Keys diverge at bit m (< plen, < child_len): split the edge with an
      // internal node holding the common bits, then hang both sides off it.
      std::uint64_t mid_hi = hi;
      std::uint64_t mid_lo = lo;
      mask_words(mid_hi, mid_lo, m);
      const std::uint32_t mid = new_node(mid_hi, mid_lo, m, v4);
      const std::uint32_t leaf = new_node(hi, lo, plen, v4);
      const bool key_side = key_bit(hi, lo, m);
      nodes_[mid].child[key_side] = leaf;
      nodes_[mid].child[!key_side] = c;
      nodes_[cur].child[b] = mid;
      return set_value(leaf, std::move(value), v4);
    }
  }

  /// Removes an exact prefix. Returns true if it was present. Nodes stay
  /// in place (value slots are recycled); re-insertion reuses them.
  bool erase(const Prefix& prefix) {
    const std::uint32_t idx = descend(prefix);
    if (idx == kNil || nodes_[idx].value == kNil) return false;
    values_[nodes_[idx].value].reset();
    free_values_.push_back(nodes_[idx].value);
    nodes_[idx].value = kNil;
    --size_;
    const bool v4 = prefix.is_v4();
    const FamilyState& f = fam(v4);
    if (!f.tables.empty() && nodes_[idx].len <= f.tables.back().stride) {
      table_erase_value(idx, v4);
    }
    return true;
  }

  /// Exact-match lookup.
  const T* find(const Prefix& prefix) const {
    const std::uint32_t idx = descend(prefix);
    if (idx == kNil || nodes_[idx].value == kNil) return nullptr;
    return &*values_[nodes_[idx].value];
  }

  T* find(const Prefix& prefix) {
    return const_cast<T*>(static_cast<const PrefixTrie*>(this)->find(prefix));
  }

  /// Longest-prefix match for a full address. Returns the matched prefix
  /// and value, or nullopt if nothing covers the address.
  std::optional<std::pair<Prefix, const T*>> lookup(const IpAddress& addr) const {
    const auto [hi, lo] = addr.words();
    const std::uint32_t best = best_on_path(hi, lo, addr.bits(), addr.is_v4());
    if (best == kNil) return std::nullopt;
    return std::make_pair(node_prefix(best, addr.family()),
                          &*values_[nodes_[best].value]);
  }

  /// The most-specific stored prefix covering `p` (including `p` itself).
  std::optional<std::pair<Prefix, const T*>> lookup_covering(const Prefix& p) const {
    const auto [hi, lo] = p.address().words();
    const std::uint32_t best = best_on_path(hi, lo, p.length(), p.is_v4());
    if (best == kNil) return std::nullopt;
    return std::make_pair(node_prefix(best, p.family()),
                          &*values_[nodes_[best].value]);
  }

  /// Visits every stored entry covering `p` (equal or less specific) in
  /// root-to-leaf order — i.e. all ancestors of `p` including `p` itself.
  template <typename F>
  void visit_covering(const Prefix& p, F&& fn) const {
    const auto [hi, lo] = p.address().words();
    const int plen = p.length();
    std::uint32_t cur = root_index(p.family());
    for (;;) {
      const Node& n = nodes_[cur];
      if (n.value != kNil) fn(node_prefix(cur, p.family()), *values_[n.value]);
      if (n.len >= plen) return;
      const std::uint32_t c = n.child[key_bit(hi, lo, n.len)];
      if (c == kNil) return;
      const Node& ch = nodes_[c];
      if (ch.len > plen || common_bits(hi, lo, ch.key_hi, ch.key_lo) < ch.len) return;
      cur = c;
    }
  }

  /// Thin std::function overload for callers holding a type-erased visitor.
  void visit_covering(const Prefix& p,
                      const std::function<void(const Prefix&, const T&)>& fn) const {
    visit_covering<const std::function<void(const Prefix&, const T&)>&>(p, fn);
  }

  /// Visits every stored entry covered by `p` (equal or more specific),
  /// in depth-first address order.
  template <typename F>
  void visit_covered(const Prefix& p, F&& fn) const {
    const auto [hi, lo] = p.address().words();
    const int plen = p.length();
    std::uint32_t cur = root_index(p.family());
    for (;;) {
      const Node& n = nodes_[cur];
      if (n.len >= plen) {
        visit_subtree(cur, p.family(), fn);
        return;
      }
      const std::uint32_t c = n.child[key_bit(hi, lo, n.len)];
      if (c == kNil) return;
      const Node& ch = nodes_[c];
      const int cap = plen < ch.len ? plen : static_cast<int>(ch.len);
      if (common_bits(hi, lo, ch.key_hi, ch.key_lo) < cap) return;
      cur = c;
    }
  }

  void visit_covered(const Prefix& p,
                     const std::function<void(const Prefix&, const T&)>& fn) const {
    visit_covered<const std::function<void(const Prefix&, const T&)>&>(p, fn);
  }

  /// Visits all entries of both families.
  template <typename F>
  void visit_all(F&& fn) const {
    visit_subtree(kRoot4, IpFamily::kIpv4, fn);
    visit_subtree(kRoot6, IpFamily::kIpv6, fn);
  }

  void visit_all(const std::function<void(const Prefix&, const T&)>& fn) const {
    visit_all<const std::function<void(const Prefix&, const T&)>&>(fn);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    nodes_.clear();
    values_.clear();
    free_values_.clear();
    for (FamilyState& f : fam_) {
      f.tables.clear();
      f.by_len.fill(-1);
      f.nodes = 0;
    }
    size_ = 0;
    init_roots();
  }

  /// Benchmark/test knob: with stride tables off every operation uses the
  /// plain path-compressed descent (the pre-cascade behavior). Call on an
  /// empty trie; existing tables are dropped and none are built.
  void set_stride_tables_enabled(bool enabled) {
    tables_enabled_ = enabled;
    if (!enabled) {
      for (FamilyState& f : fam_) {
        f.tables.clear();
        f.by_len.fill(-1);
      }
    }
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint32_t kRoot4 = 0;
  static constexpr std::uint32_t kRoot6 = 1;

  struct alignas(32) Node {  // exactly one half cache line, never straddling
    std::uint64_t key_hi = 0;  ///< full key, MSB-first, canonical (bits >= len are 0)
    std::uint64_t key_lo = 0;
    std::uint32_t child[2] = {kNil, kNil};
    std::uint32_t value = kNil;  ///< slot in values_, kNil if no stored entry
    std::uint8_t len = 0;        ///< key length in bits (0..128)
  };

  /// One stride-table slot: where to resume the descent for this S-bit
  /// chunk, and the best (deepest valued, len <= stride) covering node.
  /// 8 bytes so both land in one cache line load.
  struct Slot {
    std::uint32_t jump = kRoot4;
    std::uint32_t best = kNil;
  };

  struct StrideTable {
    int stride = 0;
    std::uint32_t root = kRoot4;  ///< family root (the default jump target)
    std::vector<Slot> slots;      ///< size 1 << stride

    std::uint32_t slot_of(std::uint64_t hi) const {
      return static_cast<std::uint32_t>(hi >> (64 - stride));
    }
    /// First slot / slot count covered by a canonical key of `len`
    /// (<= stride) bits. Both families index by the top bits of the
    /// upper 64-bit word (IPv4 occupies its top 32 bits).
    std::pair<std::uint32_t, std::uint32_t> range(std::uint64_t hi, int len) const {
      return {slot_of(hi), std::uint32_t{1} << (stride - len)};
    }
  };

  /// Per-family cascade state: its stride tables, the len -> table index
  /// shortcut, and how many arena nodes the family's subtrie holds (the
  /// activation gauge — each family pays for tables only at its own
  /// scale).
  struct FamilyState {
    std::vector<StrideTable> tables;  ///< ascending stride
    /// Index into tables of the largest stride <= len, -1 if none; one
    /// load replaces scanning the cascade on every operation. Indexed by
    /// min(len, 64) — all strides fit the upper word.
    std::array<std::int8_t, 65> by_len = [] {
      std::array<std::int8_t, 65> a{};
      a.fill(-1);
      return a;
    }();
    std::size_t nodes = 0;  ///< nodes created for this family (never freed)
  };

  FamilyState& fam(bool v4) { return fam_[v4 ? 0 : 1]; }
  const FamilyState& fam(bool v4) const { return fam_[v4 ? 0 : 1]; }

  static std::uint32_t root_index(IpFamily f) {
    return f == IpFamily::kIpv4 ? kRoot4 : kRoot6;
  }

  /// Leading bits shared by two raw 128-bit keys.
  static int common_bits(std::uint64_t a_hi, std::uint64_t a_lo, std::uint64_t b_hi,
                         std::uint64_t b_lo) {
    const std::uint64_t xh = a_hi ^ b_hi;
    if (xh != 0) return std::countl_zero(xh);
    const std::uint64_t xl = a_lo ^ b_lo;
    if (xl != 0) return 64 + std::countl_zero(xl);
    return 128;
  }

  /// Bit i (MSB-first) of a two-word key.
  static bool key_bit(std::uint64_t hi, std::uint64_t lo, int i) {
    const std::uint64_t w = i < 64 ? hi : lo;
    return ((w >> (63 - (i & 63))) & 1u) != 0;
  }

  /// Clears all bits at position >= len.
  static void mask_words(std::uint64_t& hi, std::uint64_t& lo, int len) {
    if (len <= 0) {
      hi = 0;
      lo = 0;
    } else if (len < 64) {
      hi &= ~0ULL << (64 - len);
      lo = 0;
    } else if (len == 64) {
      lo = 0;
    } else if (len < 128) {
      lo &= ~0ULL << (128 - len);
    }
  }

  Prefix node_prefix(std::uint32_t idx, IpFamily family) const {
    const Node& n = nodes_[idx];  // node keys are canonical by construction
    return Prefix::from_canonical(IpAddress::from_words(family, n.key_hi, n.key_lo),
                                  n.len);
  }

  // ------------------------------------------------------------ stride tables

  struct StrideStep {
    std::size_t nodes;
    int stride;
  };

  /// Family-subtrie sizes at which each table of the v4 cascade is added.
  /// The dense 2-bit spacing keeps any key of length >= 8 within two
  /// levels of a table jump. Small tries (the simulator keeps thousands
  /// of them) never allocate any.
  static constexpr StrideStep kStrideSchedule4[] = {{1024, 8},   {1024, 10},
                                                    {1024, 12},  {1024, 14},
                                                    {65536, 16}, {1048576, 20}};
  /// The v6 cascade over the top bits of the upper word. S = 24 is the
  /// ceiling (16M slots × 8 B = 128 MB, the DIR-24-8 primary-table
  /// shape); it activates only for genuinely large tables, where it
  /// absorbs the dense RIR /12 region that dominates real v6 RIBs.
  static constexpr StrideStep kStrideSchedule6[] = {{1024, 16},
                                                    {16384, 20},
                                                    {262144, 24}};

  /// The largest-stride table usable for a `len`-bit key of the family,
  /// or nullptr.
  const StrideTable* table_for(int len, bool v4) const {
    const FamilyState& f = fam(v4);
    const int ti = f.by_len[len > 64 ? 64 : len];
    return ti < 0 ? nullptr : &f.tables[static_cast<std::size_t>(ti)];
  }

  /// Where a descent for a key of length `len` may start: every node
  /// above the chosen slot's jump target provably matches the key.
  std::uint32_t start_node(std::uint64_t hi, int len, bool v4) const {
    if (const StrideTable* t = table_for(len, v4)) {
      return t->slots[t->slot_of(hi)].jump;
    }
    return v4 ? kRoot4 : kRoot6;
  }

  /// Registers a freshly created node with every family table it fits.
  void table_add_node(std::uint32_t idx, bool v4) {
    const Node& n = nodes_[idx];
    for (auto& t : fam(v4).tables) {
      if (n.len > t.stride) continue;
      const auto [first, count] = t.range(n.key_hi, n.len);
      for (std::uint32_t s = first; s < first + count; ++s) {
        if (nodes_[t.slots[s].jump].len < n.len) t.slots[s].jump = idx;
      }
    }
  }

  /// Registers a node that just gained a value.
  void table_add_value(std::uint32_t idx, bool v4) {
    const Node& n = nodes_[idx];
    for (auto& t : fam(v4).tables) {
      if (n.len > t.stride) continue;
      const auto [first, count] = t.range(n.key_hi, n.len);
      for (std::uint32_t s = first; s < first + count; ++s) {
        if (t.slots[s].best == kNil || nodes_[t.slots[s].best].len < n.len) {
          t.slots[s].best = idx;
        }
      }
    }
  }

  /// Unregisters a node whose value was just erased. All affected slots
  /// share the node's root path, so the replacement — the deepest valued
  /// proper ancestor — is the same for every one of them.
  void table_erase_value(std::uint32_t idx, bool v4) {
    const Node& n = nodes_[idx];
    std::uint32_t replacement = kNil;
    std::uint32_t cur = v4 ? kRoot4 : kRoot6;
    while (cur != idx) {
      const Node& a = nodes_[cur];
      if (a.value != kNil) replacement = cur;
      cur = a.child[key_bit(n.key_hi, n.key_lo, a.len)];
      assert(cur != kNil);  // idx is reachable from the root by construction
    }
    for (auto& t : fam(v4).tables) {
      if (n.len > t.stride) continue;
      const auto [first, count] = t.range(n.key_hi, n.len);
      for (std::uint32_t s = first; s < first + count; ++s) {
        if (t.slots[s].best == idx) t.slots[s].best = replacement;
      }
    }
  }

  /// Adds the family's tables whose subtrie-size threshold has been
  /// crossed.
  void maybe_grow_tables(bool v4) {
    if (!tables_enabled_) return;
    const StrideStep* schedule = v4 ? kStrideSchedule4 : kStrideSchedule6;
    const std::size_t steps =
        v4 ? std::size(kStrideSchedule4) : std::size(kStrideSchedule6);
    FamilyState& f = fam(v4);
    for (std::size_t i = 0; i < steps; ++i) {
      const StrideStep& step = schedule[i];
      if (f.nodes < step.nodes) break;
      if (!f.tables.empty() && f.tables.back().stride >= step.stride) continue;
      StrideTable t;
      t.stride = step.stride;
      t.root = v4 ? kRoot4 : kRoot6;
      t.slots.assign(std::size_t{1} << step.stride, Slot{t.root, kNil});
      f.tables.push_back(std::move(t));
      rebuild_table(f.tables.back(), f.tables.back().root);
      for (int len = step.stride; len <= 64; ++len) {
        f.by_len[len] = static_cast<std::int8_t>(f.tables.size() - 1);
      }
    }
  }

  /// Pre-order DFS: parents fill their slot range first, children then
  /// overwrite their (deeper) subranges.
  void rebuild_table(StrideTable& t, std::uint32_t idx) {
    const Node& n = nodes_[idx];
    if (n.len > t.stride) return;
    if (idx != t.root) {
      const auto [first, count] = t.range(n.key_hi, n.len);
      for (std::uint32_t s = first; s < first + count; ++s) t.slots[s].jump = idx;
    }
    if (n.value != kNil) {
      const auto [first, count] = t.range(n.key_hi, n.len);
      for (std::uint32_t s = first; s < first + count; ++s) t.slots[s].best = idx;
    }
    if (n.child[0] != kNil) rebuild_table(t, n.child[0]);
    if (n.child[1] != kNil) rebuild_table(t, n.child[1]);
  }

  // ---------------------------------------------------------------- plumbing

  std::uint32_t new_node(std::uint64_t hi, std::uint64_t lo, int len, bool v4) {
    mask_words(hi, lo, len);
    Node n;
    n.key_hi = hi;
    n.key_lo = lo;
    n.len = static_cast<std::uint8_t>(len);
    nodes_.push_back(n);
    const auto idx = static_cast<std::uint32_t>(nodes_.size() - 1);
    FamilyState& f = fam(v4);
    f.nodes += 1;
    if (!f.tables.empty()) table_add_node(idx, v4);
    return idx;
  }

  bool set_value(std::uint32_t idx, T&& value, bool v4) {
    Node& n = nodes_[idx];
    if (n.value != kNil) {
      *values_[n.value] = std::move(value);
      return false;
    }
    if (!free_values_.empty()) {
      n.value = free_values_.back();
      free_values_.pop_back();
      values_[n.value].emplace(std::move(value));
    } else {
      n.value = static_cast<std::uint32_t>(values_.size());
      values_.emplace_back(std::in_place, std::move(value));
    }
    ++size_;
    if (!fam(v4).tables.empty()) table_add_value(idx, v4);
    maybe_grow_tables(v4);
    return true;
  }

  /// Exact descent: the node whose key is exactly `p`, or kNil.
  std::uint32_t descend(const Prefix& p) const {
    const auto [hi, lo] = p.address().words();
    const int plen = p.length();
    std::uint32_t cur = start_node(hi, plen, p.is_v4());
    for (;;) {
      const Node& n = nodes_[cur];
      if (n.len == plen) return cur;
      const std::uint32_t c = n.child[key_bit(hi, lo, n.len)];
      if (c == kNil) return kNil;
      const Node& ch = nodes_[c];
      if (ch.len > plen || common_bits(hi, lo, ch.key_hi, ch.key_lo) < ch.len) {
        return kNil;
      }
      cur = c;
    }
  }

  /// Deepest valued node on the path that matches the first `total` key
  /// bits — the longest-prefix-match workhorse.
  std::uint32_t best_on_path(std::uint64_t hi, std::uint64_t lo, int total,
                             bool v4) const {
    std::uint32_t cur = v4 ? kRoot4 : kRoot6;
    std::uint32_t best = kNil;
    if (const StrideTable* t = table_for(total, v4)) {
      const Slot slot = t->slots[t->slot_of(hi)];
      cur = slot.jump;
      best = slot.best;
    }
    for (;;) {
      const Node& n = nodes_[cur];
      if (n.value != kNil) best = cur;
      if (n.len >= total) break;
      const std::uint32_t c = n.child[key_bit(hi, lo, n.len)];
      if (c == kNil) break;
      const Node& ch = nodes_[c];
      if (ch.len > total || common_bits(hi, lo, ch.key_hi, ch.key_lo) < ch.len) break;
      cur = c;
    }
    return best;
  }

  template <typename F>
  void visit_subtree(std::uint32_t idx, IpFamily family, F&& fn) const {
    const Node& n = nodes_[idx];
    if (n.value != kNil) fn(node_prefix(idx, family), *values_[n.value]);
    if (n.child[0] != kNil) visit_subtree(n.child[0], family, fn);
    if (n.child[1] != kNil) visit_subtree(n.child[1], family, fn);
  }

  void init_roots() {
    nodes_.reserve(2);
    nodes_.emplace_back();  // kRoot4
    nodes_.emplace_back();  // kRoot6
  }

  std::vector<Node> nodes_;                 ///< arena; 0/1 are the family roots
  std::deque<std::optional<T>> values_;     ///< stable value slots
  std::vector<std::uint32_t> free_values_;  ///< recycled slots from erase()
  FamilyState fam_[2];                      ///< [0] IPv4, [1] IPv6 cascade state
  bool tables_enabled_ = true;              ///< bench/test knob (see setter)
  std::size_t size_ = 0;
};

}  // namespace artemis::net

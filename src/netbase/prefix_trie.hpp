// A binary radix trie keyed by IP prefixes.
//
// This is the lookup structure behind every RIB and behind the detection
// service's owned-prefix matching: longest-prefix match answers "which of
// my routes forwards this address", and subtree iteration answers "which
// observed routes fall inside an owned prefix" (sub-prefix hijacks).
//
// The trie is a path-uncompressed binary trie: simple, predictable, and
// fast enough (LPM is O(length) bit probes; bench_micro measures it). One
// trie holds one address family; RIBs keep one per family.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "netbase/prefix.hpp"

namespace artemis::net {

/// Maps Prefix -> T with longest-prefix-match and covered-subtree queries.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() = default;

  /// Inserts or overwrites. Returns true if the prefix was newly inserted.
  bool insert(const Prefix& prefix, T value) {
    Node* node = descend_or_create(prefix);
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Removes an exact prefix. Returns true if it was present.
  /// (Nodes are left in place; they are reused on re-insertion. RIB churn
  /// makes free-and-reallocate a pessimization.)
  bool erase(const Prefix& prefix) {
    Node* node = descend(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Exact-match lookup.
  const T* find(const Prefix& prefix) const {
    const Node* node = descend(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value : nullptr;
  }

  T* find(const Prefix& prefix) {
    Node* node = descend(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value : nullptr;
  }

  /// Longest-prefix match for a full address. Returns the matched prefix
  /// and value, or nullopt if nothing covers the address.
  std::optional<std::pair<Prefix, const T*>> lookup(const IpAddress& addr) const {
    const Node* node = &root(addr.family());
    const Node* best = node->value.has_value() ? node : nullptr;
    int best_depth = 0;
    const int total = addr.bits();
    int depth = 0;
    while (depth < total) {
      const Node* next = node->child[addr.bit(depth) ? 1 : 0].get();
      if (next == nullptr) break;
      node = next;
      ++depth;
      if (node->value.has_value()) {
        best = node;
        best_depth = depth;
      }
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(Prefix(addr.masked(best_depth), best_depth), &*best->value);
  }

  /// The most-specific stored prefix covering `p` (including `p` itself).
  std::optional<std::pair<Prefix, const T*>> lookup_covering(const Prefix& p) const {
    const Node* node = &root(p.family());
    const Node* best = node->value.has_value() ? node : nullptr;
    int best_depth = 0;
    int depth = 0;
    while (depth < p.length()) {
      const Node* next = node->child[p.address().bit(depth) ? 1 : 0].get();
      if (next == nullptr) break;
      node = next;
      ++depth;
      if (node->value.has_value()) {
        best = node;
        best_depth = depth;
      }
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(Prefix(p.address().masked(best_depth), best_depth), &*best->value);
  }

  /// Visits every stored entry covering `p` (equal or less specific) in
  /// root-to-leaf order — i.e. all ancestors of `p` including `p` itself.
  void visit_covering(const Prefix& p,
                      const std::function<void(const Prefix&, const T&)>& fn) const {
    const Node* node = &root(p.family());
    if (node->value.has_value()) fn(Prefix(p.address().masked(0), 0), *node->value);
    int depth = 0;
    while (depth < p.length()) {
      node = node->child[p.address().bit(depth) ? 1 : 0].get();
      if (node == nullptr) return;
      ++depth;
      if (node->value.has_value()) {
        fn(Prefix(p.address().masked(depth), depth), *node->value);
      }
    }
  }

  /// Visits every stored entry covered by `p` (equal or more specific),
  /// in depth-first address order.
  void visit_covered(const Prefix& p,
                     const std::function<void(const Prefix&, const T&)>& fn) const {
    const Node* node = descend(p);
    if (node == nullptr) return;
    visit_subtree(*node, p.address(), p.length(), fn);
  }

  /// Visits all entries of both families.
  void visit_all(const std::function<void(const Prefix&, const T&)>& fn) const {
    visit_subtree(root4_, IpAddress::v4(0), 0, fn);
    visit_subtree(root6_, IpAddress::v6(0, 0), 0, fn);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    root4_ = Node{};
    root6_ = Node{};
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  const Node& root(IpFamily f) const { return f == IpFamily::kIpv4 ? root4_ : root6_; }
  Node& root(IpFamily f) { return f == IpFamily::kIpv4 ? root4_ : root6_; }

  const Node* descend(const Prefix& p) const {
    const Node* node = &root(p.family());
    for (int depth = 0; depth < p.length(); ++depth) {
      node = node->child[p.address().bit(depth) ? 1 : 0].get();
      if (node == nullptr) return nullptr;
    }
    return node;
  }

  Node* descend(const Prefix& p) {
    return const_cast<Node*>(static_cast<const PrefixTrie*>(this)->descend(p));
  }

  Node* descend_or_create(const Prefix& p) {
    Node* node = &root(p.family());
    for (int depth = 0; depth < p.length(); ++depth) {
      auto& slot = node->child[p.address().bit(depth) ? 1 : 0];
      if (!slot) slot = std::make_unique<Node>();
      node = slot.get();
    }
    return node;
  }

  void visit_subtree(const Node& node, IpAddress addr, int depth,
                     const std::function<void(const Prefix&, const T&)>& fn) const {
    if (node.value.has_value()) fn(Prefix(addr, depth), *node.value);
    if (depth >= addr.bits()) return;
    if (node.child[0]) visit_subtree(*node.child[0], addr, depth + 1, fn);
    if (node.child[1]) {
      visit_subtree(*node.child[1], addr.with_bit(depth, true), depth + 1, fn);
    }
  }

  Node root4_;
  Node root6_;
  std::size_t size_ = 0;
};

}  // namespace artemis::net

// BatchRing: a bounded ring of recyclable ObservationBatch slots — the
// batch-granular stage handoff of the threaded pipeline.
//
// The per-observation SpscRing handoff costs two copy-assigns and two
// release stores per observation (~50 ns), which swallows the sharding
// win at N>1. NDN-DPDK's poll-mode RX loops show the fix: move
// burst-sized batches through the ring, never single packets. BatchRing
// applies that shape to the pipeline: a fixed pool of pre-reserved
// ObservationBatch slots cycles between two pointer rings —
//
//     producer --acquire--> [free_] --publish--> [filled_] --take--> worker
//        ^                                                            |
//        +------------------------ release --------------------------+
//
// The producer acquires a free slot, scatters observations into it
// (copy-assign into recycled elements: one copy per observation, total),
// and publishes the whole batch with one release store per ~drain_batch
// observations. The worker processes the batch in place and releases the
// pointer back to the free ring — clear() resets the logical size only,
// so every slot's element buffers stay owned by the slot and no memory
// is ever freed on a thread other than the one that allocated it. After
// one warm-up lap of the pool, the steady state allocates nothing
// (tests/detection_alloc_test.cpp enforces this).
//
// Contract: exactly one producer thread (acquire/publish) and one
// consumer thread (take/release), same as SpscRing. The pool is the
// backpressure bound: when every slot is in flight, acquire blocks per
// the configured WaitPolicy — pause/yield for kBusyPoll, a short spin
// then an eventcount sleep (std::atomic::wait, a futex on Linux) for
// kFutex. Wake-ups go through per-side eventcount counters rather than
// the ring indices so a notify can never be lost between a sleeper's
// empty-check and its wait (the counter is bumped by every publish /
// release / wake, so a stale snapshot returns immediately).
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "pipeline/observation_batch.hpp"
#include "pipeline/spsc_ring.hpp"
#include "pipeline/wait_policy.hpp"
#include "telemetry/metrics.hpp"

namespace artemis::pipeline {

class BatchRing {
 public:
  /// `depth` slots (min 2) of `batch_capacity` observations each. Both
  /// internal pointer rings are sized >= depth, so publish/release can
  /// never fail — the pool itself is the only bound.
  BatchRing(std::size_t depth, std::size_t batch_capacity,
            WaitPolicy policy = WaitPolicy::kBusyPoll)
      : batch_capacity_(batch_capacity < 1 ? 1 : batch_capacity),
        policy_(policy),
        filled_(depth < 2 ? 2 : depth),
        free_(depth < 2 ? 2 : depth) {
    const std::size_t slots = depth < 2 ? 2 : depth;
    pool_.reserve(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      auto batch = std::make_unique<ObservationBatch>();
      batch->reserve(batch_capacity_);
      const bool pushed = free_.try_push(batch.get());
      assert(pushed);
      (void)pushed;
      pool_.push_back(std::move(batch));
    }
  }

  BatchRing(const BatchRing&) = delete;
  BatchRing& operator=(const BatchRing&) = delete;

  std::size_t depth() const { return pool_.size(); }
  std::size_t batch_capacity() const { return batch_capacity_; }
  WaitPolicy policy() const { return policy_; }

  /// Attaches telemetry cells (call before the worker starts). Each
  /// counter touch is one relaxed add on a pre-registered atomic, so
  /// instrumentation changes neither ordering nor allocation behavior.
  void set_metrics(const telemetry::RingCounters& metrics) {
    metrics_ = metrics;
  }

  // ---- producer side -----------------------------------------------------

  /// Grabs a recycled slot, or nullptr when every slot is in flight.
  ObservationBatch* try_acquire() {
    ObservationBatch* batch = nullptr;
    return free_.try_pop(batch) ? batch : nullptr;
  }

  /// Grabs a recycled slot, blocking per the wait policy while the
  /// consumer catches up (this is the pipeline's backpressure point).
  ObservationBatch* acquire() {
    int spins = 0;
    for (;;) {
      if (ObservationBatch* batch = try_acquire()) return batch;
      if (spins == 0 && metrics_.producer_waits != nullptr) {
        metrics_.producer_waits->add();  // once per acquire that waited
      }
      if (++spins < 64) {
        cpu_pause();
      } else if (policy_ == WaitPolicy::kBusyPoll) {
        // Yield, don't just pause: on an oversubscribed host the consumer
        // needs this core to free a slot.
        std::this_thread::yield();
      } else {
        const std::uint64_t seen =
            producer_events_.load(std::memory_order_acquire);
        if (ObservationBatch* batch = try_acquire()) return batch;
        producer_events_.wait(seen, std::memory_order_acquire);
      }
    }
  }

  /// Hands a filled batch to the consumer. FIFO; never fails (the pool
  /// bounds how many batches can be in flight).
  void publish(ObservationBatch* batch) {
    const bool pushed = filled_.try_push(batch);
    assert(pushed);
    (void)pushed;
    if (metrics_.publishes != nullptr) {
      metrics_.publishes->add();
      metrics_.occupancy_high->update_max(
          static_cast<std::int64_t>(filled_.size()));
    }
    if (policy_ == WaitPolicy::kFutex) {
      consumer_events_.fetch_add(1, std::memory_order_release);
      consumer_events_.notify_all();
      if (metrics_.futex_wakeups != nullptr) metrics_.futex_wakeups->add();
    }
  }

  // ---- consumer side -----------------------------------------------------

  /// Oldest published batch, or nullptr when none is ready.
  ObservationBatch* try_take() {
    ObservationBatch* batch = nullptr;
    return filled_.try_pop(batch) ? batch : nullptr;
  }

  /// Oldest published batch, waiting per policy. Returns nullptr only
  /// once `stop` is set AND the ring has been re-checked empty — every
  /// publish that happens-before the stop flag is still delivered.
  ObservationBatch* take(const std::atomic<bool>& stop) {
    int idle = 0;
    for (;;) {
      if (ObservationBatch* batch = try_take()) return batch;
      if (stop.load(std::memory_order_acquire)) {
        if (ObservationBatch* batch = try_take()) return batch;
        return nullptr;
      }
      ++idle;
      if (idle < 64) {
        cpu_pause();
      } else if (policy_ == WaitPolicy::kBusyPoll) {
        // Idle ladder: yield first, then a short sleep — real feeds go
        // seconds between messages and a parked worker must not peg a
        // core even under the busy-poll policy.
        if (idle < 4096) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      } else {
        const std::uint64_t seen =
            consumer_events_.load(std::memory_order_acquire);
        if (ObservationBatch* batch = try_take()) return batch;
        if (stop.load(std::memory_order_acquire)) continue;  // drain + exit
        consumer_events_.wait(seen, std::memory_order_acquire);
      }
    }
  }

  /// Recycles a processed batch back to the producer. The clear() keeps
  /// the slot's element buffers intact, so the next scatter into this
  /// slot copy-assigns into warm memory.
  void release(ObservationBatch* batch) {
    batch->clear();
    const bool pushed = free_.try_push(batch);
    assert(pushed);
    (void)pushed;
    if (policy_ == WaitPolicy::kFutex) {
      producer_events_.fetch_add(1, std::memory_order_release);
      producer_events_.notify_all();
      if (metrics_.futex_wakeups != nullptr) metrics_.futex_wakeups->add();
    }
  }

  // ---- shutdown / introspection ------------------------------------------

  /// Kicks a consumer that may be futex-sleeping (call after setting the
  /// stop flag). Harmless under busy-poll.
  void wake_consumer() {
    consumer_events_.fetch_add(1, std::memory_order_release);
    consumer_events_.notify_all();
  }

  /// True when every slot is back in the free ring (nothing in flight,
  /// nothing published and unconsumed). Exact only when both sides are
  /// quiescent; meant for tests.
  bool all_recycled() const { return free_.size() == pool_.size(); }

  std::size_t published_pending() const { return filled_.size(); }

 private:
  std::size_t batch_capacity_;
  WaitPolicy policy_;
  std::vector<std::unique_ptr<ObservationBatch>> pool_;
  SpscRing<ObservationBatch*> filled_;  ///< producer pushes, consumer pops
  SpscRing<ObservationBatch*> free_;    ///< consumer pushes, producer pops
  /// Eventcounts for the futex policy: bumped on every publish (consumer
  /// side) / release (producer side), so atomic::wait on a snapshot taken
  /// before the event returns immediately — no lost wake-ups.
  alignas(64) std::atomic<std::uint64_t> consumer_events_{0};
  alignas(64) std::atomic<std::uint64_t> producer_events_{0};
  telemetry::RingCounters metrics_;  ///< null cells = disabled
};

}  // namespace artemis::pipeline

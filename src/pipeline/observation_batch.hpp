// Reusable contiguous observation buffer — the unit of work between
// pipeline stages.
//
// Observations are stored contiguously (SoA-friendly: consumers stream
// the hot fields — type, prefix, origin path — linearly through cache),
// and clear() resets the logical size WITHOUT destroying elements: the
// vector capacity and each recycled Observation's heap buffers (source
// string, AS-path vector) survive, so a steady-state drain loop that
// move-assigns popped observations into recycled slots performs no heap
// allocations once warmed up. That is the zero-allocation contract the
// worker loops in ShardedDetector rely on.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "feeds/observation.hpp"

namespace artemis::pipeline {

class ObservationBatch {
 public:
  /// Grows the logical size by one and returns the slot — a recycled
  /// element when one is available, a fresh default-constructed one
  /// otherwise. Fill it by assignment (e.g. ring.try_pop(slot)).
  feeds::Observation& emplace_back() {
    if (size_ == storage_.size()) storage_.emplace_back();
    return storage_[size_++];
  }

  void push_back(feeds::Observation obs) { emplace_back() = std::move(obs); }

  /// Undoes the last emplace_back (used when a ring pop comes up empty).
  void pop_back() { --size_; }

  /// Logical reset; elements and capacity are retained for reuse.
  void clear() { size_ = 0; }

  void reserve(std::size_t n) { storage_.reserve(n); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const feeds::Observation& operator[](std::size_t i) const { return storage_[i]; }
  feeds::Observation& operator[](std::size_t i) { return storage_[i]; }

  std::span<const feeds::Observation> view() const {
    return {storage_.data(), size_};
  }

  const feeds::Observation* begin() const { return storage_.data(); }
  const feeds::Observation* end() const { return storage_.data() + size_; }

 private:
  std::vector<feeds::Observation> storage_;
  std::size_t size_ = 0;
};

}  // namespace artemis::pipeline

#include "pipeline/sharded_detector.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <tuple>

namespace artemis::pipeline {

ShardedDetector::Shard::Shard(const core::Config& config,
                              const ShardedDetectorOptions& options)
    : service(config, options.detection) {
  if (options.threaded) {
    ring = std::make_unique<SpscRing<feeds::Observation>>(options.queue_capacity);
  }
}

ShardedDetector::ShardedDetector(const core::Config& config,
                                 ShardedDetectorOptions options)
    : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.drain_batch == 0) options_.drain_batch = 1;
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(config, options_));
  }
  if (options_.threaded) {
    for (auto& shard : shards_) {
      shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
    }
  }
}

ShardedDetector::~ShardedDetector() { stop(); }

std::size_t ShardedDetector::shard_of(const net::Prefix& prefix,
                                      std::size_t shard_count) {
  return std::hash<net::Prefix>{}(prefix) % shard_count;
}

void ShardedDetector::submit(const feeds::Observation& obs) {
  Shard& shard = *shards_[shard_of(obs.prefix, shards_.size())];
  if (!options_.threaded) {
    shard.service.process(obs);
    return;
  }
  // Copy-assign handoff: the ring slot's buffers are recycled, so the
  // steady-state push allocates nothing (see spsc_ring.hpp). Backpressure
  // pauses briefly (cheap on multicore), then yields — mandatory on
  // oversubscribed / single-core machines where the consumer needs the
  // core to make room.
  int spins = 0;
  while (!shard.ring->try_push(obs)) {
    if (++spins < 64) {
      cpu_pause();
    } else {
      std::this_thread::yield();
    }
  }
  ++shard.pushed;
}

void ShardedDetector::submit_batch(std::span<const feeds::Observation> batch) {
  if (!options_.threaded) {
    if (shards_.size() == 1) {
      shards_[0]->service.process_batch(batch);
      return;
    }
    // Inline multi-shard: hand each maximal same-shard run to its shard
    // as a zero-copy sub-span, so the batch amortization (classification
    // and dedup memoization) survives the partitioning on the bursty
    // streams feeds actually produce (a run of one route is a run of one
    // shard). Worst case (fully interleaved shards) degrades to
    // span-of-one calls — the same cost as per-observation dispatch,
    // still without copying. Per-shard observation order equals
    // submission order, so output is identical to any other dispatch.
    std::size_t i = 0;
    while (i < batch.size()) {
      const std::size_t target = shard_of(batch[i].prefix, shards_.size());
      std::size_t j = i + 1;
      while (j < batch.size() &&
             shard_of(batch[j].prefix, shards_.size()) == target) {
        ++j;
      }
      shards_[target]->service.process_batch(batch.subspan(i, j - i));
      i = j;
    }
    return;
  }
  for (const auto& obs : batch) submit(obs);
}

void ShardedDetector::attach(feeds::MonitorHub& hub) {
  hub.subscribe_batch(
      [this](std::span<const feeds::Observation> batch) { submit_batch(batch); });
}

void ShardedDetector::on_alert(core::AlertHandler handler) {
  if (options_.threaded) {
    // The handler list is read by worker threads inside process_batch;
    // mutating it after observations are in flight would race with that
    // iteration. Registration is construction-time wiring — enforce it.
    for (const auto& shard : shards_) {
      if (shard->pushed != 0) {
        throw std::logic_error(
            "ShardedDetector::on_alert: register handlers before the first "
            "submit in threaded mode");
      }
    }
  }
  for (auto& shard : shards_) shard->service.on_alert(handler);
}

void ShardedDetector::flush() {
  if (!options_.threaded) return;
  for (auto& shard : shards_) {
    while (shard->drained.load(std::memory_order_acquire) < shard->pushed) {
      std::this_thread::yield();
    }
  }
}

void ShardedDetector::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (!options_.threaded) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardedDetector::worker_loop(Shard& shard) {
  ObservationBatch batch;
  batch.reserve(options_.drain_batch);
  bool draining = false;
  int idle_spins = 0;
  for (;;) {
    batch.clear();
    while (batch.size() < options_.drain_batch) {
      feeds::Observation& slot = batch.emplace_back();
      if (!shard.ring->try_pop(slot)) {
        batch.pop_back();
        break;
      }
    }
    if (!batch.empty()) {
      idle_spins = 0;
      shard.service.process_batch(batch.view());
      shard.drained.fetch_add(batch.size(), std::memory_order_release);
      continue;
    }
    if (draining) return;  // stop observed AND ring re-checked empty: dry
    if (stopping_.load(std::memory_order_acquire)) {
      // All submissions happen-before the stopping flag; loop once more so
      // anything pushed between our empty poll and the flag read drains.
      draining = true;
      continue;
    }
    // Idle backoff ladder: pause (hot-path latency), yield (give the
    // producer the core), then a short sleep — real feeds go seconds
    // between messages, and a parked worker must not peg a core.
    ++idle_spins;
    if (idle_spins < 64) {
      cpu_pause();
    } else if (idle_spins < 4096) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

std::vector<core::HijackAlert> ShardedDetector::merged_alerts() const {
  std::vector<core::HijackAlert> out;
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->service.alerts().size();
  out.reserve(total);
  for (const auto& shard : shards_) {
    const auto& alerts = shard->service.alerts();
    out.insert(out.end(), alerts.begin(), alerts.end());
  }
  std::sort(out.begin(), out.end(),
            [](const core::HijackAlert& a, const core::HijackAlert& b) {
              return std::tuple(a.detected_at.as_micros(), a.type,
                                a.observed_prefix, a.offender) <
                     std::tuple(b.detected_at.as_micros(), b.type,
                                b.observed_prefix, b.offender);
            });
  return out;
}

std::uint64_t ShardedDetector::observations_processed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->service.observations_processed();
  return total;
}

std::uint64_t ShardedDetector::observations_matched() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->service.observations_matched();
  return total;
}

std::uint64_t ShardedDetector::observation_count(const core::AlertKey& key) const {
  return shards_[shard_of(key.observed_prefix, shards_.size())]
      ->service.observation_count(key);
}

const std::unordered_map<std::string, SimTime>* ShardedDetector::first_seen_by_source(
    const core::AlertKey& key) const {
  return shards_[shard_of(key.observed_prefix, shards_.size())]
      ->service.first_seen_by_source(key);
}

}  // namespace artemis::pipeline

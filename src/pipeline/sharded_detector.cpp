#include "pipeline/sharded_detector.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <tuple>

#include "util/affinity.hpp"

namespace artemis::pipeline {

ShardedDetector::Shard::Shard(std::shared_ptr<const core::OwnershipTable> table,
                              const ShardedDetectorOptions& options)
    : service(std::move(table), options.detection) {
  if (options.threaded) {
    // queue_capacity is an observation budget; the ring holds it as
    // drain_batch-sized slots.
    const std::size_t depth =
        std::max<std::size_t>(2, options.queue_capacity / options.drain_batch);
    ring = std::make_unique<BatchRing>(depth, options.drain_batch,
                                       options.wait_policy);
  }
}

ShardedDetector::ShardedDetector(std::shared_ptr<const core::OwnershipTable> table,
                                 ShardedDetectorOptions options)
    : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.drain_batch == 0) options_.drain_batch = 1;
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(table, options_));
  }
  if (options_.metrics != nullptr) {
    // One cell bundle per shard: private cache lines on the hot path,
    // merged on read by the registry — the same shape as the detector's
    // own merged-on-read stats. Registered before workers start, so the
    // cells are immutable wiring by the time any thread runs.
    // (Per-tenant cells are the exception: set_ownership re-registers
    // them at reload time, which is a drained quiescent point.)
    metrics_ = telemetry::register_pipeline(*options_.metrics);
    for (auto& shard : shards_) {
      shard->service.set_metrics(telemetry::register_detection(*options_.metrics));
      shard->service.set_tenant_metrics(options_.metrics);
      if (shard->ring != nullptr) {
        shard->ring->set_metrics(telemetry::register_ring(*options_.metrics));
      }
    }
  }
  if (options_.threaded) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard* s = shards_[i].get();
      shards_[i]->worker = std::thread([this, s, i] { worker_loop(*s, i); });
    }
  }
}

ShardedDetector::ShardedDetector(const core::Config& config,
                                 ShardedDetectorOptions options)
    : ShardedDetector(config.build_table(), options) {}

ShardedDetector::~ShardedDetector() { stop(); }

std::size_t ShardedDetector::shard_of(const net::Prefix& prefix,
                                      std::size_t shard_count) {
  return std::hash<net::Prefix>{}(prefix) % shard_count;
}

void ShardedDetector::note_producer_thread() {
  // Relaxed everywhere: this is a debugging guard on the single-producer
  // contract, not a synchronization point.
  if (producer_thread_.load(std::memory_order_relaxed) == std::thread::id{}) {
    std::thread::id expected{};
    producer_thread_.compare_exchange_strong(expected,
                                             std::this_thread::get_id(),
                                             std::memory_order_relaxed);
  }
}

void ShardedDetector::stage(const feeds::Observation& obs) {
  Shard& shard = *shards_[shard_of(obs.prefix, shards_.size())];
  if (shard.staging == nullptr) {
    // Blocks per wait_policy when every slot is in flight — this is the
    // backpressure point; nothing is ever dropped.
    shard.staging = shard.ring->acquire();
  }
  // Copy-assign into the slot's recycled element: the one and only copy
  // an observation makes on its way to a worker (the worker processes
  // the batch in place).
  shard.staging->emplace_back() = obs;
  ++shard.pushed;
  if (shard.staging->size() == options_.drain_batch) {
    shard.ring->publish(shard.staging);
    shard.staging = nullptr;
  }
}

void ShardedDetector::publish_staged() {
  for (auto& shard : shards_) {
    if (shard->staging != nullptr && !shard->staging->empty()) {
      shard->ring->publish(shard->staging);
      shard->staging = nullptr;
    }
  }
}

void ShardedDetector::submit(const feeds::Observation& obs) {
  if (!options_.threaded) {
    shards_[shard_of(obs.prefix, shards_.size())]->service.process(obs);
    return;
  }
  note_producer_thread();
  stage(obs);
  // Staging never outlives the submit call: a single-observation stream
  // gets batches of one (same ring traffic as the old per-observation
  // handoff, no worse), while callers with real batches use submit_batch
  // and get the full amortization.
  publish_staged();
}

void ShardedDetector::submit_batch(std::span<const feeds::Observation> batch) {
  if (!options_.threaded) {
    if (shards_.size() == 1) {
      shards_[0]->service.process_batch(batch);
      return;
    }
    // Inline multi-shard: hand each maximal same-shard run to its shard
    // as a zero-copy sub-span, so the batch amortization (classification
    // and dedup memoization) survives the partitioning on the bursty
    // streams feeds actually produce (a run of one route is a run of one
    // shard). Worst case (fully interleaved shards) degrades to
    // span-of-one calls — the same cost as per-observation dispatch,
    // still without copying. Per-shard observation order equals
    // submission order, so output is identical to any other dispatch.
    std::size_t i = 0;
    while (i < batch.size()) {
      const std::size_t target = shard_of(batch[i].prefix, shards_.size());
      std::size_t j = i + 1;
      while (j < batch.size() &&
             shard_of(batch[j].prefix, shards_.size()) == target) {
        ++j;
      }
      shards_[target]->service.process_batch(batch.subspan(i, j - i));
      i = j;
    }
    return;
  }
  // Threaded: scatter the whole span into per-shard staging batches in
  // one pass, then publish the partials. Ring traffic is one publish per
  // full drain_batch plus at most one partial per shard per call —
  // versus one push per observation before.
  note_producer_thread();
  for (const auto& obs : batch) stage(obs);
  publish_staged();
}

void ShardedDetector::attach(feeds::MonitorHub& hub) {
  hub.subscribe_batch(
      [this](std::span<const feeds::Observation> batch) { submit_batch(batch); });
}

void ShardedDetector::on_alert(core::AlertHandler handler) {
  if (options_.threaded) {
    // The handler list is read by worker threads inside process_batch;
    // mutating it after observations are in flight would race with that
    // iteration. Registration is construction-time wiring — enforce it.
    for (const auto& shard : shards_) {
      if (shard->pushed != 0) {
        throw std::logic_error(
            "ShardedDetector::on_alert: register handlers before the first "
            "submit in threaded mode");
      }
    }
  }
  for (auto& shard : shards_) shard->service.on_alert(handler);
}

void ShardedDetector::flush() {
  if (!options_.threaded) return;
  // flush() reads `pushed` and publishes staging batches — both owned by
  // the producer thread. Anyone else calling it would race the producer.
  const std::thread::id producer = producer_thread_.load(std::memory_order_relaxed);
  if (producer != std::thread::id{} && producer != std::this_thread::get_id()) {
    throw std::logic_error(
        "ShardedDetector::flush: must be called from the producer thread");
  }
  publish_staged();
  bool stalled = false;
  for (auto& shard : shards_) {
    // Escalating wait: pause (the worker is usually a few hundred ns
    // away), yield (give a same-core worker the CPU), then sleep — a
    // descheduled worker on an oversubscribed host must not cost the
    // flusher a core.
    int spins = 0;
    while (shard->drained.load(std::memory_order_acquire) < shard->pushed) {
      stalled = true;
      ++spins;
      if (spins < 64) {
        cpu_pause();
      } else if (spins < 4096) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  }
  if (stalled && metrics_.flush_stalls != nullptr) metrics_.flush_stalls->add();
}

void ShardedDetector::reload(std::shared_ptr<const core::OwnershipTable> table) {
  if (table == nullptr) {
    throw std::invalid_argument("ShardedDetector::reload: null table");
  }
  // flush() is the whole synchronization story: producer-thread guard,
  // publish staged partials, wait per shard for drained == pushed. Once
  // it returns, every worker has finished its last batch (its `drained`
  // release is our acquire) and is parked in take(), so each shard's
  // service is quiescent and the swap is a plain producer-side write.
  // The next ring publish (release) hands workers the new table.
  flush();
  for (auto& shard : shards_) shard->service.set_ownership(table);
}

void ShardedDetector::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (!options_.threaded) return;
  // Publish partials first: every staged observation must reach its
  // worker. The publishes happen-before the stopping store, and take()
  // re-checks the ring after observing the flag, so nothing is stranded.
  publish_staged();
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) shard->ring->wake_consumer();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardedDetector::worker_loop(Shard& shard, std::size_t index) {
  if (options_.pin_workers) {
    // Best effort: a refused affinity call (cgroup mask, non-Linux) just
    // leaves the worker floating.
    util::pin_current_thread_to_cpu(
        (options_.pin_cpu_base + static_cast<unsigned>(index)) %
        util::cpu_count());
  }
  for (;;) {
    ObservationBatch* batch = shard.ring->take(stopping_);
    if (batch == nullptr) return;  // stop observed AND ring re-checked empty
    shard.service.process_batch(batch->view());
    const std::size_t n = batch->size();
    shard.ring->release(batch);
    shard.drained.fetch_add(n, std::memory_order_release);
  }
}

std::vector<core::HijackAlert> ShardedDetector::merged_alerts() const {
  std::vector<core::HijackAlert> out;
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->service.alerts().size();
  out.reserve(total);
  for (const auto& shard : shards_) {
    const auto& alerts = shard->service.alerts();
    out.insert(out.end(), alerts.begin(), alerts.end());
  }
  std::sort(out.begin(), out.end(),
            [](const core::HijackAlert& a, const core::HijackAlert& b) {
              return std::tuple(a.detected_at.as_micros(), a.type,
                                a.observed_prefix, a.offender, a.tenant) <
                     std::tuple(b.detected_at.as_micros(), b.type,
                                b.observed_prefix, b.offender, b.tenant);
            });
  return out;
}

std::uint64_t ShardedDetector::observations_processed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->service.observations_processed();
  return total;
}

std::uint64_t ShardedDetector::observations_matched() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->service.observations_matched();
  return total;
}

std::uint64_t ShardedDetector::observation_count(const core::AlertKey& key) const {
  return shards_[shard_of(key.observed_prefix, shards_.size())]
      ->service.observation_count(key);
}

const std::unordered_map<std::string, SimTime>* ShardedDetector::first_seen_by_source(
    const core::AlertKey& key) const {
  return shards_[shard_of(key.observed_prefix, shards_.size())]
      ->service.first_seen_by_source(key);
}

}  // namespace artemis::pipeline

// ShardedDetector: hash-partitioned detection over N DetectionService
// shards.
//
// Partitioning key: the observed prefix. Every alert key the detection
// service can produce uses the observed prefix as its prefix component
// (AlertKey{type, observed_prefix, offender}), so routing observations by
// hash(observed prefix) guarantees that all observations of one hijack —
// and therefore its dedup record, counters and per-source first-seen
// times — live in exactly one shard. Per-shard state is never shared;
// statistics are merged on read.
//
// Determinism: each shard processes its observations in submission order
// (inline dispatch trivially; threaded mode because the SPSC ring is
// FIFO and each shard has exactly one worker). Since per-shard results
// depend only on the shard's own subsequence, ShardedDetector{N} produces
// bit-identical alerts, counts and first-seen times for every N — with
// or without threads — as long as submissions come from one thread in a
// fixed order. tests/pipeline_test.cpp enforces N=1 vs N=4 equivalence.
//
// Modes:
//   * inline (default): submit() dispatches on the calling thread. With
//     shards == 1 this is the deterministic single-threaded mode the sim
//     uses — identical to a bare DetectionService, full batch
//     amortization included.
//   * threaded: one worker per shard drains a fixed-capacity SPSC ring
//     in batches of up to `drain_batch`. submit*() must be called from a
//     single thread (it is the ring producer); a full ring applies
//     backpressure by yielding, never dropping. Alert handlers run on
//     worker threads in this mode.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "artemis/detection.hpp"
#include "pipeline/observation_batch.hpp"
#include "pipeline/spsc_ring.hpp"

namespace artemis::pipeline {

struct ShardedDetectorOptions {
  std::size_t shards = 1;
  /// One worker thread per shard draining an SPSC ring; false = inline
  /// deterministic dispatch on the submitting thread.
  bool threaded = false;
  /// Per-shard ring capacity in observations (rounded up to a power of
  /// two). Full rings backpressure the producer. Sized so the slot array
  /// stays cache-resident — bigger rings trade L2 hits for slack and
  /// measure *slower* on bench_pipeline.
  std::size_t queue_capacity = 1024;
  /// Max observations a worker drains into one process_batch call.
  std::size_t drain_batch = 128;
  core::DetectionOptions detection;
};

class ShardedDetector {
 public:
  explicit ShardedDetector(const core::Config& config,
                           ShardedDetectorOptions options = {});
  ~ShardedDetector();

  ShardedDetector(const ShardedDetector&) = delete;
  ShardedDetector& operator=(const ShardedDetector&) = delete;

  /// The sharding function: hash of the observed prefix, mod shard count.
  static std::size_t shard_of(const net::Prefix& prefix, std::size_t shard_count);

  /// Routes one observation to its shard (copying into the ring in
  /// threaded mode). Single-threaded producers only.
  void submit(const feeds::Observation& obs);

  /// Routes a batch. With shards == 1 the whole span goes through one
  /// process_batch call (full amortization); otherwise elements are
  /// dispatched in order.
  void submit_batch(std::span<const feeds::Observation> batch);

  /// Subscribes to a hub's batch stream (observations flow via submit_batch).
  void attach(feeds::MonitorHub& hub);

  /// Registers a handler on every shard. Threaded mode: handlers fire on
  /// worker threads (so they must be thread-safe) and MUST be registered
  /// before the first submit — late registration would race with workers
  /// iterating the handler list, and throws std::logic_error.
  void on_alert(core::AlertHandler handler);

  /// Barrier: returns once every submitted observation has been
  /// processed. No-op in inline mode.
  void flush();

  /// Drains outstanding work and joins the workers. Idempotent; called by
  /// the destructor. No submissions may follow.
  void stop();

  std::size_t shard_count() const { return shards_.size(); }
  core::DetectionService& shard(std::size_t i) { return shards_[i]->service; }
  const core::DetectionService& shard(std::size_t i) const {
    return shards_[i]->service;
  }

  // ---- merged-on-read statistics (flush() first in threaded mode) ----

  /// All alerts across shards in canonical order: (detected_at, type,
  /// observed prefix, offender). Canonical — not per-shard insertion —
  /// so the result is identical for every shard count.
  std::vector<core::HijackAlert> merged_alerts() const;

  std::uint64_t observations_processed() const;
  std::uint64_t observations_matched() const;

  /// Per-key queries delegate to the single shard that owns the key.
  std::uint64_t observation_count(const core::AlertKey& key) const;
  const std::unordered_map<std::string, SimTime>* first_seen_by_source(
      const core::AlertKey& key) const;

 private:
  struct Shard {
    Shard(const core::Config& config, const ShardedDetectorOptions& options);
    core::DetectionService service;
    std::unique_ptr<SpscRing<feeds::Observation>> ring;  ///< threaded only
    std::thread worker;
    std::uint64_t pushed = 0;  ///< producer-thread only
    alignas(64) std::atomic<std::uint64_t> drained{0};
  };

  void worker_loop(Shard& shard);

  ShardedDetectorOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
};

}  // namespace artemis::pipeline

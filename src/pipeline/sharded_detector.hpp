// ShardedDetector: hash-partitioned detection over N DetectionService
// shards.
//
// Partitioning key: the observed prefix. Every alert key the detection
// service can produce uses the observed prefix as its prefix component
// (AlertKey{type, observed_prefix, offender, tenant}), so routing
// observations by
// hash(observed prefix) guarantees that all observations of one hijack —
// and therefore its dedup record, counters and per-source first-seen
// times — live in exactly one shard. Per-shard state is never shared;
// statistics are merged on read.
//
// Determinism: each shard processes its observations in submission order
// (inline dispatch trivially; threaded mode because the batch ring is
// FIFO and each shard has exactly one worker). Since per-shard results
// depend only on the shard's own subsequence, ShardedDetector{N} produces
// bit-identical alerts, counts and first-seen times for every N — with
// or without threads, under either wait policy, pinned or not — as long
// as submissions come from one thread in a fixed order.
// tests/pipeline_test.cpp enforces the full matrix against the N=1
// inline reference.
//
// Modes:
//   * inline (default): submit() dispatches on the calling thread. With
//     shards == 1 this is the deterministic single-threaded mode the sim
//     uses — identical to a bare DetectionService, full batch
//     amortization included.
//   * threaded: one worker per shard drains a BatchRing of recyclable
//     ObservationBatch slots. The producer scatters each submitted span
//     into per-shard staging batches in one pass and publishes whole
//     batches — one ring operation per ~drain_batch observations instead
//     of one per observation — and publishes any partial staging batch
//     at the end of every submit call, so a quiet stream never strands
//     observations in the producer. submit*() must be called from a
//     single thread (it is the ring producer); a full ring applies
//     backpressure per the wait policy, never dropping. Alert handlers
//     run on worker threads in this mode. Workers can optionally be
//     pinned to consecutive CPUs (pin_workers / pin_cpu_base).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "artemis/detection.hpp"
#include "pipeline/batch_ring.hpp"
#include "pipeline/observation_batch.hpp"
#include "pipeline/wait_policy.hpp"

namespace artemis::pipeline {

struct ShardedDetectorOptions {
  std::size_t shards = 1;
  /// One worker thread per shard draining a batch ring; false = inline
  /// deterministic dispatch on the submitting thread.
  bool threaded = false;
  /// Per-shard buffering budget in observations. The ring holds
  /// queue_capacity / drain_batch batch slots (min 2, rounded up to a
  /// power of two); when every slot is in flight the producer
  /// backpressures per wait_policy. Sized so the in-flight working set
  /// stays cache-resident — bigger rings trade L2 hits for slack.
  std::size_t queue_capacity = 1024;
  /// Handoff granule: capacity of one ring slot, and the most
  /// observations one process_batch call sees. The amortization knob —
  /// one ring publish per drain_batch observations on a saturated
  /// stream.
  std::size_t drain_batch = 128;
  /// What producer (full ring) and workers (empty ring) do while
  /// waiting: pause-spin for latency, or futex-sleep for
  /// oversubscription friendliness. Either way the output is
  /// bit-identical.
  WaitPolicy wait_policy = WaitPolicy::kBusyPoll;
  /// Pin worker i to CPU (pin_cpu_base + i) % cpu_count. Best-effort:
  /// unsupported platforms and refused syscalls run unpinned.
  bool pin_workers = false;
  unsigned pin_cpu_base = 0;
  core::DetectionOptions detection;
  /// When set, every shard registers its own telemetry cell bundle
  /// (per-shard cache lines, merged on read by the registry) and the
  /// rings/flush path count handoff events. Observation-only: the
  /// pipeline_test matrix proves merged_alerts() is bit-identical with
  /// and without a registry. Must outlive the detector.
  telemetry::MetricsRegistry* metrics = nullptr;
};

class ShardedDetector {
 public:
  /// Snapshot-sharing form: all shards reference the SAME immutable
  /// ownership table — a million-prefix config is frozen once, not once
  /// per shard.
  explicit ShardedDetector(std::shared_ptr<const core::OwnershipTable> table,
                           ShardedDetectorOptions options = {});
  /// Convenience: freezes `config` once, then shares the snapshot.
  explicit ShardedDetector(const core::Config& config,
                           ShardedDetectorOptions options = {});
  ~ShardedDetector();

  ShardedDetector(const ShardedDetector&) = delete;
  ShardedDetector& operator=(const ShardedDetector&) = delete;

  /// The sharding function: hash of the observed prefix, mod shard count.
  static std::size_t shard_of(const net::Prefix& prefix, std::size_t shard_count);

  /// Routes one observation to its shard (scattered into the shard's
  /// staging batch and published immediately in threaded mode).
  /// Single-threaded producers only.
  void submit(const feeds::Observation& obs);

  /// Routes a batch. With shards == 1 the whole span goes through one
  /// process_batch call (full amortization); otherwise elements are
  /// dispatched in order.
  void submit_batch(std::span<const feeds::Observation> batch);

  /// Subscribes to a hub's batch stream (observations flow via submit_batch).
  void attach(feeds::MonitorHub& hub);

  /// Registers a handler on every shard. Threaded mode: handlers fire on
  /// worker threads (so they must be thread-safe) and MUST be registered
  /// before the first submit — late registration would race with workers
  /// iterating the handler list, and throws std::logic_error.
  void on_alert(core::AlertHandler handler);

  /// Barrier: publishes any partial staging batches and returns once
  /// every submitted observation has been processed. No-op in inline
  /// mode. Producer-thread-only (it reads producer-side counters and
  /// publishes staging batches); calling it from any other thread after
  /// the first submit throws std::logic_error.
  void flush();

  /// Incremental reload: swaps every shard onto `table` without
  /// restarting workers, dropping observations, or touching alert/dedup
  /// state. Producer-thread-only, like flush(): it drains in-flight
  /// batches first (publish staged partials, wait per shard for
  /// drained == pushed), so the swap lands on a batch boundary in every
  /// shard. Ordering needs no new atomics: the worker's last
  /// process_batch happens-before its `drained` release, our acquire in
  /// the drain wait happens-before the table swap, and the swap
  /// happens-before the next ring publish (release) the worker's take()
  /// acquires. Observations submitted before reload() are classified
  /// under the old table, everything after under the new one —
  /// deterministically, at any shard count.
  void reload(std::shared_ptr<const core::OwnershipTable> table);

  /// The ownership snapshot shards currently classify against.
  const core::OwnershipTable& ownership() const {
    return shards_.front()->service.ownership();
  }

  /// Drains outstanding work (staged and in-flight) and joins the
  /// workers. Idempotent; called by the destructor. No submissions may
  /// follow.
  void stop();

  std::size_t shard_count() const { return shards_.size(); }
  core::DetectionService& shard(std::size_t i) { return shards_[i]->service; }
  const core::DetectionService& shard(std::size_t i) const {
    return shards_[i]->service;
  }

  // ---- merged-on-read statistics (flush() first in threaded mode) ----

  /// All alerts across shards in canonical order: (detected_at, type,
  /// observed prefix, offender). Canonical — not per-shard insertion —
  /// so the result is identical for every shard count.
  std::vector<core::HijackAlert> merged_alerts() const;

  std::uint64_t observations_processed() const;
  std::uint64_t observations_matched() const;

  /// Per-key queries delegate to the single shard that owns the key.
  std::uint64_t observation_count(const core::AlertKey& key) const;
  const std::unordered_map<std::string, SimTime>* first_seen_by_source(
      const core::AlertKey& key) const;

 private:
  struct Shard {
    Shard(std::shared_ptr<const core::OwnershipTable> table,
          const ShardedDetectorOptions& options);
    core::DetectionService service;
    std::unique_ptr<BatchRing> ring;         ///< threaded only
    ObservationBatch* staging = nullptr;     ///< producer-side partial batch
    std::thread worker;
    std::uint64_t pushed = 0;                ///< producer-thread only
    alignas(64) std::atomic<std::uint64_t> drained{0};
  };

  void worker_loop(Shard& shard, std::size_t index);
  /// Scatters one observation into its shard's staging batch, publishing
  /// the batch when it reaches drain_batch. Threaded mode only.
  void stage(const feeds::Observation& obs);
  /// Publishes every non-empty staging batch (end of a submit call,
  /// flush, stop).
  void publish_staged();
  /// Records the producer thread on first submit; flush() checks it.
  void note_producer_thread();

  ShardedDetectorOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  std::atomic<std::thread::id> producer_thread_{};  ///< set on first submit
  telemetry::PipelineCounters metrics_;  ///< producer-side; null = disabled
};

}  // namespace artemis::pipeline

// Fixed-capacity single-producer / single-consumer ring queue.
//
// The stage-handoff primitive of the observation pipeline (ROADMAP
// "Pipeline architecture"): the dispatching thread pushes observations,
// one worker drains them in batches. Wait-free on both sides — one
// release store per operation, no CAS, no locks — with the head/tail
// indices on separate cache lines so producer and consumer do not
// false-share. Capacity is rounded up to a power of two so the slot
// index is a mask, not a modulo.
//
// Contract: exactly one producer thread calls try_push and exactly one
// consumer thread calls try_pop. A full ring rejects the push (the
// producer applies backpressure by yielding); nothing is dropped.
//
// Handoff is by COPY-assignment on both sides, deliberately: a slot's
// heap buffers (e.g. an Observation's source string / AS-path vector)
// are written only by the producer and reused push after push, and the
// consumer's out-slot buffers likewise — so in steady state neither side
// allocates and no buffer is ever freed on a thread other than the one
// that allocated it (no cross-thread allocator churn).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace artemis::pipeline {

/// One polite spin iteration for ring-full / ring-empty waits: a pause
/// instruction where the ISA has one (cheaper and friendlier to the
/// sibling hyperthread than sched_yield).
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity)
      : mask_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Copy-assigns `value` into the slot (recycling the
  /// slot's buffers); returns false when the ring is full.
  bool try_push(const T& value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;
    slots_[head & mask_] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Copy-assigns the oldest element into `out` (recycling
  /// `out`'s buffers, leaving the slot's for the producer); false when
  /// empty.
  bool try_pop(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = slots_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Snapshot; exact only when called from the producer or consumer.
  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }
  bool empty() const { return size() == 0; }

  // ---- sleep/wake hooks for a futex-style wait policy --------------------
  //
  // The ring itself never blocks; these expose the head/tail sequence
  // counters so a caller can sleep on "nothing changed yet" via
  // std::atomic::wait (a futex on Linux, no allocation, no mutex). The
  // protocol is the standard one: snapshot the counter, re-check the ring,
  // then wait for the counter to move past the snapshot. Notifies are only
  // needed when the other side might be sleeping — busy-poll callers skip
  // them entirely and the push/pop hot path stays syscall-free.

  std::uint64_t head_seq() const { return head_.load(std::memory_order_acquire); }
  std::uint64_t tail_seq() const { return tail_.load(std::memory_order_acquire); }

  /// Consumer: blocks until the producer moves head past `seen`.
  void wait_head_changed(std::uint64_t seen) const { head_.wait(seen, std::memory_order_acquire); }
  /// Producer: blocks until the consumer moves tail past `seen`.
  void wait_tail_changed(std::uint64_t seen) const { tail_.wait(seen, std::memory_order_acquire); }

  /// Producer, after try_push, when the consumer may be sleeping.
  void notify_head() { head_.notify_all(); }
  /// Consumer, after try_pop, when the producer may be sleeping.
  void notify_tail() { tail_.notify_all(); }

 private:
  std::size_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< written by producer
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< written by consumer
};

}  // namespace artemis::pipeline

// Wait-policy knob for the threaded pipeline's empty-ring and
// backpressure paths.
//
// Both sides of a shard handoff sometimes have nothing to do: the worker
// when its ring is empty, the producer when every batch slot is in
// flight. What they do next is a deployment decision, not a code one:
//
//   * kBusyPoll — pause-spin (with a yield escalation), the latency
//     winner when each shard owns a core. Never syscalls on the hot
//     path; a parked worker still costs its core.
//   * kFutex — after a short spin, sleep on the ring counter via
//     std::atomic::wait (a futex on Linux). The oversubscription-
//     friendly policy: a waiting thread costs nothing until the other
//     side publishes and notifies.
//
// Either policy produces bit-identical pipeline output — waiting is
// about *when* work happens, never *what* (the determinism matrix in
// tests/pipeline_test.cpp runs both).
#pragma once

#include <cstdint>
#include <string_view>

namespace artemis::pipeline {

enum class WaitPolicy : std::uint8_t {
  kBusyPoll,  ///< pause-spin / yield; lowest latency, pegs a core
  kFutex,     ///< spin briefly, then sleep on the ring counter (futex)
};

inline std::string_view to_string(WaitPolicy policy) {
  return policy == WaitPolicy::kBusyPoll ? "busy_poll" : "futex";
}

/// Parses "busy_poll" / "futex". Returns false on any other text.
inline bool parse_wait_policy(std::string_view text, WaitPolicy& policy) {
  if (text == "busy_poll") {
    policy = WaitPolicy::kBusyPoll;
    return true;
  }
  if (text == "futex") {
    policy = WaitPolicy::kFutex;
    return true;
  }
  return false;
}

}  // namespace artemis::pipeline

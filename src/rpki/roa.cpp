#include "rpki/roa.hpp"

#include <stdexcept>

namespace artemis::rpki {

std::string_view to_string(Validity v) {
  switch (v) {
    case Validity::kNotFound: return "not-found";
    case Validity::kValid: return "valid";
    case Validity::kInvalid: return "invalid";
  }
  return "?";
}

void RoaTable::add(Roa roa) {
  if (roa.asn == bgp::kNoAsn) throw std::invalid_argument("ROA needs a real ASN");
  const int max_len = roa.effective_max_length();
  if (max_len < roa.prefix.length() || max_len > roa.prefix.max_length()) {
    throw std::invalid_argument("ROA maxLength out of range");
  }
  if (auto* existing = table_.find(roa.prefix)) {
    existing->push_back(roa);
  } else {
    table_.insert(roa.prefix, {roa});
  }
  ++count_;
}

std::vector<Roa> RoaTable::covering(const net::Prefix& prefix) const {
  std::vector<Roa> out;
  table_.visit_covering(prefix,
                        [&out](const net::Prefix&, const std::vector<Roa>& roas) {
                          out.insert(out.end(), roas.begin(), roas.end());
                        });
  return out;
}

Validity RoaTable::validate(const net::Prefix& prefix, bgp::Asn origin) const {
  bool any_covering = false;
  bool valid = false;
  table_.visit_covering(prefix, [&](const net::Prefix&, const std::vector<Roa>& roas) {
    for (const auto& roa : roas) {
      any_covering = true;
      if (roa.asn == origin && prefix.length() <= roa.effective_max_length()) {
        valid = true;
      }
    }
  });
  if (!any_covering) return Validity::kNotFound;
  return valid ? Validity::kValid : Validity::kInvalid;
}

RoaTable RoaTable::from_json(const json::Value& doc) {
  RoaTable table;
  for (const auto& entry : doc.at("roas").as_array()) {
    Roa roa;
    const auto prefix_text = entry.at("prefix").as_string();
    const auto prefix = net::Prefix::parse(prefix_text);
    if (!prefix) throw std::invalid_argument("bad ROA prefix: " + prefix_text);
    roa.prefix = *prefix;
    const auto asn = entry.at("asn").as_int();
    if (asn <= 0 || asn > 0xFFFFFFFFLL) throw std::invalid_argument("bad ROA asn");
    roa.asn = static_cast<bgp::Asn>(asn);
    roa.max_length = static_cast<int>(entry.get_int("maxLength", 0));
    table.add(roa);
  }
  return table;
}

json::Value RoaTable::to_json() const {
  json::Array roas;
  table_.visit_all([&roas](const net::Prefix&, const std::vector<Roa>& entries) {
    for (const auto& roa : entries) {
      json::Object entry;
      entry["prefix"] = json::Value(roa.prefix.to_string());
      entry["asn"] = json::Value(static_cast<std::int64_t>(roa.asn));
      if (roa.max_length != 0) {
        entry["maxLength"] = json::Value(static_cast<std::int64_t>(roa.max_length));
      }
      roas.emplace_back(std::move(entry));
    }
  });
  json::Object doc;
  doc["roas"] = json::Value(std::move(roas));
  return json::Value(std::move(doc));
}

}  // namespace artemis::rpki

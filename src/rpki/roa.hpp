// RPKI Route Origin Authorization validation (RFC 6483 / RFC 6811).
//
// The paper opens with "since its prevention is not always possible,
// mechanisms for its detection and mitigation are needed" — RPKI origin
// validation is the prevention mechanism in question. This module
// implements the validator so the reproduction can quantify the gap the
// paper points at: with partial ROA coverage, origin validation misses
// what ARTEMIS catches (and says nothing about Type-1 forged paths).
// The detection service can consume a RoaTable as an extra signal
// (DetectionOptions::roa_table).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/types.hpp"
#include "json/json.hpp"
#include "netbase/prefix.hpp"
#include "netbase/prefix_trie.hpp"

namespace artemis::rpki {

/// One Route Origin Authorization: `asn` may originate `prefix` and any
/// more-specific of it up to `max_length`.
struct Roa {
  net::Prefix prefix;
  bgp::Asn asn = bgp::kNoAsn;
  int max_length = 0;  ///< 0 = defaults to prefix.length()

  int effective_max_length() const {
    return max_length == 0 ? prefix.length() : max_length;
  }
};

/// RFC 6811 validation states.
enum class Validity : std::uint8_t {
  kNotFound,  ///< no ROA covers the announced prefix
  kValid,     ///< a covering ROA authorizes this origin at this length
  kInvalid,   ///< covering ROA(s) exist but none authorizes it
};

std::string_view to_string(Validity v);

/// A validated ROA set with RFC 6811 route validation.
class RoaTable {
 public:
  /// Adds a ROA. Throws std::invalid_argument on asn 0, max_length
  /// shorter than the prefix or beyond the family limit.
  void add(Roa roa);

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Validates an announcement of `prefix` originated by `origin`.
  Validity validate(const net::Prefix& prefix, bgp::Asn origin) const;

  /// All ROAs covering `prefix` (any origin), most specific last.
  std::vector<Roa> covering(const net::Prefix& prefix) const;

  /// Loads {"roas":[{"prefix":"10.0.0.0/23","asn":65001,"maxLength":24}]}.
  static RoaTable from_json(const json::Value& doc);
  json::Value to_json() const;

 private:
  /// ROAs keyed by their prefix; several ROAs may share one prefix.
  net::PrefixTrie<std::vector<Roa>> table_;
  std::size_t count_ = 0;
};

}  // namespace artemis::rpki

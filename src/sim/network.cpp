#include "sim/network.hpp"

#include <stdexcept>

namespace artemis::sim {

std::uint64_t Network::link_key(bgp::Asn a, bgp::Asn b) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

Network::Network(const topo::AsGraph& graph, const NetworkParams& params, Rng rng)
    : graph_(graph), params_(params), rng_(rng) {
  topo::PolicyConfig policy;
  policy.max_accepted_prefix_len = params_.max_accepted_prefix_len;

  auto rov_rng = rng_.fork("rov-deployment");
  for (const auto asn : graph_.all_ases()) {
    auto speaker_rng = rng_.fork("speaker-" + std::to_string(asn));
    auto speaker = std::make_unique<BgpSpeaker>(
        sim_, asn, policy, speaker_rng,
        [this, asn](bgp::Asn to, const bgp::UpdateMessage& update) {
          transmit(asn, to, update);
        });
    if (params_.roa_table != nullptr && rov_rng.chance(params_.rov_fraction)) {
      speaker->enable_rov(params_.roa_table);
      ++rov_enforcers_;
    }
    speakers_.emplace(asn, std::move(speaker));
  }
  // Sample symmetric link delays and create sessions on both ends.
  for (const auto asn : graph_.all_ases()) {
    for (const auto& neighbor : graph_.neighbors(asn)) {
      const auto key = link_key(asn, neighbor.asn);
      if (!link_delays_.contains(key)) {
        link_delays_.emplace(
            key, rng_.uniform_duration(params_.min_link_delay, params_.max_link_delay));
      }
      SessionConfig session;
      session.peer = neighbor.asn;
      session.relationship = neighbor.relationship;
      session.mrai = params_.mrai;
      speakers_.at(asn)->add_session(session);
    }
  }
}

BgpSpeaker& Network::speaker(bgp::Asn asn) {
  const auto it = speakers_.find(asn);
  if (it == speakers_.end()) throw std::invalid_argument("unknown AS" + std::to_string(asn));
  return *it->second;
}

const BgpSpeaker& Network::speaker(bgp::Asn asn) const {
  return const_cast<Network*>(this)->speaker(asn);
}

SimDuration Network::link_delay(bgp::Asn a, bgp::Asn b) const {
  const auto it = link_delays_.find(link_key(a, b));
  if (it == link_delays_.end()) throw std::invalid_argument("no such link");
  return it->second;
}

void Network::transmit(bgp::Asn from, bgp::Asn to, const bgp::UpdateMessage& update) {
  const SimDuration delay =
      link_delay(from, to) +
      SimDuration::seconds(rng_.exponential(params_.processing_delay_mean.as_seconds()));
  BgpSpeaker* receiver = speakers_.at(to).get();
  sim_.after(delay, [receiver, update, from] { receiver->receive(update, from); });
}

bgp::Asn Network::resolve_origin(bgp::Asn vantage, const net::IpAddress& addr) const {
  return speaker(vantage).resolve_origin(addr);
}

SpeakerStats Network::total_stats() const {
  SpeakerStats total;
  for (const auto& [asn, speaker] : speakers_) {
    total.updates_sent += speaker->stats().updates_sent;
    total.updates_received += speaker->stats().updates_received;
    total.prefixes_filtered_too_specific += speaker->stats().prefixes_filtered_too_specific;
    total.loops_dropped += speaker->stats().loops_dropped;
    total.rov_dropped += speaker->stats().rov_dropped;
  }
  return total;
}

}  // namespace artemis::sim

// The simulated inter-domain network: speakers wired per the AS graph.
//
// Network owns one BgpSpeaker per AS, samples per-link propagation delays,
// and carries updates between speakers with those delays plus a small
// per-message processing jitter. It is the substitution for "the Internet"
// in the paper's experiments (DESIGN.md, substitution table).
#pragma once

#include <memory>
#include <unordered_map>

#include "rpki/roa.hpp"
#include "sim/simulator.hpp"
#include "sim/speaker.hpp"
#include "topology/as_graph.hpp"
#include "util/rng.hpp"

namespace artemis::sim {

struct NetworkParams {
  /// Per-link one-way propagation delay, sampled uniformly per link.
  SimDuration min_link_delay = SimDuration::millis(10);
  SimDuration max_link_delay = SimDuration::millis(150);
  /// Mean of the exponential per-message processing delay added on top.
  SimDuration processing_delay_mean = SimDuration::millis(20);
  /// MRAI applied to every eBGP session (0 disables pacing; ablation E2).
  SimDuration mrai = SimDuration::seconds(30);
  /// Import filter: longest prefix length accepted by every AS.
  int max_accepted_prefix_len = 24;
  /// RPKI route-origin validation (extension): when `roa_table` is set,
  /// each AS independently enforces ROV with probability `rov_fraction`
  /// (real-world deployment is partial). The table must outlive the
  /// Network.
  const rpki::RoaTable* roa_table = nullptr;
  double rov_fraction = 0.0;
};

class Network {
 public:
  Network(const topo::AsGraph& graph, const NetworkParams& params, Rng rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& simulator() { return sim_; }
  const Simulator& simulator() const { return sim_; }
  const topo::AsGraph& graph() const { return graph_; }
  const NetworkParams& params() const { return params_; }

  BgpSpeaker& speaker(bgp::Asn asn);
  const BgpSpeaker& speaker(bgp::Asn asn) const;

  /// The sampled one-way delay of the (a, b) link.
  SimDuration link_delay(bgp::Asn a, bgp::Asn b) const;

  /// Runs the simulation until no events remain (BGP convergence).
  std::size_t run_to_convergence() { return sim_.run_all(); }

  /// Control-plane origin as seen by `vantage` for `addr` (kNoAsn if the
  /// address is unrouted there).
  bgp::Asn resolve_origin(bgp::Asn vantage, const net::IpAddress& addr) const;

  /// Aggregate counters across all speakers (E5 overhead reporting).
  SpeakerStats total_stats() const;

  /// Number of ASes enforcing route-origin validation.
  std::size_t rov_enforcer_count() const { return rov_enforcers_; }

 private:
  void transmit(bgp::Asn from, bgp::Asn to, const bgp::UpdateMessage& update);
  static std::uint64_t link_key(bgp::Asn a, bgp::Asn b);

  const topo::AsGraph& graph_;
  NetworkParams params_;
  Simulator sim_;
  Rng rng_;
  std::unordered_map<bgp::Asn, std::unique_ptr<BgpSpeaker>> speakers_;
  std::unordered_map<std::uint64_t, SimDuration> link_delays_;
  std::size_t rov_enforcers_ = 0;
};

}  // namespace artemis::sim

#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace artemis::sim {

void Simulator::at(SimTime t, EventFn fn) {
  if (t < now_) t = now_;  // past-dated events run at the current instant
  queue_.push(Scheduled{t, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the handler is moved out via const_cast
  // (safe: the element is popped immediately after).
  auto& top = const_cast<Scheduled&>(queue_.top());
  now_ = top.when;
  EventFn fn = std::move(top.fn);
  queue_.pop();
  ++processed_;
  fn();
  return true;
}

std::size_t Simulator::run_until(SimTime t) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().when <= t) {
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (step()) {
    if (++n > max_events) throw std::runtime_error("simulation exceeded event budget");
  }
  return n;
}

SimTime Simulator::next_event_time() const {
  return queue_.empty() ? SimTime::never() : queue_.top().when;
}

}  // namespace artemis::sim

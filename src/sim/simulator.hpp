// The discrete-event simulation core.
//
// A single-threaded event loop over simulated time. Events scheduled for
// the same instant run in scheduling order (a monotonic sequence number
// breaks ties), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace artemis::sim {

class Simulator {
 public:
  using EventFn = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now, else it runs "now").
  void at(SimTime t, EventFn fn);

  /// Schedules `fn` after `d` of simulated time.
  void after(SimDuration d, EventFn fn) { at(now_ + d, std::move(fn)); }

  /// Runs the next event; returns false if the queue is empty.
  bool step();

  /// Runs every event with time <= `t`, then advances the clock to `t`.
  /// Returns the number of events processed.
  std::size_t run_until(SimTime t);

  /// Runs until the queue drains. Throws std::runtime_error if more than
  /// `max_events` fire (guards against livelock bugs in protocols).
  std::size_t run_all(std::size_t max_events = 50'000'000);

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Time of the earliest scheduled event; SimTime::never() when idle.
  SimTime next_event_time() const;

  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Scheduled {
    SimTime when;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
};

}  // namespace artemis::sim

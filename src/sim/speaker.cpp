#include "sim/speaker.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace artemis::sim {

BgpSpeaker::BgpSpeaker(Simulator& sim, bgp::Asn self, topo::PolicyConfig policy, Rng rng,
                       TransmitFn transmit)
    : sim_(sim),
      self_(self),
      policy_(policy),
      rng_(rng),
      transmit_(std::move(transmit)) {
  if (self_ == bgp::kNoAsn) throw std::invalid_argument("speaker needs a real ASN");
}

void BgpSpeaker::add_session(const SessionConfig& config) {
  if (config.peer == bgp::kNoAsn || config.peer == self_) {
    throw std::invalid_argument("bad session peer");
  }
  const auto [it, inserted] = sessions_.try_emplace(config.peer);
  if (!inserted) throw std::invalid_argument("duplicate session");
  it->second.config = config;
  if (config.mrai > SimDuration::zero()) {
    it->second.scan_phase = rng_.uniform_duration(SimDuration::zero(), config.mrai);
  }
  session_order_.push_back(config.peer);
}

void BgpSpeaker::originate(const net::Prefix& prefix) {
  originate_with_path(prefix, bgp::AsPath::origin_only(self_));
}

void BgpSpeaker::originate_with_path(const net::Prefix& prefix, const bgp::AsPath& path) {
  bgp::Route route;
  route.prefix = prefix;
  route.attrs.as_path = path;
  route.attrs.local_pref = policy_.bands.self;
  route.learned_from = bgp::kNoAsn;
  route.installed_at = sim_.now();
  originated_.insert(prefix);
  if (const auto change = rib_.announce(route)) on_best_change(*change);
}

void BgpSpeaker::withdraw_origin(const net::Prefix& prefix) {
  originated_.erase(prefix);
  if (const auto change = rib_.withdraw(prefix, bgp::kNoAsn)) on_best_change(*change);
}

void BgpSpeaker::receive(const bgp::UpdateMessage& update, bgp::Asn from) {
  ++stats_.updates_received;
  const auto session_it = sessions_.find(from);
  if (session_it == sessions_.end()) return;  // session torn down; stale delivery
  const auto relationship = session_it->second.config.relationship;

  for (const auto& prefix : update.announced) {
    if (update.attrs.as_path.contains(self_)) {
      ++stats_.loops_dropped;
      continue;
    }
    if (prefix.length() > policy_.max_accepted_prefix_len) {
      ++stats_.prefixes_filtered_too_specific;
      continue;
    }
    if (rov_table_ != nullptr &&
        rov_table_->validate(prefix, update.attrs.as_path.origin_as()) ==
            rpki::Validity::kInvalid) {
      ++stats_.rov_dropped;
      continue;
    }
    bgp::Route route;
    route.prefix = prefix;
    route.attrs = update.attrs;
    route.attrs.local_pref = policy_.bands.for_relationship(relationship);
    route.learned_from = from;
    route.installed_at = sim_.now();
    if (const auto change = rib_.announce(route)) on_best_change(*change);
  }
  for (const auto& prefix : update.withdrawn) {
    if (const auto change = rib_.withdraw(prefix, from)) on_best_change(*change);
  }
}

const bgp::Route* BgpSpeaker::best_route(const net::Prefix& prefix) const {
  return rib_.best(prefix);
}

std::optional<bgp::Route> BgpSpeaker::forwarding_route(const net::IpAddress& addr) const {
  return rib_.lookup(addr);
}

bgp::Asn BgpSpeaker::resolve_origin(const net::IpAddress& addr) const {
  const auto route = rib_.lookup(addr);
  if (!route) return bgp::kNoAsn;
  // Self-originated routes carry path [self]; learned routes end at the
  // origin AS either way.
  return route->origin_as();
}

void BgpSpeaker::on_best_change(const bgp::BestRouteChange& change) {
  if (!change_taps_.empty()) {
    bgp::UpdateMessage tap_update;
    tap_update.sender = self_;
    tap_update.sent_at = sim_.now();
    if (change.new_best.has_value()) {
      tap_update.attrs = change.new_best->attrs;
      if (change.new_best->learned_from != bgp::kNoAsn) {
        tap_update.attrs.as_path = tap_update.attrs.as_path.prepended(self_);
      }
      tap_update.announced.push_back(change.prefix);
    } else {
      tap_update.withdrawn.push_back(change.prefix);
    }
    for (const auto& tap : change_taps_) tap(tap_update);
  }
  for (const auto peer : session_order_) {
    Session& session = sessions_.at(peer);
    session.pending.insert(change.prefix);
    schedule_flush(session);
  }
}

SimTime BgpSpeaker::next_scan_tick(const Session& session, SimTime t) const {
  const std::int64_t period = session.config.mrai.as_micros();
  if (period <= 0) return t;
  const std::int64_t phase = session.scan_phase.as_micros();
  const std::int64_t now_us = t.as_micros();
  if (now_us <= phase) return SimTime::at_micros(phase);
  const std::int64_t k = (now_us - phase + period - 1) / period;  // ceil
  return SimTime::at_micros(phase + k * period);
}

void BgpSpeaker::schedule_flush(Session& session) {
  if (session.flush_scheduled) return;
  session.flush_scheduled = true;
  const SimTime when = next_scan_tick(session, sim_.now());
  const bgp::Asn peer = session.config.peer;
  sim_.at(when, [this, peer] { flush_session(peer); });
}

void BgpSpeaker::flush_session(bgp::Asn peer) {
  Session& session = sessions_.at(peer);
  session.flush_scheduled = false;
  if (session.pending.empty()) return;

  // Batch all pending changes into as few updates as the wire format
  // allows: withdrawals ride together; announcements group by attributes.
  std::vector<bgp::UpdateMessage> to_send;
  bgp::UpdateMessage withdrawals;
  withdrawals.sender = self_;
  for (const auto& prefix : session.pending) {
    auto update = build_export(session, prefix);
    if (!update) continue;
    if (update->is_withdrawal()) {
      withdrawals.withdrawn.push_back(prefix);
    } else {
      bool merged = false;
      for (auto& existing : to_send) {
        if (existing.attrs == update->attrs) {
          existing.announced.push_back(prefix);
          merged = true;
          break;
        }
      }
      if (!merged) to_send.push_back(std::move(*update));
    }
  }
  session.pending.clear();
  if (!withdrawals.withdrawn.empty()) to_send.push_back(std::move(withdrawals));
  if (to_send.empty()) return;

  for (auto& update : to_send) {
    update.sent_at = sim_.now();
    ++stats_.updates_sent;
    transmit_(peer, update);
  }
}

bool BgpSpeaker::eligible_for_export(const bgp::Route& route,
                                     const Session& session) const {
  // Never echo a route back to the neighbor it came from.
  if (route.learned_from == session.config.peer) return false;
  const bool self_originated = route.learned_from == bgp::kNoAsn;
  topo::Relationship learned_rel = topo::Relationship::kProvider;
  if (!self_originated) {
    const auto it = sessions_.find(route.learned_from);
    if (it != sessions_.end()) learned_rel = it->second.config.relationship;
  }
  return topo::may_export(learned_rel, session.config.relationship, self_originated);
}

std::optional<bgp::UpdateMessage> BgpSpeaker::build_export(Session& session,
                                                           const net::Prefix& prefix) {
  const bgp::Route* best = rib_.best(prefix);
  const bool exportable = best != nullptr && eligible_for_export(*best, session);
  if (exportable) {
    bgp::UpdateMessage update;
    update.sender = self_;
    update.attrs = best->attrs;
    if (best->learned_from != bgp::kNoAsn) {
      update.attrs.as_path = update.attrs.as_path.prepended(self_);
    }
    // LOCAL_PREF is not transitive across eBGP; receivers assign their own.
    update.attrs.local_pref = 100;
    update.announced.push_back(prefix);
    session.advertised.insert(prefix);
    return update;
  }
  if (session.advertised.erase(prefix) > 0) {
    bgp::UpdateMessage update;
    update.sender = self_;
    update.withdrawn.push_back(prefix);
    return update;
  }
  return std::nullopt;
}

}  // namespace artemis::sim

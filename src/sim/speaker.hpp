// A BGP speaker: one AS's routing process in the simulation.
//
// Each speaker owns a LocRib, applies Gao–Rexford import preferences and
// valley-free export filters derived from its sessions' relationships,
// rate-limits advertisements with a per-session MRAI timer, and filters
// too-specific prefixes on import. Message transmission is delegated to
// the Network through a callback, keeping the speaker testable in
// isolation.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/rib.hpp"
#include "bgp/update.hpp"
#include "sim/simulator.hpp"
#include "rpki/roa.hpp"
#include "topology/policy.hpp"
#include "util/rng.hpp"

namespace artemis::sim {

/// Configuration of one eBGP session from the local speaker's view.
struct SessionConfig {
  bgp::Asn peer = bgp::kNoAsn;
  topo::Relationship relationship = topo::Relationship::kPeer;
  /// Advertisement pacing (MRAI / periodic update-generation scan), the
  /// dominant source of per-hop propagation delay in the real Internet.
  /// Advertisements are emitted on a per-session clock with this period
  /// and a random phase, giving each hop a uniform[0, mrai] delay on
  /// average — the behaviour classic router implementations exhibit.
  /// 0 disables pacing entirely (ablation in bench_mitigation_timeline).
  SimDuration mrai = SimDuration::seconds(30);
};

/// Counters the benches report (monitoring overhead, E5).
struct SpeakerStats {
  std::uint64_t updates_sent = 0;
  std::uint64_t updates_received = 0;
  std::uint64_t prefixes_filtered_too_specific = 0;
  std::uint64_t loops_dropped = 0;
  std::uint64_t rov_dropped = 0;  ///< RPKI-invalid announcements rejected
};

class BgpSpeaker {
 public:
  /// `transmit` is invoked when this speaker emits an update on a session;
  /// the network is responsible for delay and delivery.
  using TransmitFn = std::function<void(bgp::Asn to, const bgp::UpdateMessage&)>;
  /// Observer of local best-route changes (route collectors tap this).
  using ChangeTapFn = std::function<void(const bgp::UpdateMessage&)>;

  BgpSpeaker(Simulator& sim, bgp::Asn self, topo::PolicyConfig policy, Rng rng,
             TransmitFn transmit);

  bgp::Asn asn() const { return self_; }

  void add_session(const SessionConfig& config);
  bool has_session(bgp::Asn peer) const { return sessions_.contains(peer); }

  /// Originates `prefix` from this AS (path = [self]).
  void originate(const net::Prefix& prefix);

  /// Originates with a forged path (used to emulate Type-1/Type-N hijacks,
  /// where the attacker claims adjacency to the victim). The path must end
  /// at the claimed origin; `self` is NOT implicitly added.
  void originate_with_path(const net::Prefix& prefix, const bgp::AsPath& path);

  /// Withdraws a previously originated prefix.
  void withdraw_origin(const net::Prefix& prefix);

  /// Enables RPKI route-origin validation on import: announcements whose
  /// (prefix, origin) validate kInvalid against `table` are dropped.
  /// `table` must outlive the speaker. Models an ROV-enforcing network.
  void enable_rov(const rpki::RoaTable* table) { rov_table_ = table; }
  bool rov_enabled() const { return rov_table_ != nullptr; }

  /// Delivers an update from `from` (called by the Network at arrival time).
  void receive(const bgp::UpdateMessage& update, bgp::Asn from);

  /// Current best route for exactly `prefix`, if any.
  const bgp::Route* best_route(const net::Prefix& prefix) const;

  /// Longest-prefix-match: the route this AS uses for `addr`.
  std::optional<bgp::Route> forwarding_route(const net::IpAddress& addr) const;

  /// The origin AS this speaker's traffic for `addr` ends at (kNoAsn if
  /// the address is unrouted here).
  bgp::Asn resolve_origin(const net::IpAddress& addr) const;

  const bgp::LocRib& rib() const { return rib_; }
  const SpeakerStats& stats() const { return stats_; }

  /// Installs a full-feed tap: every best-route change is reported as the
  /// update this speaker would send on an unfiltered monitoring session
  /// (no MRAI pacing — collectors see changes immediately; feed modules
  /// add their own delivery latency). Multiple taps may be installed
  /// (e.g. a RIS collector and a BGPmon collector on the same vantage).
  void add_change_tap(ChangeTapFn tap) { change_taps_.push_back(std::move(tap)); }

 private:
  struct Session {
    SessionConfig config;
    /// Prefixes with not-yet-flushed changes.
    std::set<net::Prefix> pending;
    /// Prefixes currently advertised to this peer (to suppress spurious
    /// withdrawals and to generate real ones).
    std::unordered_set<net::Prefix> advertised;
    /// Random phase of this session's advertisement clock in [0, mrai).
    SimDuration scan_phase;
    bool flush_scheduled = false;
  };

  /// The first advertisement-clock tick at or after `t` for `session`.
  SimTime next_scan_tick(const Session& session, SimTime t) const;

  void on_best_change(const bgp::BestRouteChange& change);
  void schedule_flush(Session& session);
  void flush_session(bgp::Asn peer);
  /// The update (announce or withdraw) this speaker would send to
  /// `session` for `prefix` right now, or nullopt if nothing to send.
  std::optional<bgp::UpdateMessage> build_export(Session& session,
                                                 const net::Prefix& prefix);
  bool eligible_for_export(const bgp::Route& route, const Session& session) const;

  Simulator& sim_;
  bgp::Asn self_;
  topo::PolicyConfig policy_;
  Rng rng_;
  TransmitFn transmit_;
  std::vector<ChangeTapFn> change_taps_;
  bgp::LocRib rib_;
  std::unordered_map<bgp::Asn, Session> sessions_;
  std::vector<bgp::Asn> session_order_;  ///< deterministic iteration
  std::unordered_set<net::Prefix> originated_;
  const rpki::RoaTable* rov_table_ = nullptr;
  SpeakerStats stats_;
};

}  // namespace artemis::sim

#include "telemetry/http_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "telemetry/metrics.hpp"

namespace artemis::telemetry {
namespace {

bool send_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // scraper went away — fine
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void send_response(int fd, int status, const char* reason,
                   const char* content_type, const std::string& body) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (send_all(fd, head.data(), head.size())) {
    send_all(fd, body.data(), body.size());
  }
}

}  // namespace

MetricsServer::MetricsServer(const MetricsRegistry& registry,
                             MetricsServerOptions options)
    : registry_(registry), options_(std::move(options)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("MetricsServer: socket failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("MetricsServer: cannot bind 127.0.0.1:" +
                             std::to_string(options_.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve_loop(); });
}

MetricsServer::~MetricsServer() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  write_snapshot();  // final state, never older than one interval
}

std::string MetricsServer::url_for(const std::string& path) const {
  return "http://127.0.0.1:" + std::to_string(port_) + path;
}

void MetricsServer::write_snapshot() const {
  if (options_.snapshot_path.empty()) return;
  const std::string text = registry_.snapshot_json().dump(2) + "\n";
  const std::string tmp = options_.snapshot_path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (ok) {
    std::rename(tmp.c_str(), options_.snapshot_path.c_str());
  } else {
    std::remove(tmp.c_str());
  }
}

void MetricsServer::serve_loop() {
  auto last_snapshot = std::chrono::steady_clock::now();
  while (!stop_.load()) {
    if (!options_.snapshot_path.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_snapshot >=
          std::chrono::milliseconds(options_.snapshot_interval_ms)) {
        write_snapshot();
        last_snapshot = now;
      }
    }
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, 50);
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
  }
}

void MetricsServer::handle_connection(int fd) {
  // Requests are header-only; read to the blank line with a hard cap.
  std::string request;
  char buf[4096];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < (64u << 10)) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    if (::poll(&p, 1, 2000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  if (request.find("\r\n\r\n") == std::string::npos) {
    ::close(fd);
    return;
  }

  // "GET /path HTTP/1.1" — ignore any query string.
  std::string method;
  std::string path;
  {
    const std::size_t sp1 = request.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : request.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      method = request.substr(0, sp1);
      path = request.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::size_t q = path.find('?');
      if (q != std::string::npos) path.resize(q);
    }
  }

  if (method != "GET") {
    send_response(fd, 405, "Method Not Allowed", "text/plain",
                  "method not allowed\n");
  } else if (path == "/metrics") {
    send_response(fd, 200, "OK", "text/plain; version=0.0.4",
                  registry_.render_prometheus());
  } else if (path == "/healthz") {
    HealthStatus health;
    if (options_.health) health = options_.health();
    if (health.ok) {
      send_response(fd, 200, "OK", "text/plain", health.body);
    } else {
      send_response(fd, 503, "Service Unavailable", "text/plain", health.body);
    }
  } else {
    send_response(fd, 404, "Not Found", "text/plain", "not found\n");
  }
  ::close(fd);
}

}  // namespace artemis::telemetry

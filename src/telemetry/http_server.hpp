// MetricsServer: a minimal HTTP/1.1 endpoint for the telemetry registry.
//
// The operational peer of src/ingest/http.cpp's client: where that file
// speaks just enough HTTP to *fetch* archives, this one speaks just
// enough to *serve* two paths — `GET /metrics` (Prometheus text
// exposition of a MetricsRegistry) and `GET /healthz` (a liveness
// probe whose body and status come from a caller-supplied check, e.g.
// the ingest ledger invariant `converted == journaled + skipped +
// dropped`). Anything else is a 404.
//
// One accept thread, one connection at a time, 50 ms stop-poll — the
// same shape as the ingest test's FaultServer, because a scrape every
// few seconds needs nothing more. The serve thread never touches the
// data path: rendering takes the registry's registration mutex only.
//
// The server can also tick a periodic JSON snapshot of the registry to
// a file (tmp+rename), extending --stats-json from a terminal blob to
// a liveness artifact.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace artemis::telemetry {

class MetricsRegistry;

/// Result of a health probe: `ok` selects 200 vs 503; `body` is served
/// as text/plain either way.
struct HealthStatus {
  bool ok = true;
  std::string body = "ok\n";
};
using HealthCheck = std::function<HealthStatus()>;

struct MetricsServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back via port()).
  int port = 0;
  /// Optional health probe backing /healthz; when absent /healthz is a
  /// bare 200 "ok".
  HealthCheck health;
  /// When non-empty, the serve thread writes the registry's JSON
  /// snapshot here (tmp+rename) every snapshot_interval_ms.
  std::string snapshot_path;
  int snapshot_interval_ms = 1000;
};

class MetricsServer {
 public:
  /// Binds and starts the serve thread; throws std::runtime_error when
  /// the port cannot be bound.
  MetricsServer(const MetricsRegistry& registry, MetricsServerOptions options);
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  int port() const { return port_; }

  std::string url_for(const std::string& path) const;

  /// Writes the snapshot file immediately (no-op without a path).
  /// Called by the serve thread on its tick and by owners at shutdown
  /// so the final snapshot is never older than one interval.
  void write_snapshot() const;

 private:
  void serve_loop();
  void handle_connection(int fd);

  const MetricsRegistry& registry_;
  MetricsServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

}  // namespace artemis::telemetry

#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <stdexcept>

namespace artemis::telemetry {
namespace {

/// Formats a double the way Prometheus expects: plain decimal, no
/// locale, enough digits to round-trip.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string format_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string format_i64(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

}  // namespace

double HistogramSnapshot::quantile(double q) const noexcept {
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based, ceil), then walk the
  // cumulative counts to the bucket containing it.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank) {
      // Linear interpolation inside [lower, upper]; bucket 0 is exact.
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(bucket_upper(i - 1)) + 1.0;
      const double upper = static_cast<double>(bucket_upper(i));
      const double within =
          counts[i] == 0
              ? 0.0
              : (rank - static_cast<double>(cumulative)) /
                    static_cast<double>(counts[i]);
      double value = lower + within * (upper - lower);
      // The exact max is tracked; no estimate may exceed it.
      if (value > static_cast<double>(max)) value = static_cast<double>(max);
      return value;
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

void Histogram::merge_into(HistogramSnapshot& out) const noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    out.counts[i] += c;
    out.total += c;
  }
  out.sum += sum_.load(std::memory_order_relaxed);
  const std::uint64_t m = max_.load(std::memory_order_relaxed);
  if (m > out.max) out.max = m;
}

MetricsRegistry::Series& MetricsRegistry::series_for(std::string_view name,
                                                     std::string_view help,
                                                     Kind kind, double scale) {
  for (auto& series : series_) {
    if (series.name == name) {
      if (series.kind != kind) {
        throw std::logic_error("metric '" + std::string(name) +
                               "' re-registered with a different kind");
      }
      return series;
    }
  }
  Series series;
  series.name = std::string(name);
  series.help = std::string(help);
  series.kind = kind;
  series.scale = scale;
  series_.push_back(std::move(series));
  return series_.back();
}

Counter* MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  std::string_view labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& series = series_for(name, help, Kind::kCounter, 1.0);
  Cell cell;
  cell.labels = std::string(labels);
  cell.counter = &counters_.emplace_back();
  series.cells.push_back(std::move(cell));
  return series.cells.back().counter;
}

Gauge* MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              std::string_view labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& series = series_for(name, help, Kind::kGauge, 1.0);
  Cell cell;
  cell.labels = std::string(labels);
  cell.gauge = &gauges_.emplace_back();
  series.cells.push_back(std::move(cell));
  return series.cells.back().gauge;
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help, double scale,
                                      std::string_view labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& series = series_for(name, help, Kind::kHistogram, scale);
  Cell cell;
  cell.labels = std::string(labels);
  cell.histogram = &histograms_.emplace_back();
  series.cells.push_back(std::move(cell));
  return series.cells.back().histogram;
}

std::string MetricsRegistry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(4096);
  for (const auto& series : series_) {
    const char* type = series.kind == Kind::kCounter   ? "counter"
                       : series.kind == Kind::kGauge   ? "gauge"
                                                       : "histogram";
    out += "# HELP " + series.name + " " + series.help + "\n";
    out += "# TYPE " + series.name + " " + std::string(type) + "\n";

    // Group cells by label set, preserving first-appearance order.
    std::vector<std::pair<std::string_view, std::vector<std::size_t>>> groups;
    for (std::size_t i = 0; i < series.cells.size(); ++i) {
      const std::string_view labels = series.cells[i].labels;
      auto it = std::find_if(groups.begin(), groups.end(),
                             [&](const auto& g) { return g.first == labels; });
      if (it == groups.end()) {
        groups.push_back({labels, {i}});
      } else {
        it->second.push_back(i);
      }
    }

    for (const auto& [labels, indices] : groups) {
      const std::string label_body(labels);
      const auto with_labels = [&](std::string_view extra) {
        // Splices `extra` (e.g. le="...") into the label set.
        if (label_body.empty() && extra.empty()) return std::string();
        std::string body = label_body;
        if (!body.empty() && !extra.empty()) body += ",";
        body += std::string(extra);
        return "{" + body + "}";
      };
      switch (series.kind) {
        case Kind::kCounter: {
          std::uint64_t total = 0;
          for (std::size_t i : indices) {
            total += series.cells[i].counter->value();
          }
          out += series.name + with_labels({}) + " " + format_u64(total) + "\n";
          break;
        }
        case Kind::kGauge: {
          std::int64_t merged = 0;
          bool first = true;
          for (std::size_t i : indices) {
            const std::int64_t v = series.cells[i].gauge->value();
            merged = first ? v : std::max(merged, v);
            first = false;
          }
          out += series.name + with_labels({}) + " " + format_i64(merged) + "\n";
          break;
        }
        case Kind::kHistogram: {
          HistogramSnapshot snap;
          for (std::size_t i : indices) {
            series.cells[i].histogram->merge_into(snap);
          }
          // Emit buckets only up to the one covering the observed max
          // (the series stays compact; cumulative semantics are intact
          // because every omitted bucket would repeat the total).
          std::uint64_t cumulative = 0;
          for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
            cumulative += snap.counts[b];
            const double upper =
                static_cast<double>(HistogramSnapshot::bucket_upper(b)) *
                series.scale;
            out += series.name + "_bucket" +
                   with_labels("le=\"" + format_double(upper) + "\"") + " " +
                   format_u64(cumulative) + "\n";
            if (cumulative == snap.total &&
                HistogramSnapshot::bucket_upper(b) >= snap.max) {
              break;
            }
          }
          out += series.name + "_bucket" + with_labels("le=\"+Inf\"") + " " +
                 format_u64(snap.total) + "\n";
          out += series.name + "_sum" + with_labels({}) + " " +
                 format_double(static_cast<double>(snap.sum) * series.scale) +
                 "\n";
          out += series.name + "_count" + with_labels({}) + " " +
                 format_u64(snap.total) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

json::Value MetricsRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Object root;
  for (const auto& series : series_) {
    json::Object entry;
    switch (series.kind) {
      case Kind::kCounter:
      case Kind::kGauge: {
        entry["type"] = series.kind == Kind::kCounter ? "counter" : "gauge";
        // One value per distinct label set; unlabeled series collapse
        // to a single "value" field.
        std::map<std::string, json::Value> by_labels;
        for (const auto& cell : series.cells) {
          if (series.kind == Kind::kCounter) {
            const std::uint64_t v = cell.counter->value();
            auto [it, inserted] = by_labels.try_emplace(cell.labels, v);
            if (!inserted) {
              it->second = json::Value(
                  static_cast<std::uint64_t>(it->second.as_number()) + v);
            }
          } else {
            const std::int64_t v = cell.gauge->value();
            auto [it, inserted] = by_labels.try_emplace(cell.labels, v);
            if (!inserted && v > it->second.as_int()) {
              it->second = json::Value(v);
            }
          }
        }
        if (by_labels.size() == 1 && by_labels.begin()->first.empty()) {
          entry["value"] = by_labels.begin()->second;
        } else {
          json::Object cells;
          for (auto& [labels, value] : by_labels) cells[labels] = value;
          entry["cells"] = std::move(cells);
        }
        break;
      }
      case Kind::kHistogram: {
        entry["type"] = "histogram";
        HistogramSnapshot snap;
        for (const auto& cell : series.cells) {
          cell.histogram->merge_into(snap);
        }
        entry["count"] = snap.total;
        entry["sum"] = static_cast<double>(snap.sum) * series.scale;
        entry["max"] = static_cast<double>(snap.max) * series.scale;
        entry["p50"] = snap.quantile(0.50) * series.scale;
        entry["p95"] = snap.quantile(0.95) * series.scale;
        entry["p99"] = snap.quantile(0.99) * series.scale;
        break;
      }
    }
    root[series.name] = std::move(entry);
  }
  return json::Value(std::move(root));
}

HistogramSnapshot MetricsRegistry::histogram_snapshot(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snap;
  for (const auto& series : series_) {
    if (series.name != name || series.kind != Kind::kHistogram) continue;
    for (const auto& cell : series.cells) {
      cell.histogram->merge_into(snap);
    }
    break;
  }
  return snap;
}

DetectionCounters register_detection(MetricsRegistry& registry) {
  DetectionCounters c;
  c.observations = registry.counter("artemis_detection_observations_total",
                                    "Observations processed by detection");
  c.prescreen_skipped =
      registry.counter("artemis_detection_prescreen_skipped_total",
                       "Observations rejected by the SoA prescreen");
  c.memo_hits = registry.counter("artemis_detection_memo_hits_total",
                                 "Classification memo hits within a batch");
  c.dedup_hits =
      registry.counter("artemis_detection_dedup_hits_total",
                       "Observations suppressed by alert dedup (already seen)");
  c.alerts = registry.counter("artemis_detection_alerts_total",
                              "Fresh hijack alerts emitted");
  c.detection_delay = registry.histogram(
      "artemis_detection_delay_seconds",
      "Delay from observation event time to alert emission (sim clock in "
      "simulation, wall clock live)",
      1e-6);
  return c;
}

RingCounters register_ring(MetricsRegistry& registry) {
  RingCounters c;
  c.publishes = registry.counter("artemis_ring_publishes_total",
                                 "Batches published into the handoff ring");
  c.futex_wakeups = registry.counter(
      "artemis_ring_futex_wakeups_total",
      "Futex notify calls issued by the ring (producer + consumer side)");
  c.producer_waits =
      registry.counter("artemis_ring_producer_waits_total",
                       "acquire() calls that found the slot pool empty");
  c.occupancy_high =
      registry.gauge("artemis_ring_occupancy_high_water",
                     "High-water mark of batches queued in any shard ring");
  return c;
}

PipelineCounters register_pipeline(MetricsRegistry& registry) {
  PipelineCounters c;
  c.flush_stalls =
      registry.counter("artemis_pipeline_flush_stalls_total",
                       "flush() calls that had to wait for worker backlog");
  return c;
}

JournalCounters register_journal(MetricsRegistry& registry) {
  JournalCounters c;
  c.appends = registry.counter("artemis_journal_appends_total",
                               "append_batch calls on the journal writer");
  c.records = registry.counter("artemis_journal_records_total",
                               "Observations appended to the journal");
  c.fsyncs =
      registry.counter("artemis_journal_fsyncs_total", "fsync(2) calls");
  c.rotations = registry.counter("artemis_journal_rotations_total",
                                 "Journal segment rotations");
  c.lag_records = registry.gauge(
      "artemis_journal_lag_records",
      "Encoded records buffered in the writer but not yet written");
  c.compressions =
      registry.counter("artemis_journal_compressions_total",
                       "Sealed segments re-stored gzip-compressed");
  c.retention_deletes =
      registry.counter("artemis_journal_retention_deletes_total",
                       "Sealed segments deleted by the retention policy");
  return c;
}

IngestCounters register_ingest(MetricsRegistry& registry) {
  IngestCounters c;
  c.bytes_fetched = registry.counter("artemis_ingest_bytes_fetched_total",
                                     "HTTP body bytes received by fetchers");
  c.fetch_retries = registry.counter("artemis_ingest_fetch_retries_total",
                                     "Fetch attempts beyond the first");
  c.backoff_waits = registry.counter("artemis_ingest_backoff_waits_total",
                                     "Backoff sleeps taken between attempts");
  c.backoff_ms =
      registry.counter("artemis_ingest_backoff_milliseconds_total",
                       "Total milliseconds spent in fetch backoff sleeps");
  c.cursor_persists = registry.counter("artemis_ingest_cursor_persists_total",
                                       "Resume-cursor writes (tmp+rename)");
  c.convert_records = registry.counter("artemis_convert_records_total",
                                       "MRT records decoded by the converter");
  c.convert_skips =
      registry.counter("artemis_convert_skips_total",
                       "Recognized-but-unmodeled MRT records skipped");
  c.converted = registry.counter("artemis_ingest_observations_converted_total",
                                 "Observations produced by conversion");
  c.journaled = registry.counter("artemis_ingest_observations_journaled_total",
                                 "Observations appended to the journal");
  c.skipped = registry.counter(
      "artemis_ingest_observations_skipped_total",
      "Observations skipped while resuming past the journal tail");
  c.dropped = registry.counter("artemis_ingest_observations_dropped_total",
                               "Observations shed by the journal lag policy");
  return c;
}

}  // namespace artemis::telemetry

// Zero-allocation telemetry: a registry of relaxed-atomic counters,
// gauges and log2-bucket histograms (ISSUE 8).
//
// The design contract mirrors ShardedDetector's merge-on-read stats:
// metric cells are registered (named, labeled) at startup, each
// registration hands back a stable pointer, and the hot path touches a
// cell with ~1 relaxed atomic store — no locks, no allocation, no
// branching beyond a null check. Registering the same (name, labels)
// pair again deliberately creates a NEW cell: per-shard instances each
// own private cache lines and the registry merges them on read
// (counters and histograms sum, gauges take the max), so instrumented
// shards never contend on a shared counter.
//
// Reads (Prometheus text render, JSON snapshot, quantiles) take the
// registration mutex, walk the cells with relaxed loads, and may
// allocate freely — they run on the scrape path, not the data path.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"

namespace artemis::telemetry {

/// Monotone event count. add() is a single relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level. set() is one relaxed store; update_max() is a
/// relaxed CAS loop that only writes when it would raise the value.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  void update_max(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::int64_t> value_{0};
};

/// A merged, point-in-time view of a histogram (see Histogram).
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 65;
  std::uint64_t counts[kBuckets] = {};  ///< per-bucket (non-cumulative)
  std::uint64_t sum = 0;                ///< raw units (e.g. microseconds)
  std::uint64_t max = 0;                ///< exact observed max, raw units
  std::uint64_t total = 0;              ///< total observations

  /// Upper bound (inclusive) of bucket i in raw units: 0 for bucket 0,
  /// 2^i - 1 otherwise.
  static std::uint64_t bucket_upper(std::size_t i) noexcept {
    return i == 0 ? 0 : (i >= 64 ? ~0ull : (1ull << i) - 1);
  }

  /// Quantile estimate in raw units: cumulative walk to the target
  /// bucket, linear interpolation within it, clamped by the exact max.
  /// q in [0, 1]; returns 0 on an empty histogram.
  double quantile(double q) const noexcept;
};

/// Fixed-bucket log2-scale histogram. record() costs three relaxed RMWs
/// (bucket count, sum, conditional max) and never allocates: values map
/// to buckets by bit width, so bucket 0 holds exactly 0 and bucket i
/// holds [2^(i-1), 2^i - 1]. 65 buckets cover the full uint64 range —
/// microsecond delays from sub-microsecond to ~584k years.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  void record(std::uint64_t v) noexcept {
    const std::size_t b = std::bit_width(v);  // 0 for v==0
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  /// Accumulates this cell into `out` (relaxed loads).
  void merge_into(HistogramSnapshot& out) const noexcept;

 private:
  std::atomic<std::uint64_t> counts_[kBuckets] = {};
  alignas(64) std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Named, labeled metric cells with merge-on-read rendering.
///
/// Registration (startup, may allocate): counter()/gauge()/histogram()
/// return a stable pointer; cells live in deques so registration never
/// moves them. `labels` is a pre-formatted Prometheus label body
/// (e.g. `source="ris-live"`) or empty.
///
/// Rendering (scrape path): render_prometheus() emits text exposition
/// format; snapshot_json() emits the same data as a JSON object for the
/// --stats-json snapshot extension.
class MetricsRegistry {
 public:
  Counter* counter(std::string_view name, std::string_view help,
                   std::string_view labels = {});
  Gauge* gauge(std::string_view name, std::string_view help,
               std::string_view labels = {});
  /// `scale` multiplies raw recorded units into rendered units (a
  /// microsecond histogram rendered in seconds passes 1e-6).
  Histogram* histogram(std::string_view name, std::string_view help,
                       double scale = 1.0, std::string_view labels = {});

  /// Prometheus text exposition format (version 0.0.4).
  std::string render_prometheus() const;

  /// The same series as a JSON object: name -> {type, value | cells |
  /// histogram fields}. Deterministic (std::map-backed objects).
  json::Value snapshot_json() const;

  /// Merged snapshot of one histogram series by name (all label sets
  /// and cells combined); empty snapshot if the name is unknown.
  HistogramSnapshot histogram_snapshot(std::string_view name) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Cell {
    std::string labels;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };
  struct Series {
    std::string name;
    std::string help;
    Kind kind;
    double scale = 1.0;
    std::vector<Cell> cells;  ///< registration order; merged per label set
  };

  Series& series_for(std::string_view name, std::string_view help, Kind kind,
                     double scale);

  mutable std::mutex mutex_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Series> series_;  ///< registration order drives render order
};

// ---------------------------------------------------------------------------
// Per-stage cell bundles. Each register_* call creates a fresh set of
// cells (per-shard callers call once per shard); components hold the
// bundle by value with null-defaulted pointers, so "telemetry disabled"
// is the default and costs one predictable branch per batch.

/// Detection hot path (one bundle per shard).
struct DetectionCounters {
  Counter* observations = nullptr;      ///< observations processed
  Counter* prescreen_skipped = nullptr; ///< prescreen-rejected observations
  Counter* memo_hits = nullptr;         ///< classification memo hits
  Counter* dedup_hits = nullptr;        ///< already-alerted suppressions
  Counter* alerts = nullptr;            ///< fresh alerts emitted
  Histogram* detection_delay = nullptr; ///< event_time -> detected_at, usec
  bool enabled() const noexcept { return observations != nullptr; }
};
DetectionCounters register_detection(MetricsRegistry& registry);

/// BatchRing handoff (one bundle per shard ring).
struct RingCounters {
  Counter* publishes = nullptr;       ///< batches published to workers
  Counter* futex_wakeups = nullptr;   ///< futex notify calls (either side)
  Counter* producer_waits = nullptr;  ///< acquire() calls that had to wait
  Gauge* occupancy_high = nullptr;    ///< high-water of queued batches
  bool enabled() const noexcept { return publishes != nullptr; }
};
RingCounters register_ring(MetricsRegistry& registry);

/// Sharded pipeline producer side (one bundle per detector).
struct PipelineCounters {
  Counter* flush_stalls = nullptr;  ///< flush() calls that found a backlog
  bool enabled() const noexcept { return flush_stalls != nullptr; }
};
PipelineCounters register_pipeline(MetricsRegistry& registry);

/// Journal writer (one bundle per writer).
struct JournalCounters {
  Counter* appends = nullptr;    ///< append_batch calls
  Counter* records = nullptr;    ///< observations appended
  Counter* fsyncs = nullptr;     ///< fsync(2) calls
  Counter* rotations = nullptr;  ///< segment rotations
  Gauge* lag_records = nullptr;  ///< buffered-not-yet-written records
  Counter* compressions = nullptr;       ///< sealed segments gzip-compressed
  Counter* retention_deletes = nullptr;  ///< sealed segments reaped by retention
  bool enabled() const noexcept { return appends != nullptr; }
};
JournalCounters register_journal(MetricsRegistry& registry);

/// Ingest front end (one bundle per pipeline/supervisor pair).
struct IngestCounters {
  Counter* bytes_fetched = nullptr;    ///< HTTP body bytes received
  Counter* fetch_retries = nullptr;    ///< fetch retry attempts
  Counter* backoff_waits = nullptr;    ///< backoff sleeps taken
  Counter* backoff_ms = nullptr;       ///< total backoff milliseconds
  Counter* cursor_persists = nullptr;  ///< resume-cursor writes
  Counter* convert_records = nullptr;  ///< MRT records converted
  Counter* convert_skips = nullptr;    ///< unmodeled records skipped
  Counter* converted = nullptr;        ///< observations converted
  Counter* journaled = nullptr;        ///< observations journaled
  Counter* skipped = nullptr;          ///< observations skipped on resume
  Counter* dropped = nullptr;          ///< observations shed by lag policy
  bool enabled() const noexcept { return converted != nullptr; }
};
IngestCounters register_ingest(MetricsRegistry& registry);

}  // namespace artemis::telemetry

#include "topology/as_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "util/strings.hpp"

namespace artemis::topo {

std::string_view to_string(Relationship r) {
  switch (r) {
    case Relationship::kCustomer: return "customer";
    case Relationship::kPeer: return "peer";
    case Relationship::kProvider: return "provider";
  }
  return "?";
}

Relationship reverse(Relationship r) {
  switch (r) {
    case Relationship::kCustomer: return Relationship::kProvider;
    case Relationship::kProvider: return Relationship::kCustomer;
    case Relationship::kPeer: return Relationship::kPeer;
  }
  return Relationship::kPeer;
}

void AsGraph::add_as(bgp::Asn asn, Tier tier) {
  if (asn == bgp::kNoAsn) throw std::invalid_argument("ASN 0 is reserved");
  const auto [it, inserted] = nodes_.try_emplace(asn);
  if (inserted) {
    it->second.tier = tier;
    order_.push_back(asn);
  }
}

bool AsGraph::has_as(bgp::Asn asn) const { return nodes_.contains(asn); }

AsGraph::NodeData& AsGraph::node(bgp::Asn asn) {
  const auto it = nodes_.find(asn);
  if (it == nodes_.end()) {
    throw std::invalid_argument("unknown AS" + std::to_string(asn));
  }
  return it->second;
}

const AsGraph::NodeData& AsGraph::node(bgp::Asn asn) const {
  return const_cast<AsGraph*>(this)->node(asn);
}

void AsGraph::add_customer_link(bgp::Asn provider, bgp::Asn customer) {
  if (provider == customer) throw std::invalid_argument("self link");
  if (has_link(provider, customer)) throw std::invalid_argument("duplicate link");
  // Resolve both endpoints before mutating either (strong exception
  // safety: a bad ASN must not leave a half-installed link).
  NodeData& provider_node = node(provider);
  NodeData& customer_node = node(customer);
  provider_node.neighbors.push_back({customer, Relationship::kCustomer});
  customer_node.neighbors.push_back({provider, Relationship::kProvider});
  ++link_count_;
}

void AsGraph::add_peer_link(bgp::Asn a, bgp::Asn b) {
  if (a == b) throw std::invalid_argument("self link");
  if (has_link(a, b)) throw std::invalid_argument("duplicate link");
  NodeData& a_node = node(a);
  NodeData& b_node = node(b);
  a_node.neighbors.push_back({b, Relationship::kPeer});
  b_node.neighbors.push_back({a, Relationship::kPeer});
  ++link_count_;
}

bool AsGraph::has_link(bgp::Asn a, bgp::Asn b) const {
  const auto it = nodes_.find(a);
  if (it == nodes_.end()) return false;
  for (const auto& n : it->second.neighbors) {
    if (n.asn == b) return true;
  }
  return false;
}

std::optional<Relationship> AsGraph::relationship(bgp::Asn local, bgp::Asn neighbor) const {
  const auto it = nodes_.find(local);
  if (it == nodes_.end()) return std::nullopt;
  for (const auto& n : it->second.neighbors) {
    if (n.asn == neighbor) return n.relationship;
  }
  return std::nullopt;
}

const std::vector<Neighbor>& AsGraph::neighbors(bgp::Asn asn) const {
  return node(asn).neighbors;
}

Tier AsGraph::tier(bgp::Asn asn) const { return node(asn).tier; }

void AsGraph::set_tier(bgp::Asn asn, Tier tier) { node(asn).tier = tier; }

std::vector<bgp::Asn> AsGraph::ases_in_tier(Tier tier) const {
  std::vector<bgp::Asn> out;
  for (const auto asn : order_) {
    if (nodes_.at(asn).tier == tier) out.push_back(asn);
  }
  return out;
}

std::vector<bgp::Asn> AsGraph::neighbors_with(bgp::Asn asn, Relationship r) const {
  std::vector<bgp::Asn> out;
  for (const auto& n : node(asn).neighbors) {
    if (n.relationship == r) out.push_back(n.asn);
  }
  return out;
}

std::string AsGraph::serialize() const {
  // Canonical form: one line per undirected link, numerically sorted, so
  // any two structurally equal graphs serialize identically.
  std::vector<std::tuple<bgp::Asn, bgp::Asn, int>> links;
  for (const auto asn : order_) {
    for (const auto& n : nodes_.at(asn).neighbors) {
      if (n.relationship == Relationship::kCustomer) {
        links.emplace_back(asn, n.asn, -1);
      } else if (n.relationship == Relationship::kPeer && asn < n.asn) {
        links.emplace_back(asn, n.asn, 0);
      }
    }
  }
  std::sort(links.begin(), links.end());
  std::string out = "# as-rel: <provider>|<customer>|-1 or <peer>|<peer>|0\n";
  for (const auto& [a, b, rel] : links) {
    out += std::to_string(a) + "|" + std::to_string(b) + "|" + std::to_string(rel) + "\n";
  }
  return out;
}

AsGraph AsGraph::parse(std::string_view text) {
  AsGraph graph;
  for (const auto raw_line : split(text, '\n')) {
    const auto line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto fields = split(line, '|');
    if (fields.size() != 3) throw std::invalid_argument("bad as-rel line");
    const auto a = parse_u32(trim(fields[0]));
    const auto b = parse_u32(trim(fields[1]));
    const auto rel = trim(fields[2]);
    if (!a || !b) throw std::invalid_argument("bad ASN in as-rel line");
    graph.add_as(*a);
    graph.add_as(*b);
    if (rel == "-1") {
      graph.add_customer_link(*a, *b);
    } else if (rel == "0") {
      graph.add_peer_link(*a, *b);
    } else {
      throw std::invalid_argument("bad relationship in as-rel line");
    }
  }
  return graph;
}

}  // namespace artemis::topo

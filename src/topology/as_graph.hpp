// The AS-level Internet graph with business relationships.
//
// Inter-domain routing policy is driven by bilateral relationships
// (customer-provider or settlement-free peer, the Gao–Rexford model).
// AsGraph stores the annotated graph; policy.hpp derives import
// preferences and export filters from it; the generator builds synthetic
// Internets with realistic hierarchy.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bgp/types.hpp"

namespace artemis::topo {

/// The role of a *neighbor* relative to the local AS.
enum class Relationship : std::uint8_t {
  kCustomer,  ///< the neighbor pays us for transit
  kPeer,      ///< settlement-free peering
  kProvider,  ///< we pay the neighbor for transit
};

std::string_view to_string(Relationship r);

/// Flips the perspective (my customer sees me as its provider).
Relationship reverse(Relationship r);

/// Where an AS sits in the generated hierarchy (informational; routing
/// policy derives from relationships only).
enum class Tier : std::uint8_t { kTier1 = 1, kTier2 = 2, kStub = 3 };

struct Neighbor {
  bgp::Asn asn = bgp::kNoAsn;
  Relationship relationship = Relationship::kPeer;
};

/// An undirected AS graph with per-edge relationships. Value-semantic.
class AsGraph {
 public:
  /// Adds an AS (idempotent). Tier defaults to stub until set.
  void add_as(bgp::Asn asn, Tier tier = Tier::kStub);

  bool has_as(bgp::Asn asn) const;
  std::size_t as_count() const { return nodes_.size(); }
  std::size_t link_count() const { return link_count_; }

  /// Declares `customer` a customer of `provider`. Both ASes must exist.
  /// Throws std::invalid_argument on self-links or duplicate links.
  void add_customer_link(bgp::Asn provider, bgp::Asn customer);

  /// Declares a settlement-free peering between `a` and `b`.
  void add_peer_link(bgp::Asn a, bgp::Asn b);

  bool has_link(bgp::Asn a, bgp::Asn b) const;

  /// The relationship of `neighbor` as seen from `local`; nullopt if the
  /// two ASes are not adjacent.
  std::optional<Relationship> relationship(bgp::Asn local, bgp::Asn neighbor) const;

  /// All neighbors of `asn` with their relationship to it, in insertion
  /// order (deterministic).
  const std::vector<Neighbor>& neighbors(bgp::Asn asn) const;

  Tier tier(bgp::Asn asn) const;
  void set_tier(bgp::Asn asn, Tier tier);

  /// All ASNs in insertion order.
  const std::vector<bgp::Asn>& all_ases() const { return order_; }

  /// ASNs of a given tier, insertion order.
  std::vector<bgp::Asn> ases_in_tier(Tier tier) const;

  /// Providers / customers / peers of an AS.
  std::vector<bgp::Asn> neighbors_with(bgp::Asn asn, Relationship r) const;

  /// Serializes to the CAIDA as-rel line format:
  ///   <a>|<b>|-1  (a is provider of b)
  ///   <a>|<b>|0   (peers)
  /// Comment lines start with '#'.
  std::string serialize() const;

  /// Parses the CAIDA as-rel format. Throws std::invalid_argument on
  /// malformed lines.
  static AsGraph parse(std::string_view text);

 private:
  struct NodeData {
    Tier tier = Tier::kStub;
    std::vector<Neighbor> neighbors;
  };

  NodeData& node(bgp::Asn asn);
  const NodeData& node(bgp::Asn asn) const;

  std::unordered_map<bgp::Asn, NodeData> nodes_;
  std::vector<bgp::Asn> order_;
  std::size_t link_count_ = 0;
};

}  // namespace artemis::topo

#include "topology/cone.hpp"

namespace artemis::topo {

std::unordered_set<bgp::Asn> customer_cone(const AsGraph& graph, bgp::Asn root) {
  std::unordered_set<bgp::Asn> cone;
  std::vector<bgp::Asn> frontier{root};
  while (!frontier.empty()) {
    const bgp::Asn current = frontier.back();
    frontier.pop_back();
    if (!cone.insert(current).second) continue;
    for (const auto customer : graph.neighbors_with(current, Relationship::kCustomer)) {
      frontier.push_back(customer);
    }
  }
  return cone;
}

std::unordered_map<bgp::Asn, std::size_t> customer_cone_sizes(const AsGraph& graph) {
  // Memoized bottom-up pass: process ASes by increasing provisional cone.
  // Cone *membership* is a set union, so sizes cannot simply be summed
  // over children (a customer reachable via two paths must count once).
  // The graphs here are small enough (thousands of ASes) that per-root
  // BFS is fine and exact.
  std::unordered_map<bgp::Asn, std::size_t> sizes;
  sizes.reserve(graph.as_count());
  for (const auto asn : graph.all_ases()) {
    sizes.emplace(asn, customer_cone(graph, asn).size());
  }
  return sizes;
}

std::unordered_map<bgp::Asn, double> cone_weights(const AsGraph& graph,
                                                  const std::vector<bgp::Asn>& vantages) {
  std::unordered_map<bgp::Asn, double> weights;
  double total = 0.0;
  for (const auto vantage : vantages) {
    const auto size = static_cast<double>(customer_cone(graph, vantage).size());
    weights.emplace(vantage, size);
    total += size;
  }
  if (total > 0.0) {
    for (auto& [asn, weight] : weights) weight /= total;
  }
  return weights;
}

}  // namespace artemis::topo

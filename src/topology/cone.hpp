// Customer cones and hijack impact estimation.
//
// The customer cone of an AS is the set of ASes reachable by walking
// customer links downward (the AS itself included) — CAIDA's standard
// proxy for "how much of the Internet sits behind this network". The
// experiment harness uses cone sizes to weight vantage points when
// estimating how much of the Internet a hijack captured: a tier-1 falling
// to the attacker matters far more than a stub (impact estimation, an
// extension following the ARTEMIS authors' later work).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "topology/as_graph.hpp"

namespace artemis::topo {

/// Customer cone sizes (|cone|, self included) for every AS. Handles
/// arbitrary graphs (cycles in mislabeled data do not hang: membership is
/// computed per root over a visited set).
std::unordered_map<bgp::Asn, std::size_t> customer_cone_sizes(const AsGraph& graph);

/// The explicit cone membership of one AS.
std::unordered_set<bgp::Asn> customer_cone(const AsGraph& graph, bgp::Asn root);

/// Weights vantage ASes by cone size, normalized so all weights sum to 1.
/// Useful for impact-weighted "fraction of the Internet" metrics.
std::unordered_map<bgp::Asn, double> cone_weights(const AsGraph& graph,
                                                  const std::vector<bgp::Asn>& vantages);

}  // namespace artemis::topo

#include "topology/generator.hpp"

#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace artemis::topo {
namespace {

/// Weighted provider pick mixing uniform and degree-proportional mass.
bgp::Asn pick_provider(const std::vector<bgp::Asn>& candidates,
                       const std::vector<std::size_t>& degree, double alpha, Rng& rng,
                       const std::unordered_set<bgp::Asn>& exclude) {
  double total = 0.0;
  std::vector<double> weight(candidates.size(), 0.0);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (exclude.contains(candidates[i])) continue;
    const double w = (1.0 - alpha) + alpha * static_cast<double>(degree[i] + 1);
    weight[i] = w;
    total += w;
  }
  if (total <= 0.0) return bgp::kNoAsn;
  double target = rng.uniform(0.0, total);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    target -= weight[i];
    if (weight[i] > 0.0 && target <= 0.0) return candidates[i];
  }
  // Floating-point slack: return the last eligible candidate.
  for (std::size_t i = candidates.size(); i > 0; --i) {
    if (weight[i - 1] > 0.0) return candidates[i - 1];
  }
  return bgp::kNoAsn;
}

}  // namespace

AsGraph generate_topology(const GeneratorParams& params, Rng& rng) {
  if (params.tier1_count < 1 || params.tier2_count < 0 || params.stub_count < 0) {
    throw std::invalid_argument("bad topology sizes");
  }
  if (params.min_providers < 1 || params.max_providers < params.min_providers) {
    throw std::invalid_argument("bad provider counts");
  }

  AsGraph graph;
  bgp::Asn next = params.first_asn;
  std::vector<bgp::Asn> tier1s;
  std::vector<bgp::Asn> tier2s;
  for (int i = 0; i < params.tier1_count; ++i) {
    graph.add_as(next, Tier::kTier1);
    tier1s.push_back(next++);
  }
  for (int i = 0; i < params.tier2_count; ++i) {
    graph.add_as(next, Tier::kTier2);
    tier2s.push_back(next++);
  }
  std::vector<bgp::Asn> stubs;
  for (int i = 0; i < params.stub_count; ++i) {
    graph.add_as(next, Tier::kStub);
    stubs.push_back(next++);
  }

  // Tier-1 clique: settlement-free full mesh.
  for (std::size_t i = 0; i < tier1s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
      graph.add_peer_link(tier1s[i], tier1s[j]);
    }
  }

  // Tier-2s buy transit from tier-1s (and occasionally from earlier
  // tier-2s, creating multi-level hierarchies). Track provider degree for
  // preferential attachment.
  std::vector<bgp::Asn> transit_pool = tier1s;  // eligible providers
  std::vector<std::size_t> transit_degree(transit_pool.size(), 0);
  for (const auto t2 : tier2s) {
    const int providers =
        static_cast<int>(rng.uniform_int(params.min_providers, params.max_providers));
    std::unordered_set<bgp::Asn> chosen;
    for (int k = 0; k < providers; ++k) {
      const bgp::Asn provider = pick_provider(transit_pool, transit_degree,
                                              params.preferential_attachment, rng, chosen);
      if (provider == bgp::kNoAsn) break;
      chosen.insert(provider);
      graph.add_customer_link(provider, t2);
      for (std::size_t i = 0; i < transit_pool.size(); ++i) {
        if (transit_pool[i] == provider) {
          ++transit_degree[i];
          break;
        }
      }
    }
    transit_pool.push_back(t2);
    transit_degree.push_back(0);
  }

  // Tier-2 peering mesh (sparse, probabilistic).
  for (std::size_t i = 0; i < tier2s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier2s.size(); ++j) {
      if (rng.chance(params.tier2_peering_prob) && !graph.has_link(tier2s[i], tier2s[j])) {
        graph.add_peer_link(tier2s[i], tier2s[j]);
      }
    }
  }

  // Stubs buy transit from tier-2s (or tier-1s when there are no tier-2s).
  const std::vector<bgp::Asn>& stub_pool = tier2s.empty() ? tier1s : tier2s;
  std::vector<std::size_t> stub_pool_degree(stub_pool.size(), 0);
  for (const auto stub : stubs) {
    const int providers =
        static_cast<int>(rng.uniform_int(params.min_providers, params.max_providers));
    std::unordered_set<bgp::Asn> chosen;
    for (int k = 0; k < providers; ++k) {
      const bgp::Asn provider = pick_provider(stub_pool, stub_pool_degree,
                                              params.preferential_attachment, rng, chosen);
      if (provider == bgp::kNoAsn) break;
      chosen.insert(provider);
      graph.add_customer_link(provider, stub);
      for (std::size_t i = 0; i < stub_pool.size(); ++i) {
        if (stub_pool[i] == provider) {
          ++stub_pool_degree[i];
          break;
        }
      }
    }
  }

  return graph;
}

bool all_connected_to_tier1(const AsGraph& graph) {
  for (const auto asn : graph.all_ases()) {
    // Walk provider links upward; bounded by AS count to stop on cycles.
    std::unordered_set<bgp::Asn> visited;
    std::vector<bgp::Asn> frontier{asn};
    bool reached = false;
    while (!frontier.empty() && !reached) {
      const bgp::Asn current = frontier.back();
      frontier.pop_back();
      if (!visited.insert(current).second) continue;
      if (graph.tier(current) == Tier::kTier1) {
        reached = true;
        break;
      }
      for (const auto provider : graph.neighbors_with(current, Relationship::kProvider)) {
        frontier.push_back(provider);
      }
    }
    if (!reached) return false;
  }
  return true;
}

}  // namespace artemis::topo

// Synthetic Internet topology generation.
//
// Produces a three-tier hierarchy resembling the measured AS-level
// Internet: a fully meshed clique of tier-1 transit-free providers, a
// middle tier of regional transit networks multihomed to tier-1s/each
// other, and an edge of stub ASes (the vast majority, as in CAIDA data).
// Degree distributions are skewed (preferential attachment on provider
// choice) and peering links are added between tier-2s.
//
// Generation is fully deterministic given the Rng.
#pragma once

#include "topology/as_graph.hpp"
#include "util/rng.hpp"

namespace artemis::topo {

struct GeneratorParams {
  int tier1_count = 8;
  int tier2_count = 80;
  int stub_count = 400;

  /// Provider multihoming: each tier-2/stub gets uniform [min,max] providers.
  int min_providers = 1;
  int max_providers = 3;

  /// Probability that any given tier-2 pair peers (in addition to the
  /// tier-1 clique).
  double tier2_peering_prob = 0.05;

  /// Preferential attachment strength when choosing providers: 0 = uniform,
  /// 1 = fully degree-proportional.
  double preferential_attachment = 0.75;

  /// First ASN assigned; ASes are numbered consecutively from here.
  bgp::Asn first_asn = 1;
};

/// Generates a topology. ASN layout: tier-1s first, then tier-2s, then
/// stubs, consecutively from `params.first_asn`.
AsGraph generate_topology(const GeneratorParams& params, Rng& rng);

/// Sanity predicate used by tests and asserted by the generator: every AS
/// can reach a tier-1 by following provider links (no orphan islands).
bool all_connected_to_tier1(const AsGraph& graph);

}  // namespace artemis::topo

#include "topology/policy.hpp"

namespace artemis::topo {

std::uint32_t PreferenceBands::for_relationship(Relationship r) const {
  switch (r) {
    case Relationship::kCustomer: return customer;
    case Relationship::kPeer: return peer;
    case Relationship::kProvider: return provider;
  }
  return provider;
}

bool may_export(Relationship learned_from_rel, Relationship export_to_rel,
                bool self_originated) {
  // Routes from customers (and our own) are exported to everyone: they
  // earn revenue or are our responsibility. Routes from peers/providers
  // are exported only downhill, to customers.
  if (self_originated || learned_from_rel == Relationship::kCustomer) return true;
  return export_to_rel == Relationship::kCustomer;
}

}  // namespace artemis::topo

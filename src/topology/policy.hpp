// Gao–Rexford routing policy derived from AS relationships.
//
// Import: prefer customer routes over peer routes over provider routes
// (encoded as LOCAL_PREF so the standard decision process applies).
// Export (valley-free): a route is exported to a neighbor iff it was
// learned from a customer or self-originated, OR the neighbor is a
// customer. This yields the no-valley, no-peak paths observed in the real
// Internet and is what makes hijack propagation distance-dependent — the
// effect ARTEMIS's experiments measure.
#pragma once

#include <cstdint>

#include "topology/as_graph.hpp"

namespace artemis::topo {

/// LOCAL_PREF bands for the three relationship classes. Gaps leave room
/// for per-prefix traffic engineering without crossing bands.
struct PreferenceBands {
  std::uint32_t customer = 300;
  std::uint32_t peer = 200;
  std::uint32_t provider = 100;
  /// Self-originated routes beat everything learned.
  std::uint32_t self = 1000;

  std::uint32_t for_relationship(Relationship r) const;
};

/// True iff a route learned from `learned_from_rel` may be exported to a
/// neighbor with relationship `export_to_rel` (valley-free rule).
/// Self-originated routes pass `learned_from_rel = kCustomer` semantics
/// via the `self_originated` flag.
bool may_export(Relationship learned_from_rel, Relationship export_to_rel,
                bool self_originated);

/// Convenience bundle used by the simulator to configure each speaker.
struct PolicyConfig {
  PreferenceBands bands;
  /// Longest prefix accepted on import; announcements of more-specific
  /// prefixes are dropped. /24 is the Internet's de-facto boundary and the
  /// reason de-aggregation cannot defend a /24 (paper §2).
  int max_accepted_prefix_len = 24;
};

}  // namespace artemis::topo

#include "util/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace artemis::util {

unsigned cpu_count() {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int n = CPU_COUNT(&mask);
    if (n > 0) return static_cast<unsigned>(n);
  }
#endif
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 1;
}

bool pin_current_thread_to_cpu(unsigned cpu) {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(cpu, &mask);
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace artemis::util

// Portable CPU-affinity shim for the pipeline's shard workers.
//
// Pinning a poll-mode worker to one core keeps its ring slots and
// detection state in that core's cache and stops the scheduler from
// migrating it mid-burst (the NDN-DPDK per-core worker discipline).
// Affinity syscalls are platform-specific, so the pipeline talks to this
// two-function shim instead: on Linux it is pthread_setaffinity_np, on
// anything else a no-op that reports failure — callers treat pinning as
// an optimization hint, never a correctness requirement.
#pragma once

namespace artemis::util {

/// Number of CPUs the process may run on (>= 1). Prefers the current
/// affinity mask over the raw core count so pinning respects cgroup /
/// taskset restrictions.
unsigned cpu_count();

/// Pins the calling thread to `cpu` (modulo nothing — pass a valid index,
/// e.g. `base + worker_index % cpu_count()`). Returns false when the
/// platform has no affinity support or the syscall is refused; the caller
/// should carry on unpinned.
bool pin_current_thread_to_cpu(unsigned cpu);

}  // namespace artemis::util

#include "util/logging.hpp"

#include <cstdio>

namespace artemis {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

Logging::Sink& Logging::sink_ref() {
  static Sink sink = [](LogLevel level, const std::string& line) {
    std::fprintf(stderr, "[%s] %s\n", std::string(to_string(level)).c_str(), line.c_str());
  };
  return sink;
}

LogLevel& Logging::threshold_ref() {
  static LogLevel threshold = LogLevel::kWarn;
  return threshold;
}

LogLevel Logging::threshold() { return threshold_ref(); }

void Logging::set_threshold(LogLevel level) { threshold_ref() = level; }

Logging::Sink Logging::set_sink(Sink sink) {
  Sink previous = std::move(sink_ref());
  sink_ref() = std::move(sink);
  return previous;
}

void Logging::emit(LogLevel level, SimTime when, std::string_view component,
                   const std::string& message) {
  if (level < threshold()) return;
  std::string line;
  line.reserve(message.size() + 32);
  line += when.to_string();
  line += " [";
  line += component;
  line += "] ";
  line += message;
  sink_ref()(level, line);
}

}  // namespace artemis

// Lightweight leveled logging.
//
// The simulator's services (detection, mitigation, monitoring) log against
// simulated time rather than wall-clock time, so the Logger takes an
// optional SimTime with every record. Output goes to a configurable sink
// (stderr by default); tests install a capturing sink.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "util/time.hpp"

namespace artemis {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

std::string_view to_string(LogLevel level);

/// Process-wide logging configuration. Not thread-safe by design: the
/// simulator is single-threaded (see DESIGN.md).
class Logging {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel threshold();
  static void set_threshold(LogLevel level);

  /// Replaces the sink; returns the previous one so tests can restore it.
  static Sink set_sink(Sink sink);

  static void emit(LogLevel level, SimTime when, std::string_view component,
                   const std::string& message);

 private:
  static Sink& sink_ref();
  static LogLevel& threshold_ref();
};

/// Builder used by the LOG_AT macro; accumulates a message via operator<<.
class LogRecord {
 public:
  LogRecord(LogLevel level, SimTime when, std::string_view component)
      : level_(level), when_(when), component_(component) {}
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;
  ~LogRecord() { Logging::emit(level_, when_, component_, stream_.str()); }

  template <typename T>
  LogRecord& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  SimTime when_;
  std::string_view component_;
  std::ostringstream stream_;
};

}  // namespace artemis

/// Logs `expr...` at simulated time `when` for `component` if `level` passes
/// the threshold. Example:
///   ARTEMIS_LOG(kInfo, now, "detection") << "hijack of " << prefix;
#define ARTEMIS_LOG(level, when, component)                            \
  if (::artemis::LogLevel::level < ::artemis::Logging::threshold()) { \
  } else                                                               \
    ::artemis::LogRecord(::artemis::LogLevel::level, (when), (component))

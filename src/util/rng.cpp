#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace artemis {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: expands a single seed into well-distributed state words.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a over a label, used to derive independent child streams.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::fork(std::string_view label) const {
  // Mix the current state (not advancing it) with the label hash.
  const std::uint64_t mixed = s_[0] ^ rotl(s_[2], 17) ^ fnv1a(label);
  return Rng(mixed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  // Debiased modulo (Lemire-style rejection would be faster; clarity wins).
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; draw u1 away from zero to keep log finite.
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

SimDuration Rng::uniform_duration(SimDuration lo, SimDuration hi) {
  return SimDuration::micros(uniform_int(lo.as_micros(), hi.as_micros()));
}

}  // namespace artemis

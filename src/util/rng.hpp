// Deterministic random number generation.
//
// All stochastic behaviour in the simulator (link delays, MRAI jitter,
// topology wiring, feed latencies) is driven by Rng instances derived from
// a single experiment seed, so every run is reproducible bit-for-bit and
// benches can sweep seeds to obtain distributions.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/time.hpp"

namespace artemis {

/// A small, fast, seedable PRNG (xoshiro256**). Not cryptographic.
///
/// Satisfies UniformRandomBitGenerator so it can also be plugged into
/// <random> distributions, but the built-in helpers below are preferred:
/// they are stable across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; two Rngs with equal seeds produce equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child generator; `label` namespaces the stream
  /// so distinct subsystems fed from one seed do not correlate.
  Rng fork(std::string_view label) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Normal variate (Box–Muller; one value per call, no caching).
  double normal(double mean, double stddev);

  /// Log-normal variate with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential variate with the given mean (mean > 0).
  double exponential(double mean);

  /// Uniform duration in [lo, hi].
  SimDuration uniform_duration(SimDuration lo, SimDuration hi);

  /// Fisher–Yates shuffle of a contiguous range.
  template <typename T>
  void shuffle(T* data, std::size_t n) {
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(data[i - 1], data[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace artemis

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace artemis {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Summary::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    auto& mut = const_cast<std::vector<double>&>(samples_);
    std::sort(mut.begin(), mut.end());
    const_cast<bool&>(sorted_) = true;
  }
}

double Summary::min() const {
  if (empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  return samples_.front();
}

double Summary::max() const {
  if (empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  return samples_.back();
}

double Summary::mean() const {
  if (empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  for (const double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double q) const {
  if (empty()) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0 || q > 100.0) throw std::out_of_range("percentile q outside [0,100]");
  ensure_sorted();
  const double rank = (q / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Summary::cdf_at(double x) const {
  if (empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Summary::cdf_points(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (empty() || points < 2) return out;
  ensure_sorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, cdf_at(x));
  }
  return out;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& cells, std::string& out) {
    out += '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out += ' ';
      out += cell;
      out.append(widths[c] - cell.size() + 1, ' ');
      out += '|';
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  out += '|';
  for (const std::size_t w : widths) {
    out.append(w + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace artemis

// Summary statistics used throughout the benchmarks: mean, percentiles,
// CDF extraction, and a fixed-width table printer for paper-style output.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace artemis {

/// Accumulates samples and answers summary queries. Samples are kept (the
/// experiment scales here are thousands of points), so exact percentiles
/// are available.
class Summary {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;  ///< sample standard deviation (n-1); 0 if n < 2

  /// Exact percentile by linear interpolation, q in [0,100].
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

  /// Fraction of samples <= x (empirical CDF).
  double cdf_at(double x) const;

  /// Evenly spaced (x, F(x)) points suitable for plotting, `points` >= 2.
  std::vector<std::pair<double, double>> cdf_points(std::size_t points) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;
  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Minimal fixed-width text table, used by every bench binary to print
/// paper-style rows ("| source | mean | p90 | ... |").
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  std::string to_string() const;

  /// Convenience: format a double with `prec` decimals.
  static std::string num(double v, int prec = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace artemis

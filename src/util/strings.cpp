#include "util/strings.hpp"

namespace artemis {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return value;
}

std::optional<std::uint32_t> parse_u32(std::string_view s, std::uint32_t max_value) {
  const auto v = parse_u64(s);
  if (!v || *v > max_value) return std::nullopt;
  return static_cast<std::uint32_t>(*v);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace artemis

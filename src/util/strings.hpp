// Small string helpers shared by parsers and report printers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace artemis {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Parses a non-negative decimal integer; rejects sign, spaces, overflow
/// and trailing garbage. Returns nullopt on any violation.
std::optional<std::uint64_t> parse_u64(std::string_view s);

/// Parses an unsigned integer no larger than `max_value`.
std::optional<std::uint32_t> parse_u32(std::string_view s,
                                       std::uint32_t max_value = UINT32_MAX);

bool starts_with(std::string_view s, std::string_view prefix);

/// Joins string-ish items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace artemis

#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace artemis {

std::string SimDuration::to_string() const {
  char buf[64];
  const double s = std::fabs(as_seconds());
  const char* sign = as_seconds() < 0 ? "-" : "";
  if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%s%.0fms", sign, s * 1e3);
  } else if (s < 60.0) {
    std::snprintf(buf, sizeof(buf), "%s%.1fs", sign, s);
  } else if (s < 3600.0) {
    const long whole_min = static_cast<long>(s) / 60;
    const double rem_s = s - static_cast<double>(whole_min) * 60.0;
    std::snprintf(buf, sizeof(buf), "%s%ldm%02.0fs", sign, whole_min, rem_s);
  } else {
    const long whole_h = static_cast<long>(s) / 3600;
    const double rem_m = (s - static_cast<double>(whole_h) * 3600.0) / 60.0;
    std::snprintf(buf, sizeof(buf), "%s%ldh%02.0fm", sign, whole_h, rem_m);
  }
  return buf;
}

std::string SimTime::to_string() const {
  if (is_never()) return "never";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t+%.3fs", as_seconds());
  return buf;
}

}  // namespace artemis

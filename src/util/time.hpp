// Simulated-time primitives.
//
// Every component of the ARTEMIS reproduction runs against a simulated
// clock: BGP propagation, monitor feed latencies, controller latencies and
// detection timestamps are all expressed as SimTime / SimDuration. Both are
// thin strong types over a signed 64-bit microsecond count, so arithmetic
// is exact and the full simulated range (~292k years) vastly exceeds any
// experiment horizon.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace artemis {

/// A span of simulated time with microsecond resolution.
class SimDuration {
 public:
  constexpr SimDuration() = default;

  /// Named constructors. Prefer these over raw microsecond counts.
  static constexpr SimDuration micros(std::int64_t us) { return SimDuration(us); }
  static constexpr SimDuration millis(std::int64_t ms) { return SimDuration(ms * 1000); }
  static constexpr SimDuration seconds(double s) {
    return SimDuration(static_cast<std::int64_t>(s * 1e6));
  }
  static constexpr SimDuration minutes(double m) { return seconds(m * 60.0); }
  static constexpr SimDuration hours(double h) { return seconds(h * 3600.0); }
  static constexpr SimDuration zero() { return SimDuration(0); }
  static constexpr SimDuration max() {
    return SimDuration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t as_micros() const { return us_; }
  constexpr double as_seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double as_minutes() const { return as_seconds() / 60.0; }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration operator+(SimDuration o) const { return SimDuration(us_ + o.us_); }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration(us_ - o.us_); }
  constexpr SimDuration operator*(double k) const {
    return SimDuration(static_cast<std::int64_t>(static_cast<double>(us_) * k));
  }
  constexpr SimDuration operator/(double k) const {
    return SimDuration(static_cast<std::int64_t>(static_cast<double>(us_) / k));
  }
  constexpr SimDuration& operator+=(SimDuration o) {
    us_ += o.us_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration o) {
    us_ -= o.us_;
    return *this;
  }

  /// Renders e.g. "45.3s", "5m12s", "2h00m" for logs and bench tables.
  std::string to_string() const;

 private:
  explicit constexpr SimDuration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// An absolute instant on the simulated timeline. Time zero is the start of
/// the simulation; instants are only meaningful relative to it.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime at_micros(std::int64_t us) { return SimTime(us); }
  static constexpr SimTime at_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e6));
  }
  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime never() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t as_micros() const { return us_; }
  constexpr double as_seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr bool is_never() const { return us_ == std::numeric_limits<std::int64_t>::max(); }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const { return SimTime(us_ + d.as_micros()); }
  constexpr SimTime operator-(SimDuration d) const { return SimTime(us_ - d.as_micros()); }
  constexpr SimDuration operator-(SimTime o) const {
    return SimDuration::micros(us_ - o.us_);
  }
  constexpr SimTime& operator+=(SimDuration d) {
    us_ += d.as_micros();
    return *this;
  }

  std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace artemis

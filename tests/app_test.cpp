// ArtemisApp wiring: hub -> detection -> mitigation -> controller ->
// network, end to end on a tiny topology, without the experiment harness.
#include <gtest/gtest.h>

#include "artemis/app.hpp"
#include "feeds/stream_feed.hpp"
#include "topology/as_graph.hpp"

namespace artemis::core {
namespace {

struct AppFixture {
  topo::AsGraph graph;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<ArtemisApp> app;
  std::unique_ptr<feeds::StreamFeed> feed;

  const net::Prefix prefix = net::Prefix::must_parse("10.0.0.0/23");
  static constexpr bgp::Asn kVictim = 3;
  static constexpr bgp::Asn kAttacker = 4;

  explicit AppFixture(bool auto_mitigate = true) {
    graph.add_as(1, topo::Tier::kTier1);
    graph.add_as(2, topo::Tier::kTier2);
    graph.add_as(kVictim, topo::Tier::kStub);
    graph.add_as(kAttacker, topo::Tier::kStub);
    graph.add_as(5, topo::Tier::kTier2);
    graph.add_customer_link(1, 2);
    graph.add_customer_link(2, kVictim);
    graph.add_customer_link(1, 4);
    graph.add_customer_link(1, 5);

    sim::NetworkParams params;
    params.mrai = SimDuration::seconds(5);  // keep the test brisk
    network = std::make_unique<sim::Network>(graph, params, Rng(1));

    Config config;
    OwnedPrefix owned;
    owned.prefix = prefix;
    owned.legitimate_origins.insert(kVictim);
    config.add_owned(std::move(owned));
    config.mitigation().auto_mitigate = auto_mitigate;
    config.mitigation().reannounce_exact = false;

    AppOptions options;
    options.controller_latency = SimDuration::seconds(15);
    app = std::make_unique<ArtemisApp>(std::move(config), *network, kVictim, options);

    feeds::StreamFeedParams feed_params;
    feed_params.vantages = {1, 2, 5};
    feed_params.median_latency = SimDuration::seconds(2);
    feed = std::make_unique<feeds::StreamFeed>(*network, feed_params, Rng(2));
    feed->subscribe(app->hub().inlet());
  }

  void run_hijack_scenario() {
    auto& sim = network->simulator();
    sim.at(SimTime::zero(), [this] { network->speaker(kVictim).originate(prefix); });
    sim.at(SimTime::at_seconds(300),
           [this] { network->speaker(kAttacker).originate(prefix); });
    sim.run_until(SimTime::at_seconds(900));
  }
};

TEST(AppTest, FullLoopDetectsAndMitigates) {
  AppFixture f;
  f.run_hijack_scenario();

  // Detection fired from the merged stream.
  ASSERT_FALSE(f.app->detection().alerts().empty());
  const auto& alert = f.app->detection().alerts().front();
  EXPECT_EQ(alert.type, HijackType::kExactOrigin);
  EXPECT_EQ(alert.offender, AppFixture::kAttacker);
  EXPECT_GT(alert.detected_at, SimTime::at_seconds(300));

  // Mitigation pushed the two /24s through the controller.
  ASSERT_EQ(f.app->mitigation().records().size(), 1u);
  const auto& log = f.app->controller().log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].prefix.to_string(), "10.0.0.0/24");
  EXPECT_EQ(log[1].prefix.to_string(), "10.0.1.0/24");
  EXPECT_EQ(log[0].applied_at - log[0].issued_at, SimDuration::seconds(15));

  // The network actually recovered: every vantage routes to the victim.
  for (const bgp::Asn vantage : {1u, 2u, 5u}) {
    EXPECT_EQ(f.network->resolve_origin(vantage,
                                        net::IpAddress::parse("10.0.0.1").value()),
              AppFixture::kVictim);
    EXPECT_EQ(f.network->resolve_origin(vantage,
                                        net::IpAddress::parse("10.0.1.1").value()),
              AppFixture::kVictim);
  }

  // Monitoring converged back to all-legitimate.
  EXPECT_TRUE(f.app->monitoring().all_legitimate(f.prefix));
  EXPECT_FALSE(f.app->monitoring().changes().empty());
}

TEST(AppTest, DetectOnlyModeRaisesAlertsButNeverAnnounces) {
  AppFixture f(/*auto_mitigate=*/false);
  f.run_hijack_scenario();
  EXPECT_FALSE(f.app->detection().alerts().empty());
  EXPECT_TRUE(f.app->mitigation().records().empty());
  EXPECT_TRUE(f.app->controller().log().empty());
  // Hijack persists: the tier-1 still routes to the attacker.
  EXPECT_EQ(f.network->resolve_origin(1, net::IpAddress::parse("10.0.0.1").value()),
            AppFixture::kAttacker);
}

TEST(AppTest, MonitoringTracksCaptureAndRecovery) {
  AppFixture f;
  f.run_hijack_scenario();
  // The change log must contain at least one capture (false) followed
  // eventually by a recovery (true) for some vantage.
  bool saw_capture = false;
  bool saw_recovery_after_capture = false;
  for (const auto& change : f.app->monitoring().changes()) {
    if (!change.legitimate) saw_capture = true;
    if (change.legitimate && saw_capture) saw_recovery_after_capture = true;
  }
  EXPECT_TRUE(saw_capture);
  EXPECT_TRUE(saw_recovery_after_capture);
}

TEST(AppTest, ConfigAccessibleAndHubCounts) {
  AppFixture f;
  f.run_hijack_scenario();
  EXPECT_EQ(f.app->config().owned().size(), 1u);
  EXPECT_GT(f.app->hub().total_observations(), 0u);
  EXPECT_EQ(f.app->hub().per_source_counts().count("ris-live"), 1u);
}

}  // namespace
}  // namespace artemis::core

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/hijack_duration.hpp"
#include "baseline/legacy_pipeline.hpp"

namespace artemis::baseline {
namespace {

// ------------------------------------------------- HijackDurationModel

TEST(HijackDurationTest, CalibratedQuantilesMatchPaper) {
  const HijackDurationModel model;
  // ">20% of hijacks last < 10 min" (§1).
  EXPECT_GT(model.cdf(SimDuration::minutes(10)), 0.20);
  // ARTEMIS's ~6 min cycle beats >80% of hijack durations (§3): i.e. at
  // most ~20% of hijacks are shorter than 6 min.
  EXPECT_NEAR(model.cdf(SimDuration::minutes(6)), 0.20, 0.03);
}

TEST(HijackDurationTest, CdfMonotoneAndBounded) {
  const HijackDurationModel model;
  EXPECT_DOUBLE_EQ(model.cdf(SimDuration::zero()), 0.0);
  double previous = 0.0;
  for (double minutes = 1; minutes <= 4096; minutes *= 2) {
    const double c = model.cdf(SimDuration::minutes(minutes));
    EXPECT_GE(c, previous);
    EXPECT_LE(c, 1.0);
    previous = c;
  }
  EXPECT_GT(previous, 0.9);
}

TEST(HijackDurationTest, QuantileInvertsCdf) {
  const HijackDurationModel model;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const auto d = model.quantile(q);
    EXPECT_NEAR(model.cdf(d), q, 1e-3) << "q=" << q;
  }
  EXPECT_THROW(model.quantile(0.0), std::out_of_range);
  EXPECT_THROW(model.quantile(1.0), std::out_of_range);
}

TEST(HijackDurationTest, MedianMatchesMu) {
  const HijackDurationModel model;
  EXPECT_NEAR(model.quantile(0.5).as_minutes(), std::exp(model.mu()), 0.5);
}

TEST(HijackDurationTest, SamplesFollowCdf) {
  const HijackDurationModel model;
  Rng rng(42);
  int below_median = 0;
  const int n = 20000;
  const auto median = model.quantile(0.5);
  for (int i = 0; i < n; ++i) {
    if (model.sample(rng) <= median) ++below_median;
  }
  EXPECT_NEAR(static_cast<double>(below_median) / n, 0.5, 0.02);
}

TEST(HijackDurationTest, RejectsBadSigma) {
  EXPECT_THROW(HijackDurationModel(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(HijackDurationModel(1.0, -1.0), std::invalid_argument);
}

// ------------------------------------------------------ LegacyPipeline

core::Config victim_config() {
  core::Config config;
  core::OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  return config;
}

feeds::Observation hijack_obs(double delivered_at) {
  feeds::Observation obs;
  obs.type = feeds::ObservationType::kAnnouncement;
  obs.source = "batch-15m";
  obs.vantage = 9;
  obs.prefix = net::Prefix::must_parse("10.0.0.0/23");
  obs.attrs.as_path = bgp::AsPath({9, 666});
  obs.event_time = SimTime::at_seconds(delivered_at - 600);
  obs.delivered_at = SimTime::at_seconds(delivered_at);
  return obs;
}

TEST(LegacyPipelineTest, TimelineStacksDelays) {
  const auto config = victim_config();
  sim::Simulator sim;
  OperatorModel model;
  model.verification_min = SimDuration::minutes(10);
  model.verification_max = SimDuration::minutes(10);  // deterministic
  model.mitigation_min = SimDuration::minutes(30);
  model.mitigation_max = SimDuration::minutes(30);
  LegacyPipeline pipeline(config, sim, model, Rng(1), "batch+manual");

  pipeline.inlet()(hijack_obs(900));
  const auto timings = pipeline.first_hijack();
  ASSERT_TRUE(timings);
  EXPECT_EQ(timings->data_available_at, SimTime::at_seconds(900));
  EXPECT_EQ(timings->verified_at, SimTime::at_seconds(900 + 600));
  EXPECT_EQ(timings->mitigation_done_at, SimTime::at_seconds(900 + 600 + 1800));
  EXPECT_EQ(pipeline.name(), "batch+manual");
}

TEST(LegacyPipelineTest, OnlyFirstHijackRecorded) {
  const auto config = victim_config();
  sim::Simulator sim;
  LegacyPipeline pipeline(config, sim, OperatorModel{}, Rng(2), "x");
  pipeline.inlet()(hijack_obs(900));
  const auto first = pipeline.first_hijack();
  auto second_obs = hijack_obs(2000);
  second_obs.attrs.as_path = bgp::AsPath({9, 777});  // different offender
  pipeline.inlet()(second_obs);
  EXPECT_EQ(pipeline.first_hijack()->data_available_at, first->data_available_at);
}

TEST(LegacyPipelineTest, LegitimateTrafficNeverTriggers) {
  const auto config = victim_config();
  sim::Simulator sim;
  LegacyPipeline pipeline(config, sim, OperatorModel{}, Rng(3), "x");
  auto obs = hijack_obs(900);
  obs.attrs.as_path = bgp::AsPath({9, 65001});
  pipeline.inlet()(obs);
  EXPECT_FALSE(pipeline.first_hijack());
}

TEST(LegacyPipelineTest, DelaysSampledWithinModelBounds) {
  const auto config = victim_config();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::Simulator sim;
    OperatorModel model;  // defaults: verify 10-40 min, mitigate 15-60 min
    LegacyPipeline pipeline(config, sim, model, Rng(seed), "x");
    pipeline.inlet()(hijack_obs(900));
    const auto t = pipeline.first_hijack();
    ASSERT_TRUE(t);
    const auto verify = t->verified_at - t->data_available_at;
    const auto mitigate = t->mitigation_done_at - t->verified_at;
    EXPECT_GE(verify, model.verification_min);
    EXPECT_LE(verify, model.verification_max);
    EXPECT_GE(mitigate, model.mitigation_min);
    EXPECT_LE(mitigate, model.mitigation_max);
  }
}

}  // namespace
}  // namespace artemis::baseline

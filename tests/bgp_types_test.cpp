#include <gtest/gtest.h>

#include "bgp/route.hpp"
#include "bgp/types.hpp"
#include "bgp/update.hpp"

namespace artemis::bgp {
namespace {

TEST(AsPathTest, OriginAndFirstHop) {
  const AsPath path({100, 200, 300});
  EXPECT_EQ(path.first_hop(), 100u);
  EXPECT_EQ(path.origin_as(), 300u);
  EXPECT_EQ(path.origin_neighbor(), 200u);
  EXPECT_EQ(path.length(), 3u);
}

TEST(AsPathTest, EmptyPathSentinels) {
  const AsPath empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.origin_as(), kNoAsn);
  EXPECT_EQ(empty.first_hop(), kNoAsn);
  EXPECT_EQ(empty.origin_neighbor(), kNoAsn);
}

TEST(AsPathTest, SingleHop) {
  const auto path = AsPath::origin_only(65001);
  EXPECT_EQ(path.origin_as(), 65001u);
  EXPECT_EQ(path.first_hop(), 65001u);
  EXPECT_EQ(path.origin_neighbor(), kNoAsn);
}

TEST(AsPathTest, PrependShiftsFront) {
  const auto path = AsPath::origin_only(300).prepended(200).prepended(100);
  EXPECT_EQ(path.hops(), (std::vector<Asn>{100, 200, 300}));
}

TEST(AsPathTest, PrependWithCount) {
  const auto path = AsPath::origin_only(300).prepended(100, 3);
  EXPECT_EQ(path.hops(), (std::vector<Asn>{100, 100, 100, 300}));
  EXPECT_EQ(path.length(), 4u);
}

TEST(AsPathTest, ContainsAndLoops) {
  const AsPath path({100, 200, 300});
  EXPECT_TRUE(path.contains(200));
  EXPECT_FALSE(path.contains(400));
  EXPECT_FALSE(path.has_loop());
  EXPECT_TRUE(AsPath({100, 200, 100}).has_loop());
  EXPECT_TRUE(AsPath({7, 7}).has_loop());
  // Prepending (same AS repeated at front) counts as a loop by the raw
  // check; receivers only test for *their own* ASN, so this is fine.
  EXPECT_TRUE(AsPath::origin_only(300).prepended(100, 2).has_loop());
}

TEST(AsPathTest, ParseAndToString) {
  const auto path = AsPath::parse("100 200 300");
  ASSERT_TRUE(path);
  EXPECT_EQ(path->to_string(), "100 200 300");
  EXPECT_EQ(path->origin_as(), 300u);
  const auto empty = AsPath::parse("");
  ASSERT_TRUE(empty);
  EXPECT_TRUE(empty->empty());
  EXPECT_FALSE(AsPath::parse("100 abc"));
}

TEST(AsPathTest, ParseToleratesExtraSpaces) {
  const auto path = AsPath::parse(" 100  200 ");
  ASSERT_TRUE(path);
  EXPECT_EQ(path->hops(), (std::vector<Asn>{100, 200}));
}

TEST(AsPathTest, FourByteAsns) {
  const AsPath path({4200000001, 65536});
  EXPECT_EQ(path.origin_as(), 65536u);
  EXPECT_EQ(path.to_string(), "4200000001 65536");
}

TEST(OriginTest, Names) {
  EXPECT_EQ(to_string(Origin::kIgp), "IGP");
  EXPECT_EQ(to_string(Origin::kEgp), "EGP");
  EXPECT_EQ(to_string(Origin::kIncomplete), "INCOMPLETE");
}

TEST(CommunityTest, ParseFormatRoundTrip) {
  const auto c = Community::parse("65000:120");
  ASSERT_TRUE(c);
  EXPECT_EQ(c->asn, 65000);
  EXPECT_EQ(c->value, 120);
  EXPECT_EQ(c->to_string(), "65000:120");
}

TEST(CommunityTest, ParseRejects) {
  EXPECT_FALSE(Community::parse("65000"));
  EXPECT_FALSE(Community::parse("65536:1"));  // > 16 bit
  EXPECT_FALSE(Community::parse("a:b"));
  EXPECT_FALSE(Community::parse("1:2:3"));
}

TEST(RouteTest, Accessors) {
  Route r;
  r.prefix = net::Prefix::must_parse("10.0.0.0/23");
  r.attrs.as_path = AsPath({100, 200});
  r.learned_from = 100;
  EXPECT_EQ(r.origin_as(), 200u);
  EXPECT_EQ(r.path_length(), 2u);
  const std::string s = r.to_string();
  EXPECT_NE(s.find("10.0.0.0/23"), std::string::npos);
  EXPECT_NE(s.find("100 200"), std::string::npos);
  EXPECT_NE(s.find("from AS100"), std::string::npos);
}

TEST(RouteTest, EqualityIgnoresTimestamp) {
  Route a;
  a.prefix = net::Prefix::must_parse("10.0.0.0/24");
  a.attrs.as_path = AsPath({1});
  a.installed_at = SimTime::at_seconds(5);
  Route b = a;
  b.installed_at = SimTime::at_seconds(99);
  EXPECT_EQ(a, b);
  b.learned_from = 7;
  EXPECT_FALSE(a == b);
}

TEST(UpdateMessageTest, Classification) {
  UpdateMessage u;
  EXPECT_TRUE(u.empty());
  u.announced.push_back(net::Prefix::must_parse("10.0.0.0/24"));
  EXPECT_TRUE(u.is_announcement());
  EXPECT_FALSE(u.is_withdrawal());
  u.withdrawn.push_back(net::Prefix::must_parse("10.0.1.0/24"));
  EXPECT_TRUE(u.is_withdrawal());
  EXPECT_FALSE(u.empty());
}

TEST(UpdateMessageTest, ToRoutesExpandsNlri) {
  UpdateMessage u;
  u.sender = 65001;
  u.attrs.as_path = AsPath({65001, 65002});
  u.announced.push_back(net::Prefix::must_parse("10.0.0.0/24"));
  u.announced.push_back(net::Prefix::must_parse("10.0.1.0/24"));
  const auto routes = u.to_routes(SimTime::at_seconds(9));
  ASSERT_EQ(routes.size(), 2u);
  for (const auto& r : routes) {
    EXPECT_EQ(r.learned_from, 65001u);
    EXPECT_EQ(r.attrs.as_path, u.attrs.as_path);
    EXPECT_EQ(r.installed_at, SimTime::at_seconds(9));
  }
  EXPECT_NE(routes[0].prefix, routes[1].prefix);
}

TEST(UpdateMessageTest, ToStringMentionsEverything) {
  UpdateMessage u;
  u.sender = 7;
  u.attrs.as_path = AsPath({7});
  u.announced.push_back(net::Prefix::must_parse("10.0.0.0/24"));
  u.withdrawn.push_back(net::Prefix::must_parse("10.9.0.0/16"));
  const auto s = u.to_string();
  EXPECT_NE(s.find("AS7"), std::string::npos);
  EXPECT_NE(s.find("announce"), std::string::npos);
  EXPECT_NE(s.find("withdraw"), std::string::npos);
  EXPECT_NE(s.find("10.9.0.0/16"), std::string::npos);
}

}  // namespace
}  // namespace artemis::bgp

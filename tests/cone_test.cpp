#include <gtest/gtest.h>

#include "topology/cone.hpp"
#include "topology/generator.hpp"

namespace artemis::topo {
namespace {

// 1 provider-of 2, 1 provider-of 3, 2 provider-of 4, 3 provider-of 4
// (multihomed), 3 peer 5.
AsGraph diamond() {
  AsGraph g;
  for (bgp::Asn a = 1; a <= 5; ++a) g.add_as(a);
  g.add_customer_link(1, 2);
  g.add_customer_link(1, 3);
  g.add_customer_link(2, 4);
  g.add_customer_link(3, 4);
  g.add_peer_link(3, 5);
  return g;
}

TEST(ConeTest, StubConeIsSelf) {
  const auto g = diamond();
  const auto cone = customer_cone(g, 4);
  EXPECT_EQ(cone, (std::unordered_set<bgp::Asn>{4}));
}

TEST(ConeTest, MultihomedCustomerCountedOnce) {
  const auto g = diamond();
  // 1's cone: {1,2,3,4}; AS4 reachable via both 2 and 3, counted once.
  EXPECT_EQ(customer_cone(g, 1).size(), 4u);
}

TEST(ConeTest, PeerLinksDoNotExtendCone) {
  const auto g = diamond();
  const auto cone = customer_cone(g, 3);
  EXPECT_EQ(cone, (std::unordered_set<bgp::Asn>{3, 4}));  // not peer 5
}

TEST(ConeTest, SizesForAllAses) {
  const auto g = diamond();
  const auto sizes = customer_cone_sizes(g);
  EXPECT_EQ(sizes.at(1), 4u);
  EXPECT_EQ(sizes.at(2), 2u);
  EXPECT_EQ(sizes.at(3), 2u);
  EXPECT_EQ(sizes.at(4), 1u);
  EXPECT_EQ(sizes.at(5), 1u);
}

TEST(ConeTest, GeneratedTopologyInvariants) {
  GeneratorParams params;
  params.tier2_count = 30;
  params.stub_count = 120;
  Rng rng(5);
  const auto g = generate_topology(params, rng);
  const auto sizes = customer_cone_sizes(g);
  // Every stub's cone is exactly itself; every tier-1's cone is larger
  // than any of its customers' cones.
  for (const auto asn : g.ases_in_tier(Tier::kStub)) {
    EXPECT_EQ(sizes.at(asn), 1u);
  }
  for (const auto t1 : g.ases_in_tier(Tier::kTier1)) {
    for (const auto customer : g.neighbors_with(t1, Relationship::kCustomer)) {
      EXPECT_GT(sizes.at(t1), sizes.at(customer));
    }
  }
  // Cones never exceed the AS count.
  for (const auto& [asn, size] : sizes) {
    EXPECT_GE(size, 1u);
    EXPECT_LE(size, g.as_count());
  }
}

TEST(ConeWeightsTest, NormalizedAndProportional) {
  const auto g = diamond();
  const auto weights = cone_weights(g, {1, 4});
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_NEAR(weights.at(1) + weights.at(4), 1.0, 1e-12);
  EXPECT_NEAR(weights.at(1) / weights.at(4), 4.0, 1e-12);  // cone 4 vs 1
}

TEST(ConeWeightsTest, EmptyVantagesYieldEmptyMap) {
  const auto g = diamond();
  EXPECT_TRUE(cone_weights(g, {}).empty());
}

}  // namespace
}  // namespace artemis::topo

#include <gtest/gtest.h>

#include "artemis/config.hpp"

namespace artemis::core {
namespace {

constexpr std::string_view kSampleConfig = R"({
  "prefixes": [
    {"prefix": "10.0.0.0/23", "origins": [65001], "neighbors": [174, 3356]},
    {"prefix": "192.0.2.0/24", "origins": [65001, 65002]}
  ],
  "mitigation": {
    "deaggregation_floor": 24,
    "reannounce_exact": false,
    "auto_mitigate": true
  }
})";

TEST(ConfigTest, FromJsonParsesEverything) {
  const auto config = Config::from_json_text(kSampleConfig);
  ASSERT_EQ(config.owned().size(), 2u);
  const auto& first = config.owned()[0];
  EXPECT_EQ(first.prefix.to_string(), "10.0.0.0/23");
  EXPECT_TRUE(first.legitimate_origins.contains(65001));
  EXPECT_TRUE(first.legitimate_neighbors.contains(174));
  EXPECT_TRUE(first.legitimate_neighbors.contains(3356));
  const auto& second = config.owned()[1];
  EXPECT_EQ(second.legitimate_origins.size(), 2u);
  EXPECT_TRUE(second.legitimate_neighbors.empty());
  EXPECT_EQ(config.mitigation().deaggregation_floor, 24);
  EXPECT_FALSE(config.mitigation().reannounce_exact);
  EXPECT_TRUE(config.mitigation().auto_mitigate);
}

TEST(ConfigTest, MitigationSectionOptional) {
  const auto config =
      Config::from_json_text(R"({"prefixes":[{"prefix":"10.0.0.0/8","origins":[1]}]})");
  EXPECT_EQ(config.mitigation().deaggregation_floor, 24);
  EXPECT_TRUE(config.mitigation().reannounce_exact);
}

TEST(ConfigTest, RejectsBadDocuments) {
  EXPECT_THROW(Config::from_json_text("{}"), json::JsonError);
  EXPECT_THROW(Config::from_json_text(R"({"prefixes":[{"prefix":"bad","origins":[1]}]})"),
               std::invalid_argument);
  EXPECT_THROW(
      Config::from_json_text(R"({"prefixes":[{"prefix":"10.0.0.0/8","origins":[]}]})"),
      std::invalid_argument);
  EXPECT_THROW(
      Config::from_json_text(R"({"prefixes":[{"prefix":"10.0.0.0/8","origins":[0]}]})"),
      std::invalid_argument);
  EXPECT_THROW(
      Config::from_json_text(
          R"({"prefixes":[{"prefix":"10.0.0.0/8","origins":[1]}],
              "mitigation":{"deaggregation_floor":0}})"),
      std::invalid_argument);
  EXPECT_THROW(
      Config::from_json_text(
          R"({"prefixes":[{"prefix":"10.0.0.0/8","origins":[1],"neighbors":[-5]}]})"),
      std::invalid_argument);
}

TEST(ConfigTest, ToJsonRoundTrip) {
  const auto config = Config::from_json_text(kSampleConfig);
  const auto round = Config::from_json(config.to_json());
  ASSERT_EQ(round.owned().size(), 2u);
  EXPECT_EQ(round.owned()[0].prefix, config.owned()[0].prefix);
  EXPECT_EQ(round.owned()[0].legitimate_origins, config.owned()[0].legitimate_origins);
  EXPECT_EQ(round.owned()[0].legitimate_neighbors,
            config.owned()[0].legitimate_neighbors);
  EXPECT_EQ(round.mitigation().reannounce_exact, config.mitigation().reannounce_exact);
}

TEST(ConfigTest, MatchExactAndMoreSpecific) {
  const auto table = Config::from_json_text(kSampleConfig).build_table();
  const auto exact = table->match(net::Prefix::must_parse("10.0.0.0/23"));
  ASSERT_TRUE(exact);
  EXPECT_EQ(table->entry(exact).prefix.to_string(), "10.0.0.0/23");
  const auto sub = table->match(net::Prefix::must_parse("10.0.1.0/24"));
  ASSERT_TRUE(sub);
  EXPECT_EQ(table->entry(sub).prefix.to_string(), "10.0.0.0/23");
  EXPECT_FALSE(table->match(net::Prefix::must_parse("10.2.0.0/24")));
}

TEST(ConfigTest, MatchSuperPrefix) {
  const auto table = Config::from_json_text(kSampleConfig).build_table();
  const auto super = table->match(net::Prefix::must_parse("10.0.0.0/16"));
  ASSERT_TRUE(super);
  EXPECT_EQ(table->entry(super).prefix.to_string(), "10.0.0.0/23");
}

TEST(ConfigTest, MatchPrefersMostSpecificOwned) {
  Config config;
  OwnedPrefix big;
  big.prefix = net::Prefix::must_parse("10.0.0.0/16");
  big.legitimate_origins.insert(1);
  config.add_owned(big);
  OwnedPrefix small;
  small.prefix = net::Prefix::must_parse("10.0.0.0/23");
  small.legitimate_origins.insert(2);
  config.add_owned(small);
  const auto table = config.build_table();
  const auto hit = table->match(net::Prefix::must_parse("10.0.0.0/24"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(table->entry(hit).prefix.to_string(), "10.0.0.0/23");
}

TEST(ConfigTest, AddOwnedValidatesOrigins) {
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/8");
  EXPECT_THROW(config.add_owned(owned), std::invalid_argument);
  EXPECT_TRUE(config.owns_nothing());
}

}  // namespace
}  // namespace artemis::core

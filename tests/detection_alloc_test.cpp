// Asserts the detection hot path's zero-allocation invariant: once a
// hijack has been seen (its record exists), re-processing matching or
// non-matching observations performs no heap allocations at all — via
// process(), process_batch(), the MonitorHub batch fan-out, the sharded
// pipeline's inline dispatch, and the journal writer tap (recording to
// disk while detecting).
//
// The assertion works by replacing the global operator new/delete with
// counting wrappers, which is why this test lives in its own binary (see
// CMakeLists.txt): the counter must not be perturbed by unrelated suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <vector>

#include "artemis/detection.hpp"
#include "feeds/monitor_hub.hpp"
#include "ingest/pipeline.hpp"
#include "journal/writer.hpp"
#include "mrt/observation_convert.hpp"
#include "pipeline/sharded_detector.hpp"
#include "telemetry/metrics.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size, 0); }
void* operator new[](std::size_t size) { return counted_alloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace artemis::core {
namespace {

feeds::Observation make_obs(std::string_view prefix, std::vector<bgp::Asn> path,
                            std::string source, double at_seconds) {
  feeds::Observation obs;
  obs.type = feeds::ObservationType::kAnnouncement;
  obs.source = std::move(source);
  obs.vantage = 9;
  obs.prefix = net::Prefix::must_parse(prefix);
  obs.attrs.as_path = bgp::AsPath(std::move(path));
  obs.event_time = SimTime::at_seconds(at_seconds - 5);
  obs.delivered_at = SimTime::at_seconds(at_seconds);
  return obs;
}

TEST(DetectionAllocTest, SteadyStateProcessIsAllocationFree) {
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  DetectionService detector(config);

  // One observation per flavor the steady state must absorb for free:
  // an already-alerted hijack (exact and sub-prefix), a legitimate
  // announcement, and an unrelated prefix.
  const auto hijack = make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100);
  const auto subhijack = make_obs("10.0.1.0/24", {9, 666}, "ris-live", 101);
  const auto legit = make_obs("10.0.0.0/23", {9, 100, 65001}, "ris-live", 102);
  const auto unrelated = make_obs("203.0.113.0/24", {9, 666}, "ris-live", 103);

  // Prime: first sightings may allocate (records, alert copies, keys).
  detector.process(hijack);
  detector.process(subhijack);
  detector.process(legit);
  detector.process(unrelated);
  ASSERT_EQ(detector.alerts().size(), 2u);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    detector.process(hijack);
    detector.process(subhijack);
    detector.process(legit);
    detector.process(unrelated);
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state DetectionService::process allocated";

  // Dedup bookkeeping kept counting while staying allocation-free.
  EXPECT_EQ(detector.observation_count(detector.alerts()[0].key()), 10001u);
  EXPECT_EQ(detector.alerts().size(), 2u);
}

TEST(DetectionAllocTest, NewSourceAllocatesOnlyOnFirstSighting) {
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  DetectionService detector(config);

  const auto from_a = make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100);
  const auto from_b = make_obs("10.0.0.0/23", {8, 666}, "bgpmon", 104);
  detector.process(from_a);
  detector.process(from_b);  // new source: records its first-seen slot

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  detector.process(from_b);
  detector.process(from_a);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);

  const auto* by_source = detector.first_seen_by_source(detector.alerts()[0].key());
  ASSERT_NE(by_source, nullptr);
  EXPECT_EQ(by_source->at("ris-live"), SimTime::at_seconds(100));
  EXPECT_EQ(by_source->at("bgpmon"), SimTime::at_seconds(104));
}

TEST(DetectionAllocTest, SteadyStateProcessBatchIsAllocationFree) {
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  DetectionService detector(config);

  // A batch mixing every steady-state flavor, with bursty repeats so the
  // classification/dedup memoization paths are exercised too.
  std::vector<feeds::Observation> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100));
  }
  batch.push_back(make_obs("10.0.1.0/24", {9, 666}, "ris-live", 101));
  batch.push_back(make_obs("10.0.0.0/23", {9, 100, 65001}, "ris-live", 102));
  for (int i = 0; i < 3; ++i) {
    batch.push_back(make_obs("203.0.113.0/24", {9, 666}, "ris-live", 103));
  }

  // Prime: first sightings may allocate (records, alert copies, keys).
  detector.process_batch(batch);
  ASSERT_EQ(detector.alerts().size(), 2u);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) detector.process_batch(batch);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state DetectionService::process_batch allocated";

  EXPECT_EQ(detector.observation_count(detector.alerts()[0].key()), 4u * 10001u);
  EXPECT_EQ(detector.observations_processed(), 9u * 10001u);
}

TEST(DetectionAllocTest, OwnershipSwapKeepsSteadyStateAllocationFree) {
  // The incremental-reload contract: building the new table allocates
  // (cold path, outside the measured window), but the swap itself —
  // set_ownership — and every batch processed after it stay allocation-
  // free. A reload must not tax the hot path it slides under.
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  DetectionService detector(config);

  std::vector<feeds::Observation> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100));
  }
  batch.push_back(make_obs("10.0.1.0/24", {9, 666}, "ris-live", 101));
  batch.push_back(make_obs("203.0.113.0/24", {9, 666}, "ris-live", 102));
  detector.process_batch(batch);  // prime records and scratch capacity
  ASSERT_EQ(detector.alerts().size(), 2u);

  // Cold: freeze the replacement snapshot (same logical config, so the
  // post-swap stream dedups against the surviving records).
  auto replacement = config.build_table();
  const auto replacement_version = replacement->version();

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  detector.set_ownership(std::move(replacement));
  for (int i = 0; i < 10000; ++i) detector.process_batch(batch);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "ownership swap or post-swap steady state allocated";

  EXPECT_EQ(detector.ownership().version(), replacement_version);
  EXPECT_EQ(detector.alerts().size(), 2u);  // dedup state survived the swap
  EXPECT_EQ(detector.observation_count(detector.alerts()[0].key()), 4u * 10001u);
}

TEST(DetectionAllocTest, SteadyStateHubBatchFanOutIsAllocationFree) {
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  DetectionService detector(config);
  feeds::MonitorHub hub;
  detector.attach(hub);

  std::vector<feeds::Observation> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100 + i));
  }
  hub.publish_batch(batch);  // prime: interns "ris-live", creates the record

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) hub.publish_batch(batch);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "steady-state MonitorHub::publish_batch allocated";
  EXPECT_EQ(hub.total_observations(), 8u * 10001u);
  EXPECT_EQ(hub.source_count("ris-live"), 8u * 10001u);
}

TEST(DetectionAllocTest, SteadyStateJournalTapIsAllocationFree) {
  // Recording must not tax the hot path: with a JournalWriter tapped into
  // the hub, steady-state publish_batch (detection + on-disk append)
  // still performs zero heap allocations. The writer's encode buffer and
  // interned source table reach their high-water marks during priming;
  // after that every batch is varint-encoded into recycled storage and
  // handed to write(2).
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  DetectionService detector(config);
  feeds::MonitorHub hub;
  detector.attach(hub);

  const std::string dir = ::testing::TempDir() + "artemis_journal_alloc_tap";
  std::filesystem::remove_all(dir);
  journal::JournalWriter writer(dir);
  writer.attach(hub);

  std::vector<feeds::Observation> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100 + i));
  }
  for (int i = 0; i < 4; ++i) {
    batch.push_back(make_obs("203.0.113.0/24", {9, 667}, "bgpmon", 104 + i));
  }
  hub.publish_batch(batch);  // prime: interns sources, creates the record

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) hub.publish_batch(batch);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state journal tap (hub publish_batch + writer append) allocated";

  writer.close();
  EXPECT_EQ(writer.records_written(), 8u * 10001u);
  EXPECT_GT(writer.bytes_written(), 0u);
  EXPECT_EQ(hub.total_observations(), 8u * 10001u);
}

TEST(DetectionAllocTest, SteadyStateMrtImportIsAllocationFree) {
  // The archive import hot path: MRT bytes -> ObservationConverter ->
  // JournalWriter tap. After one priming pass (sources interned, batch
  // and scratch buffers at capacity, encoder warmed) re-converting a
  // window performs zero heap allocations — the line-rate contract for
  // mrt2journal.
  std::vector<std::uint8_t> window;
  {
    auto record = [](bgp::Asn peer, double t, const char* announced,
                     std::vector<bgp::Asn> path, const char* withdrawn = nullptr) {
      mrt::UpdateRecord rec;
      rec.peer_asn = peer;
      rec.peer_ip = net::IpAddress::v4(0x0A000000 | peer);
      rec.timestamp = SimTime::at_seconds(t);
      rec.update.sender = peer;
      if (announced != nullptr) {
        rec.update.announced.push_back(net::Prefix::must_parse(announced));
      }
      if (withdrawn != nullptr) {
        rec.update.withdrawn.push_back(net::Prefix::must_parse(withdrawn));
      }
      rec.update.attrs.as_path = bgp::AsPath(std::move(path));
      return mrt::encode_update_record(rec);
    };
    for (int i = 0; i < 8; ++i) {
      const auto bytes =
          record(9, 100 + i, "10.0.0.0/23", {9, 3356, 666}, "203.0.113.0/24");
      window.insert(window.end(), bytes.begin(), bytes.end());
      const auto more = record(8, 100 + i, "10.0.1.0/24", {8, 1299, 65001});
      window.insert(window.end(), more.begin(), more.end());
      // Dual-stack record: the MP_REACH/MP_UNREACH decode path (v6 NLRI
      // staged through MpNlriScratch) is part of the same contract.
      const auto v6 =
          record(9, 100 + i, "2001:db8::/32", {9, 3356, 667}, "2001:db8:dead::/48");
      window.insert(window.end(), v6.begin(), v6.end());
    }
  }

  const std::string dir = ::testing::TempDir() + "artemis_mrt_import_alloc";
  std::filesystem::remove_all(dir);
  journal::JournalWriter writer(dir);
  mrt::ObservationConverter converter;
  const feeds::ObservationBatchHandler sink = writer.tap();

  // Prime: interns the two peer sources, grows batch/scratch capacity.
  const auto primed = converter.convert_file(window, sink);
  ASSERT_TRUE(primed.clean());
  // 8 x (2 elems) + 8 x (1 elem) + 8 x (2 v6 elems via MP attributes).
  ASSERT_EQ(primed.observations, 40u);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    const auto stats = converter.convert_file(window, sink);
    if (!stats.clean() || stats.observations != 40u) {
      FAIL() << "conversion changed shape mid-loop";
    }
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state MRT convert -> journal append allocated";

  writer.close();
  EXPECT_EQ(converter.observations_emitted(), 40u * 1001u);
  EXPECT_EQ(writer.records_written(), 40u * 1001u);
}

TEST(DetectionAllocTest, SteadyStateIngestFeedIsAllocationFree) {
  // The always-on supervisor's inner loop: HTTP body chunks ->
  // IngestPipeline (sniff, decompress, convert, lag check) ->
  // JournalWriter. One source cycle primes every buffer (converter
  // carry/batch, writer encode buffer, interned sources, the cached
  // identity decompressor); after that, whole begin/feed/finish cycles
  // run without a single heap allocation — the service can ingest
  // archives forever without touching the allocator.
  std::vector<std::uint8_t> window;
  for (int i = 0; i < 8; ++i) {
    mrt::UpdateRecord rec;
    rec.peer_asn = 9;
    rec.peer_ip = net::IpAddress::v4(0x0A000009);
    rec.timestamp = SimTime::at_seconds(100 + i);
    rec.update.sender = 9;
    rec.update.announced.push_back(net::Prefix::must_parse("10.0.0.0/23"));
    rec.update.attrs.as_path = bgp::AsPath({9, 3356, 666});
    const auto bytes = mrt::encode_update_record(rec);
    window.insert(window.end(), bytes.begin(), bytes.end());
  }

  const std::string dir = ::testing::TempDir() + "artemis_ingest_alloc";
  std::filesystem::remove_all(dir);
  journal::JournalWriter writer(dir);
  ingest::IngestPipeline pipeline(writer);

  const auto run_cycle = [&] {
    pipeline.begin_source();
    // Awkward chunk sizes: one smaller than the sniff stash, the rest
    // mid-record, like socket reads.
    std::size_t i = 0;
    for (const std::size_t step : {std::size_t{3}, std::size_t{41}}) {
      pipeline.feed({window.data() + i, step});
      i += step;
    }
    pipeline.feed({window.data() + i, window.size() - i});
    return pipeline.finish_source();
  };

  const auto primed = run_cycle();
  ASSERT_TRUE(primed.convert.clean());
  ASSERT_EQ(primed.observations_journaled, 8u);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    const auto stats = run_cycle();
    if (!stats.convert.clean() || stats.observations_journaled != 8u) {
      FAIL() << "ingest feed changed shape mid-loop";
    }
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state ingest pipeline feed -> journal append allocated";

  writer.close();
  EXPECT_EQ(writer.records_written(), 8u * 1001u);
}

TEST(DetectionAllocTest, SteadyStateShardedInlineSubmitIsAllocationFree) {
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  pipeline::ShardedDetectorOptions options;
  options.shards = 4;  // inline dispatch across partitioned dedup maps
  pipeline::ShardedDetector detector(config, options);

  std::vector<feeds::Observation> batch;
  batch.push_back(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100));
  batch.push_back(make_obs("10.0.1.0/24", {9, 666}, "ris-live", 101));
  batch.push_back(make_obs("203.0.113.0/24", {9, 666}, "ris-live", 102));
  detector.submit_batch(batch);  // prime

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) detector.submit_batch(batch);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state ShardedDetector inline submit_batch allocated";
  EXPECT_EQ(detector.observations_processed(), 3u * 10001u);
}

TEST(DetectionAllocTest, SteadyStateThreadedBatchRingIsAllocationFree) {
  // The threaded handoff's whole point: after one warm-up lap of the
  // BatchRing pool (slots acquire their element buffers, detection
  // records exist, prescreen scratch at capacity), submit_batch -> ring
  // scatter -> worker drain -> flush cycles allocate NOTHING on either
  // side of the ring, under both wait policies. The counter is global, so
  // this asserts the worker threads' steady state too.
  for (const auto policy :
       {pipeline::WaitPolicy::kBusyPoll, pipeline::WaitPolicy::kFutex}) {
    Config config;
    OwnedPrefix owned;
    owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
    owned.legitimate_origins.insert(65001);
    config.add_owned(std::move(owned));
    pipeline::ShardedDetectorOptions options;
    options.shards = 2;
    options.threaded = true;
    options.wait_policy = policy;
    options.queue_capacity = 64;  // small pool: slots recycle every round
    options.drain_batch = 16;
    pipeline::ShardedDetector detector(config, options);

    std::vector<feeds::Observation> batch;
    for (int i = 0; i < 8; ++i) {
      batch.push_back(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100 + i));
      batch.push_back(make_obs("10.0.1.0/24", {9, 666}, "ris-live", 100 + i));
      batch.push_back(make_obs("203.0.113.0/24", {9, 666}, "bgpmon", 100 + i));
    }
    // Prime: several laps so every pool slot has hosted every flavor and
    // each scatter pattern (full + partial published batches) has run.
    for (int i = 0; i < 8; ++i) detector.submit_batch(batch);
    detector.flush();

    const std::size_t before = g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
      detector.submit_batch(batch);
      detector.flush();  // barrier: the workers' processing is inside the
                         // measured window, not smeared past it
    }
    const std::size_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state threaded batch-ring handoff allocated (policy="
        << std::string(pipeline::to_string(policy)) << ")";
    detector.stop();
    EXPECT_EQ(detector.observations_processed(), 24u * 1008u);
  }
}

TEST(DetectionAllocTest, InstrumentedProcessBatchIsAllocationFree) {
  // ISSUE 8's zero-allocation telemetry claim, asserted: with a registry
  // wired in (cells registered at startup), the steady-state batch path
  // — counter stores plus the detection-delay histogram machinery —
  // still performs zero heap allocations.
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  DetectionService detector(config);

  telemetry::MetricsRegistry registry;  // registration may allocate: fine
  detector.set_metrics(telemetry::register_detection(registry));

  std::vector<feeds::Observation> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100));
  }
  batch.push_back(make_obs("10.0.1.0/24", {9, 666}, "ris-live", 101));
  batch.push_back(make_obs("10.0.0.0/23", {9, 100, 65001}, "ris-live", 102));
  batch.push_back(make_obs("203.0.113.0/24", {9, 666}, "ris-live", 103));

  detector.process_batch(batch);  // prime (first alerts record delays)
  ASSERT_EQ(detector.alerts().size(), 2u);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) detector.process_batch(batch);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state instrumented process_batch allocated";

  // The cells kept counting while staying allocation-free.
  const auto snap =
      registry.histogram_snapshot("artemis_detection_delay_seconds");
  EXPECT_EQ(snap.total, 2u);  // one delay sample per (primed) alert
  EXPECT_NE(registry.render_prometheus().find(
                "artemis_detection_observations_total " +
                std::to_string(7u * 10001u)),
            std::string::npos);
}

TEST(DetectionAllocTest, InstrumentedThreadedBatchRingIsAllocationFree) {
  // Same claim across the threaded handoff: per-shard cell bundles and
  // ring counters (publishes, wakeups, occupancy high-water) ride the
  // steady state without touching the allocator, under both policies.
  for (const auto policy :
       {pipeline::WaitPolicy::kBusyPoll, pipeline::WaitPolicy::kFutex}) {
    Config config;
    OwnedPrefix owned;
    owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
    owned.legitimate_origins.insert(65001);
    config.add_owned(std::move(owned));
    telemetry::MetricsRegistry registry;
    pipeline::ShardedDetectorOptions options;
    options.shards = 2;
    options.threaded = true;
    options.wait_policy = policy;
    options.queue_capacity = 64;
    options.drain_batch = 16;
    options.metrics = &registry;
    pipeline::ShardedDetector detector(config, options);

    std::vector<feeds::Observation> batch;
    for (int i = 0; i < 8; ++i) {
      batch.push_back(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 100 + i));
      batch.push_back(make_obs("10.0.1.0/24", {9, 666}, "ris-live", 100 + i));
      batch.push_back(make_obs("203.0.113.0/24", {9, 666}, "bgpmon", 100 + i));
    }
    for (int i = 0; i < 8; ++i) detector.submit_batch(batch);
    detector.flush();

    const std::size_t before = g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
      detector.submit_batch(batch);
      detector.flush();
    }
    const std::size_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state instrumented threaded handoff allocated (policy="
        << std::string(pipeline::to_string(policy)) << ")";
    detector.stop();
    EXPECT_EQ(detector.observations_processed(), 24u * 1008u);
  }
}

}  // namespace
}  // namespace artemis::core

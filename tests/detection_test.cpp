#include <gtest/gtest.h>

#include "artemis/detection.hpp"

namespace artemis::core {
namespace {

Config victim_config() {
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  owned.legitimate_neighbors = {100, 200};
  config.add_owned(std::move(owned));
  return config;
}

feeds::Observation make_obs(std::string_view prefix, std::vector<bgp::Asn> path,
                            std::string source = "ris-live", bgp::Asn vantage = 9,
                            double at_seconds = 100.0) {
  feeds::Observation obs;
  obs.type = feeds::ObservationType::kAnnouncement;
  obs.source = std::move(source);
  obs.vantage = vantage;
  obs.prefix = net::Prefix::must_parse(prefix);
  obs.attrs.as_path = bgp::AsPath(std::move(path));
  obs.event_time = SimTime::at_seconds(at_seconds - 5);
  obs.delivered_at = SimTime::at_seconds(at_seconds);
  return obs;
}

TEST(DetectionTest, LegitimateAnnouncementIgnored) {
  const auto config = victim_config();
  DetectionService detector(config);
  detector.process(make_obs("10.0.0.0/23", {9, 100, 65001}));
  EXPECT_TRUE(detector.alerts().empty());
  EXPECT_EQ(detector.observations_processed(), 1u);
  EXPECT_EQ(detector.observations_matched(), 0u);
}

TEST(DetectionTest, UnrelatedPrefixIgnored) {
  const auto config = victim_config();
  DetectionService detector(config);
  detector.process(make_obs("203.0.113.0/24", {9, 666}));
  EXPECT_TRUE(detector.alerts().empty());
}

TEST(DetectionTest, ExactOriginHijackAlerts) {
  const auto config = victim_config();
  DetectionService detector(config);
  detector.process(make_obs("10.0.0.0/23", {9, 300, 666}));
  ASSERT_EQ(detector.alerts().size(), 1u);
  const auto& alert = detector.alerts()[0];
  EXPECT_EQ(alert.type, HijackType::kExactOrigin);
  EXPECT_EQ(alert.offender, 666u);
  EXPECT_EQ(alert.owned_prefix.to_string(), "10.0.0.0/23");
  EXPECT_EQ(alert.observed_prefix.to_string(), "10.0.0.0/23");
  EXPECT_EQ(alert.vantage, 9u);
  EXPECT_EQ(alert.source, "ris-live");
  EXPECT_EQ(alert.detected_at, SimTime::at_seconds(100));
}

TEST(DetectionTest, SubPrefixHijackAlerts) {
  const auto config = victim_config();
  DetectionService detector(config);
  detector.process(make_obs("10.0.1.0/24", {9, 666}));
  ASSERT_EQ(detector.alerts().size(), 1u);
  EXPECT_EQ(detector.alerts()[0].type, HijackType::kSubPrefix);
  EXPECT_EQ(detector.alerts()[0].observed_prefix.to_string(), "10.0.1.0/24");
}

TEST(DetectionTest, OwnSubPrefixMitigationDoesNotSelfAlert) {
  const auto config = victim_config();
  DetectionService detector(config);
  // The victim's own de-aggregated /24s (origin 65001) must not alert.
  detector.process(make_obs("10.0.0.0/24", {9, 100, 65001}));
  detector.process(make_obs("10.0.1.0/24", {9, 100, 65001}));
  EXPECT_TRUE(detector.alerts().empty());
}

TEST(DetectionTest, SuperPrefixHijackAlerts) {
  const auto config = victim_config();
  DetectionService detector(config);
  detector.process(make_obs("10.0.0.0/16", {9, 666}));
  ASSERT_EQ(detector.alerts().size(), 1u);
  EXPECT_EQ(detector.alerts()[0].type, HijackType::kSuperPrefix);
}

TEST(DetectionTest, SubPrefixCheckCanBeDisabled) {
  const auto config = victim_config();
  DetectionOptions options;
  options.detect_subprefix = false;
  options.detect_superprefix = false;
  DetectionService detector(config, options);
  detector.process(make_obs("10.0.1.0/24", {9, 666}));
  detector.process(make_obs("10.0.0.0/16", {9, 666}));
  EXPECT_TRUE(detector.alerts().empty());
  // The demo's exact-origin check stays active.
  detector.process(make_obs("10.0.0.0/23", {9, 666}));
  EXPECT_EQ(detector.alerts().size(), 1u);
}

TEST(DetectionTest, FakeFirstHopDetectedWhenEnabled) {
  const auto config = victim_config();
  DetectionOptions options;
  options.detect_fake_first_hop = true;
  DetectionService detector(config, options);
  // Correct origin 65001 but adjacent AS 666 is not a known neighbor.
  detector.process(make_obs("10.0.0.0/23", {9, 666, 65001}));
  ASSERT_EQ(detector.alerts().size(), 1u);
  EXPECT_EQ(detector.alerts()[0].type, HijackType::kFakeFirstHop);
  EXPECT_EQ(detector.alerts()[0].offender, 666u);
}

TEST(DetectionTest, FakeFirstHopIgnoresKnownNeighbors) {
  const auto config = victim_config();
  DetectionOptions options;
  options.detect_fake_first_hop = true;
  DetectionService detector(config, options);
  detector.process(make_obs("10.0.0.0/23", {9, 100, 65001}));
  detector.process(make_obs("10.0.0.0/23", {9, 200, 65001}));
  EXPECT_TRUE(detector.alerts().empty());
}

TEST(DetectionTest, FakeFirstHopOffByDefault) {
  const auto config = victim_config();
  DetectionService detector(config);
  detector.process(make_obs("10.0.0.0/23", {9, 666, 65001}));
  EXPECT_TRUE(detector.alerts().empty());
}

TEST(DetectionTest, WithdrawalsNeverAlert) {
  const auto config = victim_config();
  DetectionService detector(config);
  auto obs = make_obs("10.0.0.0/23", {9, 666});
  obs.type = feeds::ObservationType::kWithdrawal;
  detector.process(obs);
  EXPECT_TRUE(detector.alerts().empty());
}

TEST(DetectionTest, RouteStateObservationsAlertToo) {
  // LG answers and RIB dumps carry kRouteState; they must be checked.
  const auto config = victim_config();
  DetectionService detector(config);
  auto obs = make_obs("10.0.0.0/23", {9, 666}, "periscope");
  obs.type = feeds::ObservationType::kRouteState;
  detector.process(obs);
  EXPECT_EQ(detector.alerts().size(), 1u);
}

TEST(DetectionTest, DuplicateObservationsDeduplicated) {
  const auto config = victim_config();
  DetectionService detector(config);
  detector.process(make_obs("10.0.0.0/23", {9, 666}, "ris-live", 9, 100));
  detector.process(make_obs("10.0.0.0/23", {8, 666}, "bgpmon", 8, 105));
  detector.process(make_obs("10.0.0.0/23", {7, 300, 666}, "ris-live", 7, 110));
  ASSERT_EQ(detector.alerts().size(), 1u);
  const auto key = detector.alerts()[0].dedup_key();
  EXPECT_EQ(detector.observation_count(key), 3u);
}

TEST(DetectionTest, DistinctOffendersAreDistinctAlerts) {
  const auto config = victim_config();
  DetectionService detector(config);
  detector.process(make_obs("10.0.0.0/23", {9, 666}));
  detector.process(make_obs("10.0.0.0/23", {9, 777}));
  EXPECT_EQ(detector.alerts().size(), 2u);
}

TEST(DetectionTest, FirstSeenBySourceTracksRace) {
  const auto config = victim_config();
  DetectionService detector(config);
  detector.process(make_obs("10.0.0.0/23", {9, 666}, "bgpmon", 9, 100));
  detector.process(make_obs("10.0.0.0/23", {8, 666}, "ris-live", 8, 103));
  detector.process(make_obs("10.0.0.0/23", {7, 666}, "bgpmon", 7, 110));  // later
  const auto key = detector.alerts()[0].dedup_key();
  const auto* by_source = detector.first_seen_by_source(key);
  ASSERT_NE(by_source, nullptr);
  EXPECT_EQ(by_source->at("bgpmon"), SimTime::at_seconds(100));
  EXPECT_EQ(by_source->at("ris-live"), SimTime::at_seconds(103));
  EXPECT_EQ(detector.first_seen_by_source("nonsense"), nullptr);
  EXPECT_EQ(detector.observation_count("nonsense"), 0u);
}

TEST(DetectionTest, AlertHandlersFireOnce) {
  const auto config = victim_config();
  DetectionService detector(config);
  int fired = 0;
  detector.on_alert([&](const HijackAlert&) { ++fired; });
  detector.process(make_obs("10.0.0.0/23", {9, 666}));
  detector.process(make_obs("10.0.0.0/23", {8, 666}));
  EXPECT_EQ(fired, 1);
}

TEST(DetectionTest, AlertToStringReadable) {
  const auto config = victim_config();
  DetectionService detector(config);
  detector.process(make_obs("10.0.0.0/23", {9, 666}));
  const auto s = detector.alerts()[0].to_string();
  EXPECT_NE(s.find("exact-origin"), std::string::npos);
  EXPECT_NE(s.find("AS666"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.0/23"), std::string::npos);
}

TEST(DetectionTest, MultiOriginConfigAcceptsAllOrigins) {
  Config config;
  OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins = {65001, 65002};
  config.add_owned(std::move(owned));
  DetectionService detector(config);
  detector.process(make_obs("10.0.0.0/23", {9, 65001}));
  detector.process(make_obs("10.0.0.0/23", {9, 65002}));
  EXPECT_TRUE(detector.alerts().empty());
  detector.process(make_obs("10.0.0.0/23", {9, 65003}));
  EXPECT_EQ(detector.alerts().size(), 1u);
}

}  // namespace
}  // namespace artemis::core

// Integration tests: the full three-phase experiment (§3 of the paper)
// across modules — topology, simulator, feeds, detection, mitigation,
// monitoring.
#include <gtest/gtest.h>

#include "artemis/experiment.hpp"
#include "topology/generator.hpp"

namespace artemis::core {
namespace {

struct Fixture {
  topo::AsGraph graph;
  sim::NetworkParams net_params;
  ExperimentParams params;
  Rng rng{2024};

  explicit Fixture(std::uint64_t seed = 2024) : rng(seed) {
    topo::GeneratorParams topo_params;
    topo_params.tier1_count = 5;
    topo_params.tier2_count = 30;
    topo_params.stub_count = 120;
    auto topo_rng = rng.fork("topo");
    graph = topo::generate_topology(topo_params, topo_rng);
    const auto stubs = graph.ases_in_tier(topo::Tier::kStub);
    params.victim = stubs[0];
    params.attacker = stubs[stubs.size() - 1];
    params.victim_prefix = net::Prefix::must_parse("10.0.0.0/23");
  }
};

TEST(ExperimentTest, ExactHijackDetectedAndFullyMitigated) {
  Fixture f;
  HijackExperiment experiment(f.graph, f.net_params, f.params, f.rng.fork("exp"));
  const auto result = experiment.run();

  ASSERT_TRUE(result.detected_at.has_value());
  EXPECT_FALSE(result.detection_source.empty());
  // Detection is tens of seconds (feed latency + propagation), under 3 min.
  EXPECT_GT(*result.detection_delay(), SimDuration::seconds(1));
  EXPECT_LT(*result.detection_delay(), SimDuration::minutes(3));

  // The controller applied both /24s ~15 s after detection.
  ASSERT_TRUE(result.mitigation_start_delay().has_value());
  EXPECT_GE(*result.mitigation_start_delay(), SimDuration::seconds(15));
  EXPECT_LT(*result.mitigation_start_delay(), SimDuration::seconds(16));
  EXPECT_TRUE(result.deaggregation_possible);
  ASSERT_GE(result.mitigation_announcements.size(), 2u);
  EXPECT_EQ(result.mitigation_announcements[0].to_string(), "10.0.0.0/24");
  EXPECT_EQ(result.mitigation_announcements[1].to_string(), "10.0.1.0/24");

  // Every vantage point returns to the legitimate origin within minutes.
  ASSERT_TRUE(result.truth_converged_at.has_value());
  EXPECT_LT(*result.total_duration(), SimDuration::minutes(12));
  ASSERT_TRUE(result.feed_converged_at.has_value());

  // The hijack actually captured someone before mitigation.
  EXPECT_GT(result.max_hijacked_fraction, 0.0);

  // Timeline: starts fully legitimate, dips, recovers to 1.0.
  ASSERT_FALSE(result.timeline.empty());
  EXPECT_DOUBLE_EQ(result.timeline.front().truth_fraction, 1.0);
  double min_fraction = 1.0;
  for (const auto& sample : result.timeline) {
    min_fraction = std::min(min_fraction, sample.truth_fraction);
  }
  EXPECT_LT(min_fraction, 1.0);
  EXPECT_DOUBLE_EQ(result.timeline.back().truth_fraction, 1.0);
}

TEST(ExperimentTest, DetectionBySourceMinimumWinsRace) {
  Fixture f;
  HijackExperiment experiment(f.graph, f.net_params, f.params, f.rng.fork("exp"));
  const auto result = experiment.run();
  ASSERT_TRUE(result.detected_at.has_value());
  ASSERT_FALSE(result.detection_by_source.empty());
  SimTime min_seen = SimTime::never();
  for (const auto& [source, when] : result.detection_by_source) {
    min_seen = std::min(min_seen, when);
  }
  EXPECT_EQ(min_seen, *result.detected_at);
  EXPECT_EQ(result.detection_by_source.at(result.detection_source), *result.detected_at);
}

TEST(ExperimentTest, Slash24VictimCannotBeMitigated) {
  Fixture f;
  f.params.victim_prefix = net::Prefix::must_parse("10.0.0.0/24");
  f.params.horizon = SimDuration::minutes(10);
  HijackExperiment experiment(f.graph, f.net_params, f.params, f.rng.fork("exp"));
  const auto result = experiment.run();

  ASSERT_TRUE(result.detected_at.has_value());
  EXPECT_FALSE(result.deaggregation_possible);
  // Re-announcing the exact /24 does not dislodge the hijacker everywhere:
  // ground-truth convergence must NOT be reached.
  EXPECT_FALSE(result.truth_converged_at.has_value());
  EXPECT_GT(result.max_hijacked_fraction, 0.0);
}

TEST(ExperimentTest, SubPrefixHijackDetectedViaExtension) {
  Fixture f;
  f.params.hijack_prefix = net::Prefix::must_parse("10.0.1.0/24");
  HijackExperiment experiment(f.graph, f.net_params, f.params, f.rng.fork("exp"));
  const auto result = experiment.run();
  ASSERT_TRUE(result.detected_at.has_value());
  // The observed prefix is the attacker's /24; mitigation scope is that
  // /24, which cannot be split below the floor -> only the exact /23
  // reannounce goes out and the sub-prefix keeps winning.
  EXPECT_FALSE(result.deaggregation_possible);
}

TEST(ExperimentTest, Type1ForgedPathNeedsFirstHopCheck) {
  Fixture f;
  // Attacker claims to be adjacent to the victim: path [attacker, victim].
  f.params.forged_path = bgp::AsPath({f.params.attacker, f.params.victim});
  f.params.horizon = SimDuration::minutes(10);

  // Default (origin checks only): the origin looks legitimate -> missed.
  {
    HijackExperiment experiment(f.graph, f.net_params, f.params, f.rng.fork("a"));
    const auto result = experiment.run();
    EXPECT_FALSE(result.detected_at.has_value());
  }
  // With the Type-1 extension: detected.
  {
    f.params.app.detection.detect_fake_first_hop = true;
    HijackExperiment experiment(f.graph, f.net_params, f.params, f.rng.fork("b"));
    const auto result = experiment.run();
    ASSERT_TRUE(result.detected_at.has_value());
  }
}

TEST(ExperimentTest, SingleSourceSlowerOrEqualToCombined) {
  Fixture f;
  f.params.horizon = SimDuration::minutes(20);
  // Combined run.
  HijackExperiment combined(f.graph, f.net_params, f.params, f.rng.fork("exp"));
  const auto combined_result = combined.run();
  ASSERT_TRUE(combined_result.detected_at.has_value());

  // Periscope-only run with identical seeds (same LGs, same latencies).
  auto solo_params = f.params;
  solo_params.enable_ris = false;
  solo_params.enable_bgpmon = false;
  HijackExperiment solo(f.graph, f.net_params, solo_params, f.rng.fork("exp"));
  const auto solo_result = solo.run();
  ASSERT_TRUE(solo_result.detected_at.has_value());

  EXPECT_LE(*combined_result.detection_delay(), *solo_result.detection_delay() +
                                                    SimDuration::seconds(1));
}

TEST(ExperimentTest, RequiresActors) {
  Fixture f;
  f.params.victim = bgp::kNoAsn;
  EXPECT_THROW(HijackExperiment(f.graph, f.net_params, f.params, f.rng.fork("x")),
               std::invalid_argument);
}

TEST(ExperimentTest, RequiresAtLeastOneSource) {
  Fixture f;
  f.params.enable_ris = false;
  f.params.enable_bgpmon = false;
  f.params.enable_periscope = false;
  EXPECT_THROW(HijackExperiment(f.graph, f.net_params, f.params, f.rng.fork("x")),
               std::invalid_argument);
}

TEST(ExperimentTest, DeterministicGivenSeed) {
  Fixture f1(7);
  Fixture f2(7);
  HijackExperiment a(f1.graph, f1.net_params, f1.params, f1.rng.fork("exp"));
  HijackExperiment b(f2.graph, f2.net_params, f2.params, f2.rng.fork("exp"));
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_TRUE(ra.detected_at.has_value());
  ASSERT_TRUE(rb.detected_at.has_value());
  EXPECT_EQ(*ra.detected_at, *rb.detected_at);
  EXPECT_EQ(ra.detection_source, rb.detection_source);
  ASSERT_TRUE(ra.truth_converged_at.has_value());
  ASSERT_TRUE(rb.truth_converged_at.has_value());
  EXPECT_EQ(*ra.truth_converged_at, *rb.truth_converged_at);
}

TEST(ExperimentTest, MraiAblationSpeedsConvergence) {
  Fixture f;
  sim::NetworkParams no_mrai = f.net_params;
  no_mrai.mrai = SimDuration::zero();
  HijackExperiment fast(f.graph, no_mrai, f.params, f.rng.fork("exp"));
  const auto fast_result = fast.run();
  HijackExperiment slow(f.graph, f.net_params, f.params, f.rng.fork("exp"));
  const auto slow_result = slow.run();
  ASSERT_TRUE(fast_result.mitigation_duration().has_value());
  ASSERT_TRUE(slow_result.mitigation_duration().has_value());
  EXPECT_LT(*fast_result.mitigation_duration(), *slow_result.mitigation_duration());
}

TEST(ExperimentTest, OutsourcingImprovesSlash24Recovery) {
  Fixture f;
  f.params.victim_prefix = net::Prefix::must_parse("10.0.0.0/24");
  f.params.horizon = SimDuration::minutes(10);

  auto final_fraction = [&](int helpers) {
    auto params = f.params;
    params.helper_count = helpers;
    HijackExperiment experiment(f.graph, f.net_params, params, f.rng.fork("exp"));
    const auto result = experiment.run();
    EXPECT_EQ(experiment.helpers().size(), static_cast<std::size_t>(helpers));
    if (helpers > 0) {
      EXPECT_EQ(result.helpers_used, static_cast<std::size_t>(helpers));
    }
    return result.timeline.empty() ? 0.0 : result.timeline.back().truth_fraction;
  };
  const double without = final_fraction(0);
  const double with_helpers = final_fraction(4);
  EXPECT_LT(without, 1.0);
  EXPECT_GT(with_helpers, without);
}

TEST(ExperimentTest, ImpactWeightingDiffersFromPlainFraction) {
  Fixture f;
  HijackExperiment experiment(f.graph, f.net_params, f.params, f.rng.fork("exp"));
  const auto result = experiment.run();
  // Both metrics saw the hijack; they weight vantages differently but
  // stay within [0, 1].
  EXPECT_GT(result.max_hijacked_fraction, 0.0);
  EXPECT_GT(result.max_hijacked_impact, 0.0);
  EXPECT_LE(result.max_hijacked_fraction, 1.0);
  EXPECT_LE(result.max_hijacked_impact, 1.0);
}

TEST(ExperimentTest, ExplicitHelpersRespected) {
  Fixture f;
  f.params.victim_prefix = net::Prefix::must_parse("10.0.0.0/24");
  const auto tier1s = f.graph.ases_in_tier(topo::Tier::kTier1);
  f.params.helpers = {tier1s[0], tier1s[1]};
  f.params.horizon = SimDuration::minutes(5);
  HijackExperiment experiment(f.graph, f.net_params, f.params, f.rng.fork("exp"));
  EXPECT_EQ(experiment.helpers(), f.params.helpers);
  const auto result = experiment.run();
  EXPECT_EQ(result.helpers_used, 2u);
}

TEST(ExperimentTest, SummaryIsHumanReadable) {
  Fixture f;
  HijackExperiment experiment(f.graph, f.net_params, f.params, f.rng.fork("exp"));
  const auto result = experiment.run();
  const auto s = result.summary();
  EXPECT_NE(s.find("detected after"), std::string::npos);
  EXPECT_NE(s.find("total"), std::string::npos);
}

}  // namespace
}  // namespace artemis::core

#include <gtest/gtest.h>

#include "feeds/batch_feed.hpp"
#include "feeds/looking_glass.hpp"
#include "feeds/monitor_hub.hpp"
#include "feeds/stream_feed.hpp"
#include "sim/network.hpp"
#include "topology/as_graph.hpp"

namespace artemis::feeds {
namespace {

// Shared fixture: a 4-AS line (1 tier1 <- 2 <- 3 victim) plus peer 4 of 1.
struct FeedsFixture {
  topo::AsGraph graph;
  std::unique_ptr<sim::Network> network;

  explicit FeedsFixture(SimDuration mrai = SimDuration::zero(), std::uint64_t seed = 1) {
    graph.add_as(1, topo::Tier::kTier1);
    graph.add_as(2, topo::Tier::kTier2);
    graph.add_as(3, topo::Tier::kStub);
    graph.add_as(4, topo::Tier::kTier2);
    graph.add_customer_link(1, 2);
    graph.add_customer_link(2, 3);
    graph.add_peer_link(1, 4);
    sim::NetworkParams params;
    params.mrai = mrai;
    network = std::make_unique<sim::Network>(graph, params, Rng(seed));
  }
};

TEST(StreamFeedTest, DeliversObservationsWithLatency) {
  FeedsFixture f;
  StreamFeedParams params;
  params.name = "ris-live";
  params.vantages = {1, 2};
  params.median_latency = SimDuration::seconds(5);
  params.latency_sigma = 0.3;
  StreamFeed feed(*f.network, params, Rng(7));

  std::vector<Observation> received;
  feed.subscribe([&](const Observation& obs) { received.push_back(obs); });

  f.network->speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
  f.network->run_to_convergence();

  ASSERT_GE(received.size(), 2u);  // both vantages converged onto the route
  for (const auto& obs : received) {
    EXPECT_EQ(obs.type, ObservationType::kAnnouncement);
    EXPECT_EQ(obs.source, "ris-live");
    EXPECT_EQ(obs.origin_as(), 3u);
    EXPECT_GT(obs.feed_lag(), SimDuration::zero());
    EXPECT_EQ(obs.delivered_at - obs.event_time, obs.feed_lag());
  }
  EXPECT_EQ(feed.delivered_count(), received.size());
}

TEST(StreamFeedTest, VantagePathIncludesVantageAsn) {
  FeedsFixture f;
  StreamFeedParams params;
  params.vantages = {1};
  StreamFeed feed(*f.network, params, Rng(8));
  std::vector<Observation> received;
  feed.subscribe([&](const Observation& obs) { received.push_back(obs); });
  f.network->speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
  f.network->run_to_convergence();
  ASSERT_FALSE(received.empty());
  EXPECT_EQ(received.back().attrs.as_path.to_string(), "1 2 3");
  EXPECT_EQ(received.back().vantage, 1u);
}

TEST(StreamFeedTest, WithdrawalsDelivered) {
  FeedsFixture f;
  StreamFeedParams params;
  params.vantages = {1};
  StreamFeed feed(*f.network, params, Rng(9));
  std::vector<Observation> received;
  feed.subscribe([&](const Observation& obs) { received.push_back(obs); });
  const auto prefix = net::Prefix::must_parse("10.0.0.0/23");
  f.network->speaker(3).originate(prefix);
  f.network->run_to_convergence();
  received.clear();
  f.network->speaker(3).withdraw_origin(prefix);
  f.network->run_to_convergence();
  ASSERT_FALSE(received.empty());
  EXPECT_EQ(received.back().type, ObservationType::kWithdrawal);
}

TEST(StreamFeedTest, MultipleFeedsOnSameVantageCoexist) {
  FeedsFixture f;
  StreamFeedParams a;
  a.name = "ris-live";
  a.vantages = {1};
  StreamFeedParams b;
  b.name = "bgpmon";
  b.vantages = {1};
  StreamFeed feed_a(*f.network, a, Rng(1));
  StreamFeed feed_b(*f.network, b, Rng(2));
  int from_a = 0;
  int from_b = 0;
  feed_a.subscribe([&](const Observation&) { ++from_a; });
  feed_b.subscribe([&](const Observation&) { ++from_b; });
  f.network->speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
  f.network->run_to_convergence();
  EXPECT_GT(from_a, 0);
  EXPECT_GT(from_b, 0);
}

TEST(BatchFeedTest, UpdatesArriveOnlyAtWindowBoundaries) {
  FeedsFixture f;
  BatchFeedParams params;
  params.name = "batch-15m";
  params.vantages = {1};
  params.mode = BatchMode::kUpdates;
  params.interval = SimDuration::minutes(15);
  params.publish_delay = SimDuration::seconds(60);
  BatchFeed feed(*f.network, params, Rng(3));

  std::vector<Observation> received;
  feed.subscribe([&](const Observation& obs) { received.push_back(obs); });

  f.network->speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
  auto& sim = f.network->simulator();
  sim.run_until(SimTime::at_seconds(10));
  EXPECT_TRUE(received.empty());  // route converged but file not yet out

  sim.run_until(SimTime::at_seconds(15 * 60 + 61));
  ASSERT_FALSE(received.empty());
  EXPECT_EQ(received.front().source, "batch-15m");
  EXPECT_EQ(received.front().type, ObservationType::kAnnouncement);
  EXPECT_EQ(received.front().origin_as(), 3u);
  // The event time survives the archive round-trip; the lag is the window.
  EXPECT_LT(received.front().event_time, SimTime::at_seconds(10));
  EXPECT_EQ(received.front().delivered_at, SimTime::at_seconds(15 * 60 + 60));
  EXPECT_GE(feed.bytes_published(), 1u);
  EXPECT_EQ(feed.files_published(), 1u);
}

TEST(BatchFeedTest, EmptyWindowsPublishNothing) {
  FeedsFixture f;
  BatchFeedParams params;
  params.vantages = {1};
  params.interval = SimDuration::minutes(15);
  BatchFeed feed(*f.network, params, Rng(4));
  int count = 0;
  feed.subscribe([&](const Observation&) { ++count; });
  f.network->simulator().run_until(SimTime::at_seconds(3600));
  EXPECT_EQ(count, 0);
  EXPECT_EQ(feed.files_published(), 0u);
}

TEST(BatchFeedTest, RibDumpSnapshotsFullTable) {
  FeedsFixture f;
  BatchFeedParams params;
  params.name = "rib-2h";
  params.vantages = {1, 2};
  params.mode = BatchMode::kRibDump;
  params.interval = SimDuration::hours(2);
  params.publish_delay = SimDuration::minutes(5);
  BatchFeed feed(*f.network, params, Rng(5));

  std::vector<Observation> received;
  feed.subscribe([&](const Observation& obs) { received.push_back(obs); });

  f.network->speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
  f.network->simulator().run_until(SimTime::at_seconds(2 * 3600 + 301));

  ASSERT_EQ(received.size(), 2u);  // one RIB entry per vantage
  for (const auto& obs : received) {
    EXPECT_EQ(obs.type, ObservationType::kRouteState);
    EXPECT_EQ(obs.origin_as(), 3u);
    EXPECT_EQ(obs.delivered_at, SimTime::at_seconds(2 * 3600 + 300));
  }
  // Vantage 1's exported path must include itself.
  bool found_v1 = false;
  for (const auto& obs : received) {
    if (obs.vantage == 1) {
      EXPECT_EQ(obs.attrs.as_path.to_string(), "1 2 3");
      found_v1 = true;
    }
  }
  EXPECT_TRUE(found_v1);
}

TEST(LookingGlassTest, QueryReturnsCurrentBestAfterLatency) {
  FeedsFixture f;
  LookingGlassParams params;
  params.asn = 1;
  params.min_query_latency = SimDuration::seconds(1);
  params.max_query_latency = SimDuration::seconds(2);
  LookingGlass lg(*f.network, params, Rng(6));

  f.network->speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
  f.network->run_to_convergence();

  std::vector<Observation> results;
  SimTime answered;
  lg.query(net::Prefix::must_parse("10.0.0.0/23"),
           [&](const std::vector<Observation>& obs) {
             results = obs;
             answered = f.network->simulator().now();
           });
  const SimTime asked = f.network->simulator().now();
  f.network->run_to_convergence();

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].type, ObservationType::kRouteState);
  EXPECT_EQ(results[0].origin_as(), 3u);
  EXPECT_EQ(results[0].attrs.as_path.to_string(), "1 2 3");
  EXPECT_GE(answered - asked, SimDuration::seconds(1));
  EXPECT_LE(answered - asked, SimDuration::seconds(2));
  EXPECT_EQ(lg.queries_served(), 1u);
}

TEST(LookingGlassTest, QueryShowsMoreSpecifics) {
  FeedsFixture f;
  LookingGlassParams params;
  params.asn = 1;
  LookingGlass lg(*f.network, params, Rng(7));
  f.network->speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
  f.network->speaker(3).originate(net::Prefix::must_parse("10.0.1.0/24"));
  f.network->run_to_convergence();

  std::vector<Observation> results;
  lg.query(net::Prefix::must_parse("10.0.0.0/23"),
           [&](const std::vector<Observation>& obs) { results = obs; });
  f.network->run_to_convergence();
  ASSERT_EQ(results.size(), 2u);  // the /23 and the more-specific /24
}

TEST(LookingGlassTest, QueryOnUnknownPrefixReturnsEmpty) {
  FeedsFixture f;
  LookingGlassParams params;
  params.asn = 1;
  LookingGlass lg(*f.network, params, Rng(8));
  std::vector<Observation> results{Observation{}};
  lg.query(net::Prefix::must_parse("203.0.113.0/24"),
           [&](const std::vector<Observation>& obs) { results = obs; });
  f.network->run_to_convergence();
  EXPECT_TRUE(results.empty());
}

TEST(PeriscopeTest, PollsAllGlassesEachInterval) {
  FeedsFixture f;
  std::vector<LookingGlassParams> glasses;
  for (const bgp::Asn asn : {1u, 2u, 4u}) {
    LookingGlassParams lg;
    lg.asn = asn;
    glasses.push_back(lg);
  }
  PeriscopeParams params;
  params.poll_interval = SimDuration::seconds(60);
  PeriscopeClient client(*f.network, glasses, params, Rng(9));
  client.monitor_prefix(net::Prefix::must_parse("10.0.0.0/23"));

  std::vector<Observation> received;
  client.subscribe([&](const Observation& obs) { received.push_back(obs); });

  f.network->speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
  f.network->simulator().run_until(SimTime::at_seconds(305));

  // ~5 minutes => each LG polled ~5 times.
  EXPECT_GE(client.queries_issued(), 12u);
  EXPECT_LE(client.queries_issued(), 18u);
  ASSERT_FALSE(received.empty());
  for (const auto& obs : received) {
    EXPECT_EQ(obs.source, "periscope");
    EXPECT_EQ(obs.type, ObservationType::kRouteState);
  }
}

TEST(PeriscopeTest, RateLimitSkipsQueries) {
  FeedsFixture f;
  std::vector<LookingGlassParams> glasses;
  for (const bgp::Asn asn : {1u, 2u, 4u}) {
    LookingGlassParams lg;
    lg.asn = asn;
    glasses.push_back(lg);
  }
  PeriscopeParams params;
  params.poll_interval = SimDuration::seconds(60);
  params.max_queries_per_interval = 1;
  PeriscopeClient client(*f.network, glasses, params, Rng(10));
  client.monitor_prefix(net::Prefix::must_parse("10.0.0.0/23"));
  f.network->speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
  f.network->simulator().run_until(SimTime::at_seconds(300));
  EXPECT_GT(client.queries_rate_limited(), 0u);
  EXPECT_LE(client.queries_issued(), 6u);
}

TEST(BatchFeedTest, MultipleWindowsDeliverInOrder) {
  FeedsFixture f;
  BatchFeedParams params;
  params.vantages = {1};
  params.interval = SimDuration::minutes(15);
  params.publish_delay = SimDuration::seconds(30);
  BatchFeed feed(*f.network, params, Rng(11));
  std::vector<Observation> received;
  feed.subscribe([&](const Observation& obs) { received.push_back(obs); });

  auto& sim = f.network->simulator();
  const auto prefix = net::Prefix::must_parse("10.0.0.0/23");
  // Window 1: announce. Window 2: withdraw. Window 3: announce again.
  sim.at(SimTime::at_seconds(10), [&] { f.network->speaker(3).originate(prefix); });
  sim.at(SimTime::at_seconds(16 * 60),
         [&] { f.network->speaker(3).withdraw_origin(prefix); });
  sim.at(SimTime::at_seconds(31 * 60), [&] { f.network->speaker(3).originate(prefix); });
  sim.run_until(SimTime::at_seconds(46 * 60));

  ASSERT_GE(received.size(), 3u);
  EXPECT_EQ(feed.files_published(), 3u);
  // Delivery times are window boundaries + publish delay, strictly ordered.
  for (std::size_t i = 1; i < received.size(); ++i) {
    EXPECT_GE(received[i].delivered_at, received[i - 1].delivered_at);
  }
  EXPECT_EQ(received.front().delivered_at, SimTime::at_seconds(15 * 60 + 30));
  // The middle window carries the withdrawal.
  bool saw_withdrawal = false;
  for (const auto& obs : received) {
    if (obs.type == ObservationType::kWithdrawal) saw_withdrawal = true;
  }
  EXPECT_TRUE(saw_withdrawal);
}

TEST(StreamFeedTest, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    FeedsFixture f(SimDuration::zero(), seed);
    StreamFeedParams params;
    params.vantages = {1, 2};
    StreamFeed feed(*f.network, params, Rng(seed));
    std::vector<double> deliveries;
    feed.subscribe([&](const Observation& obs) {
      deliveries.push_back(obs.delivered_at.as_seconds());
    });
    f.network->speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
    f.network->run_to_convergence();
    return deliveries;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(StreamFeedTest, BatchSubscribersSeeWholeMessages) {
  FeedsFixture f;
  StreamFeedParams params;
  params.vantages = {1, 2};
  StreamFeed feed(*f.network, params, Rng(12));

  std::size_t batch_count = 0;
  std::size_t batched_total = 0;
  std::vector<Observation> per_obs;
  feed.subscribe_batch([&](std::span<const Observation> batch) {
    ++batch_count;
    batched_total += batch.size();
    // One collector message = one delivery instant for every observation.
    for (const auto& obs : batch) {
      EXPECT_EQ(obs.delivered_at, batch.front().delivered_at);
      EXPECT_EQ(obs.source, batch.front().source);
      EXPECT_EQ(obs.vantage, batch.front().vantage);
    }
  });
  feed.subscribe([&](const Observation& obs) { per_obs.push_back(obs); });

  f.network->speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
  f.network->run_to_convergence();

  EXPECT_GT(batch_count, 0u);
  // Per-observation subscribers see exactly the flattened batch stream.
  EXPECT_EQ(per_obs.size(), batched_total);
  EXPECT_EQ(feed.delivered_count(), batched_total);
}

TEST(BatchFeedTest, FilesArriveAsSingleBatches) {
  FeedsFixture f;
  BatchFeedParams params;
  params.vantages = {1, 2};
  params.interval = SimDuration::minutes(15);
  params.publish_delay = SimDuration::seconds(60);
  BatchFeed feed(*f.network, params, Rng(13));

  std::vector<std::size_t> batch_sizes;
  feed.subscribe_batch([&](std::span<const Observation> batch) {
    batch_sizes.push_back(batch.size());
  });

  f.network->speaker(3).originate(net::Prefix::must_parse("10.0.0.0/23"));
  f.network->simulator().run_until(SimTime::at_seconds(15 * 60 + 61));

  // One file published => exactly one batch, carrying every decoded elem.
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_GE(batch_sizes.front(), 2u);  // both vantages' updates in the window
}

TEST(MonitorHubTest, FanOutAndCounters) {
  MonitorHub hub;
  int a = 0;
  int b = 0;
  hub.subscribe([&](const Observation&) { ++a; });
  hub.subscribe([&](const Observation&) { ++b; });
  Observation obs;
  obs.source = "ris-live";
  hub.publish(obs);
  obs.source = "bgpmon";
  hub.inlet()(obs);
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(hub.total_observations(), 2u);
  EXPECT_EQ(hub.per_source_counts().at("ris-live"), 1u);
  EXPECT_EQ(hub.per_source_counts().at("bgpmon"), 1u);
}

TEST(ObservationTest, ToStringMentionsKeyFields) {
  Observation obs;
  obs.type = ObservationType::kAnnouncement;
  obs.source = "ris-live";
  obs.vantage = 9;
  obs.prefix = net::Prefix::must_parse("10.0.0.0/23");
  obs.attrs.as_path = bgp::AsPath({9, 3});
  obs.event_time = SimTime::at_seconds(1);
  obs.delivered_at = SimTime::at_seconds(6);
  const auto s = obs.to_string();
  EXPECT_NE(s.find("10.0.0.0/23"), std::string::npos);
  EXPECT_NE(s.find("AS9"), std::string::npos);
  EXPECT_NE(s.find("ris-live"), std::string::npos);
  EXPECT_NE(s.find("5.0s"), std::string::npos);
}

}  // namespace
}  // namespace artemis::feeds

#!/usr/bin/env bash
# The CI replay-determinism gate (ISSUE 5): proves on every compiler in
# the matrix that the compressed dual-stack pipeline is bit-identical,
# end to end, against fixtures committed to the repo:
#
#   1. importing the committed gzip'd dual-stack window reproduces the
#      committed golden journal BYTE FOR BYTE (decode + monotone clock +
#      journal encoder determinism, through the gzip transport);
#   2. replaying the committed journal at shards 1 and 4 yields the
#      committed canonical alert list (replay + sharded detection
#      determinism — any N, same merged output);
#   3. the freshly imported journal replays to the same alerts too.
#
# Regenerate fixtures with tests/golden/make_golden.sh after an
# INTENTIONAL format/importer change.
#
# Usage: tests/golden/check_replay.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
GOLD_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
OWNED=(--owned 10.0.0.0/23=65001
       --owned 192.0.2.0/24=65002
       --owned 2001:db8::/32=65003)

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# 1. Fresh import of the committed compressed window == committed journal.
"$BUILD_DIR/mrt2journal" --journal "$tmp/journal" \
  "$GOLD_DIR/dual_stack.mrt.gz" > "$tmp/import.json"
diff <(cd "$GOLD_DIR/journal" && ls) <(cd "$tmp/journal" && ls)
for seg in "$GOLD_DIR"/journal/*; do
  cmp "$seg" "$tmp/journal/$(basename "$seg")"
done
echo "ok: fresh import reproduces the golden journal byte-for-byte"

# 2. Committed journal replays to the committed alerts at shards 1 and 4.
for shards in 1 4; do
  "$BUILD_DIR/journal_alerts" --journal "$GOLD_DIR/journal" "${OWNED[@]}" \
    --shards "$shards" > "$tmp/alerts_$shards.txt"
  diff "$GOLD_DIR/alerts.txt" "$tmp/alerts_$shards.txt"
done
echo "ok: golden journal replays bit-identically at shards 1 and 4"

# 2b. Threaded replay (batch-ring handoff, futex wait policy, 4 workers)
# is the same bits too — determinism across the concurrency mode, not
# just the shard count.
"$BUILD_DIR/journal_alerts" --journal "$GOLD_DIR/journal" "${OWNED[@]}" \
  --shards 4 --threaded --wait-policy futex > "$tmp/alerts_threaded.txt"
diff "$GOLD_DIR/alerts.txt" "$tmp/alerts_threaded.txt"
echo "ok: threaded (futex) replay is bit-identical to the golden alerts"

# 3. The fresh journal replays to the same alerts.
"$BUILD_DIR/journal_alerts" --journal "$tmp/journal" "${OWNED[@]}" \
  --shards 4 > "$tmp/alerts_fresh.txt"
diff "$GOLD_DIR/alerts.txt" "$tmp/alerts_fresh.txt"
echo "ok: freshly imported journal replays to the golden alerts"

echo "replay-determinism gate passed"

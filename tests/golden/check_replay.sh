#!/usr/bin/env bash
# The CI replay-determinism gate (ISSUE 5): proves on every compiler in
# the matrix that the compressed dual-stack pipeline is bit-identical,
# end to end, against fixtures committed to the repo:
#
#   1. importing the committed gzip'd dual-stack window reproduces the
#      committed golden journal BYTE FOR BYTE (decode + monotone clock +
#      journal encoder determinism, through the gzip transport);
#   2. replaying the committed journal at shards 1 and 4 yields the
#      committed canonical alert list (replay + sharded detection
#      determinism — any N, same merged output);
#   3. the freshly imported journal replays to the same alerts too;
#   4. a --compress import (gzip'd cold segments) replays and queries to
#      the SAME alerts and query results — never byte-compared (.gz
#      output is zlib-version-dependent), always record-compared;
#   5. journal_query reproduces the committed query.txt, and a
#      footer-pruned query reports the segment skip (the index gate).
#
# Regenerate fixtures with tests/golden/make_golden.sh after an
# INTENTIONAL format/importer change.
#
# Usage: tests/golden/check_replay.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
GOLD_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
OWNED=(--owned 10.0.0.0/23=65001
       --owned 192.0.2.0/24=65002
       --owned 2001:db8::/32=65003)

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# 1. Fresh import of the committed compressed window == committed journal.
"$BUILD_DIR/mrt2journal" --journal "$tmp/journal" \
  "$GOLD_DIR/dual_stack.mrt.gz" > "$tmp/import.json"
diff <(cd "$GOLD_DIR/journal" && ls) <(cd "$tmp/journal" && ls)
for seg in "$GOLD_DIR"/journal/*; do
  cmp "$seg" "$tmp/journal/$(basename "$seg")"
done
echo "ok: fresh import reproduces the golden journal byte-for-byte"

# 2. Committed journal replays to the committed alerts at shards 1 and 4.
for shards in 1 4; do
  "$BUILD_DIR/journal_alerts" --journal "$GOLD_DIR/journal" "${OWNED[@]}" \
    --shards "$shards" > "$tmp/alerts_$shards.txt"
  diff "$GOLD_DIR/alerts.txt" "$tmp/alerts_$shards.txt"
done
echo "ok: golden journal replays bit-identically at shards 1 and 4"

# 2b. Threaded replay (batch-ring handoff, futex wait policy, 4 workers)
# is the same bits too — determinism across the concurrency mode, not
# just the shard count.
"$BUILD_DIR/journal_alerts" --journal "$GOLD_DIR/journal" "${OWNED[@]}" \
  --shards 4 --threaded --wait-policy futex > "$tmp/alerts_threaded.txt"
diff "$GOLD_DIR/alerts.txt" "$tmp/alerts_threaded.txt"
echo "ok: threaded (futex) replay is bit-identical to the golden alerts"

# 3. The fresh journal replays to the same alerts.
"$BUILD_DIR/journal_alerts" --journal "$tmp/journal" "${OWNED[@]}" \
  --shards 4 > "$tmp/alerts_fresh.txt"
diff "$GOLD_DIR/alerts.txt" "$tmp/alerts_fresh.txt"
echo "ok: freshly imported journal replays to the golden alerts"

# 4. Compressed import: sealed segments stored as seg-*.aj.gz must
# replay and query record-identically. No .gz byte comparison, ever.
"$BUILD_DIR/mrt2journal" --journal "$tmp/journal_gz" --compress \
  "$GOLD_DIR/dual_stack.mrt.gz" > /dev/null
ls "$tmp/journal_gz" | grep -q '\.aj\.gz$' || {
  echo "FAIL: --compress import produced no compressed segment"; exit 1; }
"$BUILD_DIR/journal_alerts" --journal "$tmp/journal_gz" "${OWNED[@]}" \
  --shards 4 > "$tmp/alerts_gz.txt"
diff "$GOLD_DIR/alerts.txt" "$tmp/alerts_gz.txt"
"$BUILD_DIR/journal_query" --journal "$tmp/journal_gz" \
  --prefix 10.0.0.0/23 --type announce > "$tmp/query_gz.txt" 2> /dev/null
diff "$GOLD_DIR/query.txt" "$tmp/query_gz.txt"
echo "ok: compressed import replays and queries identically to raw"

# 5. journal_query golden output, and the index actually prunes: a
# query whose footer proves no match must skip the (only) segment.
"$BUILD_DIR/journal_query" --journal "$GOLD_DIR/journal" \
  --prefix 10.0.0.0/23 --type announce > "$tmp/query.txt" 2> /dev/null
diff "$GOLD_DIR/query.txt" "$tmp/query.txt"
"$BUILD_DIR/journal_query" --journal "$GOLD_DIR/journal" \
  --source no-such-feed --count > /dev/null 2> "$tmp/query_stats.txt"
grep -q 'scanned 0/1 segment(s) (1 skipped via index)' "$tmp/query_stats.txt" || {
  echo "FAIL: footer did not prune the segment:"; cat "$tmp/query_stats.txt"; exit 1; }
echo "ok: journal_query matches the golden output and footers prune"

# 6. journal_alerts projects the ownership table into the read filter:
# the golden replay reports its scan counters (and still reproduces the
# golden alerts — the projection is alert-preserving), and ownership of
# space the footer proves absent skips the (only) segment without
# decoding a single record.
"$BUILD_DIR/journal_alerts" --journal "$GOLD_DIR/journal" "${OWNED[@]}" \
  > "$tmp/alerts_pruned.txt" 2> "$tmp/alerts_pruned_stats.txt"
diff "$GOLD_DIR/alerts.txt" "$tmp/alerts_pruned.txt"
grep -q 'index: scanned 1/1 segment(s) (0 skipped via index); 15 record(s) decoded' \
  "$tmp/alerts_pruned_stats.txt" || {
  echo "FAIL: ownership projection did not report scan counters:";
  cat "$tmp/alerts_pruned_stats.txt"; exit 1; }
"$BUILD_DIR/journal_alerts" --journal "$GOLD_DIR/journal" \
  --owned 172.16.0.0/24=65009 > "$tmp/alerts_absent.txt" \
  2> "$tmp/alerts_absent_stats.txt"
grep -q 'index: scanned 0/1 segment(s) (1 skipped via index); 0 record(s) decoded' \
  "$tmp/alerts_absent_stats.txt" || {
  echo "FAIL: ownership projection did not prune the segment:";
  cat "$tmp/alerts_absent_stats.txt"; exit 1; }
[ -s "$tmp/alerts_absent.txt" ] && {
  echo "FAIL: pruned replay produced alerts:"; cat "$tmp/alerts_absent.txt"; exit 1; }
echo "ok: journal_alerts ownership projection prunes via footers"

echo "replay-determinism gate passed"

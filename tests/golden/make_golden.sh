#!/usr/bin/env bash
# Regenerates the replay-determinism golden fixtures from scratch:
#
#   dual_stack.mrt.gz  — the canonical gzip'd dual-stack MRT window
#                        (tools/mrt_fixture, fully deterministic)
#   journal/           — that window imported by mrt2journal
#   alerts.txt         — canonical merged alerts from replaying journal/
#                        through detection (tools/journal_alerts)
#   query.txt          — canonical journal_query output for the hijacked
#                        prefix (tools/journal_query, text form)
#
# Run this ONLY when the journal format, the importer's output, or the
# fixture window changes intentionally — the whole point of the committed
# copies is that CI (tests/golden/check_replay.sh) fails when any of
# those change by accident.
#
# Usage: tests/golden/make_golden.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
GOLD_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

"$BUILD_DIR/mrt_fixture" --gzip --out "$GOLD_DIR/dual_stack.mrt.gz"

rm -rf "$GOLD_DIR/journal"
"$BUILD_DIR/mrt2journal" --journal "$GOLD_DIR/journal" \
  "$GOLD_DIR/dual_stack.mrt.gz" > /dev/null

"$BUILD_DIR/journal_alerts" --journal "$GOLD_DIR/journal" \
  --owned 10.0.0.0/23=65001 \
  --owned 192.0.2.0/24=65002 \
  --owned 2001:db8::/32=65003 \
  --shards 1 > "$GOLD_DIR/alerts.txt"

"$BUILD_DIR/journal_query" --journal "$GOLD_DIR/journal" \
  --prefix 10.0.0.0/23 --type announce > "$GOLD_DIR/query.txt" 2> /dev/null

echo "golden fixtures regenerated under $GOLD_DIR:"
ls -la "$GOLD_DIR/journal"
cat "$GOLD_DIR/alerts.txt"

#include "ingest/fault_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace artemis::ingest_test {
namespace {

void msleep(int ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool send_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // client went away (timed out, was killed) — fine
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_str(int fd, const std::string& s) {
  return send_all(fd, s.data(), s.size());
}

/// Makes close(2) send RST instead of FIN: the "connection reset by
/// peer" fault, as distinct from a clean early EOF.
void arm_reset(int fd) {
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

}  // namespace

FaultServer::FaultServer() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("FaultServer: socket failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("FaultServer: bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve_loop(); });
}

FaultServer::~FaultServer() {
  stop_.store(true);
  // The accept loop polls with a timeout, so it notices stop_ promptly.
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void FaultServer::add_file(const std::string& path,
                           std::vector<std::uint8_t> content) {
  std::lock_guard lock(mutex_);
  files_[path] = std::move(content);
}

void FaultServer::push_fault(const Fault& fault) {
  std::lock_guard lock(mutex_);
  faults_.push_back(fault);
}

void FaultServer::set_dribble(std::size_t bytes, int delay_ms) {
  std::lock_guard lock(mutex_);
  dribble_bytes_ = bytes;
  dribble_delay_ms_ = delay_ms;
}

std::string FaultServer::url_for(const std::string& path) const {
  return "http://127.0.0.1:" + std::to_string(port_) + path;
}

void FaultServer::serve_loop() {
  while (!stop_.load()) {
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, 50);
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
  }
}

void FaultServer::handle_connection(int fd) {
  // Requests are header-only; read until the blank line (with a hard cap
  // so a confused client cannot wedge the test server).
  std::string request;
  char buf[4096];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < (64u << 10)) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    if (::poll(&p, 1, 2000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  if (request.find("\r\n\r\n") == std::string::npos) {
    ::close(fd);
    return;
  }
  requests_.fetch_add(1);

  // "GET /path HTTP/1.1"
  std::string path;
  {
    const std::size_t sp1 = request.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : request.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      path = request.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }
  // "Range: bytes=N-" (the only shape the client sends).
  std::uint64_t range_start = 0;
  bool has_range = false;
  {
    const std::size_t pos = request.find("Range: bytes=");
    if (pos != std::string::npos) {
      has_range = true;
      range_requests_.fetch_add(1);
      range_start = std::strtoull(
          request.c_str() + pos + std::strlen("Range: bytes="), nullptr, 10);
    }
  }

  Fault fault;
  std::vector<std::uint8_t> content;
  bool found = false;
  std::size_t dribble_bytes = 0;
  int dribble_delay_ms = 0;
  {
    std::lock_guard lock(mutex_);
    if (!faults_.empty()) {
      fault = faults_.front();
      faults_.erase(faults_.begin());
    }
    const auto it = files_.find(path);
    if (it != files_.end()) {
      found = true;
      content = it->second;  // copy: the lock drops before slow sends
    }
    dribble_bytes = dribble_bytes_;
    dribble_delay_ms = dribble_delay_ms_;
  }

  if (fault.kind == Fault::Kind::kStatus) {
    send_str(fd, "HTTP/1.1 " + std::to_string(fault.status) +
                     " Scripted\r\nContent-Length: 0\r\nConnection: close\r\n\r\n");
    ::close(fd);
    return;
  }
  if (!found) {
    send_str(fd,
             "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n");
    ::close(fd);
    return;
  }

  // Resolve the Range against the entity (unless this request's fault is
  // to ignore it).
  const bool honor_range = has_range && fault.kind != Fault::Kind::kIgnoreRange;
  if (honor_range && range_start >= content.size()) {
    send_str(fd, "HTTP/1.1 416 Range Not Satisfiable\r\nContent-Range: bytes */" +
                     std::to_string(content.size()) +
                     "\r\nContent-Length: 0\r\nConnection: close\r\n\r\n");
    ::close(fd);
    return;
  }
  const std::uint64_t body_start = honor_range ? range_start : 0;
  const std::uint64_t body_size = content.size() - body_start;

  std::int64_t advertised = static_cast<std::int64_t>(body_size);
  if (fault.kind == Fault::Kind::kWrongContentLength) {
    advertised = std::max<std::int64_t>(0, advertised + fault.length_delta);
  }
  std::string head;
  if (honor_range) {
    head = "HTTP/1.1 206 Partial Content\r\nContent-Range: bytes " +
           std::to_string(body_start) + "-" + std::to_string(content.size() - 1) +
           "/" + std::to_string(content.size()) + "\r\n";
  } else {
    head = "HTTP/1.1 200 OK\r\n";
  }
  head += "Content-Length: " + std::to_string(advertised) +
          "\r\nConnection: close\r\n\r\n";
  if (!send_str(fd, head)) {
    ::close(fd);
    return;
  }

  // Body, possibly cut short by the fault and/or paced by the dribble.
  std::uint64_t limit = body_size;
  if (fault.kind == Fault::Kind::kCloseAfterBytes ||
      fault.kind == Fault::Kind::kResetAfterBytes ||
      fault.kind == Fault::Kind::kStallThenClose) {
    limit = std::min<std::uint64_t>(limit, fault.bytes);
  } else if (fault.kind == Fault::Kind::kWrongContentLength &&
             fault.length_delta < 0) {
    // Advertising LESS than the truth: send only the advertisement, so
    // the client sees a complete (but prefix-only) body — the torn-
    // archive-at-the-mirror case.
    limit = static_cast<std::uint64_t>(advertised);
  }
  std::uint64_t sent = 0;
  while (sent < limit) {
    std::size_t step = static_cast<std::size_t>(limit - sent);
    if (dribble_bytes > 0) step = std::min(step, dribble_bytes);
    if (!send_all(fd, content.data() + body_start + sent, step)) break;
    sent += step;
    if (dribble_bytes > 0 && sent < limit) msleep(dribble_delay_ms);
  }

  if (fault.kind == Fault::Kind::kResetAfterBytes) arm_reset(fd);
  if (fault.kind == Fault::Kind::kStallThenClose) msleep(fault.stall_ms);
  ::close(fd);
}

}  // namespace artemis::ingest_test

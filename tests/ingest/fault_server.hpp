// FaultServer: an in-process HTTP server that misbehaves on command.
//
// The ingest supervisor's whole job is surviving flaky mirrors, so its
// tests need a server whose faults are *scripted*, not environmental:
// push a schedule of faults and each incoming request consumes the next
// one — a 503, a connection cut (FIN or RST) after N body bytes, a stall
// longer than the client's read timeout, a lying Content-Length, a
// server that ignores Range and restarts from byte 0. With an empty
// schedule it is a correct little static file server (Range/206/416
// included), which is what the kill-loop test uses, paced by a dribble
// knob so SIGKILLs land mid-transfer instead of between requests.
//
// Single-threaded accept loop, one connection at a time: the supervisor
// under test fetches sequentially, and serialized requests keep the
// fault schedule deterministic (request k always draws fault k).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace artemis::ingest_test {

struct Fault {
  enum class Kind : std::uint8_t {
    kNone,               ///< serve correctly
    kStatus,             ///< reply `status`, empty body
    kCloseAfterBytes,    ///< true headers, then FIN after `bytes` body bytes
    kResetAfterBytes,    ///< true headers, then RST after `bytes` body bytes
    kStallThenClose,     ///< `bytes` body bytes, sleep `stall_ms`, then FIN
    kWrongContentLength, ///< advertise body + `length_delta`, send the truth
    kIgnoreRange,        ///< 200 from entity byte 0 despite a Range header
  };
  Kind kind = Kind::kNone;
  int status = 503;
  std::uint64_t bytes = 0;
  int stall_ms = 0;
  std::int64_t length_delta = 0;
};

class FaultServer {
 public:
  /// Binds 127.0.0.1 on an ephemeral port and starts the accept thread.
  FaultServer();
  ~FaultServer();

  FaultServer(const FaultServer&) = delete;
  FaultServer& operator=(const FaultServer&) = delete;

  void add_file(const std::string& path, std::vector<std::uint8_t> content);

  /// Appends to the fault schedule; each request pops the front entry
  /// (an empty schedule serves correctly).
  void push_fault(const Fault& fault);

  /// Paces body sends: `bytes` per send, then `delay_ms` sleep. Zero
  /// disables. The kill-loop test uses this to stretch transfers across
  /// its SIGKILL window.
  void set_dribble(std::size_t bytes, int delay_ms);

  int port() const { return port_; }
  std::string url_for(const std::string& path) const;

  std::uint64_t requests() const { return requests_.load(); }
  std::uint64_t range_requests() const { return range_requests_.load(); }

 private:
  void serve_loop();
  void handle_connection(int fd);

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> range_requests_{0};

  mutable std::mutex mutex_;  ///< guards files_, faults_, dribble_*
  std::map<std::string, std::vector<std::uint8_t>> files_;
  std::vector<Fault> faults_;  ///< FIFO; popped from the front per request
  std::size_t dribble_bytes_ = 0;
  int dribble_delay_ms_ = 0;
};

}  // namespace artemis::ingest_test

// Shared fixtures for the ingest suite (ingest_test + ingest_kill_test):
// a deterministic alert-raising MRT window, journal inspection helpers,
// and the canonical replay-to-alert-lines view both halves of the
// crash-survival story are compared in.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "artemis/config.hpp"
#include "journal/reader.hpp"
#include "journal/replay.hpp"
#include "mrt/mrt.hpp"
#include "pipeline/sharded_detector.hpp"

namespace artemis::ingest_test {

/// Owned config matching the fixture window's hijacks (offenders 666/667).
inline core::Config make_config() {
  core::Config config;
  core::OwnedPrefix owned;
  owned.prefix = net::Prefix::must_parse("10.0.0.0/23");
  owned.legitimate_origins.insert(65001);
  config.add_owned(std::move(owned));
  core::OwnedPrefix v6;
  v6.prefix = net::Prefix::must_parse("2001:db8::/32");
  v6.legitimate_origins.insert(65003);
  config.add_owned(std::move(v6));
  return config;
}

inline mrt::UpdateRecord make_update(bgp::Asn peer, double at_seconds,
                                     const std::vector<std::string>& announced,
                                     std::vector<bgp::Asn> path) {
  mrt::UpdateRecord rec;
  rec.peer_asn = peer;
  rec.local_asn = 0;
  rec.peer_ip = net::IpAddress::v4(0x0A000000 | peer);
  rec.timestamp = SimTime::at_seconds(at_seconds);
  rec.update.sender = peer;
  for (const auto& p : announced) {
    rec.update.announced.push_back(net::Prefix::must_parse(p));
  }
  rec.update.attrs.as_path = bgp::AsPath(std::move(path));
  return rec;
}

/// A window with enough variety to raise alerts (v4 hijack, sub-prefix,
/// v6 hijack) and enough repetition to span many batches and flushes.
/// `base_seconds` offsets the timestamps so multi-URL fixtures stay
/// monotone in fetch order.
inline std::vector<std::uint8_t> fixture_window(int repeats = 1,
                                                double base_seconds = 100) {
  std::vector<std::uint8_t> window;
  for (int rep = 0; rep < repeats; ++rep) {
    const double t = base_seconds + rep * 10;
    const auto add = [&](const std::vector<std::uint8_t>& rec) {
      window.insert(window.end(), rec.begin(), rec.end());
    };
    add(mrt::encode_update_record(
        make_update(9, t, {"10.0.0.0/23"}, {9, 3356, 666})));
    add(mrt::encode_update_record(
        make_update(9, t + 1, {"10.0.0.0/23"}, {9, 3356, 65001})));
    add(mrt::encode_update_record(
        make_update(8, t + 2, {"10.0.1.0/24"}, {8, 1299, 666})));
    add(mrt::encode_update_record(
        make_update(9, t + 3, {"2001:db8:dead::/48"}, {9, 3356, 667})));
  }
  return window;
}

inline std::string fresh_dir(const std::string& tag) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / ("artemis_ingest_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Journal segment bytes keyed by name, for bit-identity comparisons
/// (skips the ingest cursor and other non-segment files).
inline std::vector<std::pair<std::string, std::vector<char>>> journal_bytes(
    const std::string& dir) {
  std::vector<std::pair<std::string, std::vector<char>>> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find("seg-") != 0) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    out.emplace_back(name,
                     std::vector<char>((std::istreambuf_iterator<char>(in)),
                                       std::istreambuf_iterator<char>()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Replays a journal through detection and renders the canonical alert
/// lines (the journal_alerts tool's view) — the currency crash-resume
/// equivalence is stated in.
inline std::vector<std::string> replay_alert_lines(const std::string& journal_dir,
                                                   std::size_t shards) {
  const core::Config config = make_config();
  pipeline::ShardedDetectorOptions options;
  options.shards = shards;
  pipeline::ShardedDetector detector(config, options);
  feeds::MonitorHub hub;
  detector.attach(hub);
  journal::JournalReader reader(journal_dir);
  journal::ReplayFeed feed(reader);
  feed.replay_all(hub);
  std::vector<std::string> lines;
  for (const auto& alert : detector.merged_alerts()) {
    lines.push_back(alert.to_string());
  }
  return lines;
}

inline std::uint64_t count_journal_records(const std::string& dir) {
  journal::JournalReader reader(dir);
  pipeline::ObservationBatch batch;
  std::uint64_t read = 0;
  while (const auto n = reader.read_batch(batch, 1024)) read += n;
  EXPECT_FALSE(reader.truncated_tail());
  return read;
}

}  // namespace artemis::ingest_test

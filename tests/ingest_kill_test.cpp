// Crash-kill survival torture test (ISSUE 6 acceptance harness).
//
// Drives the real artemis_ingest binary — fork+exec, not an in-process
// simulation — against the FaultServer serving a long shelf of archive
// URLs at a dribble pace, and SIGKILLs it at seeded-random points, over
// and over. No signal handlers, no atexit: the process dies with
// whatever half-written segment, buffered batch, and mid-rename cursor
// it had. After every kill the supervisor is restarted with the SAME
// arguments, and after the kill rounds a final run completes cleanly.
//
// The verdict is the strongest one the journal design supports across
// process death: the recovered journal holds exactly the records of the
// never-killed run (count equal, no torn tail) and replays to the very
// same canonical alert lines at 1 shard and 4 shards. Segment BOUNDARIES
// differ (each restart opens a new segment at the resume point), which
// is why the comparison is records + replayed alerts, not file bytes —
// the byte-identity half of the story is covered by ingest_test.cpp for
// within-process retries.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ingest/fault_server.hpp"
#include "ingest/fixture.hpp"
#include "mrt/stream_reader.hpp"
#include "util/rng.hpp"

namespace artemis::ingest {
namespace {

using ingest_test::count_journal_records;
using ingest_test::FaultServer;
using ingest_test::fixture_window;
using ingest_test::fresh_dir;
using ingest_test::replay_alert_lines;

// Sized so the kill rounds CANNOT drain the shelf: total dribbled
// transfer time comfortably exceeds the sum of all kill delays, which
// guarantees every round actually lands a SIGKILL on a live supervisor
// (the ISSUE asks for >= 20 of them).
constexpr int kUrls = 96;
constexpr int kKillRounds = 26;
constexpr int kMinKills = 20;

std::string ingest_binary_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[static_cast<std::size_t>(n)] = '\0';
  return (std::filesystem::path(buf).parent_path() / "artemis_ingest").string();
}

pid_t spawn_supervisor(const std::string& binary,
                       const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (const auto& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: quiet stdout/stderr (each round prints warnings about the
    // archive it was murdered in the middle of) and become the tool.
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::dup2(devnull, STDERR_FILENO);
      ::close(devnull);
    }
    ::execv(binary.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

TEST(IngestKillTest, RandomSigkillLoopLosesAndDuplicatesNothing) {
  const std::string binary = ingest_binary_path();
  ASSERT_FALSE(binary.empty());
  ASSERT_TRUE(std::filesystem::exists(binary))
      << binary << " not built (tools disabled?)";

  // A shelf of small archives: enough URLs that cursor-granularity
  // progress survives even rounds whose kill lands before the current
  // archive finishes re-fetching. Every 8th is gzip'd (when available)
  // so compressed re-fetch-and-skip resume is exercised across death.
  FaultServer server;
  std::vector<std::string> urls;
  for (int i = 0; i < kUrls; ++i) {
    auto entity = fixture_window(3, 100 + i * 100);
#ifdef ARTEMIS_HAVE_ZLIB
    if (i % 8 == 0) entity = mrt::gzip_compress(entity);
#endif
    const std::string path = "/w" + std::to_string(i);
    server.add_file(path, std::move(entity));
    urls.push_back(server.url_for(path));
  }

  const auto args_for = [&](const std::string& journal_dir) {
    // Small batches and a tight lag bound so durable progress accrues
    // *within* an archive, not just at archive boundaries.
    std::vector<std::string> args = {
        "--journal", journal_dir, "--batch",  "4",   "--max-lag",
        "8",         "--policy",  "flush",    "--timeout-ms", "2000",
        "--backoff-ms", "1",      "--max-backoff-ms", "4",   "--seed", "7"};
    args.insert(args.end(), urls.begin(), urls.end());
    return args;
  };

  const auto run_to_completion = [&](const std::string& journal_dir) {
    const pid_t pid = spawn_supervisor(binary, args_for(journal_dir));
    ASSERT_GT(pid, 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  };

  // Golden run: same binary, same arguments, nobody shooting at it.
  const std::string golden_dir = fresh_dir("kill_golden");
  run_to_completion(golden_dir);
  const std::uint64_t golden_records = count_journal_records(golden_dir);
  ASSERT_GT(golden_records, 0u);

  // The kill loop. Dribble pacing stretches every transfer across the
  // SIGKILL window so kills land mid-archive, mid-batch, mid-anything.
  server.set_dribble(64, 2);
  Rng rng(20260808);
  const std::string kill_dir = fresh_dir("kill_victim");
  int killed = 0;
  bool completed = false;
  for (int round = 0; round < kKillRounds && !completed; ++round) {
    const pid_t pid = spawn_supervisor(binary, args_for(kill_dir));
    ASSERT_GT(pid, 0);
    const std::int64_t delay_ms = 10 + static_cast<std::int64_t>(rng.uniform_u64(51));
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    if (WIFSIGNALED(status)) {
      EXPECT_EQ(WTERMSIG(status), SIGKILL);
      ++killed;
    } else {
      // Beat the kill to the finish line: only possible near the end of
      // the shelf, and only if the sizing margin above is ever eroded.
      ASSERT_TRUE(WIFEXITED(status));
      ASSERT_EQ(WEXITSTATUS(status), 0) << "round " << round;
      completed = true;
    }
  }
  EXPECT_GE(killed, kMinKills);

  // Let the survivor finish at full speed, then render the verdict.
  server.set_dribble(0, 0);
  if (!completed) run_to_completion(kill_dir);

  // count_journal_records also asserts the recovered tail is not torn.
  EXPECT_EQ(count_journal_records(kill_dir), golden_records);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const auto killed_alerts = replay_alert_lines(kill_dir, shards);
    EXPECT_FALSE(killed_alerts.empty());
    EXPECT_EQ(killed_alerts, replay_alert_lines(golden_dir, shards));
  }
}

}  // namespace
}  // namespace artemis::ingest

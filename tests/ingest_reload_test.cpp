// Live incremental-reload proof (ISSUE 10 acceptance): a tenant added
// to the --detect ownership config and signalled in via SIGHUP starts
// alerting in the SAME process — no restart, no journal re-replay.
//
// Drives the real artemis_ingest binary (fork+exec, like the kill test)
// against the FaultServer at a dribble pace so the reload provably lands
// mid-stream: start with a v1 config that owns only the fixture's v4
// space, rewrite the file to the multi-tenant v2 form that onboards
// tenant "acme" owning the hijacked v6 space, SIGHUP, and let the run
// finish. The stderr transcript must show the reload notice and an
// "acme"-scoped alert for the v6 hijack that only the reloaded table
// can classify.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "artemis/config.hpp"
#include "ingest/fault_server.hpp"
#include "ingest/fixture.hpp"

namespace artemis::ingest {
namespace {

using ingest_test::FaultServer;
using ingest_test::fixture_window;
using ingest_test::fresh_dir;

std::string ingest_binary_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[static_cast<std::size_t>(n)] = '\0';
  return (std::filesystem::path(buf).parent_path() / "artemis_ingest").string();
}

/// fork+exec with stderr captured to `stderr_path` (the alert and reload
/// lines land there).
pid_t spawn_ingest(const std::string& binary, const std::vector<std::string>& args,
                   const std::string& stderr_path) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (const auto& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::close(devnull);
    }
    const int err = ::open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (err >= 0) {
      ::dup2(err, STDERR_FILENO);
      ::close(err);
    }
    ::execv(binary.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

void write_config(const std::string& path, const core::Config& config) {
  std::ofstream out(path, std::ios::trunc);
  out << config.to_json().dump(2) << "\n";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(IngestReloadTest, SighupOnboardsATenantWithoutRestart) {
  const std::string binary = ingest_binary_path();
  ASSERT_FALSE(binary.empty());
  ASSERT_TRUE(std::filesystem::exists(binary))
      << binary << " not built (tools disabled?)";

  // A long dribbled shelf: every window repeats the v4 hijack AND the
  // 2001:db8:dead::/48 v6 hijack, so whenever the reload lands there are
  // still v6 hijack observations ahead of it.
  FaultServer server;
  std::vector<std::string> urls;
  for (int i = 0; i < 64; ++i) {
    const std::string path = "/w" + std::to_string(i);
    server.add_file(path, fixture_window(3, 100 + i * 100));
    urls.push_back(server.url_for(path));
  }
  server.set_dribble(64, 2);

  // Before: v1 single-operator config, v4 space only — the v6 hijack is
  // unclassifiable. After: v2 tenants form; "acme" owns the v6 space.
  const std::string config_path = fresh_dir("reload_cfg") + ".json";
  core::Config before;
  core::OwnedPrefix v4;
  v4.prefix = net::Prefix::must_parse("10.0.0.0/23");
  v4.legitimate_origins.insert(65001);
  before.add_owned(std::move(v4));
  write_config(config_path, before);

  core::Config after;
  after.add_tenant("fleet");
  const core::TenantId acme = after.add_tenant("acme");
  core::OwnedPrefix v4b;
  v4b.prefix = net::Prefix::must_parse("10.0.0.0/23");
  v4b.legitimate_origins.insert(65001);
  after.add_owned(std::move(v4b));
  core::OwnedPrefix v6;
  v6.prefix = net::Prefix::must_parse("2001:db8::/32");
  v6.legitimate_origins.insert(65003);
  after.add_owned(acme, std::move(v6));

  const std::string journal_dir = fresh_dir("reload_journal");
  const std::string stderr_path = fresh_dir("reload_stderr") + ".txt";
  std::vector<std::string> args = {"--journal", journal_dir, "--batch", "4",
                                   "--max-lag", "8",          "--policy", "flush",
                                   "--timeout-ms", "5000",    "--detect", config_path};
  args.insert(args.end(), urls.begin(), urls.end());

  const pid_t pid = spawn_ingest(binary, args, stderr_path);
  ASSERT_GT(pid, 0);

  // Let the dribbled ingest get going, then swap the file and signal.
  // The shelf is sized so ~100 ms is nowhere near its end (64 dribbled
  // windows take several seconds at 64 B / 2 ms).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  write_config(config_path, after);
  ASSERT_EQ(::kill(pid, SIGHUP), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.set_dribble(0, 0);  // finish at full speed

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  const std::string transcript = slurp(stderr_path);
  // The reload was acknowledged on the ingest thread...
  EXPECT_NE(transcript.find("reload: ownership config"), std::string::npos)
      << transcript;
  // ...and the onboarded tenant's space started alerting in-process: the
  // v6 hijack is only classifiable by the reloaded table, and its alert
  // line carries the non-default tenant's name.
  EXPECT_NE(transcript.find("2001:db8:dead::/48"), std::string::npos) << transcript;
  EXPECT_NE(transcript.find("tenant=acme"), std::string::npos) << transcript;
}

}  // namespace
}  // namespace artemis::ingest

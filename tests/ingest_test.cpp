// The ingest subsystem under scripted faults.
//
// Every network failure mode the supervisor claims to survive is staged
// here against the in-process FaultServer: 5xx storms, connections cut
// (FIN and RST) mid-body, stalls past the read timeout, lying
// Content-Length, servers that ignore Range — and for each, the
// headline invariants hold:
//
//   * the byte stream the pipeline sees is seamless (each entity byte
//     exactly once, in order), so the faulty run's journal is
//     BYTE-IDENTICAL to the fault-free run's;
//   * the no-silent-loss arithmetic holds: converted observations ==
//     journaled + skipped + dropped, with every term surfaced in stats;
//   * backoff schedules are deterministic per seed and classification
//     routes 404s to fail-fast, 5xx/resets/stalls to retry.
//
// (The SIGKILL half of the story — crash-restart resume — lives in
// tests/ingest_kill_test.cpp, which drives the artemis_ingest binary.)
#include "ingest/supervisor.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ingest/fault_server.hpp"
#include "ingest/fixture.hpp"
#include "mrt/mrt.hpp"
#include "mrt/observation_convert.hpp"
#include "mrt/stream_reader.hpp"

namespace artemis::ingest {
namespace {

namespace fs = std::filesystem;
using ingest_test::count_journal_records;
using ingest_test::Fault;
using ingest_test::FaultServer;
using ingest_test::fixture_window;
using ingest_test::fresh_dir;
using ingest_test::journal_bytes;
using ingest_test::replay_alert_lines;

/// Runs a supervisor over `urls` with backoff sleeps stubbed out.
IngestReport run_supervisor(const std::string& journal_dir,
                            const std::vector<std::string>& urls,
                            SupervisorOptions options = {}) {
  options.journal_dir = journal_dir;
  options.fetch.connect_timeout_ms = 2000;
  if (options.fetch.io_timeout_ms == 5000) options.fetch.io_timeout_ms = 2000;
  if (!options.sleep) options.sleep = [](std::int64_t) {};
  IngestSupervisor supervisor(std::move(options), urls);
  return supervisor.run();
}

void expect_no_silent_loss(const SourceReport& sr) {
  EXPECT_EQ(sr.feed.convert.observations,
            sr.feed.observations_journaled + sr.feed.observations_skipped +
                sr.feed.observations_dropped)
      << sr.url;
}

// ------------------------------------------------------------ URL layer

TEST(IngestHttpTest, ParseUrl) {
  const auto url = parse_url("http://archive.example.org/route-views/rib.bz2");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->scheme, "http");
  EXPECT_EQ(url->host, "archive.example.org");
  EXPECT_EQ(url->port, "80");
  EXPECT_EQ(url->target, "/route-views/rib.bz2");

  const auto with_port = parse_url("HTTP://127.0.0.1:8080/x?y=1");
  ASSERT_TRUE(with_port.has_value());
  EXPECT_EQ(with_port->scheme, "http");
  EXPECT_EQ(with_port->port, "8080");
  EXPECT_EQ(with_port->target, "/x?y=1");

  const auto bare = parse_url("http://host");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->target, "/");

  EXPECT_FALSE(parse_url("not a url").has_value());
  EXPECT_FALSE(parse_url("http://").has_value());
  EXPECT_FALSE(parse_url("http://host:port/x").has_value());
}

TEST(IngestHttpTest, StatusClassification) {
  EXPECT_EQ(classify_status(200), FetchOutcome::kOk);
  EXPECT_EQ(classify_status(206), FetchOutcome::kOk);
  EXPECT_EQ(classify_status(416), FetchOutcome::kOk);
  EXPECT_EQ(classify_status(500), FetchOutcome::kTransient);
  EXPECT_EQ(classify_status(503), FetchOutcome::kTransient);
  EXPECT_EQ(classify_status(408), FetchOutcome::kTransient);
  EXPECT_EQ(classify_status(429), FetchOutcome::kTransient);
  EXPECT_EQ(classify_status(404), FetchOutcome::kPermanent);
  EXPECT_EQ(classify_status(403), FetchOutcome::kPermanent);
  EXPECT_EQ(classify_status(301), FetchOutcome::kPermanent);
}

TEST(IngestHttpTest, HttpsClassifiesPermanentWithMirrorHint) {
  const auto url = parse_url("https://archive.example.org/rib.bz2");
  ASSERT_TRUE(url.has_value());
  const HttpResult result = http_get(*url, {}, [](auto) {});
  EXPECT_EQ(result.outcome, FetchOutcome::kPermanent);
  EXPECT_NE(result.error.find("http:// mirror"), std::string::npos);
}

// ---------------------------------------------------------- backoff

TEST(IngestBackoffTest, DeterministicPerSeedAndCapped) {
  FetchPolicy policy;
  policy.backoff_ms = 100;
  policy.max_backoff_ms = 1000;
  Rng a(42), b(42), c(7);
  std::vector<std::int64_t> da, db, dc;
  for (int retry = 0; retry < 12; ++retry) {
    da.push_back(backoff_delay_ms(policy, retry, a));
    db.push_back(backoff_delay_ms(policy, retry, b));
    dc.push_back(backoff_delay_ms(policy, retry, c));
  }
  EXPECT_EQ(da, db);  // same seed, same schedule
  EXPECT_NE(da, dc);  // different seed, different jitter
  for (int retry = 0; retry < 12; ++retry) {
    const std::int64_t base =
        std::min<std::int64_t>(policy.max_backoff_ms, policy.backoff_ms << retry);
    EXPECT_GE(da[retry], base / 2) << "retry " << retry;
    EXPECT_LE(da[retry], base) << "retry " << retry;
  }
  // Deep retry counts must not overflow into negative delays.
  Rng deep(1);
  EXPECT_GT(backoff_delay_ms(policy, 63, deep), 0);
}

// ---------------------------------------------------- FetchSource faults

class FetchSourceTest : public ::testing::Test {
 protected:
  FetchPolicy fast_policy() {
    FetchPolicy policy;
    policy.max_retries = 4;
    policy.backoff_ms = 1;
    policy.max_backoff_ms = 4;
    policy.connect_timeout_ms = 2000;
    policy.io_timeout_ms = 300;  // stalls classify fast
    return policy;
  }

  /// Fetches `path` from the server, collecting the delivered bytes and
  /// the backoff sleeps.
  FetchOutcome fetch(FaultServer& server, const std::string& path,
                     std::vector<std::uint8_t>& delivered,
                     std::vector<std::int64_t>* sleeps = nullptr) {
    source_ = std::make_unique<FetchSource>(server.url_for(path), fast_policy(),
                                            Rng(99).fork(path));
    return source_->run(
        [&](std::span<const std::uint8_t> data) {
          delivered.insert(delivered.end(), data.begin(), data.end());
        },
        [&](std::int64_t ms) {
          if (sleeps != nullptr) sleeps->push_back(ms);
        });
  }

  std::unique_ptr<FetchSource> source_;
};

TEST_F(FetchSourceTest, CleanFetchDeliversEverything) {
  FaultServer server;
  const auto content = fixture_window(3);
  server.add_file("/w.mrt", content);
  std::vector<std::uint8_t> delivered;
  EXPECT_EQ(fetch(server, "/w.mrt", delivered), FetchOutcome::kOk);
  EXPECT_EQ(delivered, content);
  EXPECT_EQ(source_->state(), SourceState::kDone);
  EXPECT_EQ(source_->stats().attempts, 1u);
  EXPECT_EQ(source_->stats().bytes_fetched, content.size());
}

TEST_F(FetchSourceTest, NotFoundFailsFastWithoutRetries) {
  FaultServer server;
  std::vector<std::uint8_t> delivered;
  std::vector<std::int64_t> sleeps;
  EXPECT_EQ(fetch(server, "/missing", delivered, &sleeps),
            FetchOutcome::kPermanent);
  EXPECT_EQ(source_->state(), SourceState::kFailed);
  EXPECT_EQ(source_->stats().attempts, 1u);  // no retry spent on a 404
  EXPECT_TRUE(sleeps.empty());
  EXPECT_EQ(source_->stats().last_status, 404);
}

TEST_F(FetchSourceTest, ServerErrorsBackOffThenSucceed) {
  FaultServer server;
  const auto content = fixture_window();
  server.add_file("/w.mrt", content);
  server.push_fault({.kind = Fault::Kind::kStatus, .status = 503});
  server.push_fault({.kind = Fault::Kind::kStatus, .status = 500});
  std::vector<std::uint8_t> delivered;
  std::vector<std::int64_t> sleeps;
  EXPECT_EQ(fetch(server, "/w.mrt", delivered, &sleeps), FetchOutcome::kOk);
  EXPECT_EQ(delivered, content);
  EXPECT_EQ(source_->stats().attempts, 3u);
  EXPECT_EQ(sleeps.size(), 2u);
}

TEST_F(FetchSourceTest, RetryBudgetExhaustsOnPersistent5xx) {
  FaultServer server;
  server.add_file("/w.mrt", fixture_window());
  for (int i = 0; i < 16; ++i) {
    server.push_fault({.kind = Fault::Kind::kStatus, .status = 503});
  }
  std::vector<std::uint8_t> delivered;
  EXPECT_EQ(fetch(server, "/w.mrt", delivered), FetchOutcome::kTransient);
  EXPECT_EQ(source_->state(), SourceState::kFailed);
  // max_retries=4 consecutive no-progress failures => 5 attempts total.
  EXPECT_EQ(source_->stats().attempts, 5u);
  EXPECT_TRUE(delivered.empty());
}

TEST_F(FetchSourceTest, ConnectionResetMidBodyResumesWithRange) {
  FaultServer server;
  const auto content = fixture_window(4);
  server.add_file("/w.mrt", content);
  server.push_fault({.kind = Fault::Kind::kResetAfterBytes, .bytes = 37});
  std::vector<std::uint8_t> delivered;
  EXPECT_EQ(fetch(server, "/w.mrt", delivered), FetchOutcome::kOk);
  EXPECT_EQ(delivered, content);  // exactly once, in order, across the cut
  EXPECT_GE(server.range_requests(), 1u);  // the resume really used Range
  EXPECT_EQ(source_->stats().bytes_discarded, 0u);
}

TEST_F(FetchSourceTest, CleanCloseMidBodyResumesToo) {
  FaultServer server;
  const auto content = fixture_window(4);
  server.add_file("/w.mrt", content);
  server.push_fault({.kind = Fault::Kind::kCloseAfterBytes, .bytes = 101});
  std::vector<std::uint8_t> delivered;
  EXPECT_EQ(fetch(server, "/w.mrt", delivered), FetchOutcome::kOk);
  EXPECT_EQ(delivered, content);
}

TEST_F(FetchSourceTest, RangeIgnoringServerGetsPrefixDiscarded) {
  FaultServer server;
  const auto content = fixture_window(4);
  server.add_file("/w.mrt", content);
  server.push_fault({.kind = Fault::Kind::kCloseAfterBytes, .bytes = 64});
  server.push_fault({.kind = Fault::Kind::kIgnoreRange});
  std::vector<std::uint8_t> delivered;
  EXPECT_EQ(fetch(server, "/w.mrt", delivered), FetchOutcome::kOk);
  EXPECT_EQ(delivered, content);  // still exactly once despite the restart
  EXPECT_EQ(source_->stats().bytes_discarded, 64u);
}

TEST_F(FetchSourceTest, StallClassifiesTransientAndRecovers) {
  FaultServer server;
  const auto content = fixture_window(2);
  server.add_file("/w.mrt", content);
  server.push_fault(
      {.kind = Fault::Kind::kStallThenClose, .bytes = 16, .stall_ms = 700});
  std::vector<std::uint8_t> delivered;
  EXPECT_EQ(fetch(server, "/w.mrt", delivered), FetchOutcome::kOk);
  EXPECT_EQ(delivered, content);
  EXPECT_NE(source_->stats().retries, 0u);
}

TEST_F(FetchSourceTest, WrongContentLengthReadsAsShortBodyAndResumes) {
  FaultServer server;
  const auto content = fixture_window(3);
  server.add_file("/w.mrt", content);
  server.push_fault(
      {.kind = Fault::Kind::kWrongContentLength, .length_delta = 512});
  std::vector<std::uint8_t> delivered;
  EXPECT_EQ(fetch(server, "/w.mrt", delivered), FetchOutcome::kOk);
  EXPECT_EQ(delivered, content);
}

// ------------------------------------------------------------ pipeline

TEST(IngestPipelineTest, ChunkFedJournalMatchesWholeFileImport) {
  const auto window = fixture_window(3);

  // Reference: the established import path.
  const std::string ref_dir = fresh_dir("pipe_ref");
  {
    const auto src = fs::path(fresh_dir("pipe_ref_src"));
    fs::create_directories(src);
    std::ofstream out(src / "w.mrt", std::ios::binary);
    out.write(reinterpret_cast<const char*>(window.data()),
              static_cast<std::streamsize>(window.size()));
    out.close();
    const std::string paths[] = {(src / "w.mrt").string()};
    mrt::import_mrt_files(paths, ref_dir);
  }

  // Pipeline, fed in awkward 7-byte chunks.
  const std::string dir = fresh_dir("pipe_chunked");
  {
    journal::JournalWriter writer(dir);
    IngestPipeline pipeline(writer);
    pipeline.begin_source();
    for (std::size_t i = 0; i < window.size(); i += 7) {
      const std::size_t n = std::min<std::size_t>(7, window.size() - i);
      pipeline.feed({window.data() + i, n});
    }
    const SourceFeedStats stats = pipeline.finish_source();
    EXPECT_TRUE(stats.convert.clean());
    EXPECT_EQ(stats.compression, mrt::Compression::kNone);
    EXPECT_EQ(stats.bytes_in, window.size());
    EXPECT_EQ(stats.observations_journaled, stats.convert.observations);
    writer.close();
  }
  EXPECT_EQ(journal_bytes(dir), journal_bytes(ref_dir));
}

TEST(IngestPipelineTest, SkipShimDropsExactlyTheResumePrefix) {
  const auto window = fixture_window(2);
  const std::string full_dir = fresh_dir("skip_full");
  std::uint64_t total_obs = 0;
  {
    journal::JournalWriter writer(full_dir);
    IngestPipeline pipeline(writer);
    pipeline.begin_source();
    pipeline.feed(window);
    total_obs = pipeline.finish_source().convert.observations;
    writer.close();
  }
  ASSERT_GT(total_obs, 3u);

  const std::string skip_dir = fresh_dir("skip_part");
  {
    journal::JournalWriter writer(skip_dir);
    IngestPipeline pipeline(writer);
    pipeline.begin_source(3);
    pipeline.feed(window);
    const SourceFeedStats stats = pipeline.finish_source();
    EXPECT_EQ(stats.observations_skipped, 3u);
    EXPECT_EQ(stats.observations_journaled, total_obs - 3);
    EXPECT_EQ(stats.convert.observations, total_obs);
    writer.close();
  }
  EXPECT_EQ(count_journal_records(skip_dir), total_obs - 3);
}

TEST(IngestPipelineTest, DropPolicyShedsWithExplicitAccounting) {
  const auto window = fixture_window(64);
  const std::string dir = fresh_dir("drop");
  journal::JournalWriterOptions jopts;
  jopts.buffer_bytes = 1u << 20;  // big buffer: lag only drains via policy
  journal::JournalWriter writer(dir, jopts);
  PipelineOptions popts;
  popts.convert.batch_capacity = 16;
  popts.max_lag_records = 32;
  popts.lag_policy = LagPolicy::kDrop;
  IngestPipeline pipeline(writer, popts);
  pipeline.begin_source();
  pipeline.feed(window);
  const SourceFeedStats stats = pipeline.finish_source();
  writer.close();

  EXPECT_GT(stats.observations_dropped, 0u);
  EXPECT_GT(stats.batches_dropped, 0u);
  // No silent loss: every converted observation is accounted somewhere.
  EXPECT_EQ(stats.convert.observations,
            stats.observations_journaled + stats.observations_skipped +
                stats.observations_dropped);
  EXPECT_EQ(count_journal_records(dir), stats.observations_journaled);
}

TEST(IngestPipelineTest, FlushPolicyBoundsLagLosslessly) {
  const auto window = fixture_window(64);
  const std::string dir = fresh_dir("flush");
  journal::JournalWriterOptions jopts;
  jopts.buffer_bytes = 1u << 20;
  journal::JournalWriter writer(dir, jopts);
  PipelineOptions popts;
  popts.convert.batch_capacity = 16;
  popts.max_lag_records = 32;
  popts.lag_policy = LagPolicy::kFlush;
  IngestPipeline pipeline(writer, popts);
  pipeline.begin_source();
  std::uint64_t max_seen_lag = 0;
  for (std::size_t i = 0; i < window.size(); i += 512) {
    const std::size_t n = std::min<std::size_t>(512, window.size() - i);
    pipeline.feed({window.data() + i, n});
    max_seen_lag = std::max(max_seen_lag, writer.records_buffered());
  }
  const SourceFeedStats stats = pipeline.finish_source();
  writer.close();

  EXPECT_EQ(stats.observations_dropped, 0u);
  EXPECT_GT(stats.lag_flushes, 0u);
  // The bound: lag never exceeds max_lag + one batch (the check is per
  // batch, before append).
  EXPECT_LE(max_seen_lag, popts.max_lag_records + popts.convert.batch_capacity);
  EXPECT_EQ(count_journal_records(dir), stats.convert.observations);
}

#ifdef ARTEMIS_HAVE_ZLIB
TEST(IngestPipelineTest, TornGzipStreamRecoversPrefixAndAccountsTruncation) {
  const auto window = fixture_window(32);
  auto gz = mrt::gzip_compress(window);
  gz.resize(gz.size() / 2);

  const std::string dir = fresh_dir("torn_gz");
  journal::JournalWriter writer(dir);
  IngestPipeline pipeline(writer);
  pipeline.begin_source();
  pipeline.feed(gz);
  const SourceFeedStats stats = pipeline.finish_source();
  writer.close();

  EXPECT_EQ(stats.compression, mrt::Compression::kGzip);
  EXPECT_TRUE(stats.stream_truncated);
  EXPECT_TRUE(stats.convert.truncated);
  EXPECT_GT(stats.observations_journaled, 0u);
  EXPECT_EQ(count_journal_records(dir), stats.observations_journaled);
}
#endif

// ------------------------------------------------------------ cursor

TEST(IngestCursorTest, RoundTripAndAtomicReplace) {
  const std::string dir = fresh_dir("cursor");
  fs::create_directories(dir);
  EXPECT_FALSE(load_ingest_cursor(dir).has_value());

  IngestCursor cursor;
  cursor.url_index = 3;
  cursor.url = "http://mirror/a.mrt.gz";
  cursor.start_seq = 123456;
  cursor.start_clock_us = 99'000'017;
  store_ingest_cursor(dir, cursor);

  const auto loaded = load_ingest_cursor(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->url_index, 3u);
  EXPECT_EQ(loaded->url, "http://mirror/a.mrt.gz");
  EXPECT_EQ(loaded->start_seq, 123456u);
  EXPECT_EQ(loaded->start_clock_us, 99'000'017);

  cursor.url_index = 4;
  cursor.start_seq = 200000;
  store_ingest_cursor(dir, cursor);
  EXPECT_EQ(load_ingest_cursor(dir)->start_seq, 200000u);
  EXPECT_FALSE(fs::exists(dir + "/ingest-cursor.json.tmp"));
}

TEST(IngestCursorTest, JournalReaderIgnoresCursorFile) {
  const std::string dir = fresh_dir("cursor_reader");
  {
    journal::JournalWriter writer(dir);
    IngestPipeline pipeline(writer);
    pipeline.begin_source();
    pipeline.feed(fixture_window());
    pipeline.finish_source();
    writer.close();
  }
  IngestCursor cursor;
  cursor.url = "http://mirror/w.mrt";
  store_ingest_cursor(dir, cursor);
  EXPECT_GT(count_journal_records(dir), 0u);  // reader unfazed by the json
}

// ----------------------------------------------------- supervisor e2e

TEST(IngestSupervisorTest, FaultyRunJournalByteIdenticalToCleanRun) {
  // The strongest statement of fault transparency: a run through 503s, a
  // mid-body RST, a stall and a Range-ignoring restart writes the very
  // same journal bytes as a run with no faults at all.
  const auto window = fixture_window(8);
#ifdef ARTEMIS_HAVE_ZLIB
  const auto entity = mrt::gzip_compress(window);
#else
  const auto& entity = window;
#endif

  const std::string clean_dir = fresh_dir("sup_clean");
  {
    FaultServer server;
    server.add_file("/w", entity);
    const auto report = run_supervisor(clean_dir, {server.url_for("/w")});
    ASSERT_EQ(report.sources_done, 1u);
  }

  const std::string faulty_dir = fresh_dir("sup_faulty");
  {
    FaultServer server;
    server.add_file("/w", entity);
    server.push_fault({.kind = Fault::Kind::kStatus, .status = 503});
    server.push_fault({.kind = Fault::Kind::kResetAfterBytes, .bytes = 33});
    server.push_fault(
        {.kind = Fault::Kind::kStallThenClose, .bytes = 20, .stall_ms = 700});
    server.push_fault({.kind = Fault::Kind::kIgnoreRange});
    SupervisorOptions options;
    options.fetch.io_timeout_ms = 300;
    options.fetch.backoff_ms = 1;
    options.fetch.max_backoff_ms = 2;
    const auto report =
        run_supervisor(faulty_dir, {server.url_for("/w")}, std::move(options));
    ASSERT_EQ(report.sources_done, 1u);
    ASSERT_EQ(report.sources.size(), 1u);
    EXPECT_GT(report.sources[0].fetch.retries, 0u);
    expect_no_silent_loss(report.sources[0]);
  }

  EXPECT_EQ(journal_bytes(faulty_dir), journal_bytes(clean_dir));
  EXPECT_EQ(replay_alert_lines(faulty_dir, 4), replay_alert_lines(clean_dir, 1));
}

TEST(IngestSupervisorTest, PermanentFailureSkipsToNextUrl) {
  const auto window = fixture_window(2);
  FaultServer server;
  server.add_file("/good", window);
  const std::string dir = fresh_dir("sup_404");
  const auto report = run_supervisor(
      dir, {server.url_for("/missing"), server.url_for("/good")});
  EXPECT_EQ(report.sources_failed, 1u);
  EXPECT_EQ(report.sources_done, 1u);
  ASSERT_EQ(report.sources.size(), 2u);
  EXPECT_EQ(report.sources[0].outcome, FetchOutcome::kPermanent);
  EXPECT_EQ(report.sources[1].outcome, FetchOutcome::kOk);
  EXPECT_EQ(count_journal_records(dir), report.records_journaled);
}

TEST(IngestSupervisorTest, RestartAfterCompletionAppendsNothing) {
  const auto window = fixture_window(2);
  FaultServer server;
  server.add_file("/w", window);
  const std::string dir = fresh_dir("sup_idem");
  const std::vector<std::string> urls = {server.url_for("/w")};

  const auto first = run_supervisor(dir, urls);
  ASSERT_EQ(first.sources_done, 1u);
  const auto bytes_before = journal_bytes(dir);

  // Same arguments, same journal dir: the restart re-fetches the cursor's
  // URL, skips every observation at the shim, and appends zero records.
  const auto second = run_supervisor(dir, urls);
  ASSERT_EQ(second.sources.size(), 1u);
  EXPECT_TRUE(second.sources[0].resumed);
  EXPECT_EQ(second.sources[0].feed.observations_journaled, 0u);
  EXPECT_EQ(second.sources[0].feed.observations_skipped,
            second.sources[0].feed.convert.observations);
  expect_no_silent_loss(second.sources[0]);
  EXPECT_EQ(journal_bytes(dir), bytes_before);
}

TEST(IngestSupervisorTest, ResumeMidUrlContinuesWithoutDupOrLoss) {
  // Simulated crash: journal the first K observations of the window (as
  // the dead incarnation did), persist the cursor it would have written,
  // then run a fresh supervisor. The result must equal the never-crashed
  // run — same records, same replayed alerts at shards 1 and 4.
  const auto window = fixture_window(6);
  FaultServer server;
  server.add_file("/w", window);
  const std::vector<std::string> urls = {server.url_for("/w")};

  const std::string clean_dir = fresh_dir("sup_resume_clean");
  const auto clean = run_supervisor(clean_dir, urls);
  ASSERT_EQ(clean.sources_done, 1u);
  const std::uint64_t total = clean.records_journaled;
  ASSERT_GT(total, 8u);

  const std::string crash_dir = fresh_dir("sup_resume_crash");
  {
    // The pre-crash half: durable journal holding a prefix + the cursor
    // written before the URL started. Small batches so part of the feed
    // actually reaches the writer before the "crash".
    journal::JournalWriter writer(crash_dir);
    PipelineOptions popts;
    popts.convert.batch_capacity = 4;
    IngestPipeline pipeline(writer, popts);
    IngestCursor cursor;
    cursor.url_index = 0;
    cursor.url = urls[0];
    cursor.start_seq = writer.next_sequence();
    cursor.start_clock_us = pipeline.converter().clock_us();
    store_ingest_cursor(crash_dir, cursor);
    pipeline.begin_source();
    // Feed only part of the stream, then "die": flush what a real crash
    // would have left durable and abandon the rest.
    pipeline.feed({window.data(), window.size() / 3});
    writer.flush();
    // (No finish_source / close: the crash happened mid-stream. The
    // writer's destructor flushes its tail, which only makes MORE records
    // durable — the resume math handles any durable prefix.)
  }
  const std::uint64_t durable = count_journal_records(crash_dir);
  ASSERT_GT(durable, 0u);
  ASSERT_LT(durable, total);

  const auto resumed = run_supervisor(crash_dir, urls);
  ASSERT_EQ(resumed.sources.size(), 1u);
  EXPECT_TRUE(resumed.sources[0].resumed);
  EXPECT_EQ(resumed.sources[0].feed.observations_skipped, durable);
  expect_no_silent_loss(resumed.sources[0]);
  EXPECT_EQ(count_journal_records(crash_dir), total);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EXPECT_EQ(replay_alert_lines(crash_dir, shards),
              replay_alert_lines(clean_dir, shards));
  }
}

TEST(IngestSupervisorTest, StatsJsonCarriesTheLedger) {
  const auto window = fixture_window(2);
  FaultServer server;
  server.add_file("/w", window);
  server.push_fault({.kind = Fault::Kind::kStatus, .status = 503});
  const std::string dir = fresh_dir("sup_json");
  SupervisorOptions options;
  options.fetch.backoff_ms = 1;
  options.fetch.max_backoff_ms = 2;
  options.journal.fsync_policy = journal::FsyncPolicy::kOnRotate;
  const auto snapshot = options;  // run_supervisor moves it
  const auto report = run_supervisor(dir, {server.url_for("/w")}, options);

  SupervisorOptions render = snapshot;
  render.journal_dir = dir;
  const json::Value doc = ingest_report_to_json(render, report);
  EXPECT_EQ(doc.get_string("fsync_policy", ""), "on_rotate");
  EXPECT_EQ(doc.get_string("lag_policy", ""), "flush");
  EXPECT_EQ(doc.get_int("sources_done", -1), 1);
  const auto& sources = doc.at("sources").as_array();
  ASSERT_EQ(sources.size(), 1u);
  const auto& s = sources[0];
  EXPECT_EQ(s.get_int("retries", 0), 1);
  EXPECT_EQ(s.get_int("observations_converted", -1),
            s.get_int("observations_journaled", -2) +
                s.get_int("observations_skipped", 0) +
                s.get_int("observations_dropped", 0));
  EXPECT_EQ(s.get_int("bytes_fetched", -1),
            static_cast<std::int64_t>(window.size()));
}

}  // namespace
}  // namespace artemis::ingest

#include <gtest/gtest.h>

#include "netbase/ip.hpp"

namespace artemis::net {
namespace {

TEST(IpV4Test, ConstructAndFormat) {
  const auto a = IpAddress::v4(0x0A000001);
  EXPECT_TRUE(a.is_v4());
  EXPECT_EQ(a.bits(), 32);
  EXPECT_EQ(a.v4_value(), 0x0A000001u);
  EXPECT_EQ(a.to_string(), "10.0.0.1");
}

TEST(IpV4Test, ParseValid) {
  EXPECT_EQ(IpAddress::parse("0.0.0.0")->v4_value(), 0u);
  EXPECT_EQ(IpAddress::parse("255.255.255.255")->v4_value(), 0xFFFFFFFFu);
  EXPECT_EQ(IpAddress::parse("192.168.1.42")->to_string(), "192.168.1.42");
}

TEST(IpV4Test, ParseRejectsMalformed) {
  EXPECT_FALSE(IpAddress::parse(""));
  EXPECT_FALSE(IpAddress::parse("1.2.3"));
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5"));
  EXPECT_FALSE(IpAddress::parse("256.0.0.1"));
  EXPECT_FALSE(IpAddress::parse("1.2.3.x"));
  EXPECT_FALSE(IpAddress::parse("01.2.3.4"));  // leading zero
  EXPECT_FALSE(IpAddress::parse("1..2.3"));
  EXPECT_FALSE(IpAddress::parse("-1.2.3.4"));
}

TEST(IpV4Test, ParseFormatRoundTrip) {
  for (const auto text : {"10.0.0.0", "172.16.254.3", "8.8.8.8", "100.64.0.1"}) {
    const auto a = IpAddress::parse(text);
    ASSERT_TRUE(a.has_value()) << text;
    EXPECT_EQ(a->to_string(), text);
  }
}

TEST(IpV6Test, ConstructAndFormat) {
  const auto a = IpAddress::v6(0x20010db8'00000000ULL, 0x00000000'00000001ULL);
  EXPECT_FALSE(a.is_v4());
  EXPECT_EQ(a.bits(), 128);
  EXPECT_EQ(a.to_string(), "2001:db8::1");
}

TEST(IpV6Test, ParseForms) {
  EXPECT_EQ(IpAddress::parse("::")->to_string(), "::");
  EXPECT_EQ(IpAddress::parse("::1")->to_string(), "::1");
  EXPECT_EQ(IpAddress::parse("2001:db8::")->to_string(), "2001:db8::");
  EXPECT_EQ(IpAddress::parse("1:2:3:4:5:6:7:8")->to_string(), "1:2:3:4:5:6:7:8");
  EXPECT_EQ(IpAddress::parse("2001:0db8:0000:0000:0000:0000:0000:0001")->to_string(),
            "2001:db8::1");
}

TEST(IpV6Test, CompressesLongestZeroRun) {
  EXPECT_EQ(IpAddress::parse("1:0:0:2:0:0:0:3")->to_string(), "1:0:0:2::3");
  // A single zero group is not compressed (RFC 5952 §4.2.2).
  EXPECT_EQ(IpAddress::parse("1:0:2:3:4:5:6:7")->to_string(), "1:0:2:3:4:5:6:7");
}

TEST(IpV6Test, ParseRejectsMalformed) {
  EXPECT_FALSE(IpAddress::parse(":::"));
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7"));        // too few
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:8:9"));    // too many
  EXPECT_FALSE(IpAddress::parse("1::2::3"));              // two gaps
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:8::"));    // gap compresses nothing
  EXPECT_FALSE(IpAddress::parse("12345::"));              // group too long
  EXPECT_FALSE(IpAddress::parse("g::1"));                 // bad hex
}

TEST(IpBitsTest, BitAccessMsbFirst) {
  const auto a = IpAddress::v4(0x80000001);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_FALSE(a.bit(30));
  EXPECT_TRUE(a.bit(31));
}

TEST(IpBitsTest, WithBitSetsAndClears) {
  const auto a = IpAddress::v4(0);
  const auto b = a.with_bit(0, true);
  EXPECT_EQ(b.v4_value(), 0x80000000u);
  EXPECT_EQ(b.with_bit(0, false).v4_value(), 0u);
  EXPECT_EQ(a.with_bit(31, true).v4_value(), 1u);
}

TEST(IpBitsTest, MaskedClearsHostBits) {
  const auto a = IpAddress::v4(0x0A0001FF);  // 10.0.1.255
  EXPECT_EQ(a.masked(24).to_string(), "10.0.1.0");
  EXPECT_EQ(a.masked(23).to_string(), "10.0.0.0");
  EXPECT_EQ(a.masked(32).to_string(), "10.0.1.255");
  EXPECT_EQ(a.masked(0).to_string(), "0.0.0.0");
  EXPECT_EQ(a.masked(15).to_string(), "10.0.0.0");
}

TEST(IpBitsTest, MaskedV6) {
  const auto a = IpAddress::parse("2001:db8:ffff::1").value();
  EXPECT_EQ(a.masked(32).to_string(), "2001:db8::");
  EXPECT_EQ(a.masked(48).to_string(), "2001:db8:ffff::");
}

TEST(IpCommonPrefixTest, SameFamily) {
  const auto a = IpAddress::parse("10.0.0.0").value();
  const auto b = IpAddress::parse("10.0.1.0").value();
  EXPECT_EQ(a.common_prefix_len(b), 23);
  EXPECT_EQ(a.common_prefix_len(a), 32);
  const auto c = IpAddress::parse("128.0.0.0").value();
  EXPECT_EQ(a.common_prefix_len(c), 0);
}

TEST(IpCommonPrefixTest, CrossFamilyIsZero) {
  const auto v4 = IpAddress::v4(0);
  const auto v6 = IpAddress::v6(0, 0);
  EXPECT_EQ(v4.common_prefix_len(v6), 0);
}

TEST(IpOrderingTest, TotalOrder) {
  const auto a = IpAddress::parse("10.0.0.1").value();
  const auto b = IpAddress::parse("10.0.0.2").value();
  EXPECT_LT(a, b);
  EXPECT_EQ(a, IpAddress::parse("10.0.0.1").value());
}

TEST(IpFromBytesTest, RoundTrip) {
  const std::uint8_t raw[4] = {192, 0, 2, 1};
  const auto a = IpAddress::from_bytes(IpFamily::kIpv4, raw);
  EXPECT_EQ(a.to_string(), "192.0.2.1");
}

}  // namespace
}  // namespace artemis::net
